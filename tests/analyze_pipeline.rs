//! The full DBMS loop, end to end:
//!
//! ```text
//! generate data → ANALYZE → catalog → estimate selectivities →
//! build query → LEC-optimize → execute → compare realized vs estimated
//! ```
//!
//! No statistic in the optimizer's input is hand-provided: everything comes
//! from scanning the simulated tables, exactly as a DBMS would.

use lecopt::catalog::{Catalog, ColumnMeta, Histogram, TableMeta};
use lecopt::core::{alg_c, MemoryModel};
use lecopt::cost::PaperCostModel;
use lecopt::exec::datagen::{domain_for_selectivity, generate, DataGenSpec};
use lecopt::exec::{analyze, execute_plan, BufferPool, Disk, ExecMemoryEnv, RelId};
use lecopt::stats::Distribution;
use lecopt::workload::from_catalog::{query_from_catalog, JoinSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds a catalog entry from an ANALYZE pass.
fn register_analyzed(
    catalog: &mut Catalog,
    disk: &Disk,
    pool: &mut BufferPool,
    name: &str,
    rel: RelId,
) {
    let stats = analyze(disk, pool, rel, 512).unwrap();
    let histogram = Histogram::equi_depth(&stats.key_sample, 16).unwrap();
    let column = ColumnMeta::new(
        "key",
        // Distinct count from the full scan (exact in the simulator).
        stats.distinct_keys as u64,
        stats.min_key.unwrap_or(0) as f64,
        stats.max_key.unwrap_or(0) as f64,
    );
    // Keep the exact distinct count but attach the sampled histogram for
    // range estimation (with_histogram would overwrite distinct from the
    // sample, so set the field directly).
    let mut column = column;
    column.histogram = Some(histogram);
    catalog
        .register(
            TableMeta::new(name, stats.rows as u64, stats.pages as u64)
                .unwrap()
                .with_column(column),
        )
        .unwrap();
}

#[test]
fn analyze_to_execution_pipeline() {
    // 1. Generate two tables sharing a key domain.
    let mut disk = Disk::new();
    let mut rng = ChaCha8Rng::seed_from_u64(91);
    let true_sel = 2e-3;
    let domain = domain_for_selectivity(true_sel);
    let a = generate(
        &mut disk,
        &mut rng,
        &DataGenSpec {
            pages: 60,
            key_domain: domain,
        },
    );
    let b = generate(
        &mut disk,
        &mut rng,
        &DataGenSpec {
            pages: 25,
            key_domain: domain,
        },
    );

    // 2. ANALYZE both into a catalog (statistics gathering is charged I/O).
    let mut catalog = Catalog::new();
    let mut pool = BufferPool::with_capacity(8);
    register_analyzed(&mut catalog, &disk, &mut pool, "a", a);
    register_analyzed(&mut catalog, &disk, &mut pool, "b", b);
    assert_eq!(pool.counters().reads, 85, "ANALYZE scans both tables");

    // 3. Build the query purely from catalog estimates.
    let q = query_from_catalog(
        &catalog,
        &["a", "b"],
        &[JoinSpec {
            left_table: "a".into(),
            left_column: "key".into(),
            right_table: "b".into(),
            right_column: "key".into(),
        }],
        &[],
        None,
    )
    .unwrap();
    // The containment assumption says every key of the lower-distinct side
    // finds a match; on data where both sides sample sparsely from a much
    // larger key domain that is an OVER-estimate by roughly
    // domain / distinct(max side) — a classic, documented estimator bias.
    // The estimate must bracket the truth from above, within that factor.
    let est = q.predicates()[0].selectivity;
    assert!(
        est >= true_sel * 0.9,
        "estimate {est} below truth {true_sel}"
    );
    assert!(
        est <= true_sel * 15.0,
        "estimate {est} wildly above truth {true_sel}"
    );

    // 4. Optimize under an uncertain memory environment.
    let mem = Distribution::new([(5.0, 0.4), (30.0, 0.6)]).unwrap();
    let lec = alg_c::optimize(&q, &PaperCostModel, &MemoryModel::Static(mem.clone())).unwrap();
    lec.plan.validate(&q).unwrap();

    // 5. Execute the chosen plan; the realized result size tracks the
    //    *true* selectivity (the estimate is biased upward per the above,
    //    so the realized size must come in at or below it).
    let mut env = ExecMemoryEnv::draw_once(mem, 7);
    let report = execute_plan(&lec.plan, &[a, b], &mut disk, &mut env).unwrap();
    let realized_pages = disk.pages(report.output).unwrap() as f64;
    let true_pages = 60.0 * 25.0 * true_sel;
    let estimated_pages = q.result_pages(q.all());
    assert!(
        (realized_pages / true_pages - 1.0).abs() < 0.6,
        "realized {realized_pages} vs true {true_pages}"
    );
    assert!(realized_pages <= estimated_pages * 1.1);
}

#[test]
fn analyzed_histogram_estimates_ranges() {
    // The sampled histogram's range estimates track the uniform truth.
    let mut disk = Disk::new();
    let mut rng = ChaCha8Rng::seed_from_u64(92);
    let rel = generate(
        &mut disk,
        &mut rng,
        &DataGenSpec {
            pages: 40,
            key_domain: 1000,
        },
    );
    let mut pool = BufferPool::with_capacity(8);
    let stats = analyze(&disk, &mut pool, rel, 1024).unwrap();
    let h = Histogram::equi_depth(&stats.key_sample, 16).unwrap();
    // A 25%-of-domain range should have ~0.25 selectivity.
    let s = h.selectivity_range(100.0, 349.0);
    assert!((s - 0.25).abs() < 0.06, "range selectivity {s}");
}
