//! Integration tests for the expected-utility extension: the Pareto DP is
//! exact for every monotone utility; the scalar DP is exact exactly for the
//! linear utility.

use lecopt::core::pareto;
use lecopt::cost::PaperCostModel;
use lecopt::stats::Utility;
use lecopt::workload::envs;
use lecopt::workload::queries::{QueryGen, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn query(seed: u64) -> lecopt::plan::JoinQuery {
    QueryGen {
        topology: Topology::Chain,
        n: 4,
        ..QueryGen::default()
    }
    .generate(&mut ChaCha8Rng::seed_from_u64(seed))
}

#[test]
fn pareto_dp_is_exact_for_every_utility() {
    let model = PaperCostModel;
    for seed in 0..6 {
        let q = query(seed);
        let mem = envs::lognormal(300.0, 1.0, 5);
        let linear = pareto::exhaustive_utility(&q, &model, &mem, Utility::Linear).unwrap();
        let deadline = linear.cost_distribution.quantile(0.55).unwrap();
        for u in [
            Utility::Linear,
            Utility::Exponential { gamma: 1e-5 },
            Utility::Exponential { gamma: -1e-5 },
            Utility::Deadline {
                threshold: deadline,
            },
        ] {
            let p = pareto::optimize(&q, &model, &mem, u).unwrap();
            let t = pareto::exhaustive_utility(&q, &model, &mem, u).unwrap();
            assert!(
                (p.best.cost - t.best.cost).abs() <= 1e-6 * t.best.cost.abs().max(1e-12),
                "seed {seed}, {u:?}: {} vs {}",
                p.best.cost,
                t.best.cost
            );
        }
    }
}

#[test]
fn scalar_dp_sound_iff_linear() {
    let model = PaperCostModel;
    let mut nonlinear_gap = false;
    for seed in 0..25 {
        let q = query(100 + seed);
        let mem = envs::lognormal(300.0, 1.0, 5);
        // Linear: always exact.
        let s = pareto::scalar_dp(&q, &model, &mem, Utility::Linear).unwrap();
        let t = pareto::exhaustive_utility(&q, &model, &mem, Utility::Linear).unwrap();
        assert!(
            (s.best.cost - t.best.cost).abs() <= 1e-6 * t.best.cost,
            "seed {seed}: linear scalar DP must be exact"
        );
        // Deadline: never better, sometimes strictly worse.
        let deadline = t.cost_distribution.quantile(0.6).unwrap();
        let u = Utility::Deadline {
            threshold: deadline,
        };
        let su = pareto::scalar_dp(&q, &model, &mem, u).unwrap();
        let tu = pareto::exhaustive_utility(&q, &model, &mem, u).unwrap();
        assert!(su.best.cost >= tu.best.cost - 1e-12, "seed {seed}");
        if su.best.cost > tu.best.cost + 1e-9 {
            nonlinear_gap = true;
        }
    }
    assert!(nonlinear_gap, "no counterexample across 25 seeds");
}

#[test]
fn risk_preferences_order_certainty_equivalents() {
    // For the SAME plan, a risk-averse score is >= the mean, risk-seeking
    // <= the mean; and stronger aversion means a higher score.
    let model = PaperCostModel;
    let q = query(55);
    let mem = envs::lognormal(300.0, 1.2, 6);
    let plan = pareto::optimize(&q, &model, &mem, Utility::Linear).unwrap();
    let d = &plan.cost_distribution;
    let mean = d.mean();
    let averse1 = Utility::Exponential { gamma: 1e-6 }.score(d);
    let averse2 = Utility::Exponential { gamma: 1e-5 }.score(d);
    let seeking = Utility::Exponential { gamma: -1e-5 }.score(d);
    assert!(averse1 >= mean - 1e-6);
    assert!(averse2 >= averse1 - 1e-6, "{averse2} vs {averse1}");
    assert!(seeking <= mean + 1e-6);
}

#[test]
fn soundness_gate_admits_and_refuses_by_measured_algebra() {
    // The static gate must agree with what the DP-vs-exhaustive experiments
    // above demonstrate dynamically: linear → scalar DP, exponential →
    // frontier DP, deadline → refused before any DP runs.
    use lecopt::core::soundness::{self, DpAdmission};
    use lecopt::core::CoreError;

    let model = PaperCostModel;
    let q = query(7);
    let mem = envs::lognormal(300.0, 1.0, 5);

    let (linear, adm) = soundness::optimize_gated(&q, &model, &mem, Utility::Linear).unwrap();
    assert_eq!(adm, DpAdmission::ScalarExpectedCost);
    let truth = pareto::exhaustive_utility(&q, &model, &mem, Utility::Linear).unwrap();
    assert!((linear.best.cost - truth.best.cost).abs() <= 1e-6 * truth.best.cost);

    let u = Utility::Exponential { gamma: 1e-5 };
    let (averse, adm) = soundness::optimize_gated(&q, &model, &mem, u).unwrap();
    assert_eq!(adm, DpAdmission::FrontierOnly);
    let truth = pareto::exhaustive_utility(&q, &model, &mem, u).unwrap();
    assert!((averse.best.cost - truth.best.cost).abs() <= 1e-6 * truth.best.cost.abs());

    // A step utility is refused statically, with the witness and fallbacks
    // in the error — the scalar DP never gets a chance to return the
    // silently-worse plan `scalar_dp_sound_iff_linear` exhibits.
    let deadline = truth.cost_distribution.quantile(0.6).unwrap();
    let err = soundness::optimize_gated(
        &q,
        &model,
        &mem,
        Utility::Deadline {
            threshold: deadline,
        },
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::UnsoundUtility { .. }), "{err:?}");
    assert!(err.to_string().contains("exhaustive_utility"));
}
