//! Integration tests: queries with local selections, optimized end to end
//! and executed with filtered scans.

use lecopt::core::{alg_c, evaluate, MemoryModel};
use lecopt::cost::{AccessMethod, PaperCostModel};
use lecopt::exec::datagen::{domain_for_selectivity, generate, DataGenSpec};
use lecopt::exec::executor::execute_plan_with_selections;
use lecopt::exec::{Disk, ExecMemoryEnv, RelId};
use lecopt::plan::{JoinPred, JoinQuery, KeyId, Plan, Relation};
use lecopt::stats::Distribution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn selective_query() -> JoinQuery {
    JoinQuery::new(
        vec![
            Relation::new("big", 80.0, 80.0 * 64.0)
                .with_local_selectivity(0.2)
                .with_index(),
            Relation::new("small", 30.0, 30.0 * 64.0),
        ],
        vec![JoinPred {
            left: 0,
            right: 1,
            selectivity: 2e-3,
            key: KeyId(0),
        }],
        None,
    )
    .unwrap()
}

/// The optimizer chooses the index path for a selective predicate, and the
/// plan validates/executes.
#[test]
fn index_scan_chosen_for_selective_access() {
    let q = selective_query();
    let mem = MemoryModel::Static(Distribution::new([(6.0, 0.5), (40.0, 0.5)]).unwrap());
    let lec = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap();
    // The selective relation must be accessed through the index: index cost
    // 2 + 3·16 = 50 beats full-scan 80 + 16 = 96.
    let mut found_index = false;
    fn scan_methods(p: &Plan, found: &mut bool) {
        match p {
            Plan::Access { method, .. } => {
                if *method == AccessMethod::IndexScan {
                    *found = true;
                }
            }
            Plan::Join { left, right, .. } => {
                scan_methods(left, found);
                scan_methods(right, found);
            }
            Plan::Sort { input, .. } => scan_methods(input, found),
        }
    }
    scan_methods(&lec.plan, &mut found_index);
    assert!(
        found_index,
        "expected an index scan in:\n{}",
        lec.plan.explain(&q)
    );
}

/// Executing with selections: realized result size tracks the optimizer's
/// estimate, and the filtered scan's I/O appears in the total.
#[test]
fn filtered_execution_matches_size_estimates() {
    let _q = selective_query();
    let mut disk = Disk::new();
    let mut rng = ChaCha8Rng::seed_from_u64(71);
    let domain = domain_for_selectivity(2e-3);
    let base: Vec<RelId> = vec![
        generate(
            &mut disk,
            &mut rng,
            &DataGenSpec {
                pages: 80,
                key_domain: domain,
            },
        ),
        generate(
            &mut disk,
            &mut rng,
            &DataGenSpec {
                pages: 30,
                key_domain: domain,
            },
        ),
    ];
    // Execute a hash-join plan with the local filter on `big`.
    let plan = Plan::join(
        Plan::scan(0),
        Plan::scan(1),
        lecopt::cost::JoinMethod::GraceHash,
        Some(KeyId(0)),
    );
    let mut env = ExecMemoryEnv::Fixed(20);
    let report =
        execute_plan_with_selections(&plan, &base, &[0.2, 1.0], &mut disk, &mut env).unwrap();

    // Realized result rows ≈ filtered_rows(big) · rows(small) · sel.
    let got_rows = disk.tuples(report.output).unwrap() as f64;
    let expect_rows = (80.0 * 64.0 * 0.2) * (30.0 * 64.0) / domain as f64;
    assert!(
        (got_rows - expect_rows).abs() < 0.5 * expect_rows.max(8.0),
        "got {got_rows}, expected ≈{expect_rows}"
    );
    // The filtered scan read all 80 pages of `big`.
    assert!(report.total.reads >= 80);
}

/// The optimizer's expected cost for a selective plan is consistent with
/// the evaluator (the access materialization shows up in both).
#[test]
fn selective_access_costing_consistent() {
    let q = selective_query();
    let mem = MemoryModel::Static(Distribution::new([(6.0, 0.5), (40.0, 0.5)]).unwrap());
    let lec = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap();
    let phases = mem.table(q.n()).unwrap();
    let scored = evaluate::expected_cost(&q, &PaperCostModel, &lec.plan, &phases);
    assert!((lec.cost - scored).abs() <= 1e-9 * scored.max(1.0));
}

/// Misaligned selections are rejected.
#[test]
fn misaligned_selections_error() {
    let mut disk = Disk::new();
    let mut rng = ChaCha8Rng::seed_from_u64(72);
    let base = vec![generate(
        &mut disk,
        &mut rng,
        &DataGenSpec {
            pages: 4,
            key_domain: 100,
        },
    )];
    let plan = Plan::scan(0);
    let mut env = ExecMemoryEnv::Fixed(8);
    assert!(execute_plan_with_selections(&plan, &base, &[0.5, 0.5], &mut disk, &mut env).is_err());
}
