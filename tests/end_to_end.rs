//! Integration tests: the full pipeline — generate data, optimize, execute
//! in the page-level simulator, verify results and realized costs.

use lecopt::core::{alg_c, lsc, MemoryModel};
use lecopt::cost::PaperCostModel;
use lecopt::exec::datagen::{domain_for_selectivity, generate, DataGenSpec};
use lecopt::exec::ops::oracle::{multisets_equal, oracle_join};
use lecopt::exec::{execute_plan, Disk, ExecMemoryEnv, RelId};
use lecopt::plan::{JoinPred, JoinQuery, KeyId, Relation};
use lecopt::stats::Distribution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A same-key star query (the executor's supported class) with matching
/// generated data.
fn star_setup(pages: &[usize], sel: f64, seed: u64) -> (JoinQuery, Disk, Vec<RelId>) {
    let relations: Vec<Relation> = pages
        .iter()
        .enumerate()
        .map(|(i, &p)| Relation::new(format!("r{i}"), p as f64, (p * 64) as f64))
        .collect();
    let predicates: Vec<JoinPred> = (1..pages.len())
        .map(|i| JoinPred {
            left: 0,
            right: i,
            selectivity: sel,
            key: KeyId(0),
        })
        .collect();
    let query = JoinQuery::new(relations, predicates, Some(KeyId(0))).unwrap();

    let mut disk = Disk::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let domain = domain_for_selectivity(sel);
    let base: Vec<RelId> = pages
        .iter()
        .map(|&p| {
            generate(
                &mut disk,
                &mut rng,
                &DataGenSpec {
                    pages: p,
                    key_domain: domain,
                },
            )
        })
        .collect();
    (query, disk, base)
}

/// The optimizer's chosen plan must execute correctly: its result equals
/// the oracle's, fold by fold.
#[test]
fn optimized_plans_execute_correctly() {
    let (query, mut disk, base) = star_setup(&[40, 18, 10], 5e-3, 51);
    let mem = Distribution::new([(6.0, 0.4), (30.0, 0.6)]).unwrap();
    let lec = alg_c::optimize(&query, &PaperCostModel, &MemoryModel::Static(mem.clone())).unwrap();

    let mut env = ExecMemoryEnv::draw_once(mem, 99);
    let report = execute_plan(&lec.plan, &base, &mut disk, &mut env).unwrap();

    // Oracle: fold joins over the base tables in the same order the plan's
    // leaves appear (same-key joins are associative/commutative in result).
    let mut acc = oracle_join(&disk, base[0], base[1]).unwrap();
    let tmp = disk.load(acc.clone());
    acc = oracle_join(&disk, tmp, base[2]).unwrap();
    // The plan's join order may differ, which permutes payload mixing; so
    // compare sizes (payload mixing is order-sensitive by design) and keys.
    let got = disk.all_tuples(report.output).unwrap();
    assert_eq!(got.len(), acc.len());
    let mut got_keys: Vec<u64> = got.iter().map(|t| t.key).collect();
    let mut want_keys: Vec<u64> = acc.iter().map(|t| t.key).collect();
    got_keys.sort_unstable();
    want_keys.sort_unstable();
    assert_eq!(got_keys, want_keys);
}

/// When the plan's leaf order matches the oracle's fold order, payload
/// provenance must match exactly (full multiset equality).
#[test]
fn left_deep_plan_matches_oracle_provenance() {
    let (_query, mut disk, base) = star_setup(&[24, 12, 8], 4e-3, 52);
    use lecopt::cost::JoinMethod;
    use lecopt::plan::Plan;
    let plan = Plan::join(
        Plan::join(
            Plan::scan(0),
            Plan::scan(1),
            JoinMethod::GraceHash,
            Some(KeyId(0)),
        ),
        Plan::scan(2),
        JoinMethod::SortMerge,
        Some(KeyId(0)),
    );
    let mut env = ExecMemoryEnv::Fixed(12);
    let report = execute_plan(&plan, &base, &mut disk, &mut env).unwrap();
    let first = oracle_join(&disk, base[0], base[1]).unwrap();
    let tmp = disk.load(first);
    let expect = oracle_join(&disk, tmp, base[2]).unwrap();
    assert!(multisets_equal(
        disk.all_tuples(report.output).unwrap(),
        expect
    ));
}

/// Realized I/O of the LEC plan is no worse on average than the LSC plan
/// across paired samples (the paper's claim, in counted page I/Os, on a
/// three-way query).
#[test]
fn lec_realized_io_not_worse_on_star_query() {
    let (query, mut disk, base) = star_setup(&[120, 60, 30], 1e-3, 55);
    let mem = Distribution::new([(7.0, 0.35), (40.0, 0.65)]).unwrap();
    let model = PaperCostModel;
    let lec = alg_c::optimize(&query, &model, &MemoryModel::Static(mem.clone())).unwrap();
    let lsc_plan = lsc::optimize_at_mode(&query, &model, &mem).unwrap();

    let iters = 60;
    let (mut io_lec, mut io_lsc) = (0u64, 0u64);
    for i in 0..iters {
        let mut env = ExecMemoryEnv::draw_once(mem.clone(), 1000 + i);
        io_lec += execute_plan(&lec.plan, &base, &mut disk, &mut env)
            .unwrap()
            .total
            .total();
        let mut env = ExecMemoryEnv::draw_once(mem.clone(), 1000 + i);
        io_lsc += execute_plan(&lsc_plan.plan, &base, &mut disk, &mut env)
            .unwrap()
            .total
            .total();
    }
    // Allow a small modeling slack: the claim is "not meaningfully worse".
    assert!(
        io_lec as f64 <= io_lsc as f64 * 1.05,
        "LEC realized {io_lec} vs LSC {io_lsc}"
    );
}

/// Phase accounting: the executor's phase count equals the plan's
/// phase_count(), and Markov environments drive per-phase grants.
#[test]
fn phase_accounting_matches_plan_structure() {
    let (query, mut disk, base) = star_setup(&[30, 14, 9], 3e-3, 54);
    let mem = Distribution::new([(8.0, 0.5), (24.0, 0.5)]).unwrap();
    let lec = alg_c::optimize(&query, &PaperCostModel, &MemoryModel::Static(mem)).unwrap();
    let chain = lecopt::stats::MarkovChain::random_walk(vec![8.0, 16.0, 32.0], 0.8).unwrap();
    let mut env = ExecMemoryEnv::markov(chain, vec![1.0, 0.0, 0.0], 5);
    let report = execute_plan(&lec.plan, &base, &mut disk, &mut env).unwrap();
    assert_eq!(report.phases.len(), lec.plan.phase_count());
    assert_eq!(report.phases[0].memory, 8, "walk starts at the first state");
    let sum: u64 = report.phases.iter().map(|p| p.io.total()).sum();
    assert_eq!(sum, report.total.total());
}
