//! Tier-1 end-to-end coverage of the `lec-serve` subsystem through the
//! root crate's re-exports: a no-drift control (the cache converges, the
//! beliefs stay untouched) and a drift run (the detector fires, the belief
//! catalog recalibrates toward the truth, invalidated entries are
//! re-planned).

use lecopt::catalog::{Catalog, ColumnMeta, Histogram, TableMeta};
use lecopt::cost::PaperCostModel;
use lecopt::exec::PAGE_CAPACITY;
use lecopt::serve::{DriftConfig, QueryRequest, QueryService, ServeConfig};
use lecopt::stats::Distribution;
use lecopt::workload::from_catalog::{FilterSpec, JoinSpec};

/// `cust ⋈ ord` on 512 shared keys; `cust.v` over [0, 100] carries the
/// given 8-bucket mass profile.
fn catalog(hist: &[f64; 8]) -> Catalog {
    let mut c = Catalog::new();
    let values: Vec<f64> = hist
        .iter()
        .enumerate()
        .flat_map(|(b, &mass)| {
            let n = (mass * 800.0).round() as usize;
            (0..n).map(move |i| b as f64 * 12.5 + 12.5 * (i as f64 + 0.5) / n.max(1) as f64)
        })
        .collect();
    c.register(
        TableMeta::new("cust", 10 * PAGE_CAPACITY as u64, 10)
            .unwrap()
            .with_column(ColumnMeta::new("ck", 512, 0.0, 511.0))
            .with_column(
                ColumnMeta::new("v", 800, 0.0, 100.0)
                    .with_histogram(Histogram::equi_width(&values, 8).unwrap()),
            ),
    )
    .unwrap();
    c.register(
        TableMeta::new("ord", 20 * PAGE_CAPACITY as u64, 20)
            .unwrap()
            .with_column(ColumnMeta::new("ok", 512, 0.0, 511.0)),
    )
    .unwrap();
    c
}

fn request() -> QueryRequest {
    QueryRequest {
        tables: vec!["cust".into(), "ord".into()],
        joins: vec![JoinSpec {
            left_table: "cust".into(),
            left_column: "ck".into(),
            right_table: "ord".into(),
            right_column: "ok".into(),
        }],
        filters: vec![FilterSpec {
            table: "cust".into(),
            column: "v".into(),
            lo: 0.0,
            hi: 25.0,
            indexed: false,
        }],
        order_by: None,
    }
}

fn config() -> ServeConfig {
    let mut cfg = ServeConfig::new(
        vec![
            Distribution::new([(4.0, 0.6), (40.0, 0.4)]).unwrap(),
            Distribution::new([(16.0, 0.5), (80.0, 0.5)]).unwrap(),
        ],
        Distribution::new([(8.0, 0.5), (48.0, 0.5)]).unwrap(),
    );
    cfg.drift = DriftConfig {
        error_threshold: 0.5,
        min_observations: 3,
        blend: 0.8,
    };
    cfg
}

const UNIFORM: [f64; 8] = [0.125; 8];
/// ~70% of `v` below 25 (vs the believed 25%).
const HOT: [f64; 8] = [0.35, 0.35, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05];

#[test]
fn no_drift_control_converges_to_pure_hits() {
    let cat = catalog(&UNIFORM);
    let mut svc = QueryService::new(PaperCostModel, cat.clone(), cat.clone(), config()).unwrap();
    for i in 0..8 {
        let served = svc.serve(&request()).unwrap();
        assert_eq!(served.cache_hit, i > 0, "request {i}");
        assert!(served.recalibrations.is_empty(), "request {i}");
    }
    let stats = svc.stats();
    assert_eq!(stats.cache.hits, 7);
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.invalidations, 0);
    assert_eq!(svc.recalibrations(), 0);
    assert_eq!(svc.optimizer_invocations(), 1);
    assert_eq!(svc.beliefs(), &cat, "accurate beliefs must stay untouched");
}

#[test]
fn drift_recalibrates_beliefs_toward_truth() {
    let beliefs = catalog(&UNIFORM);
    let truth = catalog(&HOT);
    let believed = request_selectivity(&beliefs);
    let true_sel = request_selectivity(&truth);
    assert!(true_sel > 2.0 * believed, "fixture must actually drift");

    let mut svc = QueryService::new(PaperCostModel, beliefs, truth, config()).unwrap();
    let mut recalibrated = false;
    for _ in 0..10 {
        if !svc.serve(&request()).unwrap().recalibrations.is_empty() {
            recalibrated = true;
            break;
        }
    }
    assert!(recalibrated, "sustained estimation error must fire");
    assert!(svc.recalibrations() >= 1);
    assert!(svc.stats().cache.invalidations >= 1);

    // The recalibrated belief estimate moved most of the way to the truth.
    let after = request_selectivity(svc.beliefs());
    assert!(
        (after - true_sel).abs() < (believed - true_sel).abs() / 2.0,
        "believed {believed}, truth {true_sel}, recalibrated {after}"
    );

    // And the loop keeps serving afterwards, repopulating the cache under
    // the new beliefs.
    let served = svc.serve(&request()).unwrap();
    assert!(!served.cache_hit, "invalidated entry must re-populate");
    let again = svc.serve(&request()).unwrap();
    assert!(again.cache_hit);
}

/// The belief/truth estimate of the test request's filter.
fn request_selectivity(cat: &Catalog) -> f64 {
    lecopt::catalog::Predicate::Range {
        table: "cust".into(),
        column: "v".into(),
        lo: 0.0,
        hi: 25.0,
    }
    .estimate(cat)
    .unwrap()
}
