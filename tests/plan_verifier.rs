//! Property tests for the plan-IR static verifier (`lec_plan::verify`):
//! every optimizer in the family emits plans the verifier accepts, and
//! hand-mutated plans — wrong join key, duplicated relation, missing
//! coverage, bogus sort — are rejected with the right structured error.
//!
//! The optimizers already run these checks themselves behind
//! `debug_assertions`; this suite pins the contract from the outside so a
//! release-built optimizer cannot silently drift either.

use lecopt::core::{alg_a, alg_b, alg_c, alg_d, bushy, exhaustive, lsc, pareto, topc, MemoryModel};
use lecopt::cost::PaperCostModel;
use lecopt::plan::{verify_frontier, verify_plan, KeyId, Plan, PlanError};
use lecopt::stats::{Distribution, Utility};
use lecopt::workload::envs;
use lecopt::workload::queries::{QueryGen, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn query(topology: Topology, n: usize, seed: u64) -> lecopt::plan::JoinQuery {
    QueryGen {
        topology,
        n,
        ..QueryGen::default()
    }
    .generate(&mut ChaCha8Rng::seed_from_u64(seed))
}

fn memory() -> Distribution {
    envs::lognormal(300.0, 1.0, 5)
}

#[test]
fn every_optimizer_family_member_emits_verifiable_plans() {
    let model = PaperCostModel;
    for (topology, n) in [
        (Topology::Chain, 4),
        (Topology::Star, 5),
        (Topology::Clique, 4),
    ] {
        for seed in 0..8 {
            let q = query(topology, n, seed);
            let mem = memory();
            let static_mem = MemoryModel::Static(mem.clone());
            let phases = static_mem.table(q.n().max(2)).expect("phase table");

            let mut emitted: Vec<(&str, Plan)> = vec![(
                "lsc",
                lsc::optimize_at_mode(&q, &model, &mem).expect("lsc").plan,
            )];
            emitted.push((
                "alg_a",
                alg_a::optimize(&q, &model, &static_mem)
                    .expect("alg_a")
                    .best
                    .plan,
            ));
            emitted.push((
                "alg_b",
                alg_b::optimize(&q, &model, &static_mem, 3)
                    .expect("alg_b")
                    .best
                    .plan,
            ));
            emitted.push((
                "alg_c",
                alg_c::optimize(&q, &model, &static_mem)
                    .expect("alg_c")
                    .plan,
            ));
            let sizes = alg_d::SizeModel::certain(&q).expect("size model");
            emitted.push((
                "alg_d",
                alg_d::optimize_fast(&q, &static_mem, &sizes, alg_d::AlgDConfig::default())
                    .expect("alg_d")
                    .best
                    .plan,
            ));
            emitted.push((
                "bushy",
                bushy::optimize(&q, &model, &static_mem)
                    .expect("bushy")
                    .plan,
            ));
            emitted.push((
                "exhaustive",
                exhaustive::exhaustive_lec(&q, &model, &phases)
                    .expect("exhaustive")
                    .plan,
            ));
            let topc = topc::top_c_plans(&q, &model, mem.mode(), 3, topc::MergeStrategy::Frontier)
                .expect("topc");
            for (i, p) in topc.plans.iter().enumerate() {
                emitted.push(("topc", p.plan.clone()));
                assert!(p.cost.is_finite() && p.cost >= 0.0, "topc cost {i}");
            }
            let utility = pareto::optimize(&q, &model, &mem, Utility::Exponential { gamma: 1e-5 })
                .expect("pareto");
            emitted.push(("pareto", utility.best.plan.clone()));
            // The root frontier must itself verify: mutually nondominated,
            // finite nonnegative profiles.
            assert_eq!(
                verify_frontier(&utility.frontier_profiles),
                Ok(()),
                "{topology:?} seed {seed}: pareto frontier"
            );

            // Self-check the battery's coverage: every member of the
            // optimizer family must have contributed a plan above, so a
            // future refactor cannot silently drop one from the contract.
            let names: std::collections::BTreeSet<&str> =
                emitted.iter().map(|(name, _)| *name).collect();
            let family: std::collections::BTreeSet<&str> = [
                "lsc",
                "alg_a",
                "alg_b",
                "alg_c",
                "alg_d",
                "bushy",
                "exhaustive",
                "topc",
                "pareto",
            ]
            .into_iter()
            .collect();
            assert_eq!(
                names, family,
                "{topology:?} seed {seed}: the verifier battery must cover the whole family"
            );

            for (name, plan) in emitted {
                assert_eq!(
                    verify_plan(&plan, &q),
                    Ok(()),
                    "{topology:?} seed {seed}: {name} emitted an unverifiable plan: {plan:?}"
                );
            }
        }
    }
}

/// Flips the key declared on the topmost join node.
fn corrupt_join_key(plan: &Plan) -> Plan {
    match plan {
        Plan::Join {
            left,
            right,
            method,
            key,
        } => Plan::Join {
            left: left.clone(),
            right: right.clone(),
            method: *method,
            key: match key {
                Some(_) => None,
                None => Some(KeyId(0)),
            },
        },
        Plan::Sort { input, key } => Plan::Sort {
            input: Box::new(corrupt_join_key(input)),
            key: *key,
        },
        access => access.clone(),
    }
}

/// Replaces the leftmost leaf's relation with `rel` (duplicating one that
/// already occurs elsewhere in the tree).
fn replace_leftmost_leaf(plan: &Plan, rel: usize) -> Plan {
    match plan {
        Plan::Access { method, .. } => Plan::Access {
            rel,
            method: *method,
        },
        Plan::Join {
            left,
            right,
            method,
            key,
        } => Plan::Join {
            left: Box::new(replace_leftmost_leaf(left, rel)),
            right: right.clone(),
            method: *method,
            key: *key,
        },
        Plan::Sort { input, key } => Plan::Sort {
            input: Box::new(replace_leftmost_leaf(input, rel)),
            key: *key,
        },
    }
}

/// The root's left subtree: a plan that misses at least one relation.
fn drop_to_left_subtree(plan: &Plan) -> Plan {
    match plan {
        Plan::Join { left, .. } => (**left).clone(),
        Plan::Sort { input, .. } => drop_to_left_subtree(input),
        access => access.clone(),
    }
}

#[test]
fn mutated_plans_are_rejected() {
    let model = PaperCostModel;
    for seed in 0..10 {
        let q = query(Topology::Chain, 4, 200 + seed);
        let good = alg_c::optimize(&q, &model, &MemoryModel::Static(memory()))
            .expect("alg_c")
            .plan;
        assert_eq!(verify_plan(&good, &q), Ok(()));

        // Wrong (or dropped) join key at the root.
        let bad_key = corrupt_join_key(&good);
        assert!(
            matches!(
                verify_plan(&bad_key, &q),
                Err(PlanError::JoinKeyMismatch { .. })
            ),
            "seed {seed}: corrupted key accepted"
        );

        // A relation appearing twice: duplicate or coverage error, never Ok.
        // Pick a replacement different from the current leftmost leaf so the
        // mutation is never a no-op.
        let leftmost = {
            fn leftmost_rel(p: &Plan) -> usize {
                match p {
                    Plan::Access { rel, .. } => *rel,
                    Plan::Join { left, .. } => leftmost_rel(left),
                    Plan::Sort { input, .. } => leftmost_rel(input),
                }
            }
            leftmost_rel(&good)
        };
        let duped = replace_leftmost_leaf(&good, (leftmost + 1) % q.n());
        assert!(
            matches!(
                verify_plan(&duped, &q),
                Err(PlanError::DuplicateRelation(_))
                    | Err(PlanError::CoverageMismatch { .. })
                    | Err(PlanError::JoinKeyMismatch { .. })
            ),
            "seed {seed}: duplicated relation accepted: {:?}",
            verify_plan(&duped, &q)
        );

        // A plan that covers a strict subset of the relations.
        let partial = drop_to_left_subtree(&good);
        assert!(
            matches!(
                verify_plan(&partial, &q),
                Err(PlanError::CoverageMismatch { .. })
            ),
            "seed {seed}: partial coverage accepted"
        );

        // A sort on a key no predicate defines.
        let bogus_sort = Plan::sort(good.clone(), KeyId(97));
        assert_eq!(
            verify_plan(&bogus_sort, &q),
            Err(PlanError::UnknownOrderKey(97)),
            "seed {seed}: bogus sort key accepted"
        );
    }
}

#[test]
fn verifier_accepts_required_order_completions() {
    // Ordered queries exercise the sort/ordered-root completion paths in
    // every finalize; the emitted plan must still verify.
    let model = PaperCostModel;
    for seed in 0..6 {
        let base = query(Topology::Chain, 4, 400 + seed);
        let key = base.predicates()[0].key;
        let q = lecopt::plan::JoinQuery::new(
            base.relations().to_vec(),
            base.predicates().to_vec(),
            Some(key),
        )
        .expect("ordered query");
        let mem = MemoryModel::Static(memory());
        let plan = alg_c::optimize(&q, &model, &mem).expect("alg_c").plan;
        assert_eq!(verify_plan(&plan, &q), Ok(()), "seed {seed}");
        let bushy_plan = bushy::optimize(&q, &model, &mem).expect("bushy").plan;
        assert_eq!(verify_plan(&bushy_plan, &q), Ok(()), "seed {seed} bushy");
    }
}
