//! Integration tests: every theorem and proposition in the paper, checked
//! through the public facade against brute force.

use lecopt::core::topc::{frontier_bound, frontier_merge, top_c_plans, MergeStrategy};
use lecopt::core::{alg_a, alg_b, alg_c, evaluate, exhaustive, lsc, MemoryModel};
use lecopt::cost::PaperCostModel;
use lecopt::stats::{Distribution, MarkovChain};
use lecopt::workload::queries::{QueryGen, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn query(n: usize, seed: u64, topology: Topology) -> lecopt::plan::JoinQuery {
    QueryGen {
        topology,
        n,
        ..QueryGen::default()
    }
    .generate(&mut ChaCha8Rng::seed_from_u64(seed))
}

fn spread() -> Distribution {
    Distribution::new([(18.0, 0.25), (120.0, 0.4), (700.0, 0.2), (4000.0, 0.15)]).unwrap()
}

/// Theorem 2.1: System R DP = least specific cost among left-deep plans.
#[test]
fn theorem_2_1_lsc_optimality() {
    for seed in 0..6 {
        for topology in [Topology::Chain, Topology::Star] {
            let q = query(4, seed, topology);
            for memory in [25.0, 300.0, 2500.0] {
                let opt = lsc::optimize_at(&q, &PaperCostModel, memory).unwrap();
                let best = exhaustive::enumerate_left_deep(&q)
                    .iter()
                    .map(|p| evaluate::plan_cost_at(&q, &PaperCostModel, p, memory))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    (opt.cost - best).abs() <= 1e-6 * best,
                    "seed {seed} {topology:?} M={memory}: {} vs {best}",
                    opt.cost
                );
            }
        }
    }
}

/// Theorem 3.3: Algorithm C = least expected cost among left-deep plans.
#[test]
fn theorem_3_3_lec_optimality_static() {
    for seed in 0..6 {
        let q = query(4, 100 + seed, Topology::Chain);
        let mem = MemoryModel::Static(spread());
        let lec = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap();
        let phases = mem.table(q.n()).unwrap();
        let truth = exhaustive::exhaustive_lec(&q, &PaperCostModel, &phases).unwrap();
        assert!(
            (lec.cost - truth.cost).abs() <= 1e-6 * truth.cost,
            "seed {seed}: {} vs {}",
            lec.cost,
            truth.cost
        );
    }
}

/// Theorem 3.4: Algorithm C stays exact with Markov-dynamic memory.
#[test]
fn theorem_3_4_lec_optimality_dynamic() {
    for seed in 0..4 {
        let q = query(4, 200 + seed, Topology::Chain);
        let chain = MarkovChain::random_walk(vec![20.0, 150.0, 1200.0], 0.5).unwrap();
        let mem = MemoryModel::dynamic(chain, vec![0.3, 0.4, 0.3]).unwrap();
        let lec = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap();
        let phases = mem.table(q.n()).unwrap();
        let truth = exhaustive::exhaustive_lec(&q, &PaperCostModel, &phases).unwrap();
        assert!(
            (lec.cost - truth.cost).abs() <= 1e-6 * truth.cost,
            "seed {seed}: {} vs {}",
            lec.cost,
            truth.cost
        );
    }
}

/// Contribution 1: the LEC plan is at least as good, in expectation, as the
/// plan chosen for ANY specific parameter value — and the algorithm family
/// is totally ordered: C ≤ B ≤ A ≤ LSC summaries.
#[test]
fn lec_dominates_every_specific_choice() {
    for seed in 0..8 {
        let q = query(5, 300 + seed, Topology::Chain);
        let dist = spread();
        let mem = MemoryModel::Static(dist.clone());
        let phases = mem.table(q.n()).unwrap();
        let c = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap();
        let b = alg_b::optimize(&q, &PaperCostModel, &mem, 4).unwrap();
        let a = alg_a::optimize(&q, &PaperCostModel, &mem).unwrap();
        let tol = 1e-9 * c.cost.max(1.0);
        assert!(c.cost <= b.best.cost + tol, "seed {seed}");
        assert!(b.best.cost <= a.best.cost + tol, "seed {seed}");
        for &m in dist.values() {
            let specific = lsc::optimize_at(&q, &PaperCostModel, m).unwrap();
            let e = evaluate::expected_cost(&q, &PaperCostModel, &specific.plan, &phases);
            assert!(a.best.cost <= e + tol, "seed {seed}, m {m}");
        }
    }
}

/// §3.7: one bucket reduces every LEC algorithm to the standard optimizer.
#[test]
fn one_bucket_degenerates_to_system_r() {
    for seed in 0..4 {
        let q = query(5, 400 + seed, Topology::Chain);
        for m in [30.0, 500.0] {
            let mem = MemoryModel::Static(Distribution::point(m).unwrap());
            let lec = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap();
            let std = lsc::optimize_at(&q, &PaperCostModel, m).unwrap();
            assert_eq!(lec.plan, std.plan, "seed {seed}, m {m}");
        }
    }
}

/// Proposition 3.1, both halves: the frontier merge is exact and within
/// the `c + c·ln c` bound, at the DP level and at the primitive level.
#[test]
fn proposition_3_1_frontier() {
    // Primitive level.
    let left: Vec<f64> = (0..48).map(|i| 1.5 * (i * i) as f64).collect();
    let right: Vec<f64> = (0..48).map(|i| 11.0 * i as f64 + 2.0).collect();
    for c in [2usize, 5, 13, 48] {
        let (fast, examined) = frontier_merge(&left, &right, c);
        let mut naive: Vec<f64> = left
            .iter()
            .flat_map(|l| right.iter().map(move |r| l + r))
            .collect();
        naive.sort_by(f64::total_cmp);
        naive.truncate(c);
        assert_eq!(fast, naive, "c = {c}");
        assert!(examined as f64 <= frontier_bound(c) + 1e-9);
    }
    // DP level: frontier and naive top-c DP agree.
    let q = query(4, 777, Topology::Chain);
    for c in [2usize, 6] {
        let f = top_c_plans(&q, &PaperCostModel, 90.0, c, MergeStrategy::Frontier).unwrap();
        let n = top_c_plans(&q, &PaperCostModel, 90.0, c, MergeStrategy::Naive).unwrap();
        let fc: Vec<f64> = f.plans.iter().map(|p| p.cost).collect();
        let nc: Vec<f64> = n.plans.iter().map(|p| p.cost).collect();
        for (a, b) in fc.iter().zip(&nc) {
            assert!((a - b).abs() < 1e-9 * a.max(1.0));
        }
    }
}

/// The dynamic-parameter accounting: expected cost via per-phase marginals
/// equals the expectation over explicit memory sequences (§3.5's
/// `b_M^{n-1}` space), by linearity of expectation.
#[test]
fn sequence_space_equals_marginal_accounting() {
    let q = query(4, 888, Topology::Chain);
    let chain = MarkovChain::random_walk(vec![15.0, 90.0, 650.0], 0.7).unwrap();
    let initial = [0.5, 0.3, 0.2];
    let mem = MemoryModel::dynamic(chain.clone(), initial.to_vec()).unwrap();
    for plan in exhaustive::enumerate_left_deep(&q).into_iter().take(40) {
        let phases_n = plan.phase_count();
        let table = mem.table(phases_n).unwrap();
        let by_marginals = evaluate::expected_cost(&q, &PaperCostModel, &plan, &table);
        let by_sequences: f64 = chain
            .enumerate_sequences(&initial, phases_n)
            .into_iter()
            .map(|(seq, p)| {
                let mems: Vec<f64> = seq.iter().map(|&i| chain.states()[i]).collect();
                p * evaluate::plan_cost_phased(&q, &PaperCostModel, &plan, &mut |k| mems[k])
            })
            .sum();
        assert!(
            (by_marginals - by_sequences).abs() <= 1e-6 * by_sequences.max(1.0),
            "{by_marginals} vs {by_sequences}"
        );
    }
}
