//! Cross-crate property tests: optimizer invariants over randomized
//! queries and environments.

use lecopt::core::{alg_b, alg_c, bucketing, evaluate, exhaustive, lsc, MemoryModel};
use lecopt::cost::{DetailedCostModel, PaperCostModel};
use lecopt::stats::Distribution;
use lecopt::workload::queries::{QueryGen, Topology};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_query() -> impl Strategy<Value = lecopt::plan::JoinQuery> {
    (2usize..=4, any::<u64>(), prop::bool::ANY).prop_map(|(n, seed, order)| {
        QueryGen {
            topology: Topology::Chain,
            n,
            require_order: order,
            ..QueryGen::default()
        }
        .generate(&mut ChaCha8Rng::seed_from_u64(seed))
    })
}

fn arb_memory() -> impl Strategy<Value = Distribution> {
    prop::collection::vec((4.0f64..5000.0, 0.05f64..1.0), 1..=5)
        .prop_map(|pts| Distribution::from_weights(pts).expect("positive weights"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm C's reported cost always equals the evaluator's score of
    /// its plan, and is a lower bound on every enumerated left-deep plan.
    #[test]
    fn alg_c_exact_and_self_consistent(q in arb_query(), mem in arb_memory()) {
        let model = PaperCostModel;
        let mm = MemoryModel::Static(mem);
        let lec = alg_c::optimize(&q, &model, &mm).unwrap();
        let phases = mm.table(q.n()).unwrap();
        let scored = evaluate::expected_cost(&q, &model, &lec.plan, &phases);
        prop_assert!((lec.cost - scored).abs() <= 1e-6 * scored.max(1.0));
        for plan in exhaustive::enumerate_left_deep(&q) {
            let e = evaluate::expected_cost(&q, &model, &plan, &phases);
            prop_assert!(lec.cost <= e + 1e-6 * e.max(1.0));
        }
    }

    /// The same optimality, under the detailed (textbook) cost model —
    /// Algorithm C is model-agnostic.
    #[test]
    fn alg_c_optimal_under_detailed_model(q in arb_query(), mem in arb_memory()) {
        let model = DetailedCostModel;
        let mm = MemoryModel::Static(mem);
        let lec = alg_c::optimize(&q, &model, &mm).unwrap();
        let phases = mm.table(q.n()).unwrap();
        for plan in exhaustive::enumerate_left_deep(&q) {
            let e = evaluate::expected_cost(&q, &model, &plan, &phases);
            prop_assert!(lec.cost <= e + 1e-6 * e.max(1.0));
        }
    }

    /// Monotonicity of the family: C ≤ B(c) ≤ B(1) = A.
    #[test]
    fn family_ordering(q in arb_query(), mem in arb_memory(), c in 2usize..6) {
        let model = PaperCostModel;
        let mm = MemoryModel::Static(mem);
        let cc = alg_c::optimize(&q, &model, &mm).unwrap();
        let bc = alg_b::optimize(&q, &model, &mm, c).unwrap();
        let b1 = alg_b::optimize(&q, &model, &mm, 1).unwrap();
        prop_assert!(cc.cost <= bc.best.cost + 1e-9 * cc.cost.max(1.0));
        prop_assert!(bc.best.cost <= b1.best.cost + 1e-9 * cc.cost.max(1.0));
    }

    /// Level-set bucketing never changes Algorithm C's answer.
    #[test]
    fn level_set_bucketing_lossless(q in arb_query(), mem in arb_memory()) {
        let model = PaperCostModel;
        let coarse = bucketing::bucketize_memory(&q, &model, &mem).unwrap();
        let fine_res = alg_c::optimize(&q, &model, &MemoryModel::Static(mem)).unwrap();
        let coarse_res = alg_c::optimize(&q, &model, &MemoryModel::Static(coarse)).unwrap();
        prop_assert!(
            (fine_res.cost - coarse_res.cost).abs() <= 1e-6 * fine_res.cost.max(1.0),
            "{} vs {}", fine_res.cost, coarse_res.cost
        );
    }

    /// The chosen plan always satisfies the query's order requirement.
    #[test]
    fn required_order_always_satisfied(q in arb_query(), mem in arb_memory()) {
        let lec = alg_c::optimize(&q, &PaperCostModel, &MemoryModel::Static(mem)).unwrap();
        if let Some(k) = q.required_order() {
            prop_assert_eq!(lec.plan.output_order(), Some(k));
        }
        lec.plan.validate(&q).unwrap();
        prop_assert!(lec.plan.is_left_deep());
    }

    /// LSC at any specific value is lower-bounded by LEC in expectation,
    /// and plan costs are monotone non-increasing in memory.
    #[test]
    fn lsc_cost_monotone_in_memory(q in arb_query(), m1 in 4.0f64..5000.0, m2 in 4.0f64..5000.0) {
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        let model = PaperCostModel;
        let cheap_hi = lsc::optimize_at(&q, &model, hi).unwrap();
        let cheap_lo = lsc::optimize_at(&q, &model, lo).unwrap();
        prop_assert!(cheap_hi.cost <= cheap_lo.cost + 1e-9 * cheap_lo.cost.max(1.0));
    }
}
