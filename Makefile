# Developer entry points. `make verify` is the tier-1 gate the CI driver
# runs; the others are the fast local loops.

.PHONY: verify test bench-smoke lint lint-strict xtable ci

# Tier-1: release build + full test suite (what must never regress).
verify:
	cargo build --release
	cargo test -q

test:
	cargo test --workspace

# Compile and run every Criterion bench once in test mode (no measurement).
bench-smoke:
	cargo bench --workspace -- --test

lint:
	cargo clippy --workspace --all-targets -- -D warnings

# Project-specific lint pass (lec-lint): determinism/soundness rules over
# all workspace sources, unwrap ratchet enforced, machine-readable
# diagnostics left in results/LINT.json.
lint-strict:
	mkdir -p results
	cargo run --release -p lec-analyze --bin lec-lint -- --strict --json results/LINT.json

# Regenerate every experiment table (and results/BENCH_parallel.json).
xtable:
	cargo run --release -p lec-bench --bin xtable all

# Full local CI gate: formatting, lints, the whole test suite (unit +
# integration + doc-tests), and X19/X20 smoke runs that must leave
# well-formed results/BENCH_stats.json and results/BENCH_serve.json behind
# (X20 additionally self-asserts the control-run closed forms and the
# drift-recovery bounds).
ci:
	cargo fmt --all -- --check
	cargo clippy --workspace --all-targets -- -D warnings
	$(MAKE) lint-strict
	test -s results/LINT.json
	cargo test -q --workspace
	cargo test -q --workspace --doc
	cargo run --release -p lec-bench --bin xtable x19 > /dev/null
	test -s results/BENCH_stats.json
	grep -q '"experiment": "x19_stats"' results/BENCH_stats.json
	cargo run --release -p lec-bench --bin xtable x20 > /dev/null
	test -s results/BENCH_serve.json
	grep -q '"experiment": "x20_serve"' results/BENCH_serve.json
