# Developer entry points. `make verify` is the tier-1 gate the CI driver
# runs; the others are the fast local loops.

.PHONY: verify test bench-smoke lint xtable

# Tier-1: release build + full test suite (what must never regress).
verify:
	cargo build --release
	cargo test -q

test:
	cargo test --workspace

# Compile and run every Criterion bench once in test mode (no measurement).
bench-smoke:
	cargo bench --workspace -- --test

lint:
	cargo clippy --workspace --all-targets -- -D warnings

# Regenerate every experiment table (and results/BENCH_parallel.json).
xtable:
	cargo run --release -p lec-bench --bin xtable all
