# Developer entry points. `make verify` is the tier-1 gate the CI driver
# runs; the others are the fast local loops.

.PHONY: verify test bench-smoke lint lint-strict xtable fault-smoke kernel-smoke serve-concurrent-smoke rules-smoke sampling-smoke ci

# Tier-1: release build + full test suite (what must never regress).
verify:
	cargo build --release
	cargo test -q

test:
	cargo test --workspace

# Compile and run every Criterion bench once in test mode (no measurement).
bench-smoke:
	cargo bench --workspace -- --test

lint:
	cargo clippy --workspace --all-targets -- -D warnings

# Project-specific lint pass (lec-lint): determinism/soundness rules over
# all workspace sources, plus the call-graph audit passes (lec-audit:
# panic-reachability, concurrency-determinism, float-order, invariant
# conformance — DESIGN.md §10), ratchets enforced, machine-readable
# diagnostics left in results/LINT.json.
lint-strict:
	mkdir -p results
	cargo run --release -p lec-analyze --bin lec-lint -- --strict --audit --json results/LINT.json

# Regenerate every experiment table (and results/BENCH_parallel.json).
xtable:
	cargo run --release -p lec-bench --bin xtable all

# Fault-injection smoke: run X21 (which self-asserts its closed-form
# counters, the frontier-before-LSC ladder ordering, and bit-identical
# replay in-process) and check the machine-readable artifact landed.
fault-smoke:
	cargo run --release -p lec-bench --bin xtable x21 > /dev/null
	test -s results/BENCH_faults.json
	grep -q '"experiment": "x21_faults"' results/BENCH_faults.json
	grep -q '"every_request_served": true' results/BENCH_faults.json
	grep -q '"frontier_before_lsc": true' results/BENCH_faults.json

# Kernel/parallel smoke: re-run X18 and check the machine-readable
# trajectory has the forced multi-thread rows and the serial-speedup
# block the kernel rewrite is judged by.
kernel-smoke:
	cargo run --release -p lec-bench --bin xtable x18 > /dev/null
	test -s results/BENCH_parallel.json
	grep -q '"experiment": "x18_parallel"' results/BENCH_parallel.json
	grep -q '"threads": 2' results/BENCH_parallel.json
	grep -q '"threads": 4' results/BENCH_parallel.json
	grep -q '"effective_threads"' results/BENCH_parallel.json
	grep -q '"rank_wall_ns"' results/BENCH_parallel.json
	grep -q '"serial_speedup"' results/BENCH_parallel.json
	grep -q '"min_speedup"' results/BENCH_parallel.json
	grep -q '"self_asserted": true' results/BENCH_parallel.json
	grep -q '"optimized_build": true' results/BENCH_parallel.json

# Concurrent-serving smoke: run X22 on a short stream (X22_REQUESTS
# redirects the artifact to the _smoke file, so the committed full-length
# BENCH_serve_concurrent.json is never overwritten here) and check the
# self-assertion markers landed. X22 itself asserts the ≥2x batched
# speedup floors, in-window dedup, and the 1-worker/window-1 replay's
# counter identity with the sequential loop before writing anything.
serve-concurrent-smoke:
	X22_REQUESTS=4000 cargo run --release -p lec-bench --bin xtable x22 > /dev/null
	test -s results/BENCH_serve_concurrent_smoke.json
	grep -q '"experiment": "x22_serve_concurrent"' results/BENCH_serve_concurrent_smoke.json
	grep -q '"self_asserted": true' results/BENCH_serve_concurrent_smoke.json
	grep -q '"min_speedup"' results/BENCH_serve_concurrent_smoke.json
	grep -q '"workers": 4' results/BENCH_serve_concurrent_smoke.json

# Selection-rule smoke: run X23 (which self-asserts LEC bit-identity to
# alg_c, the LEC-rule serve stream's bit-identity to the default config,
# minmax's worst-case-regret dominance, and at least one strict robust
# win before writing anything) and check the artifact markers landed.
rules-smoke:
	cargo run --release -p lec-bench --bin xtable x23 > /dev/null
	test -s results/BENCH_rules.json
	grep -q '"experiment": "x23_rules"' results/BENCH_rules.json
	grep -q '"self_asserted": true' results/BENCH_rules.json
	grep -q '"least-expected-cost"' results/BENCH_rules.json
	grep -q '"minmax-regret"' results/BENCH_rules.json
	grep -q '"penalty-aware"' results/BENCH_rules.json
	grep -q '"tail-risk"' results/BENCH_rules.json
	grep -q '"worst_case_regret"' results/BENCH_rules.json
	grep -q '"p99_degradation"' results/BENCH_rules.json
	grep -q '"optimized_build": true' results/BENCH_rules.json

# Sampling/certificate smoke: run X24 at a reduced draw count (X24_DRAWS
# routes the artifact to the gitignored _smoke file, so the committed
# full-draw BENCH_sampling.json is never overwritten here) and check the
# self-assertion markers landed. X24 itself asserts per-env certificate
# soundness (truth-in-box ⇒ the (ε, δ) bound holds) and per-group
# validity ≥ 1−δ before writing anything; only the full-draw tightness
# assert is skipped in smoke mode.
sampling-smoke:
	X24_DRAWS=256 cargo run --release -p lec-bench --bin xtable x24 > /dev/null
	test -s results/BENCH_sampling_smoke.json
	grep -q '"experiment": "x24_sampling"' results/BENCH_sampling_smoke.json
	grep -q '"self_asserted": true' results/BENCH_sampling_smoke.json
	grep -q '"certificate_validity"' results/BENCH_sampling_smoke.json
	grep -q '"optimized_build": true' results/BENCH_sampling_smoke.json

# Full local CI gate: formatting, lints, the whole test suite (unit +
# integration + doc-tests), and X18–X24 smoke runs that must leave
# well-formed results/BENCH_stats.json, results/BENCH_serve.json, and
# results/BENCH_faults.json behind (X20 self-asserts the control-run
# closed forms and the drift-recovery bounds; X21 self-asserts the
# fault-run closed forms, ladder ordering, and bit-identical replay).
ci:
	cargo fmt --all -- --check
	cargo clippy --workspace --all-targets -- -D warnings
	$(MAKE) lint-strict
	test -s results/LINT.json
	grep -q '"audit"' results/LINT.json
	grep -q '"serve_roots": 0' results/LINT.json
	grep -q '"sample_roots": 0' results/LINT.json
	grep -q '"certify_roots": 0' results/LINT.json
	cargo test -q --workspace
	cargo test -q --workspace --doc
	cargo run --release -p lec-bench --bin xtable x19 > /dev/null
	test -s results/BENCH_stats.json
	grep -q '"experiment": "x19_stats"' results/BENCH_stats.json
	cargo run --release -p lec-bench --bin xtable x20 > /dev/null
	test -s results/BENCH_serve.json
	grep -q '"experiment": "x20_serve"' results/BENCH_serve.json
	$(MAKE) fault-smoke
	$(MAKE) kernel-smoke
	$(MAKE) serve-concurrent-smoke
	$(MAKE) rules-smoke
	$(MAKE) sampling-smoke
