//! `lec-lint` — run the workspace lint pass.
//!
//! ```text
//! lec-lint [--root <dir>] [--json <out.json>] [--strict] [--audit] [--update-ratchet] [--quiet]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use lec_analyze::diag::Status;
use lec_analyze::{run, update_ratchet, RunOptions};

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    strict: bool,
    audit: bool,
    update: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: None,
        strict: false,
        audit: false,
        update: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a value")?));
            }
            "--strict" => args.strict = true,
            "--audit" => args.audit = true,
            "--update-ratchet" => args.update = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "lec-lint: workspace lint pass\n\n\
                     USAGE: lec-lint [--root <dir>] [--json <out.json>] [--strict] [--audit] \
                     [--update-ratchet] [--quiet]\n\n\
                     --root           workspace root to scan (default: .)\n\
                     --json           write the JSON diagnostics artifact here\n\
                     --strict         missing ratchet file / stale budgets are violations\n\
                     --audit          run the call-graph audit passes (lec-audit)\n\
                     --update-ratchet tighten lint-ratchet.toml to current actuals (lower-only)\n\
                     --quiet          suppress per-diagnostic output"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lec-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = RunOptions {
        strict: args.strict,
        audit: args.audit,
        ..RunOptions::new(&args.root)
    };

    if args.update {
        return match update_ratchet(&opts) {
            Ok(()) => {
                println!(
                    "lec-lint: ratchet tightened at {}",
                    opts.ratchet_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("lec-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lec-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("lec-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !args.quiet {
        for d in &report.diagnostics {
            if d.status != Status::Ratcheted {
                println!("{d}");
            }
        }
    }
    let violations = report.violation_count();
    let allowed = report
        .diagnostics
        .iter()
        .filter(|d| matches!(d.status, Status::Allowed { .. }))
        .count();
    let ratcheted = report
        .diagnostics
        .iter()
        .filter(|d| d.status == Status::Ratcheted)
        .count();
    println!(
        "lec-lint: {} files, {} violation(s), {} allowed by pragma, {} within ratchet budget",
        report.files_scanned, violations, allowed, ratcheted
    );
    if let Some(a) = &report.audit {
        println!(
            "lec-audit: panic-reachability serve={} optimize={} sample={} certify={} \
             (allowed {}, ratcheted {}), \
             concurrency-determinism {}, float-order {}, invariant-conformance {}",
            a.serve_roots,
            a.optimize_roots,
            a.sample_roots,
            a.certify_roots,
            a.panic_allowed,
            a.panic_ratcheted,
            a.concurrency.violations,
            a.float_order.violations,
            a.invariants.violations
        );
    }
    if violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
