//! `lec-analyze`: the workspace's static-analysis layer (Layer 1).
//!
//! This crate hosts `lec-lint`, a dependency-free, lexer-based lint pass over
//! all workspace sources. It enforces the repo-specific invariants that the
//! compiler cannot see and that the paper's guarantees rest on — determinism
//! of the optimizer/serve paths, exact (epsilon-free) dominance, and honest
//! error handling in library code. See DESIGN.md §7 for the rule catalog and
//! `rules` for the per-rule scopes. Checked-in bench artifacts are linted
//! too (`artifacts`): a `results/BENCH_*.json` claiming a speedup must
//! carry the self-assertion markers its experiment verified before writing.
//!
//! The companion Layer 2 — the plan-IR verifier and utility-soundness gate —
//! lives in `lec-plan::verify` and `lec-core::soundness`; this crate checks
//! the *source text*, those check the *emitted plans*.

pub mod artifacts;
pub mod audit;
pub mod callgraph;
pub mod diag;
pub mod items;
pub mod lexer;
pub mod pragma;
pub mod ratchet;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use diag::{Diagnostic, Status};
use ratchet::Ratchet;

/// Options for one lint run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Path of the ratchet file (normally `<root>/lint-ratchet.toml`).
    pub ratchet_path: PathBuf,
    /// Strict mode: a missing ratchet file and stale (over-generous) budgets
    /// are violations, not notes. `make lint-strict` runs with this on.
    pub strict: bool,
    /// Run the call-graph audit passes (`lec-audit`) in addition to the
    /// token rules. See `audit` for the pass catalog.
    pub audit: bool,
}

impl RunOptions {
    /// Defaults rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        let ratchet_path = root.join("lint-ratchet.toml");
        Self {
            root,
            ratchet_path,
            strict: false,
            audit: false,
        }
    }
}

/// Outcome of a lint run.
#[derive(Debug)]
pub struct Report {
    /// All diagnostics (violations, pragma-allowed, ratcheted), sorted by
    /// file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Ratchet table rows: `(file, actual, budget)`.
    pub ratchet_entries: Vec<(String, usize, usize)>,
    /// Audit pass summary (present when the run had `audit: true`).
    pub audit: Option<audit::AuditSummary>,
}

impl Report {
    /// Count of hard violations (what decides the exit code).
    pub fn violation_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.status == Status::Violation)
            .count()
    }

    /// Render as JSON (the `results/LINT.json` artifact).
    pub fn to_json(&self) -> String {
        let audit_json = self.audit.as_ref().map(|a| a.to_json());
        diag::report_to_json(
            &self.diagnostics,
            self.files_scanned,
            &self.ratchet_entries,
            audit_json.as_deref(),
        )
    }
}

/// Directories never descended into, relative to the workspace root.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "results", "crates/analyze/tests/fixtures"];

/// Collect every `.rs` file under `root`, sorted, as workspace-relative
/// forward-slash paths. Deterministic regardless of filesystem order.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if path.is_dir() {
                if SKIP_DIRS.contains(&rel.as_str()) {
                    continue;
                }
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Run the lint pass over the workspace.
pub fn run(opts: &RunOptions) -> Result<Report, String> {
    let ratchet = match std::fs::read_to_string(&opts.ratchet_path) {
        Ok(text) => Ratchet::parse(&text).map_err(|e| e.to_string())?,
        Err(_) if opts.strict => {
            return Err(format!(
                "strict mode requires the ratchet file at {}",
                opts.ratchet_path.display()
            ));
        }
        Err(_) => Ratchet::default(),
    };

    let files = collect_sources(&opts.root).map_err(|e| format!("scan failed: {e}"))?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    let mut diagnostics = Vec::new();
    for rel in &files {
        let source =
            std::fs::read_to_string(opts.root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        diagnostics.extend(rules::lint_source(rel, &source));
        sources.push((rel.clone(), source));
    }

    // Bench artifacts are checked too: a checked-in speedup claim must
    // carry the self-assertion markers its experiment verified.
    let artifact_files = artifacts::collect_artifacts(&opts.root)
        .map_err(|e| format!("artifact scan failed: {e}"))?;
    for rel in &artifact_files {
        let text =
            std::fs::read_to_string(opts.root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        diagnostics.extend(artifacts::lint_artifact(rel, &text));
    }

    let ratchet_entries = apply_ratchet(&mut diagnostics, &ratchet, opts.strict);

    // Call-graph audit passes (panic-reachability, concurrency-determinism,
    // float-order, invariant conformance) over the same source set.
    let audit_summary = if opts.audit {
        let ws = callgraph::Workspace::build(&sources);
        let outcome = audit::run_audit(&ws, &ratchet);
        diagnostics.extend(outcome.diagnostics);
        Some(outcome.summary)
    } else {
        None
    };

    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report {
        diagnostics,
        files_scanned: files.len(),
        ratchet_entries,
        audit: audit_summary,
    })
}

/// Current per-file actual counts for the ratcheted rule (violations only —
/// pragma-allowed hits do not consume budget).
pub fn unwrap_actuals(diagnostics: &[Diagnostic]) -> BTreeMap<String, usize> {
    let mut actuals: BTreeMap<String, usize> = BTreeMap::new();
    for d in diagnostics {
        if d.rule == rules::NO_UNWRAP_IN_LIB
            && matches!(d.status, Status::Violation | Status::Ratcheted)
        {
            *actuals.entry(d.file.clone()).or_default() += 1;
        }
    }
    actuals
}

fn apply_ratchet(
    diagnostics: &mut Vec<Diagnostic>,
    ratchet: &Ratchet,
    strict: bool,
) -> Vec<(String, usize, usize)> {
    let actuals = unwrap_actuals(diagnostics);

    // Within-budget files: convert their unwrap violations to Ratcheted.
    for d in diagnostics.iter_mut() {
        if d.rule != rules::NO_UNWRAP_IN_LIB || d.status != Status::Violation {
            continue;
        }
        let actual = actuals.get(&d.file).copied().unwrap_or(0);
        if let Some(budget) = ratchet.budget(rules::NO_UNWRAP_IN_LIB, &d.file) {
            if actual <= budget {
                d.status = Status::Ratcheted;
            }
        }
    }

    // Files over budget get one summary violation on top of the per-hit ones.
    let mut entries: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (file, &actual) in &actuals {
        let budget = ratchet.budget(rules::NO_UNWRAP_IN_LIB, file).unwrap_or(0);
        entries.insert(file.clone(), (actual, budget));
        if actual > budget {
            diagnostics.push(Diagnostic {
                file: file.clone(),
                line: 1,
                rule: rules::NO_UNWRAP_IN_LIB,
                message: format!(
                    "ratchet exceeded: {actual} unwrap(s) against a budget of {budget}; burn \
                     down to the budget or (with review) raise it in lint-ratchet.toml"
                ),
                snippet: String::new(),
                status: Status::Violation,
            });
        }
    }
    // Stale budgets (budget above actual) must be tightened in strict mode so
    // the ratchet only ever reflects reality.
    if let Some(files) = ratchet.budgets.get(rules::NO_UNWRAP_IN_LIB) {
        for (file, &budget) in files {
            let actual = actuals.get(file).copied().unwrap_or(0);
            entries.entry(file.clone()).or_insert((actual, budget));
            if strict && actual < budget {
                diagnostics.push(Diagnostic {
                    file: file.clone(),
                    line: 1,
                    rule: rules::NO_UNWRAP_IN_LIB,
                    message: format!(
                        "stale ratchet budget: actual {actual} < budget {budget}; run \
                         `--update-ratchet` to tighten"
                    ),
                    snippet: String::new(),
                    status: Status::Violation,
                });
            }
        }
    }
    entries
        .into_iter()
        .map(|(file, (actual, budget))| (file, actual, budget))
        .collect()
}

/// Recompute the ratchet from current actuals and write it back (lower-only).
///
/// When no ratchet file exists yet, this *seeds* budgets from the current
/// actuals — the one legitimate way budgets ever appear. Once the file is
/// checked in, rewrites can only lower them.
pub fn update_ratchet(opts: &RunOptions) -> Result<(), String> {
    let (mut ratchet, seeding) = match std::fs::read_to_string(&opts.ratchet_path) {
        Ok(text) => (Ratchet::parse(&text).map_err(|e| e.to_string())?, false),
        Err(_) => (Ratchet::default(), true),
    };
    let files = collect_sources(&opts.root).map_err(|e| format!("scan failed: {e}"))?;
    let mut diagnostics = Vec::new();
    for rel in &files {
        let source =
            std::fs::read_to_string(opts.root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        diagnostics.extend(rules::lint_source(rel, &source));
    }
    let actuals = unwrap_actuals(&diagnostics);
    if seeding {
        let section = ratchet
            .budgets
            .entry(rules::NO_UNWRAP_IN_LIB.to_string())
            .or_default();
        for (file, &n) in &actuals {
            if n > 0 {
                section.insert(file.clone(), n);
            }
        }
    } else {
        ratchet
            .tighten(rules::NO_UNWRAP_IN_LIB, &actuals)
            .map_err(|over| {
                format!(
                    "refusing to raise budgets; burn these down first:\n  {}",
                    over.join("\n  ")
                )
            })?;
    }
    std::fs::write(&opts.ratchet_path, ratchet.render())
        .map_err(|e| format!("write {}: {e}", opts.ratchet_path.display()))
}
