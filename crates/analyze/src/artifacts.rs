//! Bench-artifact checks: the honesty contract for checked-in numbers.
//!
//! Source rules (`rules`) keep the *code* deterministic; this module keeps
//! the *artifacts* honest. Any `results/BENCH_*.json` that records a
//! `"speedup"` claim must carry the self-assertion markers the experiment
//! harness emits when it verified its own floors before writing the file:
//! a `"min_speedup"` bound alongside every claim and a top-level
//! `"self_asserted": true`. An artifact with a speedup but no bound is a
//! number nobody will notice regressing — exactly the failure mode that
//! let `BENCH_parallel.json` ship a 0.14× "speedup" for several PRs.
//!
//! A second check closes the other half of that incident: the writers now
//! stamp `"optimized_build"` into every artifact and route debug builds
//! to gitignored `*_debug.json` files, so a non-`_debug` artifact that
//! records `"optimized_build": false` is a debug run that escaped onto a
//! committed path and is flagged as a violation.

use crate::diag::{Diagnostic, Status};
use std::path::Path;

/// Rule id: a bench artifact claiming a speedup must self-assert a floor.
pub const SPEEDUP_SELF_ASSERT: &str = "bench-speedup-self-assert";

/// Rule id: a committed-path artifact must come from an optimized build.
pub const DEBUG_BUILD_ARTIFACT: &str = "bench-debug-build-artifact";

/// Collect every `results/BENCH_*.json` under `root`, sorted, as
/// workspace-relative forward-slash paths.
pub fn collect_artifacts(root: &Path) -> std::io::Result<Vec<String>> {
    let dir = root.join("results");
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        // No results directory yet: nothing to check.
        Err(_) => return Ok(out),
    };
    for entry in entries {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        if path.is_file() && name.starts_with("BENCH_") && name.ends_with(".json") {
            out.push(format!("results/{name}"));
        }
    }
    out.sort();
    Ok(out)
}

/// Lint one artifact's text. `rel_path` is used for reporting and for the
/// `_debug`-path exemption.
pub fn lint_artifact(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Debug-build records on a committed (non-`_debug`) path: the wall
    // times are meaningless against release baselines. `_debug` files are
    // gitignored and exempt — that is where debug runs belong.
    let debug_path = rel_path.ends_with("_debug.json");
    if !debug_path && text.contains("\"optimized_build\": false") {
        diags.push(Diagnostic {
            file: rel_path.to_string(),
            line: 1,
            rule: DEBUG_BUILD_ARTIFACT,
            message: "artifact records \"optimized_build\": false on a committed path; \
                      debug runs must land in the gitignored *_debug.json file — rerun the \
                      experiment with a release build"
                .to_string(),
            snippet: String::new(),
            status: Status::Violation,
        });
    }
    let has_speedup = text.contains("\"speedup\"");
    if !has_speedup {
        return diags;
    }
    if !text.contains("\"min_speedup\"") {
        diags.push(Diagnostic {
            file: rel_path.to_string(),
            line: 1,
            rule: SPEEDUP_SELF_ASSERT,
            message: "artifact records a \"speedup\" without a \"min_speedup\" floor; make the \
                      experiment assert its bound before writing the file and record the bound \
                      beside the claim"
                .to_string(),
            snippet: String::new(),
            status: Status::Violation,
        });
    }
    if !text.contains("\"self_asserted\": true") {
        diags.push(Diagnostic {
            file: rel_path.to_string(),
            line: 1,
            rule: SPEEDUP_SELF_ASSERT,
            message: "artifact records a \"speedup\" without the top-level \
                      \"self_asserted\": true marker; the experiment must verify its floors \
                      before writing the artifact"
                .to_string(),
            snippet: String::new(),
            status: Status::Violation,
        });
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_without_speedup_is_clean() {
        assert!(lint_artifact("results/BENCH_x.json", "{\"wall_ns\": 3}").is_empty());
    }

    #[test]
    fn speedup_without_markers_is_two_violations() {
        let diags = lint_artifact("results/BENCH_x.json", "{\"speedup\": 0.14}");
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == SPEEDUP_SELF_ASSERT));
        assert!(diags.iter().all(|d| d.status == Status::Violation));
    }

    #[test]
    fn speedup_with_both_markers_is_clean() {
        let text =
            "{\"self_asserted\": true, \"rows\": [{\"speedup\": 1.5, \"min_speedup\": 1.0}]}";
        assert!(lint_artifact("results/BENCH_x.json", text).is_empty());
    }

    #[test]
    fn partial_markers_flag_the_missing_one() {
        let text = "{\"rows\": [{\"speedup\": 1.5, \"min_speedup\": 1.0}]}";
        let diags = lint_artifact("results/BENCH_x.json", text);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("self_asserted"));
    }

    #[test]
    fn debug_record_on_committed_path_is_flagged() {
        let diags = lint_artifact("results/BENCH_x.json", "{\"optimized_build\": false}");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, DEBUG_BUILD_ARTIFACT);
        assert_eq!(diags[0].status, Status::Violation);
    }

    #[test]
    fn debug_record_on_debug_path_is_exempt() {
        assert!(
            lint_artifact("results/BENCH_x_debug.json", "{\"optimized_build\": false}").is_empty()
        );
    }

    #[test]
    fn release_record_is_clean() {
        assert!(lint_artifact("results/BENCH_x.json", "{\"optimized_build\": true}").is_empty());
    }
}
