//! `lec-lint:` suppression pragmas.
//!
//! Grammar — the whole comment must *be* the pragma (the marker is anchored
//! at the start of the comment text, so prose that merely mentions the
//! grammar does not parse):
//!
//! ```text
//! // lec-lint: allow(<rule>[, <rule>…]) — <reason>
//! ```
//!
//! The separator before the reason may be an em-dash (`—`), `--`, `-`, or
//! `:`. The reason is mandatory: an `allow` with no reason does not suppress
//! anything and is itself reported as a `bad-pragma` violation.
//!
//! A pragma on a line with code applies to that line; a pragma on a
//! comment-only line applies to the next line that carries code.

/// One parsed pragma occurrence.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Zero-based source line the pragma comment sits on.
    pub line: usize,
    /// Rules named in `allow(…)`.
    pub rules: Vec<String>,
    /// The stated reason, if any (trimmed, non-empty).
    pub reason: Option<String>,
}

/// Extract pragmas from per-line comment text.
pub fn parse_pragmas(comment_lines: &[String]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (line, comment) in comment_lines.iter().enumerate() {
        let Some(rest) = comment.trim_start().strip_prefix("lec-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let after = rest[close + 1..].trim_start();
        let reason = ["—", "--", "-", ":"]
            .iter()
            .find_map(|sep| after.strip_prefix(sep))
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .map(str::to_string);
        out.push(Pragma {
            line,
            rules,
            reason,
        });
    }
    out
}

/// Resolve which source lines each pragma covers.
///
/// Returns, for every pragma, the covered line: its own line when that line
/// has code, otherwise the next line that does.
pub fn covered_line(pragma: &Pragma, code_lines: &[String]) -> usize {
    let own = &code_lines[pragma.line];
    if !own.trim().is_empty() {
        return pragma.line;
    }
    for (idx, line) in code_lines.iter().enumerate().skip(pragma.line + 1) {
        if !line.trim().is_empty() {
            return idx;
        }
    }
    pragma.line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_em_dash_reason() {
        let p = parse_pragmas(&lines(&[
            " lec-lint: allow(no-wallclock-or-ambient-rng) — timing is observability-only",
        ]));
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rules, vec!["no-wallclock-or-ambient-rng"]);
        assert_eq!(p[0].reason.as_deref(), Some("timing is observability-only"));
    }

    #[test]
    fn missing_reason_is_none() {
        let p = parse_pragmas(&lines(&[" lec-lint: allow(no-unwrap-in-lib)"]));
        assert_eq!(p.len(), 1);
        assert!(p[0].reason.is_none());
    }

    #[test]
    fn multiple_rules() {
        let p = parse_pragmas(&lines(&[
            " lec-lint: allow(rule-a, rule-b) -- both are fine here",
        ]));
        assert_eq!(p[0].rules, vec!["rule-a", "rule-b"]);
        assert!(p[0].reason.is_some());
    }

    #[test]
    fn own_line_pragma_covers_next_code_line() {
        let code = lines(&["let x = 1;", "            ", "let y = 2;"]);
        let p = Pragma {
            line: 1,
            rules: vec![],
            reason: None,
        };
        assert_eq!(covered_line(&p, &code), 2);
    }

    #[test]
    fn trailing_pragma_covers_own_line() {
        let code = lines(&["let x = now();          "]);
        let p = Pragma {
            line: 0,
            rules: vec![],
            reason: None,
        };
        assert_eq!(covered_line(&p, &code), 0);
    }
}
