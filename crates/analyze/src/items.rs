//! Item-level parsing: a brace-tree walk over blanked source (see
//! [`crate::lexer`]) that extracts `fn`/`impl`/`mod`/`use` items, the calls
//! each function body makes, and the potential panic sites it contains.
//!
//! This is the front end of the `lec-audit` semantic passes: where the lint
//! rules in [`crate::rules`] work line-by-line, the audit needs to know
//! *which function* a token lives in and *what that function calls*, so the
//! call graph in [`crate::callgraph`] can reason about reachability from the
//! serving and optimizer entry points.
//!
//! The parser is deliberately an over-approximation: it does not resolve
//! types, so a method call `.price(…)` is recorded by name only and the call
//! graph later resolves it to **every** workspace method of that name (the
//! sound direction for reachability analyses — we may report a panic as
//! reachable when it is not, never the reverse). See DESIGN.md §10.

use crate::lexer::FileLex;

/// What kind of potential panic a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` on an `Option`/`Result`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// Indexing with arithmetic in the index expression (`v[i + 1]`), the
    /// classic off-by-one shape. Plain `v[i]` is not flagged — the codebase
    /// indexes bitset-sized tables pervasively and the arithmetic shape is
    /// where the historical bugs live; `assert!` guards are likewise
    /// deliberate self-checks, not accidents. The contract is documented in
    /// DESIGN.md §10.
    IndexArith,
}

impl PanicKind {
    /// Human-readable label for diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "`.unwrap()`",
            PanicKind::Expect => "`.expect(…)`",
            PanicKind::PanicMacro => "panicking macro",
            PanicKind::IndexArith => "arithmetic index (off-by-one shape)",
        }
    }
}

/// One potential panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Zero-based source line.
    pub line: usize,
    /// Site kind.
    pub kind: PanicKind,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Zero-based source line.
    pub line: usize,
    /// Callee name (last path segment).
    pub name: String,
    /// Path qualifier immediately before the name (`alg_c::optimize` →
    /// `alg_c`; `Type::method` → `Type`), if any.
    pub qualifier: Option<String>,
    /// True for `.name(…)` receiver-method syntax.
    pub is_method: bool,
}

/// One parsed function item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    /// Trait name when the enclosing block is `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// Zero-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Zero-based inclusive line range of the body (`{` to `}`).
    pub body_lines: (usize, usize),
    /// True when the function sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Calls made anywhere in the body (innermost-fn attribution).
    pub calls: Vec<Call>,
    /// Potential panic sites in the body.
    pub panic_sites: Vec<PanicSite>,
}

/// Parsed view of one file's items.
#[derive(Debug)]
pub struct FileItems {
    /// Workspace-relative path.
    pub path: String,
    /// Crate identifier the path belongs to (`crates/core` → `lec_core`).
    pub crate_ident: String,
    /// Module name of the file (file stem; `lib.rs` → crate ident).
    pub module: String,
    /// All functions found.
    pub fns: Vec<FnItem>,
    /// `use` aliases: imported-or-renamed last segment → full path text.
    pub uses: Vec<(String, String)>,
}

/// Crate identifier for a workspace-relative path.
pub fn crate_ident_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        let dir = rest.split('/').next().unwrap_or(rest);
        let dir = dir.strip_prefix("compat-").unwrap_or(dir);
        if rest.starts_with("compat-") {
            return dir.replace('-', "_");
        }
        return format!("lec_{}", dir.replace('-', "_"));
    }
    "lecopt".to_string()
}

/// Module name for a workspace-relative path.
pub fn module_of(path: &str) -> String {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(path);
    if stem == "lib" || stem == "main" {
        return crate_ident_of(path);
    }
    if stem == "mod" {
        let parts: Vec<&str> = path.split('/').collect();
        if parts.len() >= 2 {
            return parts[parts.len() - 2].to_string();
        }
    }
    stem.to_string()
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "where",
];

/// Parse one lexed file into its items.
pub fn parse_items(rel_path: &str, lx: &FileLex) -> FileItems {
    let mut text = String::new();
    let mut line_starts = Vec::with_capacity(lx.code_lines.len());
    for line in &lx.code_lines {
        line_starts.push(text.len());
        text.push_str(line);
        text.push('\n');
    }
    let bytes = text.as_bytes();
    let line_of = |off: usize| match line_starts.binary_search(&off) {
        Ok(l) => l,
        Err(ins) => ins.saturating_sub(1),
    };

    struct PendingFn {
        name: String,
        sig_line: usize,
        paren_depth: i32,
    }
    struct OpenFn {
        idx: usize,
        depth: i32,
    }

    let mut fns: Vec<FnItem> = Vec::new();
    let mut uses: Vec<(String, String)> = Vec::new();
    let mut pending_fn: Option<PendingFn> = None;
    let mut pending_mod: Option<()> = None;
    let mut pending_impl: Option<usize> = None;
    let mut impl_stack: Vec<(Option<String>, Option<String>, i32)> = Vec::new();
    let mut open_fns: Vec<OpenFn> = Vec::new();
    let mut depth: i32 = 0;

    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if is_ident_start(c) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            let tok = &text[start..i];
            match tok {
                "fn" => {
                    if let Some((name, end)) = next_ident(&text, i) {
                        pending_fn = Some(PendingFn {
                            name,
                            sig_line: line_of(start),
                            paren_depth: 0,
                        });
                        i = end;
                    }
                }
                "mod" if pending_fn.is_none() => {
                    pending_mod = Some(());
                }
                "impl" if pending_fn.is_none() && pending_impl.is_none() && open_fns.is_empty() => {
                    pending_impl = Some(i);
                }
                "use" if open_fns.is_empty() && pending_fn.is_none() => {
                    let end = bytes[i..]
                        .iter()
                        .position(|&b| b == b';')
                        .map_or(bytes.len(), |p| i + p);
                    collect_uses(&text[i..end], &mut uses);
                    i = end;
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if next_sig(bytes, i) == Some(b'!') =>
                {
                    if let Some(open) = open_fns.last() {
                        fns[open.idx].panic_sites.push(PanicSite {
                            line: line_of(start),
                            kind: PanicKind::PanicMacro,
                        });
                    }
                }
                _ if !NON_CALL_KEYWORDS.contains(&tok) => {
                    // Call shape: ident (possibly with a turbofish) followed
                    // by `(`.
                    let after = skip_turbofish(bytes, i);
                    if next_sig(bytes, after) == Some(b'(') {
                        if let Some(open) = open_fns.last() {
                            let (qualifier, is_method) = call_context(&text, start);
                            let line = line_of(start);
                            if (tok == "unwrap" || tok == "expect") && is_method {
                                fns[open.idx].panic_sites.push(PanicSite {
                                    line,
                                    kind: if tok == "unwrap" {
                                        PanicKind::Unwrap
                                    } else {
                                        PanicKind::Expect
                                    },
                                });
                            }
                            fns[open.idx].calls.push(Call {
                                line,
                                name: tok.to_string(),
                                qualifier,
                                is_method,
                            });
                        }
                    }
                }
                _ => {}
            }
            continue;
        }
        match c {
            b'{' => {
                depth += 1;
                if let Some(pf) = pending_fn.take() {
                    if pf.paren_depth == 0 {
                        let (impl_type, trait_name) = impl_stack
                            .last()
                            .map(|(t, tr, _)| (t.clone(), tr.clone()))
                            .unwrap_or((None, None));
                        let body_line = line_of(i);
                        fns.push(FnItem {
                            name: pf.name,
                            impl_type,
                            trait_name,
                            sig_line: pf.sig_line,
                            body_lines: (body_line, body_line),
                            is_test: lx.in_test.get(pf.sig_line).copied().unwrap_or(false),
                            calls: Vec::new(),
                            panic_sites: Vec::new(),
                        });
                        open_fns.push(OpenFn {
                            idx: fns.len() - 1,
                            depth,
                        });
                    } else {
                        // `{` inside a signature (should not happen); keep
                        // the pending fn so a later body brace can claim it.
                        pending_fn = Some(pf);
                        depth -= 1;
                        i += 1;
                        depth += 1;
                        continue;
                    }
                } else if let Some(hdr_start) = pending_impl.take() {
                    let (self_ty, trait_name) = parse_impl_header(&text[hdr_start..i]);
                    impl_stack.push((self_ty, trait_name, depth));
                } else if pending_mod.take().is_some() {
                    // In-file modules only matter for the test flag, which
                    // the lexer already tracks; nothing else to record.
                }
            }
            b'}' => {
                while let Some(open) = open_fns.last() {
                    if open.depth == depth {
                        fns[open.idx].body_lines.1 = line_of(i);
                        open_fns.pop();
                    } else {
                        break;
                    }
                }
                while let Some(&(_, _, d)) = impl_stack.last() {
                    if d == depth {
                        impl_stack.pop();
                    } else {
                        break;
                    }
                }
                depth -= 1;
            }
            b'(' => {
                if let Some(pf) = pending_fn.as_mut() {
                    pf.paren_depth += 1;
                }
            }
            b')' => {
                if let Some(pf) = pending_fn.as_mut() {
                    pf.paren_depth -= 1;
                }
            }
            b'[' => {
                if let Some(pf) = pending_fn.as_mut() {
                    pf.paren_depth += 1;
                } else if let Some(open) = open_fns.last() {
                    if is_index_open(bytes, i) {
                        if let Some(close) = matching_bracket(bytes, i) {
                            if index_has_arithmetic(&text[i + 1..close]) {
                                fns[open.idx].panic_sites.push(PanicSite {
                                    line: line_of(i),
                                    kind: PanicKind::IndexArith,
                                });
                            }
                        }
                    }
                }
            }
            b']' => {
                if let Some(pf) = pending_fn.as_mut() {
                    pf.paren_depth -= 1;
                }
            }
            b';' => {
                if let Some(pf) = pending_fn.as_ref() {
                    if pf.paren_depth == 0 {
                        // Bodyless signature (trait method / extern decl).
                        pending_fn = None;
                    }
                }
                pending_mod = None;
            }
            _ => {}
        }
        i += 1;
    }

    FileItems {
        path: rel_path.to_string(),
        crate_ident: crate_ident_of(rel_path),
        module: module_of(rel_path),
        fns,
        uses,
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Next identifier at or after `from`, skipping whitespace; returns the
/// identifier and the offset one past its end.
fn next_ident(text: &str, from: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    let mut i = from;
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    if i >= bytes.len() || !is_ident_start(bytes[i]) {
        return None;
    }
    let start = i;
    while i < bytes.len() && is_ident_byte(bytes[i]) {
        i += 1;
    }
    Some((text[start..i].to_string(), i))
}

/// Next significant (non-whitespace) byte at or after `from`.
fn next_sig(bytes: &[u8], from: usize) -> Option<u8> {
    let mut i = from;
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    bytes.get(i).copied()
}

/// Previous significant (non-whitespace) byte strictly before `at`.
fn prev_sig(bytes: &[u8], at: usize) -> Option<(usize, u8)> {
    let mut i = at;
    while i > 0 {
        i -= 1;
        if !(bytes[i] as char).is_whitespace() {
            return Some((i, bytes[i]));
        }
    }
    None
}

/// Skip a turbofish (`::<…>`) directly after an identifier ending at `end`.
fn skip_turbofish(bytes: &[u8], end: usize) -> usize {
    if bytes.get(end) == Some(&b':')
        && bytes.get(end + 1) == Some(&b':')
        && bytes.get(end + 2) == Some(&b'<')
    {
        let mut depth = 0i32;
        let mut i = end + 2;
        while i < bytes.len() {
            match bytes[i] {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    end
}

/// Qualifier and method-ness of a call whose name starts at `name_start`.
fn call_context(text: &str, name_start: usize) -> (Option<String>, bool) {
    let bytes = text.as_bytes();
    match prev_sig(bytes, name_start) {
        Some((i, b'.')) => {
            // `.name(` — but `..name` is a range, not a method call.
            if i > 0 && bytes[i - 1] == b'.' {
                (None, false)
            } else {
                (None, true)
            }
        }
        Some((i, b':')) if i > 0 && bytes[i - 1] == b':' => {
            match prev_sig(bytes, i - 1) {
                Some((j, b)) if is_ident_byte(b) => {
                    let mut s = j;
                    while s > 0 && is_ident_byte(bytes[s - 1]) {
                        s -= 1;
                    }
                    (Some(text[s..j + 1].to_string()), false)
                }
                // `<T as Trait>::name(` and friends: unknown receiver type —
                // treat like a method call (resolve by name, over-approx).
                Some((_, b'>')) => (None, true),
                _ => (None, false),
            }
        }
        _ => (None, false),
    }
}

/// Keywords that can directly precede a `[`: what follows is an array
/// literal (`for p in [a, b]`, `return [x + y]`), never an index.
const NON_INDEX_KEYWORDS: [&str; 14] = [
    "in", "return", "else", "match", "if", "while", "loop", "move", "mut", "ref", "let", "as",
    "break", "continue",
];

/// True when `[` at `at` opens an *index* expression (previous significant
/// byte ends a value: identifier, `)`, or `]`), rather than an attribute,
/// array literal, or type. An identifier that is a keyword (`in`, `return`,
/// …) ends a *construct*, not a value, so `for p in [a, a + b]` is a
/// literal.
fn is_index_open(bytes: &[u8], at: usize) -> bool {
    match prev_sig(bytes, at) {
        Some((j, b)) if is_ident_byte(b) => {
            let mut s = j;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            let word = std::str::from_utf8(&bytes[s..j + 1]).unwrap_or("");
            !NON_INDEX_KEYWORDS.contains(&word)
        }
        Some((_, b')' | b']')) => true,
        _ => false,
    }
}

/// Matching `]` for the `[` at `open`, tracking nesting.
fn matching_bracket(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// True when an index expression contains top-level binary arithmetic
/// (`+`, binary `-`, binary `*`) — the off-by-one panic shape.
fn index_has_arithmetic(inner: &str) -> bool {
    let bytes = inner.as_bytes();
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'+' if depth == 0 => {
                // `+=` cannot appear in an index; any `+` is arithmetic.
                return true;
            }
            b'-' | b'*' if depth == 0 => {
                // Binary only: something value-like on the left.
                if let Some((_, p)) = prev_sig(bytes, k) {
                    if is_ident_byte(p) || p == b')' || p == b']' {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

/// Record `use` aliases from one (possibly braced) use declaration.
fn collect_uses(decl: &str, out: &mut Vec<(String, String)>) {
    // `use a::b::{c, d as e};` — record c → a::b::c, e → a::b::d.
    let body = decl.trim_start_matches("use").trim();
    fn walk(prefix: &str, part: &str, out: &mut Vec<(String, String)>) {
        let part = part.trim();
        if part.is_empty() || part == "*" {
            return;
        }
        if let Some(brace) = part.find('{') {
            let head = part[..brace].trim().trim_end_matches("::");
            let inner = part[brace + 1..].trim_end_matches(['}', ';']).trim();
            let joined = if prefix.is_empty() {
                head.to_string()
            } else {
                format!("{prefix}::{head}")
            };
            let mut depth = 0i32;
            let mut start = 0usize;
            let bytes = inner.as_bytes();
            for (k, &b) in bytes.iter().enumerate() {
                match b {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    b',' if depth == 0 => {
                        walk(&joined, &inner[start..k], out);
                        start = k + 1;
                    }
                    _ => {}
                }
            }
            walk(&joined, &inner[start..], out);
            return;
        }
        let full = if prefix.is_empty() {
            part.to_string()
        } else {
            format!("{prefix}::{part}")
        };
        if let Some((path, alias)) = part.split_once(" as ") {
            let full = if prefix.is_empty() {
                path.trim().to_string()
            } else {
                format!("{prefix}::{}", path.trim())
            };
            out.push((alias.trim().to_string(), full));
            return;
        }
        if let Some(last) = part.rsplit("::").next() {
            out.push((last.trim().to_string(), full));
        }
    }
    walk("", body, out);
}

/// Parse an `impl` header (the text between the `impl` keyword and the body
/// `{`) into `(self_type, trait_name)`.
fn parse_impl_header(header: &str) -> (Option<String>, Option<String>) {
    let h = header.trim_start();
    // Strip leading generic parameter list.
    let h = if let Some(rest) = h.strip_prefix('<') {
        let bytes = rest.as_bytes();
        let mut depth = 1i32;
        let mut cut = rest.len();
        for (k, &b) in bytes.iter().enumerate() {
            match b {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &rest[cut..]
    } else {
        h
    };
    // Split `Trait for Type` on the standalone word `for` at depth 0.
    let split = find_word_at_depth0(h, "for");
    let (trait_text, self_text) = match split {
        Some(pos) => (&h[..pos], &h[pos + 3..]),
        None => ("", h),
    };
    let self_ty = first_type_ident(self_text);
    let trait_name = if trait_text.is_empty() {
        None
    } else {
        let head = trait_text.split('<').next().unwrap_or(trait_text);
        head.rsplit("::")
            .next()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
    };
    (self_ty, trait_name)
}

fn find_word_at_depth0(s: &str, word: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut k = 0usize;
    while k < bytes.len() {
        match bytes[k] {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b if depth == 0 && is_ident_start(b) => {
                let start = k;
                while k < bytes.len() && is_ident_byte(bytes[k]) {
                    k += 1;
                }
                if &s[start..k] == word
                    && (start == 0 || !is_ident_byte(bytes[start - 1]))
                    && (k >= bytes.len() || !is_ident_byte(bytes[k]))
                {
                    return Some(start);
                }
                continue;
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// First type-ish identifier in a self-type expression, skipping sigils and
/// the keywords that can precede the type (`&mut Type`, `dyn Type`).
fn first_type_ident(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut k = 0usize;
    while k < bytes.len() {
        if is_ident_start(bytes[k]) {
            let start = k;
            while k < bytes.len() && is_ident_byte(bytes[k]) {
                k += 1;
            }
            let tok = &s[start..k];
            if matches!(tok, "mut" | "dyn" | "const") {
                continue;
            }
            return Some(tok.to_string());
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> FileItems {
        parse_items("crates/core/src/sample.rs", &lexer::lex(src))
    }

    #[test]
    fn extracts_free_and_impl_fns() {
        let src = "pub fn alpha() { beta(); }\n\
                   impl<M: Clone> Widget<M> {\n    pub fn beta(&self) { self.gamma(); }\n}\n\
                   impl Pricer for Widget<f64> {\n    fn price(&self) -> f64 { 1.0 }\n}\n";
        let items = parse(src);
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "price"]);
        assert_eq!(items.fns[1].impl_type.as_deref(), Some("Widget"));
        assert_eq!(items.fns[2].impl_type.as_deref(), Some("Widget"));
        assert_eq!(items.fns[2].trait_name.as_deref(), Some("Pricer"));
        assert_eq!(items.fns[0].calls.len(), 1);
        assert_eq!(items.fns[0].calls[0].name, "beta");
        assert!(!items.fns[0].calls[0].is_method);
        assert!(items.fns[1].calls[0].is_method);
    }

    #[test]
    fn qualified_calls_carry_their_qualifier() {
        let src = "fn top() { alg_c::optimize(q); Dist::new(); crate::verify::check(p); }\n";
        let items = parse(src);
        let calls = &items.fns[0].calls;
        assert_eq!(calls[0].qualifier.as_deref(), Some("alg_c"));
        assert_eq!(calls[1].qualifier.as_deref(), Some("Dist"));
        assert_eq!(calls[2].qualifier.as_deref(), Some("verify"));
    }

    #[test]
    fn panic_sites_detected() {
        let src = "fn f(v: &[f64], i: usize) -> f64 {\n\
                   let a = v.first().unwrap();\n\
                   let b = v.last().expect(\"nonempty\");\n\
                   if i > v.len() { panic!(\"bad\"); }\n\
                   v[i + 1] + a + b\n}\n";
        let items = parse(src);
        let kinds: Vec<PanicKind> = items.fns[0].panic_sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::PanicMacro,
                PanicKind::IndexArith
            ]
        );
    }

    #[test]
    fn plain_indexing_attributes_and_types_are_not_flagged() {
        let src = "#[derive(Clone)]\nstruct S { a: [u8; 4] }\n\
                   fn f(v: &[f64], i: usize) -> f64 { v[i] }\n\
                   fn g() -> [u8; 2] { [1, 2] }\n";
        let items = parse(src);
        assert!(items.fns.iter().all(|f| f.panic_sites.is_empty()));
    }

    #[test]
    fn array_literal_after_keyword_is_not_an_index() {
        let src = "fn f(a: f64, b: f64) -> f64 {\n\
                   \x20   let mut acc = 0.0;\n\
                   \x20   for p in [a, b, a + b] { acc += p; }\n\
                   \x20   acc\n\
                   }\n";
        let items = parse(src);
        assert!(items.fns[0].panic_sites.is_empty());
    }

    #[test]
    fn unwrap_or_is_not_a_panic_site() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(3) }\n";
        let items = parse(src);
        assert!(items.fns[0].panic_sites.is_empty());
    }

    #[test]
    fn test_fns_are_marked() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let items = parse(src);
        assert!(!items.fns[0].is_test);
        assert!(items.fns[1].is_test);
    }

    #[test]
    fn bodyless_trait_signatures_are_skipped() {
        let src =
            "trait T {\n    fn sig(&self) -> f64;\n    fn with_default(&self) -> f64 { 1.0 }\n}\n";
        let items = parse(src);
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default"]);
    }

    #[test]
    fn use_aliases_collected() {
        let src = "use lec_core::alg_c;\nuse lec_core::{dp, pareto as front};\n";
        let items = parse(src);
        assert!(items
            .uses
            .iter()
            .any(|(a, p)| a == "alg_c" && p == "lec_core::alg_c"));
        assert!(items
            .uses
            .iter()
            .any(|(a, p)| a == "front" && p == "lec_core::pareto"));
        assert!(items.uses.iter().any(|(a, _)| a == "dp"));
    }

    #[test]
    fn crate_and_module_idents() {
        assert_eq!(crate_ident_of("crates/core/src/dp.rs"), "lec_core");
        assert_eq!(crate_ident_of("src/batch.rs"), "lecopt");
        assert_eq!(crate_ident_of("crates/compat-rand/src/lib.rs"), "rand");
        assert_eq!(module_of("crates/core/src/dp.rs"), "dp");
        assert_eq!(module_of("crates/core/src/lib.rs"), "lec_core");
    }

    #[test]
    fn turbofish_calls_still_detected() {
        let src = "fn f() { parse::<u32>(s); v.collect::<Vec<_>>(); }\n";
        let items = parse(src);
        let names: Vec<&str> = items.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["parse", "collect"]);
    }
}
