//! The `lint-ratchet.toml` budget file.
//!
//! The ratchet holds per-file budgets for the `no-unwrap-in-lib` rule: the
//! number of non-test, non-pragma'd `.unwrap()` calls each library file is
//! still allowed to carry. Budgets may only decrease: `--update-ratchet`
//! rewrites budgets down to current actuals and refuses to raise one, so the
//! only way a count can grow is a hand edit that a reviewer will see.
//!
//! The file is a strict TOML subset parsed by hand (this crate is
//! dependency-free): one `[<rule>]` section, then `"<path>" = <count>` lines.

use std::collections::BTreeMap;

/// Parsed ratchet: rule name → (file → budget).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Ratchet {
    /// Budgets per rule section.
    pub budgets: BTreeMap<String, BTreeMap<String, usize>>,
}

/// A ratchet file line that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetParseError {
    /// 1-based line number in the ratchet file.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for RatchetParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-ratchet.toml:{}: {}", self.line, self.message)
    }
}

impl Ratchet {
    /// Parse the ratchet file contents.
    pub fn parse(text: &str) -> Result<Self, RatchetParseError> {
        let mut budgets: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        let mut section: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().to_string();
                budgets.entry(name.clone()).or_default();
                section = Some(name);
                continue;
            }
            let Some(sec) = section.as_ref() else {
                return Err(RatchetParseError {
                    line: i + 1,
                    message: "entry before any [section] header".to_string(),
                });
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(RatchetParseError {
                    line: i + 1,
                    message: format!("expected `\"path\" = count`, got `{line}`"),
                });
            };
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value.trim().parse().map_err(|_| RatchetParseError {
                line: i + 1,
                message: format!("budget is not a nonnegative integer: `{}`", value.trim()),
            })?;
            if let Some(sec_map) = budgets.get_mut(sec) {
                sec_map.insert(key, value);
            }
        }
        Ok(Self { budgets })
    }

    /// Budget for `file` under `rule`; `None` when the file has no entry
    /// (meaning: zero tolerance, every hit is a violation).
    pub fn budget(&self, rule: &str, file: &str) -> Option<usize> {
        self.budgets.get(rule).and_then(|m| m.get(file)).copied()
    }

    /// Render back to the canonical on-disk form (sorted, commented header).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# lec-lint ratchet budgets. Budgets may only DECREASE.\n\
             # Regenerate after a burn-down with:\n\
             #   cargo run -p lec-analyze --bin lec-lint -- --update-ratchet\n\
             # Raising a budget requires a hand edit and review sign-off.\n",
        );
        for (rule, files) in &self.budgets {
            out.push('\n');
            out.push_str(&format!("[{rule}]\n"));
            for (file, count) in files {
                out.push_str(&format!("\"{file}\" = {count}\n"));
            }
        }
        out
    }

    /// Lower budgets to `actuals` (dropping files that reached zero).
    ///
    /// Returns an error naming each file whose actual count *exceeds* its
    /// budget — the ratchet never ratchets up.
    pub fn tighten(
        &mut self,
        rule: &str,
        actuals: &BTreeMap<String, usize>,
    ) -> Result<(), Vec<String>> {
        let over: Vec<String> = actuals
            .iter()
            .filter(|(file, &n)| n > self.budget(rule, file).unwrap_or(0))
            .map(|(file, &n)| {
                format!(
                    "{file}: actual {n} > budget {}",
                    self.budget(rule, file).unwrap_or(0)
                )
            })
            .collect();
        if !over.is_empty() {
            return Err(over);
        }
        let section = self.budgets.entry(rule.to_string()).or_default();
        section.clear();
        for (file, &n) in actuals {
            if n > 0 {
                section.insert(file.clone(), n);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "# header\n\n[no-unwrap-in-lib]\n\"crates/core/src/dp.rs\" = 3\n\"crates/plan/src/plan.rs\" = 1\n";

    #[test]
    fn parse_roundtrip() {
        let r = Ratchet::parse(SAMPLE).unwrap();
        assert_eq!(
            r.budget("no-unwrap-in-lib", "crates/core/src/dp.rs"),
            Some(3)
        );
        assert_eq!(r.budget("no-unwrap-in-lib", "missing.rs"), None);
        let r2 = Ratchet::parse(&r.render()).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn tighten_lowers_and_drops_zero() {
        let mut r = Ratchet::parse(SAMPLE).unwrap();
        let actuals: BTreeMap<String, usize> = [
            ("crates/core/src/dp.rs".to_string(), 2),
            ("crates/plan/src/plan.rs".to_string(), 0),
        ]
        .into_iter()
        .collect();
        r.tighten("no-unwrap-in-lib", &actuals).unwrap();
        assert_eq!(
            r.budget("no-unwrap-in-lib", "crates/core/src/dp.rs"),
            Some(2)
        );
        assert_eq!(
            r.budget("no-unwrap-in-lib", "crates/plan/src/plan.rs"),
            None
        );
    }

    #[test]
    fn tighten_refuses_to_raise() {
        let mut r = Ratchet::parse(SAMPLE).unwrap();
        let actuals: BTreeMap<String, usize> = [("crates/core/src/dp.rs".to_string(), 5)]
            .into_iter()
            .collect();
        let err = r.tighten("no-unwrap-in-lib", &actuals).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("actual 5 > budget 3"));
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = Ratchet::parse("\"x\" = 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = Ratchet::parse("[s]\nnot an entry\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
