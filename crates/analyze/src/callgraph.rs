//! Workspace symbol table and over-approximate call graph.
//!
//! [`Workspace::build`] lexes and item-parses every source file, flattens all
//! functions into one id space, and resolves each call site to the set of
//! workspace functions it *may* target. Resolution is name-based and
//! deliberately over-approximate (no type inference):
//!
//! - `Qualifier::name(…)` resolves through the qualifier: `Self` → the
//!   caller's impl type; `self`/`crate`/`super` → the caller's crate; a crate
//!   identifier (`lec_core`) → that crate; a module name (`verify`) → files
//!   of that module; an impl-type name (`Distribution`) → methods of that
//!   type. A qualifier matching *nothing* in the workspace (`String`, `fs`,
//!   `thread`) is external and produces no edge — this is what keeps
//!   `String::new()` from aliasing every workspace `new`.
//! - `.name(…)` method calls resolve to **every** workspace method of that
//!   name (any impl type) — the trait-dispatch over-approximation: a
//!   `dyn Rule::score(…)` call reaches every `score` method.
//! - Bare `name(…)` calls resolve to every workspace function of that name.
//!
//! The over-approximation is sound in the direction reachability passes
//! need: a panic can be reported reachable when it is not, never missed
//! because an edge was dropped. Test functions (and whole `tests/` files)
//! never resolve as call targets, so test-only panics cannot pollute
//! production reachability.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{self, FileItems, FnItem};
use crate::lexer::{self, FileLex};
use crate::pragma::{self, Pragma};

/// One analyzed source file: lexed view, parsed items, pragmas.
pub struct SourceFile {
    /// Lexed view (blanked code lines, comment lines, test regions).
    pub lex: FileLex,
    /// Raw source lines (for snippets and string-literal checks; code lines
    /// have literal contents blanked).
    pub raw_lines: Vec<String>,
    /// Parsed items.
    pub items: FileItems,
    /// Suppression pragmas found in the file.
    pub pragmas: Vec<Pragma>,
    /// True when the whole file is test code (`tests/`, `benches/` trees).
    pub file_is_test: bool,
}

/// Locator of one function: file index + index within that file's items.
#[derive(Debug, Clone, Copy)]
pub struct FnLoc {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub item: usize,
}

/// How a reached function was entered during BFS: predecessor id and the
/// zero-based line of the call site in the predecessor.
#[derive(Debug, Clone, Copy)]
pub enum Provenance {
    /// The function is itself a root.
    Root,
    /// Reached via a call edge.
    Edge {
        /// Caller function id.
        from: usize,
        /// Zero-based line of the call site.
        line: usize,
    },
}

/// The workspace-wide symbol table and call graph.
pub struct Workspace {
    /// All analyzed files, in input order (input is sorted by path).
    pub files: Vec<SourceFile>,
    /// Flattened function id space.
    pub fns: Vec<FnLoc>,
    /// Resolved edges per function: sorted, deduped `(callee, call_line)`.
    pub edges: Vec<Vec<(usize, usize)>>,
    crate_idents: BTreeSet<String>,
    module_names: BTreeSet<String>,
    impl_types: BTreeSet<String>,
}

impl Workspace {
    /// Build the workspace from `(relative_path, source_text)` pairs.
    pub fn build(sources: &[(String, String)]) -> Workspace {
        let mut files = Vec::with_capacity(sources.len());
        for (rel, text) in sources {
            let lex = lexer::lex(text);
            let items = items::parse_items(rel, &lex);
            let pragmas = pragma::parse_pragmas(&lex.comment_lines);
            let file_is_test =
                rel.contains("/tests/") || rel.starts_with("tests/") || rel.contains("/benches/");
            files.push(SourceFile {
                lex,
                raw_lines: text.lines().map(str::to_string).collect(),
                items,
                pragmas,
                file_is_test,
            });
        }

        let mut fns = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut crate_idents = BTreeSet::new();
        let mut module_names = BTreeSet::new();
        let mut impl_types = BTreeSet::new();
        for (fi, file) in files.iter().enumerate() {
            crate_idents.insert(file.items.crate_ident.clone());
            module_names.insert(file.items.module.clone());
            for (ii, f) in file.items.fns.iter().enumerate() {
                let id = fns.len();
                fns.push(FnLoc { file: fi, item: ii });
                if let Some(t) = &f.impl_type {
                    impl_types.insert(t.clone());
                }
                if !f.is_test && !file.file_is_test {
                    by_name.entry(f.name.as_str()).or_default().push(id);
                }
            }
        }

        let resolver = Resolver {
            files: &files,
            fns: &fns,
            by_name: &by_name,
            crate_idents: &crate_idents,
            module_names: &module_names,
            impl_types: &impl_types,
        };
        let edges: Vec<Vec<(usize, usize)>> =
            (0..fns.len()).map(|id| resolver.edges_of(id)).collect();

        Workspace {
            files,
            fns,
            edges,
            crate_idents,
            module_names,
            impl_types,
        }
    }

    /// The function item for a flattened id.
    pub fn item(&self, id: usize) -> &FnItem {
        let loc = self.fns[id];
        &self.files[loc.file].items.fns[loc.item]
    }

    /// Workspace-relative path of the file a function lives in.
    pub fn path_of(&self, id: usize) -> &str {
        &self.files[self.fns[id].file].items.path
    }

    /// True when the function is test code (its own flag or a test file).
    pub fn is_test_fn(&self, id: usize) -> bool {
        let loc = self.fns[id];
        self.files[loc.file].file_is_test || self.files[loc.file].items.fns[loc.item].is_test
    }

    /// Ids of all non-test functions satisfying `pred`, in id order.
    pub fn find_fns(&self, mut pred: impl FnMut(&str, &FnItem) -> bool) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&id| !self.is_test_fn(id) && pred(self.path_of(id), self.item(id)))
            .collect()
    }

    /// Multi-source BFS over call edges. Returns, for every reached function,
    /// how it was first entered; iteration over roots and adjacency is in id
    /// order, so the parent forest (and thus every witness) is deterministic.
    pub fn reachable_from(&self, roots: &[usize]) -> BTreeMap<usize, Provenance> {
        let mut seen: BTreeMap<usize, Provenance> = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for &r in &sorted_roots {
            seen.insert(r, Provenance::Root);
            queue.push_back(r);
        }
        while let Some(id) = queue.pop_front() {
            for &(callee, line) in &self.edges[id] {
                if self.is_test_fn(callee) {
                    continue;
                }
                seen.entry(callee).or_insert_with(|| {
                    queue.push_back(callee);
                    Provenance::Edge { from: id, line }
                });
            }
        }
        seen
    }

    /// Render the root→target call path recorded by [`Self::reachable_from`]
    /// as a witness string: `root (file:line) → … → target (file:line)` with
    /// 1-based signature lines.
    pub fn witness(&self, reach: &BTreeMap<usize, Provenance>, target: usize) -> String {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(Provenance::Edge { from, .. }) = reach.get(&cur) {
            cur = *from;
            chain.push(cur);
            if chain.len() > self.fns.len() {
                break; // cycle guard; cannot happen with a BFS parent forest
            }
        }
        chain.reverse();
        chain
            .iter()
            .map(|&id| {
                format!(
                    "{} ({}:{})",
                    self.qualified_name(id),
                    self.path_of(id),
                    self.item(id).sig_line + 1
                )
            })
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// `Type::name` for methods, `name` for free functions.
    pub fn qualified_name(&self, id: usize) -> String {
        let f = self.item(id);
        match &f.impl_type {
            Some(t) => format!("{t}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Reason of a pragma allowing `rule` at `line` (zero-based) of the
    /// function `id`, if any. A pragma covers the site when its covered line
    /// is the site line, or when it sits on the function's signature (any
    /// line from the signature to the opening of the body) — fn-scope
    /// coverage, so one pragma with one written reason can vouch for a whole
    /// small function instead of being repeated per site.
    pub fn allowed_reason(&self, id: usize, rule: &str, line: usize) -> Option<String> {
        let loc = self.fns[id];
        let file = &self.files[loc.file];
        let f = &file.items.fns[loc.item];
        for p in &file.pragmas {
            if !p.rules.iter().any(|r| r == rule) {
                continue;
            }
            let Some(reason) = &p.reason else { continue };
            let covered = pragma::covered_line(p, &file.lex.code_lines);
            if covered == line || (covered >= f.sig_line && covered <= f.body_lines.0) {
                return Some(reason.clone());
            }
        }
        None
    }

    /// True when the workspace knows `name` as a crate, module, or impl type
    /// (used by tests and diagnostics).
    pub fn knows_scope(&self, name: &str) -> bool {
        self.crate_idents.contains(name)
            || self.module_names.contains(name)
            || self.impl_types.contains(name)
    }
}

/// Borrow-only view used during `build` to resolve call edges before the
/// `Workspace` value exists.
struct Resolver<'a> {
    files: &'a [SourceFile],
    fns: &'a [FnLoc],
    by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    crate_idents: &'a BTreeSet<String>,
    module_names: &'a BTreeSet<String>,
    impl_types: &'a BTreeSet<String>,
}

impl Resolver<'_> {
    fn item(&self, id: usize) -> &FnItem {
        let loc = self.fns[id];
        &self.files[loc.file].items.fns[loc.item]
    }

    fn file_items(&self, id: usize) -> &FileItems {
        &self.files[self.fns[id].file].items
    }

    fn edges_of(&self, id: usize) -> Vec<(usize, usize)> {
        let loc = self.fns[id];
        let caller_file = &self.files[loc.file];
        let caller = &caller_file.items.fns[loc.item];
        let mut out: Vec<(usize, usize)> = Vec::new();
        for call in &caller.calls {
            for callee in self.resolve_call(&caller_file.items, caller, call) {
                if callee != id {
                    out.push((callee, call.line));
                }
            }
        }
        out.sort_unstable();
        out.dedup_by_key(|e| e.0);
        out
    }

    fn resolve_call(&self, file: &FileItems, caller: &FnItem, call: &items::Call) -> Vec<usize> {
        let Some(cands) = self.by_name.get(call.name.as_str()) else {
            return Vec::new();
        };
        let keep = |pred: &dyn Fn(usize) -> bool| -> Vec<usize> {
            cands.iter().copied().filter(|&id| pred(id)).collect()
        };
        match &call.qualifier {
            Some(q) if q == "Self" => {
                if caller.impl_type.is_none() {
                    return Vec::new();
                }
                keep(&|id| self.item(id).impl_type == caller.impl_type)
            }
            Some(q) if q == "self" || q == "crate" || q == "super" => {
                keep(&|id| self.file_items(id).crate_ident == file.crate_ident)
            }
            Some(q) => {
                if let Some(v) = self.resolve_scope(q, cands) {
                    return v;
                }
                // `use lec_core::pareto as front; front::push(…)` — retry
                // through the aliased path, innermost segment first.
                if let Some((_, path)) = file.uses.iter().find(|(a, _)| a == q) {
                    for seg in path.rsplit("::").map(str::trim) {
                        if let Some(v) = self.resolve_scope(seg, cands) {
                            return v;
                        }
                    }
                }
                // Unknown qualifier: external item (std, core, …); no edge.
                Vec::new()
            }
            None if call.is_method => {
                // Trait-dispatch over-approximation: any method of the name.
                keep(&|id| self.item(id).impl_type.is_some())
            }
            None => cands.clone(),
        }
    }

    /// Resolve a scope name against crates, then modules, then impl types.
    fn resolve_scope(&self, name: &str, cands: &[usize]) -> Option<Vec<usize>> {
        if self.crate_idents.contains(name) {
            return Some(
                cands
                    .iter()
                    .copied()
                    .filter(|&id| self.file_items(id).crate_ident == name)
                    .collect(),
            );
        }
        if self.module_names.contains(name) {
            return Some(
                cands
                    .iter()
                    .copied()
                    .filter(|&id| self.file_items(id).module == name)
                    .collect(),
            );
        }
        if self.impl_types.contains(name) {
            return Some(
                cands
                    .iter()
                    .copied()
                    .filter(|&id| self.item(id).impl_type.as_deref() == Some(name))
                    .collect(),
            );
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&sources)
    }

    fn id_of(ws: &Workspace, name: &str) -> usize {
        (0..ws.fns.len())
            .find(|&id| ws.item(id).name == name)
            .unwrap_or_else(|| panic!("no fn named {name}"))
    }

    #[test]
    fn bare_calls_resolve_within_workspace() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "fn top() { helper(); }\nfn helper() {}\n",
        )]);
        let top = id_of(&w, "top");
        let helper = id_of(&w, "helper");
        assert_eq!(w.edges[top], vec![(helper, 0)]);
    }

    #[test]
    fn unknown_qualifier_is_external() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "fn top() { String::new(); }\nfn new() {}\n",
        )]);
        let top = id_of(&w, "top");
        assert!(w.edges[top].is_empty());
    }

    #[test]
    fn crate_qualifier_crosses_crates() {
        let w = ws(&[
            (
                "crates/serve/src/service.rs",
                "fn serve() { lec_core::optimize(); }\n",
            ),
            ("crates/core/src/lib.rs", "pub fn optimize() {}\n"),
        ]);
        let serve = id_of(&w, "serve");
        let opt = id_of(&w, "optimize");
        assert_eq!(w.edges[serve], vec![(opt, 0)]);
    }

    #[test]
    fn method_calls_over_approximate_across_impls() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "struct A; struct B;\n\
             impl A { fn score(&self) {} }\n\
             impl B { fn score(&self) {} }\n\
             fn top(x: &dyn Fn()) { y.score(); }\n",
        )]);
        let top = id_of(&w, "top");
        assert_eq!(w.edges[top].len(), 2);
    }

    #[test]
    fn test_fns_are_not_call_targets() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "fn top() { helper(); }\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n",
        )]);
        let top = id_of(&w, "top");
        assert!(w.edges[top].is_empty());
    }

    #[test]
    fn bfs_witness_renders_full_path() {
        let w = ws(&[(
            "crates/serve/src/service.rs",
            "fn serve() { step_one(); }\n\
             fn step_one() { step_two(); }\n\
             fn step_two() { x.unwrap(); }\n",
        )]);
        let serve = id_of(&w, "serve");
        let two = id_of(&w, "step_two");
        let reach = w.reachable_from(&[serve]);
        assert!(reach.contains_key(&two));
        let witness = w.witness(&reach, two);
        assert_eq!(
            witness,
            "serve (crates/serve/src/service.rs:1) → step_one (crates/serve/src/service.rs:2) \
             → step_two (crates/serve/src/service.rs:3)"
        );
    }

    #[test]
    fn cycles_terminate() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "fn ping() { pong(); }\nfn pong() { ping(); }\n",
        )]);
        let ping = id_of(&w, "ping");
        let reach = w.reachable_from(&[ping]);
        assert_eq!(reach.len(), 2);
    }
}
