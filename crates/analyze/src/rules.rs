//! The lint rules.
//!
//! Every rule is a lexical heuristic over blanked code (see [`crate::lexer`]):
//! comments and literal contents never match, and `#[cfg(test)]` regions are
//! skipped by all rules. Rules select their target files by workspace-relative
//! path, mirroring the determinism contracts documented in DESIGN.md:
//!
//! | rule | scope |
//! |------|-------|
//! | `no-unordered-iteration`      | deterministic paths (core/plan/cost/stats/serve src, plus pinned files like the exec fault layer) |
//! | `no-wallclock-or-ambient-rng` | deterministic paths |
//! | `no-unwrap-in-lib`            | all library src trees (bin targets excluded), ratcheted |
//! | `no-epsilon-dominance`        | deterministic paths, inside dominance/frontier functions |
//! | `no-lossy-float-cast`         | cost-arithmetic paths (cost/core src) |
//! | `bad-pragma`                  | everywhere scanned (malformed/unreasoned `allow`) |

use crate::diag::{Diagnostic, Status};
use crate::lexer::{self, FileLex};
use crate::pragma::{self, Pragma};

/// Rule: `HashMap`/`HashSet` in deterministic paths.
pub const NO_UNORDERED_ITERATION: &str = "no-unordered-iteration";
/// Rule: wall clock or ambient RNG in deterministic paths.
pub const NO_WALLCLOCK: &str = "no-wallclock-or-ambient-rng";
/// Rule: `.unwrap()` in library code outside `#[cfg(test)]`.
pub const NO_UNWRAP_IN_LIB: &str = "no-unwrap-in-lib";
/// Rule: epsilon tolerance inside dominance/frontier comparisons.
pub const NO_EPSILON_DOMINANCE: &str = "no-epsilon-dominance";
/// Rule: lossy float casts in cost arithmetic.
pub const NO_LOSSY_FLOAT_CAST: &str = "no-lossy-float-cast";
/// Rule: malformed or reasonless `lec-lint: allow` pragma.
pub const BAD_PRAGMA: &str = "bad-pragma";

/// Audit rule: panic site reachable from a serve/optimize entry point
/// (see `crate::audit::panic`).
pub const PANIC_REACHABILITY: &str = "panic-reachability";
/// Audit rule: shared mutable capture or `Ordering::Relaxed` in concurrent
/// regions of deterministic paths (see `crate::audit::concurrency`).
pub const CONCURRENCY_DETERMINISM: &str = "concurrency-determinism";
/// Audit rule: float reduction over an unordered iterator
/// (see `crate::audit::floatorder`).
pub const FLOAT_ORDER: &str = "float-order";
/// Audit rule: call-graph invariant conformance — BENCH writers must reach
/// `artifact_path`, optimizer finalizes must reach the plan verifier
/// (see `crate::audit::invariants`).
pub const INVARIANT_CONFORMANCE: &str = "invariant-conformance";

/// All real (suppressible) rule names, for pragma validation.
pub const ALL_RULES: [&str; 9] = [
    NO_UNORDERED_ITERATION,
    NO_WALLCLOCK,
    NO_UNWRAP_IN_LIB,
    NO_EPSILON_DOMINANCE,
    NO_LOSSY_FLOAT_CAST,
    PANIC_REACHABILITY,
    CONCURRENCY_DETERMINISM,
    FLOAT_ORDER,
    INVARIANT_CONFORMANCE,
];

/// Source trees whose code must be deterministic (bit-identical replay,
/// serial ≡ parallel, order-independent frontiers).
const DETERMINISTIC_PATHS: [&str; 5] = [
    "crates/core/src",
    "crates/plan/src",
    "crates/cost/src",
    "crates/stats/src",
    "crates/serve/src",
];

/// Individual files carrying the full determinism contract even though
/// their surrounding tree is exempt. The exec simulator is free to keep
/// wall-clock observability, but the fault-injection layer must replay
/// bit-identically (faults key on simulated coordinates only), so it is
/// pinned file-by-file.
const DETERMINISTIC_FILES: [&str; 1] = ["crates/exec/src/fault.rs"];

/// Source trees doing cost arithmetic, where silent precision loss is a bug.
const COST_PATHS: [&str; 2] = ["crates/cost/src", "crates/core/src"];

fn in_tree(path: &str, trees: &[&str]) -> bool {
    trees
        .iter()
        .any(|t| path.starts_with(t) && path[t.len()..].starts_with('/'))
}

/// True when `path` lies in a tree (or pinned file) carrying the determinism
/// contract. Shared with the audit passes in `crate::audit`.
pub fn is_deterministic_path(path: &str) -> bool {
    in_tree(path, &DETERMINISTIC_PATHS) || DETERMINISTIC_FILES.contains(&path)
}

fn is_cost_path(path: &str) -> bool {
    in_tree(path, &COST_PATHS)
}

/// Library source: the root `src/` tree or any `crates/*/src` tree, excluding
/// binary targets under a `bin/` directory.
fn is_lib_path(path: &str) -> bool {
    if path.contains("/bin/") {
        return false;
    }
    if path.starts_with("src/") {
        return true;
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some(slash) = rest.find('/') {
            return rest[slash..].starts_with("/src/");
        }
    }
    false
}

/// Identifiers forbidden in deterministic paths by `no-unordered-iteration`.
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Identifiers forbidden in deterministic paths by `no-wallclock-or-ambient-rng`.
const AMBIENT_SOURCES: [&str; 5] = [
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "entropy",
];

/// Integer types a bare float-named cast must not target.
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Name fragments that mark an identifier as carrying cost/estimate quantities.
const FLOATY_NAME_PARTS: [&str; 7] = ["cost", "page", "sel", "card", "prob", "weight", "expect"];

/// Name fragments that mark a function as a dominance/frontier comparator.
const DOMINANCE_FN_PARTS: [&str; 3] = ["dominat", "frontier", "dominance"];

/// Lint one file. `rel_path` is workspace-relative with forward slashes.
///
/// Returns diagnostics with pragma resolution already applied (statuses are
/// `Violation` or `Allowed`); ratchet resolution happens in the runner, which
/// needs cross-file grouping.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lx = lexer::lex(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let pragmas = pragma::parse_pragmas(&lx.comment_lines);

    let mut diags = Vec::new();
    check_pragma_wellformedness(rel_path, &pragmas, &raw_lines, &mut diags);

    let mut findings: Vec<(usize, &'static str, String)> = Vec::new();
    if is_deterministic_path(rel_path) {
        find_unordered_iteration(&lx, &mut findings);
        find_ambient_sources(&lx, &mut findings);
        find_epsilon_dominance(&lx, &mut findings);
    }
    if is_lib_path(rel_path) {
        find_unwraps(&lx, &mut findings);
    }
    if is_cost_path(rel_path) {
        find_lossy_casts(&lx, &mut findings);
    }

    // Resolve pragmas: map covered line -> (rules, reason).
    let mut allows: Vec<(usize, &Pragma)> = Vec::new();
    for p in &pragmas {
        if p.reason.is_some() {
            allows.push((pragma::covered_line(p, &lx.code_lines), p));
        }
    }

    for (line, rule, message) in findings {
        let snippet = raw_lines.get(line).map_or("", |s| s.trim()).to_string();
        let status = allows
            .iter()
            .find(|(covered, p)| *covered == line && p.rules.iter().any(|r| r == rule))
            .map(|(_, p)| Status::Allowed {
                reason: p.reason.clone().unwrap_or_default(),
            })
            .unwrap_or(Status::Violation);
        diags.push(Diagnostic {
            file: rel_path.to_string(),
            line: line + 1,
            rule,
            message,
            snippet,
            status,
        });
    }
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

fn check_pragma_wellformedness(
    rel_path: &str,
    pragmas: &[Pragma],
    raw_lines: &[&str],
    diags: &mut Vec<Diagnostic>,
) {
    for p in pragmas {
        let snippet = raw_lines.get(p.line).map_or("", |s| s.trim()).to_string();
        if p.reason.is_none() {
            diags.push(Diagnostic {
                file: rel_path.to_string(),
                line: p.line + 1,
                rule: BAD_PRAGMA,
                message: "allow pragma without a reason suppresses nothing; add `— <reason>`"
                    .to_string(),
                snippet: snippet.clone(),
                status: Status::Violation,
            });
        }
        for r in &p.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                diags.push(Diagnostic {
                    file: rel_path.to_string(),
                    line: p.line + 1,
                    rule: BAD_PRAGMA,
                    message: format!("allow pragma names unknown rule `{r}`"),
                    snippet: snippet.clone(),
                    status: Status::Violation,
                });
            }
        }
    }
}

fn find_unordered_iteration(lx: &FileLex, out: &mut Vec<(usize, &'static str, String)>) {
    for (i, line) in lx.code_lines.iter().enumerate() {
        if lx.in_test[i] {
            continue;
        }
        for (_, tok) in lexer::idents(line) {
            if UNORDERED_TYPES.contains(&tok) {
                out.push((
                    i,
                    NO_UNORDERED_ITERATION,
                    format!(
                        "`{tok}` has nondeterministic iteration order; deterministic paths must \
                         use `BTreeMap`/`BTreeSet` or sorted vectors"
                    ),
                ));
            }
        }
    }
}

fn find_ambient_sources(lx: &FileLex, out: &mut Vec<(usize, &'static str, String)>) {
    for (i, line) in lx.code_lines.iter().enumerate() {
        if lx.in_test[i] {
            continue;
        }
        for (_, tok) in lexer::idents(line) {
            if AMBIENT_SOURCES.contains(&tok) {
                out.push((
                    i,
                    NO_WALLCLOCK,
                    format!(
                        "`{tok}` reads ambient state (wall clock / OS entropy); deterministic \
                         paths must take time and randomness as explicit inputs"
                    ),
                ));
            }
        }
    }
}

fn find_unwraps(lx: &FileLex, out: &mut Vec<(usize, &'static str, String)>) {
    for (i, line) in lx.code_lines.iter().enumerate() {
        if lx.in_test[i] {
            continue;
        }
        let bytes = line.as_bytes();
        for (off, tok) in lexer::idents(line) {
            if tok != "unwrap" {
                continue;
            }
            // Require `.unwrap(` shape: previous non-space byte is `.`,
            // next non-space byte is `(` — skips fn defs named unwrap etc.
            let prev = line[..off].trim_end().as_bytes().last().copied();
            let mut j = off + tok.len();
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            let next = bytes.get(j).copied();
            if prev == Some(b'.') && next == Some(b'(') {
                out.push((
                    i,
                    NO_UNWRAP_IN_LIB,
                    "`.unwrap()` in library code: convert to a typed error or a messageful \
                     `expect` (ratcheted)"
                        .to_string(),
                ));
            }
        }
    }
}

fn find_epsilon_dominance(lx: &FileLex, out: &mut Vec<(usize, &'static str, String)>) {
    // Track the enclosing function name via a brace-depth stack. `pending`
    // holds a just-seen `fn <name>` until its body `{` opens (a `;` first
    // means a bodyless trait signature).
    let mut depth: i64 = 0;
    let mut stack: Vec<(String, i64)> = Vec::new();
    let mut pending: Option<String> = None;

    let is_dominance_name = |name: &str| {
        let lower = name.to_ascii_lowercase();
        DOMINANCE_FN_PARTS.iter().any(|p| lower.contains(p))
    };

    for (i, line) in lx.code_lines.iter().enumerate() {
        let toks = lexer::idents(line);
        // True when a dominance/frontier fn encloses any part of this line —
        // sampled at line start and on every push, so a one-line fn body
        // (`fn dominates(…) { … }`) is still covered after its `}` pops it.
        let mut dominance_active = stack.iter().any(|(name, _)| is_dominance_name(name));
        let mut tok_iter = toks.iter().peekable();
        let bytes = line.as_bytes();
        let mut k = 0usize;
        while k < bytes.len() {
            // Advance token iterator to current position to catch `fn` names.
            while let Some(&&(off, tok)) = tok_iter.peek() {
                if off < k {
                    tok_iter.next();
                    continue;
                }
                if off == k {
                    if tok == "fn" {
                        // Next ident is the function name.
                        let mut it2 = tok_iter.clone();
                        it2.next();
                        if let Some(&&(_, name)) = it2.peek() {
                            pending = Some(name.to_string());
                        }
                    }
                    tok_iter.next();
                    k += tok.len();
                }
                break;
            }
            if k >= bytes.len() {
                break;
            }
            match bytes[k] {
                b'{' => {
                    depth += 1;
                    if let Some(name) = pending.take() {
                        if is_dominance_name(&name) {
                            dominance_active = true;
                        }
                        stack.push((name, depth));
                    }
                }
                b'}' => {
                    while let Some(&(_, d)) = stack.last() {
                        if d >= depth {
                            stack.pop();
                        } else {
                            break;
                        }
                    }
                    depth -= 1;
                }
                // A `;` at item level cancels a bodyless signature.
                b';' if depth == stack.last().map_or(0, |&(_, d)| d) => {
                    pending = None;
                }
                _ => {}
            }
            k += 1;
        }

        if lx.in_test[i] || !dominance_active {
            continue;
        }
        for _off in lexer::negative_exponent_literals(line) {
            out.push((
                i,
                NO_EPSILON_DOMINANCE,
                "tolerance literal inside a dominance/frontier comparator: epsilon dominance \
                 breaks antisymmetry and makes frontiers insertion-order dependent (the PR 2 \
                 bug); compare exactly"
                    .to_string(),
            ));
        }
        for (_, tok) in lexer::idents(line) {
            let lower = tok.to_ascii_lowercase();
            if lower.contains("epsilon") || lower == "eps" {
                out.push((
                    i,
                    NO_EPSILON_DOMINANCE,
                    format!(
                        "`{tok}` inside a dominance/frontier comparator: epsilon dominance \
                         breaks antisymmetry; compare exactly"
                    ),
                ));
            }
        }
    }
}

fn find_lossy_casts(lx: &FileLex, out: &mut Vec<(usize, &'static str, String)>) {
    for (i, line) in lx.code_lines.iter().enumerate() {
        if lx.in_test[i] {
            continue;
        }
        let toks = lexer::idents(line);
        for (t, &(_, tok)) in toks.iter().enumerate() {
            if tok != "as" {
                continue;
            }
            let Some(&(_, target)) = toks.get(t + 1) else {
                continue;
            };
            if target == "f32" {
                out.push((
                    i,
                    NO_LOSSY_FLOAT_CAST,
                    "`as f32` in cost arithmetic silently halves precision; cost values are f64 \
                     end to end"
                        .to_string(),
                ));
                continue;
            }
            if !INT_TYPES.contains(&target) {
                continue;
            }
            // Only flag a *bare* cast of a float-named identifier. A chain
            // like `cost.round() as u64` leaves `)` before `as`, stating the
            // rounding intent, and is allowed.
            if t == 0 {
                continue;
            }
            let (prev_off, prev_tok) = toks[t - 1];
            let between = &line[prev_off + prev_tok.len()..];
            let between = &between[..between.find("as").unwrap_or(0)];
            if !between.trim().is_empty() {
                continue;
            }
            let lower = prev_tok.to_ascii_lowercase();
            if FLOATY_NAME_PARTS.iter().any(|p| lower.contains(p)) {
                out.push((
                    i,
                    NO_LOSSY_FLOAT_CAST,
                    format!(
                        "bare `{prev_tok} as {target}` truncates toward zero; state the intent \
                         with `.round()`/`.ceil()`/`.floor()` before casting"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src)
            .into_iter()
            .filter(|d| d.status == Status::Violation)
            .collect()
    }

    #[test]
    fn hashmap_flagged_in_deterministic_path_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(violations("crates/core/src/dp.rs", src).len(), 1);
        assert!(violations("crates/exec/src/run.rs", src).is_empty());
    }

    #[test]
    fn pinned_files_carry_the_deterministic_rules() {
        // The exec tree is exempt as a tree, but the fault layer is pinned
        // file-by-file: wall clock, ambient RNG, and unordered maps are all
        // violations there, while a sibling file stays exempt.
        let wallclock = "let t0 = std::time::Instant::now();\n";
        let hashmap = "use std::collections::HashMap;\n";
        assert_eq!(violations("crates/exec/src/fault.rs", wallclock).len(), 1);
        assert_eq!(violations("crates/exec/src/fault.rs", hashmap).len(), 1);
        assert!(violations("crates/exec/src/executor.rs", wallclock).is_empty());
        assert!(violations("crates/exec/src/executor.rs", hashmap).is_empty());
    }

    #[test]
    fn unwrap_counted_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let v = violations("crates/plan/src/plan.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_skipped_in_bin_targets() {
        let src = "fn main() { x.unwrap(); }\n";
        assert!(violations("crates/analyze/src/bin/lec_lint.rs", src).is_empty());
        assert!(violations("src/bin/lecopt.rs", src).is_empty());
    }

    #[test]
    fn pragma_with_reason_suppresses() {
        let src = "let t = Instant::now(); // lec-lint: allow(no-wallclock-or-ambient-rng) — observability only\n";
        let diags = lint_source("crates/core/src/par.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(matches!(diags[0].status, Status::Allowed { .. }));
    }

    #[test]
    fn pragma_without_reason_is_bad_and_suppresses_nothing() {
        let src = "let t = Instant::now(); // lec-lint: allow(no-wallclock-or-ambient-rng)\n";
        let v = violations("crates/core/src/par.rs", src);
        let rules: Vec<&str> = v.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&BAD_PRAGMA));
        assert!(rules.contains(&NO_WALLCLOCK));
    }

    #[test]
    fn own_line_pragma_covers_next_line() {
        let src = "// lec-lint: allow(no-unordered-iteration) — keyed by opaque digest, order never observed\nuse std::collections::HashMap;\n";
        let diags = lint_source("crates/serve/src/cache.rs", src);
        assert!(diags
            .iter()
            .all(|d| matches!(d.status, Status::Allowed { .. })));
    }

    #[test]
    fn epsilon_flagged_only_in_dominance_fns() {
        let src = "fn dominates(a: f64, b: f64) -> bool { a <= b + 1e-9 }\nfn unrelated() -> f64 { 1e-9 }\n";
        let v = violations("crates/core/src/pareto.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, NO_EPSILON_DOMINANCE);
    }

    #[test]
    fn epsilon_ident_flagged_in_frontier_fn() {
        let src = "fn insert_frontier(x: f64) { if x < f64::EPSILON { } }\n";
        let v = violations("crates/core/src/pareto.rs", src);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn lossy_casts_flagged_in_cost_paths() {
        let src = "fn f(total_cost: f64) -> u64 { total_cost as u64 }\nfn g(c: f64) -> f64 { c as f32 as f64 }\nfn h(total_cost: f64) -> u64 { total_cost.round() as u64 }\n";
        let v = violations("crates/cost/src/model.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|d| d.rule == NO_LOSSY_FLOAT_CAST));
    }

    #[test]
    fn wallclock_flagged() {
        let src = "let t0 = std::time::Instant::now();\n";
        let v = violations("crates/core/src/par.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, NO_WALLCLOCK);
    }

    #[test]
    fn unknown_rule_in_pragma_reported() {
        let src = "let x = 1; // lec-lint: allow(no-such-rule) — whatever\n";
        let v = violations("crates/core/src/dp.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, BAD_PRAGMA);
    }
}
