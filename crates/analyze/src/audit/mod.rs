//! `lec-audit`: call-graph-aware semantic passes.
//!
//! Where the token rules in [`crate::rules`] judge single lines, the audit
//! passes reason over the workspace call graph built by
//! [`crate::callgraph::Workspace`]:
//!
//! - [`panic`] — panic-reachability from serve/optimize entry points, with
//!   full call-path witnesses and per-root-group ratchet budgets.
//! - [`concurrency`] — shared mutable captures and `Ordering::Relaxed` inside
//!   concurrent regions of deterministic paths.
//! - [`floatorder`] — float reductions over unordered iterators.
//! - [`invariants`] — call-graph conformance: BENCH writers reach
//!   `artifact_path`, optimizer finalizes reach the plan verifier.
//!
//! All passes honor `// lec-lint: allow(<rule>) — <reason>` pragmas, at the
//! flagged line or on the enclosing function's signature (fn-scope coverage,
//! see [`crate::callgraph::Workspace::allowed_reason`]). Findings merge into
//! the main diagnostic stream and a per-pass summary lands in the `audit`
//! section of `results/LINT.json`.

pub mod concurrency;
pub mod floatorder;
pub mod invariants;
pub mod panic;

use crate::callgraph::Workspace;
use crate::diag::{Diagnostic, Status};
use crate::ratchet::Ratchet;

/// Violation/allowed tallies for one pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassCounts {
    /// Hard violations.
    pub violations: usize,
    /// Pragma-suppressed findings.
    pub allowed: usize,
}

/// Per-pass outcome summary, rendered into the `audit` JSON section.
#[derive(Debug, Default)]
pub struct AuditSummary {
    /// Panic-reachability violations whose witness starts at a serve root.
    pub serve_roots: usize,
    /// Panic-reachability violations whose witness starts at an optimize root.
    pub optimize_roots: usize,
    /// Panic-reachability violations whose witness starts at a sampling root.
    pub sample_roots: usize,
    /// Panic-reachability violations whose witness starts at a certify root.
    pub certify_roots: usize,
    /// Pragma-allowed panic-reachability findings.
    pub panic_allowed: usize,
    /// Within-budget (ratcheted) panic-reachability findings.
    pub panic_ratcheted: usize,
    /// Concurrency-determinism tallies.
    pub concurrency: PassCounts,
    /// Float-order tallies.
    pub float_order: PassCounts,
    /// Invariant-conformance tallies.
    pub invariants: PassCounts,
}

impl AuditSummary {
    /// Render as the JSON object embedded under `"audit"` in `LINT.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n    \"panic_reachability\": {{\"serve_roots\": {}, \"optimize_roots\": {}, \
             \"sample_roots\": {}, \"certify_roots\": {}, \
             \"allowed\": {}, \"ratcheted\": {}}},\n    \
             \"concurrency_determinism\": {{\"violations\": {}, \"allowed\": {}}},\n    \
             \"float_order\": {{\"violations\": {}, \"allowed\": {}}},\n    \
             \"invariant_conformance\": {{\"violations\": {}, \"allowed\": {}}}\n  }}",
            self.serve_roots,
            self.optimize_roots,
            self.sample_roots,
            self.certify_roots,
            self.panic_allowed,
            self.panic_ratcheted,
            self.concurrency.violations,
            self.concurrency.allowed,
            self.float_order.violations,
            self.float_order.allowed,
            self.invariants.violations,
            self.invariants.allowed,
        )
    }
}

/// Outcome of a full audit run.
pub struct AuditOutcome {
    /// All audit diagnostics (violations, allowed, ratcheted).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-pass summary for the JSON artifact and CI smoke asserts.
    pub summary: AuditSummary,
}

/// Run all four audit passes over a built workspace.
pub fn run_audit(ws: &Workspace, ratchet: &Ratchet) -> AuditOutcome {
    let mut diagnostics = Vec::new();
    let mut summary = AuditSummary::default();

    panic::run(ws, ratchet, &mut diagnostics, &mut summary);
    summary.concurrency = concurrency::run(ws, &mut diagnostics);
    summary.float_order = floatorder::run(ws, &mut diagnostics);
    summary.invariants = invariants::run(ws, &mut diagnostics);

    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    AuditOutcome {
        diagnostics,
        summary,
    }
}

/// Tally helper used by the simple passes: resolve one finding against
/// pragmas and push the diagnostic.
pub(crate) fn push_finding(
    ws: &Workspace,
    diagnostics: &mut Vec<Diagnostic>,
    counts: &mut PassCounts,
    fn_id: usize,
    rule: &'static str,
    line: usize,
    message: String,
) {
    let status = match ws.allowed_reason(fn_id, rule, line) {
        Some(reason) => {
            counts.allowed += 1;
            Status::Allowed { reason }
        }
        None => {
            counts.violations += 1;
            Status::Violation
        }
    };
    let loc = ws.fns[fn_id];
    let file = &ws.files[loc.file];
    diagnostics.push(Diagnostic {
        file: ws.path_of(fn_id).to_string(),
        line: line + 1,
        rule,
        message,
        snippet: file
            .raw_lines
            .get(line)
            .map_or("", |s| s.trim())
            .to_string(),
        status,
    });
}
