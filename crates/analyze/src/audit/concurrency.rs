//! Concurrency-determinism: concurrent regions in deterministic paths must
//! mediate all shared mutation and must not use `Ordering::Relaxed` without
//! a written determinism argument.
//!
//! Two shapes are flagged, in non-test functions of deterministic paths
//! (see [`crate::rules::is_deterministic_path`]):
//!
//! 1. **Shared mutable captures** — inside the argument span of a
//!    `spawn(…)` call (scoped threads, worker pools), an identifier that was
//!    declared `let mut x = …` earlier in the same function *outside* the
//!    span, where the declaration shows no mediation type (atomics, locks,
//!    channels, barriers). Such a capture is either a compile error waiting
//!    to happen or — via interior mutability — a nondeterminism hazard.
//! 2. **`Ordering::Relaxed`** — relaxed atomics are fine for monotonic
//!    counters whose exact value never surfaces, but this workspace asserts
//!    counter equality across serial/parallel runs and writes counters into
//!    artifacts, so every `Relaxed` needs a pragma arguing why its value is
//!    deterministic (RMW exactness + a happens-before edge at the join) or
//!    must be strengthened.
//!
//! The pass is syntactic (no alias analysis); the pragma escape hatch with a
//! mandatory reason is the designed false-positive valve.

use crate::callgraph::Workspace;
use crate::diag::Diagnostic;
use crate::lexer;
use crate::rules::{is_deterministic_path, CONCURRENCY_DETERMINISM};

use super::{push_finding, PassCounts};

/// Type/constructor names whose presence in a declaration marks the binding
/// as mediated (safe to share with workers).
const MEDIATION_TOKENS: [&str; 10] = [
    "Atomic", "Mutex", "RwLock", "Barrier", "mpsc", "channel", "Sender", "Receiver", "Condvar",
    "Arc",
];

/// Run the pass over every non-test function in deterministic paths.
pub fn run(ws: &Workspace, diagnostics: &mut Vec<Diagnostic>) -> PassCounts {
    let mut counts = PassCounts::default();
    for id in ws.find_fns(|path, _| is_deterministic_path(path)) {
        let loc = ws.fns[id];
        let file = &ws.files[loc.file];
        let f = &file.items.fns[loc.item];
        let (body_start, body_end) = f.body_lines;
        let code = &file.lex.code_lines;

        // Shape 2: Ordering::Relaxed anywhere in the body.
        let end = body_end.min(code.len().saturating_sub(1));
        for (line, code_line) in code.iter().enumerate().take(end + 1).skip(body_start) {
            if file.lex.in_test.get(line).copied().unwrap_or(false) {
                continue;
            }
            if lexer::contains_word(code_line, "Relaxed") {
                push_finding(
                    ws,
                    diagnostics,
                    &mut counts,
                    id,
                    CONCURRENCY_DETERMINISM,
                    line,
                    "`Ordering::Relaxed` in a deterministic path: counters and flags here flow \
                     into artifacts, OptStats, and equality tests; strengthen the ordering or \
                     pragma with a determinism argument (RMW exactness + join happens-before)"
                        .to_string(),
                );
            }
        }

        // Shape 1: unmediated `let mut` bindings captured by a spawn span.
        let body: Vec<&str> = code[body_start..=body_end.min(code.len() - 1)]
            .iter()
            .map(String::as_str)
            .collect();
        for span in spawn_spans(&body) {
            let mut flagged: Vec<String> = Vec::new();
            for ident in idents_in_span(&body, &span) {
                if flagged.iter().any(|f| f == ident) {
                    continue;
                }
                if let Some(decl_line) = unmediated_let_mut(&body, span.start_line, ident) {
                    let _ = decl_line;
                    flagged.push(ident.to_string());
                }
            }
            for ident in flagged {
                push_finding(
                    ws,
                    diagnostics,
                    &mut counts,
                    id,
                    CONCURRENCY_DETERMINISM,
                    body_start + span.start_line,
                    format!(
                        "`{ident}` is declared `let mut` outside this spawn and captured inside \
                         it without atomics/locks/channels; route shared mutation through a \
                         mediated type or a per-worker slot merged after the join"
                    ),
                );
            }
        }
    }
    counts
}

/// A `spawn(…)` argument span within a function body (line/column bounds,
/// all zero-based and body-relative).
struct Span {
    start_line: usize,
    start_col: usize,
    end_line: usize,
    end_col: usize,
}

/// Find the argument spans of `spawn(…)` calls in a body.
fn spawn_spans(body: &[&str]) -> Vec<Span> {
    let mut spans = Vec::new();
    for (li, line) in body.iter().enumerate() {
        let mut from = 0usize;
        while let Some(pos) = line[from..].find("spawn") {
            let at = from + pos;
            from = at + 5;
            // Word boundary on the left; `(` (after optional spaces) on the right.
            let left_ok = at == 0 || !is_ident_byte(line.as_bytes()[at - 1]);
            let rest = line[at + 5..].trim_start();
            if !left_ok || !rest.starts_with('(') {
                continue;
            }
            let open_col = at + 5 + (line.len() - at - 5 - rest.len());
            if let Some((el, ec)) = matching_paren(body, li, open_col) {
                spans.push(Span {
                    start_line: li,
                    start_col: open_col,
                    end_line: el,
                    end_col: ec,
                });
            }
        }
    }
    spans
}

/// Matching `)` for the `(` at `(line, col)`, scanning across lines.
fn matching_paren(body: &[&str], line: usize, col: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    for (li, l) in body.iter().enumerate().skip(line) {
        let start = if li == line { col } else { 0 };
        for (ci, b) in l.bytes().enumerate().skip(start) {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((li, ci));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Identifiers appearing inside a span, deduped, in first-seen order.
fn idents_in_span<'a>(body: &[&'a str], span: &Span) -> Vec<&'a str> {
    let mut out: Vec<&str> = Vec::new();
    for (li, body_line) in body
        .iter()
        .enumerate()
        .take(span.end_line + 1)
        .skip(span.start_line)
    {
        for (col, tok) in lexer::idents(body_line) {
            if li == span.start_line && col < span.start_col {
                continue;
            }
            if li == span.end_line && col >= span.end_col {
                continue;
            }
            if !out.contains(&tok) {
                out.push(tok);
            }
        }
    }
    out
}

/// Body-relative line of a `let mut <ident>` declaration before `before_line`
/// whose declaration text (that line plus the next, for multi-line
/// initializers) carries no mediation token; `None` when the binding is
/// mediated or not found.
fn unmediated_let_mut(body: &[&str], before_line: usize, ident: &str) -> Option<usize> {
    for (li, line) in body.iter().enumerate().take(before_line) {
        let Some(pos) = line.find("let mut ") else {
            continue;
        };
        let after = line[pos + 8..].trim_start();
        if !after.starts_with(ident)
            || after[ident.len()..]
                .bytes()
                .next()
                .is_some_and(is_ident_byte)
        {
            continue;
        }
        let decl_text = if li + 1 < body.len() {
            format!("{line} {}", body[li + 1])
        } else {
            (*line).to_string()
        };
        if MEDIATION_TOKENS.iter().any(|t| decl_text.contains(t)) {
            return None;
        }
        return Some(li);
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}
