//! Panic-reachability: no panic site may be reachable from a serving or
//! optimizer entry point.
//!
//! Root groups:
//!
//! - **serve** — every non-test `serve*` function in `crates/serve/src`
//!   (`QueryService::serve`, `serve_at`, `ConcurrentServer::serve_stream`,
//!   `serve_stream_collect`, …). A panic here kills a live request.
//! - **optimize** — every non-test `optimize*` function in `crates/core/src`.
//!   A panic here breaks the totality the LEC guarantees assume.
//! - **sample** — every non-test `sample*` function in `crates/catalog/src`
//!   (`SampleEstimator::sample_selectivity`, `sample_histogram`,
//!   `sample_interval_hoeffding`, …). Sampling runs inside the serve loop's
//!   resample path, so it inherits the same no-panic requirement.
//! - **certify** — every non-test `certify*` function in `crates/core/src`
//!   (`certify_plan`, …). Certificates are computed per served request;
//!   a panic here would take down serving for exactly the plans the
//!   (ε, δ) machinery is meant to vouch for.
//!
//! From each group the pass runs a BFS over the over-approximate call graph
//! and flags every panic site (`unwrap`, `expect`, panicking macros,
//! arithmetic indexing — see [`crate::items::PanicKind`]) inside a reached
//! function whose file is in scope. The diagnostic carries the full
//! root→function call-path witness, so a finding is actionable without
//! re-deriving the path by hand.
//!
//! Budgets live in `lint-ratchet.toml` under `[panic-reachability]`, keyed by
//! group name; a missing entry means zero tolerance. All four groups are
//! pinned at 0 — serving, optimizing, sampling, and certifying are
//! certified panic-free.

use std::collections::BTreeMap;

use crate::callgraph::{Provenance, Workspace};
use crate::diag::{Diagnostic, Status};
use crate::ratchet::Ratchet;
use crate::rules::PANIC_REACHABILITY;

use super::AuditSummary;

/// Source trees whose panic sites count against reachability budgets.
/// Bench experiments and the analyzer itself self-assert deliberately and
/// are out of scope; compat shims mirror external crates' APIs.
const PANIC_SCOPE: [&str; 10] = [
    "crates/core/src",
    "crates/plan/src",
    "crates/cost/src",
    "crates/stats/src",
    "crates/serve/src",
    "crates/catalog/src",
    "crates/workload/src",
    "crates/exec/src",
    "crates/rules/src",
    "src/",
];

fn in_scope(path: &str) -> bool {
    PANIC_SCOPE
        .iter()
        .any(|t| path.starts_with(t) && (t.ends_with('/') || path[t.len()..].starts_with('/')))
}

/// Run the pass: one BFS per root group, findings ratcheted per group.
pub fn run(
    ws: &Workspace,
    ratchet: &Ratchet,
    diagnostics: &mut Vec<Diagnostic>,
    summary: &mut AuditSummary,
) {
    let serve_roots =
        ws.find_fns(|path, f| path.starts_with("crates/serve/src") && f.name.starts_with("serve"));
    let optimize_roots = ws
        .find_fns(|path, f| path.starts_with("crates/core/src") && f.name.starts_with("optimize"));
    let sample_roots = ws
        .find_fns(|path, f| path.starts_with("crates/catalog/src") && f.name.starts_with("sample"));
    let certify_roots =
        ws.find_fns(|path, f| path.starts_with("crates/core/src") && f.name.starts_with("certify"));

    let groups: [(&str, &[usize]); 4] = [
        ("serve", &serve_roots),
        ("optimize", &optimize_roots),
        ("sample", &sample_roots),
        ("certify", &certify_roots),
    ];
    for (group, roots) in groups {
        let violations = run_group(ws, ratchet, group, roots, diagnostics, summary);
        match group {
            "serve" => summary.serve_roots = violations,
            "optimize" => summary.optimize_roots = violations,
            "sample" => summary.sample_roots = violations,
            _ => summary.certify_roots = violations,
        }
    }
}

fn run_group(
    ws: &Workspace,
    ratchet: &Ratchet,
    group: &str,
    roots: &[usize],
    diagnostics: &mut Vec<Diagnostic>,
    summary: &mut AuditSummary,
) -> usize {
    let reach: BTreeMap<usize, Provenance> = ws.reachable_from(roots);
    let budget = ratchet.budget(PANIC_REACHABILITY, group).unwrap_or(0);

    let mut group_diags: Vec<Diagnostic> = Vec::new();
    let mut unallowed = 0usize;
    for &id in reach.keys() {
        if !in_scope(ws.path_of(id)) {
            continue;
        }
        let f = ws.item(id);
        if f.panic_sites.is_empty() {
            continue;
        }
        let witness = ws.witness(&reach, id);
        let loc = ws.fns[id];
        let file = &ws.files[loc.file];
        for site in &f.panic_sites {
            let status = match ws.allowed_reason(id, PANIC_REACHABILITY, site.line) {
                Some(reason) => {
                    summary.panic_allowed += 1;
                    Status::Allowed { reason }
                }
                None => {
                    unallowed += 1;
                    Status::Violation
                }
            };
            group_diags.push(Diagnostic {
                file: ws.path_of(id).to_string(),
                line: site.line + 1,
                rule: PANIC_REACHABILITY,
                message: format!(
                    "{} reachable from `{group}` roots; call path: {witness}",
                    site.kind.describe()
                ),
                snippet: file
                    .raw_lines
                    .get(site.line)
                    .map_or("", |s| s.trim())
                    .to_string(),
                status,
            });
        }
    }

    let over_budget = unallowed > budget;
    if !over_budget {
        // Within budget: soften violations to ratcheted, exactly like the
        // per-file unwrap ratchet.
        for d in &mut group_diags {
            if d.status == Status::Violation {
                d.status = Status::Ratcheted;
                summary.panic_ratcheted += 1;
            }
        }
    } else {
        diagnostics.push(Diagnostic {
            file: "lint-ratchet.toml".to_string(),
            line: 1,
            rule: PANIC_REACHABILITY,
            message: format!(
                "`{group}` root group has {unallowed} reachable panic site(s) against a budget \
                 of {budget}; fix them, pragma them with reasons, or (with review) raise the \
                 budget under [panic-reachability]"
            ),
            snippet: String::new(),
            status: Status::Violation,
        });
    }
    diagnostics.append(&mut group_diags);
    if over_budget {
        unallowed
    } else {
        0
    }
}
