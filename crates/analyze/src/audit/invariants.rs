//! Invariant conformance: call-graph checks replacing textual conventions.
//!
//! 1. **BENCH writers route through `artifact_path`** — every non-test
//!    function in `crates/bench/src` that writes a `results/BENCH_*` file
//!    must (transitively) call `artifact_path`, the single place that
//!    suffixes debug-build artifacts so unoptimized runs can never clobber
//!    checked-in release numbers (the PR 7/8 regression class).
//! 2. **Optimizer finalizes reach the plan verifier** — every non-test
//!    `optimize*`/`finalize*` function in `crates/core/src` must
//!    (transitively) reach `lec_plan::verify` (via the `debug_verify_*`
//!    wrappers or directly), so no search path can emit an unverified plan.
//!
//! Both checks are reachability queries on the same over-approximate call
//! graph as the panic pass: over-approximation means a conforming function
//! cannot be flagged for a missing edge only if the edge truly is absent —
//! i.e. false *negatives* are possible in principle (a call resolved too
//! widely), but a flagged function genuinely has no resolvable route to the
//! required sink.

use crate::callgraph::Workspace;
use crate::diag::Diagnostic;
use crate::rules::INVARIANT_CONFORMANCE;

use super::{push_finding, PassCounts};

/// Function names that count as the artifact-path sink.
const ARTIFACT_SINKS: [&str; 1] = ["artifact_path"];

/// Function names that count as the plan-verifier sink.
const VERIFY_SINKS: [&str; 4] = [
    "debug_verify_plan",
    "debug_verify_frontier",
    "verify_plan",
    "verify_frontier",
];

/// Calls that perform a filesystem write.
const WRITE_CALLS: [&str; 3] = ["write", "write_all", "create"];

/// Run both conformance checks.
pub fn run(ws: &Workspace, diagnostics: &mut Vec<Diagnostic>) -> PassCounts {
    let mut counts = PassCounts::default();

    // Check 1: BENCH writers.
    for id in ws.find_fns(|path, _| path.starts_with("crates/bench/src")) {
        if !is_bench_writer(ws, id) {
            continue;
        }
        if !reaches(ws, id, &ARTIFACT_SINKS) {
            let f = ws.item(id);
            push_finding(
                ws,
                diagnostics,
                &mut counts,
                id,
                INVARIANT_CONFORMANCE,
                f.sig_line,
                format!(
                    "`{}` writes a BENCH_* artifact but never reaches `artifact_path`; raw \
                     paths skip the debug-build suffix and let unoptimized runs clobber \
                     checked-in release numbers",
                    ws.qualified_name(id)
                ),
            );
        }
    }

    // Check 2: optimizer finalizes.
    for id in ws.find_fns(|path, f| {
        path.starts_with("crates/core/src")
            && (f.name.starts_with("optimize") || f.name.starts_with("finalize"))
    }) {
        if !reaches(ws, id, &VERIFY_SINKS) {
            let f = ws.item(id);
            push_finding(
                ws,
                diagnostics,
                &mut counts,
                id,
                INVARIANT_CONFORMANCE,
                f.sig_line,
                format!(
                    "`{}` can finish an optimization without reaching the plan verifier \
                     (`lec_plan::verify` or its `debug_verify_*` wrappers); every search \
                     path must emit verified plans",
                    ws.qualified_name(id)
                ),
            );
        }
    }

    counts
}

/// A bench writer: mentions `BENCH_` in its raw body (artifact stem or the
/// write's expect message) and makes a filesystem-write call.
fn is_bench_writer(ws: &Workspace, id: usize) -> bool {
    let loc = ws.fns[id];
    let file = &ws.files[loc.file];
    let f = &file.items.fns[loc.item];
    let mentions_bench = (f.body_lines.0..=f.body_lines.1.min(file.raw_lines.len() - 1))
        .any(|l| file.raw_lines[l].contains("BENCH_"));
    mentions_bench
        && f.calls
            .iter()
            .any(|c| WRITE_CALLS.contains(&c.name.as_str()))
}

/// True when `id` transitively reaches any function named in `sinks`.
fn reaches(ws: &Workspace, id: usize, sinks: &[&str]) -> bool {
    // The sink may be external to the analyzed set only in synthetic test
    // workspaces; on the real workspace all sinks exist. A direct call by
    // name also counts even when resolution found no definition, so the
    // fixture tests can express conformance without defining the sink crate.
    let direct = |fid: usize| {
        ws.item(fid)
            .calls
            .iter()
            .any(|c| sinks.contains(&c.name.as_str()))
    };
    if direct(id) {
        return true;
    }
    let reach = ws.reachable_from(&[id]);
    reach
        .keys()
        .any(|&fid| sinks.contains(&ws.item(fid).name.as_str()) || direct(fid))
}
