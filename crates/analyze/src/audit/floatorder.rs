//! Float-order: floating-point reductions must run over order-pinned
//! iterators.
//!
//! Float addition is not associative, so a sum/fold/min-max over an
//! iterator whose order varies between runs (or between serial and parallel
//! execution) silently breaks the bit-identity invariants. This is exactly
//! the bug class behind the PR 2 epsilon-dominance fix and the PR 7
//! wavefront gather fix.
//!
//! The pass flags, per statement in non-test functions of deterministic
//! paths, a reduction combinator (`.sum(`, `.product(`, `.fold(`,
//! `.reduce(`, `.min_by(`, `.max_by(`) co-occurring with an unordered
//! container token (`HashMap`, `HashSet`). The blanket
//! `no-unordered-iteration` rule already bans those containers wholesale in
//! deterministic paths; this pass pins the *reduction* diagnosis so the
//! fixture self-tests (and any future path granted a container exemption)
//! keep the order-sensitivity argument explicit, and its statement scope
//! catches chains where the container and the fold sit on different lines —
//! invisible to the line-local rule.

use crate::callgraph::Workspace;
use crate::diag::Diagnostic;
use crate::rules::{is_deterministic_path, FLOAT_ORDER};

use super::{push_finding, PassCounts};

/// Reduction combinators whose result is iteration-order sensitive for
/// floats.
const REDUCTIONS: [&str; 7] = [
    ".sum(",
    ".sum::",
    ".product(",
    ".fold(",
    ".reduce(",
    ".min_by(",
    ".max_by(",
];

/// Tokens marking an unordered iteration source.
const UNORDERED: [&str; 2] = ["HashMap", "HashSet"];

/// Run the pass over every non-test function in deterministic paths.
pub fn run(ws: &Workspace, diagnostics: &mut Vec<Diagnostic>) -> PassCounts {
    let mut counts = PassCounts::default();
    for id in ws.find_fns(|path, _| is_deterministic_path(path)) {
        let loc = ws.fns[id];
        let file = &ws.files[loc.file];
        let f = &file.items.fns[loc.item];
        let code = &file.lex.code_lines;
        let end = f.body_lines.1.min(code.len().saturating_sub(1));

        // Walk statements: accumulate lines until a `;` at the end of the
        // chain, then judge the whole statement at once so multi-line
        // builder chains are seen together.
        let mut stmt_lines: Vec<usize> = Vec::new();
        let mut stmt_text = String::new();
        for (line, code_line) in code.iter().enumerate().take(end + 1).skip(f.body_lines.0) {
            if file.lex.in_test.get(line).copied().unwrap_or(false) {
                continue;
            }
            stmt_lines.push(line);
            stmt_text.push_str(code_line);
            stmt_text.push('\n');
            if code_line.contains(';') || line == end {
                judge_statement(ws, diagnostics, &mut counts, id, &stmt_lines, &stmt_text);
                stmt_lines.clear();
                stmt_text.clear();
            }
        }
    }
    counts
}

fn judge_statement(
    ws: &Workspace,
    diagnostics: &mut Vec<Diagnostic>,
    counts: &mut PassCounts,
    fn_id: usize,
    stmt_lines: &[usize],
    stmt_text: &str,
) {
    if !UNORDERED.iter().any(|t| stmt_text.contains(t)) {
        return;
    }
    let Some(red) = REDUCTIONS.iter().find(|r| stmt_text.contains(*r)) else {
        return;
    };
    // Report at the line carrying the reduction.
    let loc = ws.fns[fn_id];
    let file = &ws.files[loc.file];
    let line = stmt_lines
        .iter()
        .copied()
        .find(|&l| file.lex.code_lines[l].contains(red))
        .unwrap_or(stmt_lines[0]);
    push_finding(
        ws,
        diagnostics,
        counts,
        fn_id,
        FLOAT_ORDER,
        line,
        format!(
            "float reduction `{}` over an unordered container in this statement; float \
             addition is not associative, so pin the order (sort, BTree, or indexed gather) \
             before reducing",
            red.trim_end_matches(&['(', ':'][..])
        ),
    );
}
