//! Diagnostic records and the hand-rolled JSON writer.
//!
//! The crate is dependency-free, so JSON serialization is done by hand; the
//! format is small and stable (consumed by `make lint-strict`, which drops
//! the report under `results/LINT.json`).

use std::fmt;

/// Final status of a diagnostic after pragma and ratchet resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Hard violation: fails the lint run.
    Violation,
    /// Suppressed by an `allow` pragma that carries a reason.
    Allowed {
        /// The reason the pragma stated.
        reason: String,
    },
    /// Within the checked-in ratchet budget for its file (unwrap rule only).
    Ratcheted,
}

/// One finding from one rule at one source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, e.g. `no-unordered-iteration`.
    pub rule: &'static str,
    /// Human-readable explanation of the finding.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Resolution status.
    pub status: Status,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match &self.status {
            Status::Violation => "error",
            Status::Allowed { .. } => "allowed",
            Status::Ratcheted => "ratcheted",
        };
        write!(
            f,
            "{}: [{}] {}:{}: {}\n    | {}",
            tag, self.rule, self.file, self.line, self.message, self.snippet
        )
    }
}

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn diag_to_json(d: &Diagnostic) -> String {
    let (status, reason) = match &d.status {
        Status::Violation => ("violation", None),
        Status::Allowed { reason } => ("allowed", Some(reason.as_str())),
        Status::Ratcheted => ("ratcheted", None),
    };
    let mut s = format!(
        "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"status\":\"{}\",\"message\":\"{}\",\"snippet\":\"{}\"",
        json_escape(&d.file),
        d.line,
        d.rule,
        status,
        json_escape(&d.message),
        json_escape(&d.snippet),
    );
    if let Some(r) = reason {
        s.push_str(&format!(",\"reason\":\"{}\"", json_escape(r)));
    }
    s.push('}');
    s
}

/// Render the full report as a deterministic JSON document. `audit_json`,
/// when present, is a pre-rendered object (from `audit::AuditSummary`)
/// embedded verbatim under the `"audit"` key.
pub fn report_to_json(
    diagnostics: &[Diagnostic],
    files_scanned: usize,
    ratchet_entries: &[(String, usize, usize)],
    audit_json: Option<&str>,
) -> String {
    let violations = diagnostics
        .iter()
        .filter(|d| d.status == Status::Violation)
        .count();
    let allowed = diagnostics
        .iter()
        .filter(|d| matches!(d.status, Status::Allowed { .. }))
        .count();
    let ratcheted = diagnostics
        .iter()
        .filter(|d| d.status == Status::Ratcheted)
        .count();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"tool\": \"lec-lint\",\n  \"files_scanned\": {},\n  \"violations\": {},\n  \"allowed\": {},\n  \"ratcheted\": {},\n",
        files_scanned, violations, allowed, ratcheted
    ));
    out.push_str("  \"ratchet\": [\n");
    for (i, (file, actual, budget)) in ratchet_entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\":\"{}\",\"actual\":{},\"budget\":{}}}{}\n",
            json_escape(file),
            actual,
            budget,
            if i + 1 < ratchet_entries.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    if let Some(audit) = audit_json {
        out.push_str(&format!("  \"audit\": {audit},\n"));
    }
    out.push_str("  \"diagnostics\": [\n");
    let reportable: Vec<&Diagnostic> = diagnostics
        .iter()
        .filter(|d| d.status != Status::Ratcheted)
        .collect();
    for (i, d) in reportable.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&diag_to_json(d));
        if i + 1 < reportable.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_counts_statuses() {
        let diags = vec![
            Diagnostic {
                file: "a.rs".into(),
                line: 1,
                rule: "r",
                message: "m".into(),
                snippet: "s".into(),
                status: Status::Violation,
            },
            Diagnostic {
                file: "a.rs".into(),
                line: 2,
                rule: "r",
                message: "m".into(),
                snippet: "s".into(),
                status: Status::Ratcheted,
            },
        ];
        let json = report_to_json(&diags, 2, &[("a.rs".into(), 1, 3)], None);
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"ratcheted\": 1"));
        assert!(json.contains("\"budget\":3"));
        // Ratcheted diagnostics are summarized in the ratchet table, not listed.
        assert_eq!(json.matches("\"status\":\"violation\"").count(), 1);
    }
}
