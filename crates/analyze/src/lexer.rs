//! A small, dependency-free lexical pass over Rust source text.
//!
//! The lint rules in this crate do not need a full parse: they need to know
//! (a) what the *code* on each line is once comments and string/char literal
//! contents are blanked out, (b) what comment text each line carries (for
//! `lec-lint:` pragmas), and (c) which lines live inside `#[cfg(test)]`
//! regions. This module produces exactly that, plus a brace-depth/fn-name
//! context used by function-scoped rules.
//!
//! The scanner understands line comments, nested block comments, string
//! literals, raw strings (`r"…"`, `r#"…"#`, arbitrary hash depth), byte and
//! byte-raw strings, char literals, and lifetimes. Literal *contents* are
//! replaced by spaces so byte offsets and line numbers stay stable.

/// Lexed view of one source file.
#[derive(Debug)]
pub struct FileLex {
    /// Per-line code with comments and literal contents blanked to spaces.
    pub code_lines: Vec<String>,
    /// Per-line comment text (line + block comment payloads, concatenated).
    pub comment_lines: Vec<String>,
    /// Per-line flag: line is inside a `#[cfg(test)]`-gated brace region.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Lex `source` into blanked code lines, comment lines, and test-region flags.
pub fn lex(source: &str) -> FileLex {
    let bytes = source.as_bytes();
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(64);
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();

    let mut state = State::Code;
    let mut i = 0usize;
    // Pending raw-string hash count while consuming the closing `"##…`.
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                match c {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        state = State::LineComment;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    b'"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    b'r' | b'b' => {
                        // Possible raw / byte / byte-raw string prefix.
                        if let Some((hashes, consumed)) = raw_string_open(bytes, i) {
                            state = State::RawStr(hashes);
                            for _ in 0..consumed {
                                code.push(' ');
                            }
                            code.push('"');
                            i += consumed + 1; // prefix + opening quote
                        } else if c == b'b' && bytes.get(i + 1) == Some(&b'"') {
                            state = State::Str;
                            code.push(' ');
                            code.push('"');
                            i += 2;
                        } else {
                            code.push(c as char);
                            i += 1;
                        }
                    }
                    b'\'' => {
                        // Distinguish char literal from lifetime. A lifetime is
                        // `'ident` NOT followed by a closing quote.
                        let is_lifetime = match (bytes.get(i + 1), bytes.get(i + 2)) {
                            (Some(&n1), Some(&n2)) => {
                                (n1.is_ascii_alphabetic() || n1 == b'_') && n2 != b'\''
                            }
                            (Some(&n1), None) => n1.is_ascii_alphabetic() || n1 == b'_',
                            _ => false,
                        };
                        if is_lifetime {
                            code.push('\'');
                            i += 1;
                        } else {
                            state = State::Char;
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        // Non-ASCII bytes are copied through byte-by-byte; we
                        // only ever match ASCII tokens so this is safe enough,
                        // but keep UTF-8 intact by pushing the full char.
                        let ch_len = utf8_len(c);
                        code.push_str(&source[i..i + ch_len]);
                        i += ch_len;
                    }
                }
            }
            State::LineComment => {
                let ch_len = utf8_len(c);
                comment.push_str(&source[i..i + ch_len]);
                code.push(' ');
                i += ch_len;
            }
            State::BlockComment(depth) => {
                if c == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    let ch_len = utf8_len(c);
                    comment.push_str(&source[i..i + ch_len]);
                    code.push(' ');
                    i += ch_len;
                }
            }
            State::Str => {
                if c == b'\\' && i + 1 < bytes.len() {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == b'"' {
                    state = State::Code;
                    code.push('"');
                    i += 1;
                } else {
                    let ch_len = utf8_len(c);
                    code.push(' ');
                    i += ch_len;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' && has_hashes(bytes, i + 1, hashes) {
                    state = State::Code;
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    let ch_len = utf8_len(c);
                    code.push(' ');
                    i += ch_len;
                }
            }
            State::Char => {
                if c == b'\\' && i + 1 < bytes.len() {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == b'\'' {
                    state = State::Code;
                    code.push('\'');
                    i += 1;
                } else {
                    let ch_len = utf8_len(c);
                    code.push(' ');
                    i += ch_len;
                }
            }
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);

    let in_test = mark_test_regions(&code_lines);
    FileLex {
        code_lines,
        comment_lines,
        in_test,
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Detect a raw-string opener (`r"`, `r#"`, `br#"` …) starting at `i`.
/// Returns `(hash_count, bytes_before_quote)`.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j - i))
    } else {
        None
    }
}

fn has_hashes(bytes: &[u8], start: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(start + k) == Some(&b'#'))
}

/// Mark every line that falls inside a `#[cfg(test)]`-gated brace region.
///
/// The scan finds `#[cfg(…)]` attributes whose argument list contains the
/// standalone word `test` (covers `#[cfg(test)]` and `#[cfg(all(test, …))]`),
/// then brace-matches from the first `{` after the attribute. This is exact on
/// blanked code because no braces survive inside literals or comments.
fn mark_test_regions(code_lines: &[String]) -> Vec<bool> {
    let joined: String = {
        let mut s = String::new();
        for line in code_lines {
            s.push_str(line);
            s.push('\n');
        }
        s
    };
    let bytes = joined.as_bytes();
    let mut in_test = vec![false; code_lines.len()];
    let mut i = 0usize;
    while let Some(off) = find_from(&joined, i, "#") {
        i = off + 1;
        // Expect `[cfg(` next, tolerating whitespace.
        let mut j = skip_ws(bytes, i);
        if bytes.get(j) != Some(&b'[') {
            continue;
        }
        j = skip_ws(bytes, j + 1);
        if !joined[j..].starts_with("cfg") {
            continue;
        }
        j = skip_ws(bytes, j + 3);
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        // Find matching `)` of the cfg argument list.
        let (arg_end, _) = match match_delim(bytes, j, b'(', b')') {
            Some(v) => v,
            None => continue,
        };
        if !contains_word(&joined[j..arg_end], "test") {
            continue;
        }
        // Find the `{` opening the gated item and its matching close.
        let brace_open = match bytes[arg_end..].iter().position(|&b| b == b'{') {
            Some(p) => arg_end + p,
            None => continue,
        };
        let (brace_close, _) = match match_delim(bytes, brace_open, b'{', b'}') {
            Some(v) => v,
            None => {
                // Unbalanced (truncated file): mark to EOF.
                let start_line = line_of(&joined, off);
                for flag in in_test.iter_mut().skip(start_line) {
                    *flag = true;
                }
                break;
            }
        };
        let start_line = line_of(&joined, off);
        let end_line = line_of(&joined, brace_close);
        for flag in in_test.iter_mut().take(end_line + 1).skip(start_line) {
            *flag = true;
        }
        i = arg_end;
    }
    in_test
}

fn find_from(haystack: &str, from: usize, needle: &str) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| from + p)
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

/// From an opening delimiter at `open_at`, return `(index_of_close, depth_ok)`.
fn match_delim(bytes: &[u8], open_at: usize, open: u8, close: u8) -> Option<(usize, ())> {
    let mut depth = 0i64;
    for (k, &b) in bytes.iter().enumerate().skip(open_at) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some((k, ()));
            }
        }
    }
    None
}

fn line_of(joined: &str, byte: usize) -> usize {
    joined.as_bytes()[..byte]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// True when `word` occurs in `s` with non-identifier characters on both sides.
pub fn contains_word(s: &str, word: &str) -> bool {
    let bytes = s.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = s.get(from..).and_then(|t| t.find(word)) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Iterate identifier tokens on a blanked code line as `(byte_offset, token)`.
pub fn idents(line: &str) -> Vec<(usize, &str)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if is_ident_byte(bytes[i]) && !bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push((start, &line[start..i]));
        } else if bytes[i].is_ascii_digit() {
            // Skip numeric literals (incl. `1e-9`, `0x1f`, `1_000u64`) so the
            // trailing type suffix or exponent is not reported as an ident.
            while i < bytes.len()
                && (is_ident_byte(bytes[i])
                    || bytes[i] == b'.'
                    || ((bytes[i] == b'+' || bytes[i] == b'-')
                        && matches!(bytes[i - 1], b'e' | b'E')))
            {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Scan a blanked code line for float literals with a negative exponent
/// (`1e-9`, `2.5E-3`) — the epsilon-tolerance shape. Returns byte offsets.
pub fn negative_exponent_literals(line: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() && (i == 0 || !is_ident_byte(bytes[i - 1])) {
            let start = i;
            let mut seen_neg_exp = false;
            while i < bytes.len() {
                match bytes[i] {
                    b'0'..=b'9' | b'_' | b'.' => i += 1,
                    b'e' | b'E'
                        if i + 1 < bytes.len()
                            && (bytes[i + 1] == b'-'
                                || bytes[i + 1] == b'+'
                                || bytes[i + 1].is_ascii_digit()) =>
                    {
                        if bytes[i + 1] == b'-' {
                            seen_neg_exp = true;
                        }
                        i += 2;
                    }
                    _ => break,
                }
            }
            if seen_neg_exp {
                out.push(start);
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src =
            "let s = \"HashMap in a string\"; // HashMap in a comment\nlet h = HashMap::new();\n";
        let lx = lex(src);
        assert!(!lx.code_lines[0].contains("HashMap"));
        assert!(lx.comment_lines[0].contains("HashMap in a comment"));
        assert!(lx.code_lines[1].contains("HashMap"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"un\"wrap() . \"# ; let t = x.unwrap();\n";
        let lx = lex(src);
        let line = &lx.code_lines[0];
        assert_eq!(line.matches("unwrap").count(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let lx = lex(src);
        assert!(lx.code_lines[0].contains("let x = 1;"));
        assert!(!lx.code_lines[0].contains("outer"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet h = HashSet::new();\n";
        let lx = lex(src);
        assert!(lx.code_lines[2].contains("HashSet"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let lx = lex(src);
        assert!(!lx.in_test[0]);
        assert!(lx.in_test[1]);
        assert!(lx.in_test[2]);
        assert!(lx.in_test[3]);
        assert!(lx.in_test[4]);
        assert!(!lx.in_test[5]);
    }

    #[test]
    fn cfg_all_test_region_is_marked() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod tests { fn t() {} }\nfn prod() {}\n";
        let lx = lex(src);
        assert!(lx.in_test[0]);
        assert!(lx.in_test[1]);
        assert!(!lx.in_test[2]);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(feature = \"testing\")]\nmod m { fn t() {} }\n";
        let lx = lex(src);
        assert!(!lx.in_test[1]);
    }

    #[test]
    fn negative_exponents_found() {
        assert_eq!(negative_exponent_literals("if d < 1e-9 {"), vec![7]);
        assert_eq!(negative_exponent_literals("let x = 2.5E-3;"), vec![8]);
        assert!(negative_exponent_literals("let x = 1e9;").is_empty());
        assert!(negative_exponent_literals("let x = 10;").is_empty());
    }

    #[test]
    fn ident_scan_skips_numeric_suffixes() {
        let toks = idents("let x = 1_000u64 + abs(1e-9) + foo;");
        let names: Vec<&str> = toks.iter().map(|&(_, t)| t).collect();
        assert_eq!(names, vec!["let", "x", "abs", "foo"]);
    }
}
