//! Fixture-based self-tests for the lint rules.
//!
//! Each fixture under `tests/fixtures/` is linted under a path label that
//! makes the rule under test applicable, and the expected violation/allowed
//! counts are asserted. The fixtures directory itself is excluded from the
//! workspace scan (`lec_analyze::collect_sources` skips it), so the
//! deliberate violations here can never fail `make lint-strict`.

use lec_analyze::diag::{Diagnostic, Status};
use lec_analyze::rules::{self, lint_source};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn by_status(diags: &[Diagnostic]) -> (Vec<&Diagnostic>, Vec<&Diagnostic>) {
    let violations = diags
        .iter()
        .filter(|d| d.status == Status::Violation)
        .collect();
    let allowed = diags
        .iter()
        .filter(|d| matches!(d.status, Status::Allowed { .. }))
        .collect();
    (violations, allowed)
}

#[test]
fn unordered_iteration_fixture() {
    let diags = lint_source(
        "crates/serve/src/fixture.rs",
        &fixture("unordered_iteration.rs"),
    );
    let (violations, allowed) = by_status(&diags);
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations
        .iter()
        .all(|d| d.rule == rules::NO_UNORDERED_ITERATION));
    assert_eq!(allowed.len(), 1);
    // The in-test HashSet and the string-literal mention produced nothing.
    assert!(diags.iter().all(|d| !d.snippet.contains("HashSet")));
}

#[test]
fn wallclock_fixture() {
    let diags = lint_source("crates/core/src/fixture.rs", &fixture("wallclock.rs"));
    let (violations, allowed) = by_status(&diags);
    assert_eq!(violations.len(), 3, "{violations:?}");
    assert!(violations.iter().all(|d| d.rule == rules::NO_WALLCLOCK));
    assert_eq!(allowed.len(), 1);
    match &allowed[0].status {
        Status::Allowed { reason } => assert!(reason.contains("observability")),
        other => panic!("expected Allowed, got {other:?}"),
    }
}

#[test]
fn unwrap_fixture() {
    let diags = lint_source("crates/plan/src/fixture.rs", &fixture("unwrap_lib.rs"));
    let (violations, allowed) = by_status(&diags);
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations.iter().all(|d| d.rule == rules::NO_UNWRAP_IN_LIB));
    assert!(allowed.is_empty());
}

#[test]
fn unwrap_fixture_ignored_outside_lib_paths() {
    let diags = lint_source("crates/plan/src/bin/tool.rs", &fixture("unwrap_lib.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn epsilon_dominance_fixture() {
    let diags = lint_source(
        "crates/core/src/fixture.rs",
        &fixture("epsilon_dominance.rs"),
    );
    let (violations, allowed) = by_status(&diags);
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations
        .iter()
        .all(|d| d.rule == rules::NO_EPSILON_DOMINANCE));
    // Both hits are inside `dominates`; the identical literal in
    // `convergence_check` and the exact `insert_frontier` are clean.
    assert!(violations.iter().all(|d| d.snippet.contains("1e-9")));
    assert!(allowed.is_empty());
}

#[test]
fn lossy_cast_fixture() {
    let diags = lint_source("crates/cost/src/fixture.rs", &fixture("lossy_cast.rs"));
    let (violations, _) = by_status(&diags);
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations
        .iter()
        .all(|d| d.rule == rules::NO_LOSSY_FLOAT_CAST));
    let snippets: Vec<&str> = violations.iter().map(|d| d.snippet.as_str()).collect();
    assert!(snippets.iter().any(|s| s.contains("as u64")));
    assert!(snippets.iter().any(|s| s.contains("as f32")));
}

#[test]
fn lossy_cast_fixture_ignored_outside_cost_paths() {
    let diags = lint_source("crates/exec/src/fixture.rs", &fixture("lossy_cast.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn bad_pragma_fixture() {
    let diags = lint_source("crates/plan/src/fixture.rs", &fixture("bad_pragma.rs"));
    let (violations, allowed) = by_status(&diags);
    let bad: Vec<_> = violations
        .iter()
        .filter(|d| d.rule == rules::BAD_PRAGMA)
        .collect();
    assert_eq!(bad.len(), 2, "{violations:?}");
    // The reasonless pragma suppressed nothing: the unwrap is still an error.
    assert!(violations.iter().any(|d| d.rule == rules::NO_UNWRAP_IN_LIB));
    assert!(allowed.is_empty());
}

#[test]
fn fault_wallclock_fixture_flagged_only_under_the_pinned_file() {
    let src = fixture("fault_wallclock.rs");
    // Under the pinned fault-layer label every deterministic rule applies:
    // two HashMap uses, the `Instant` import and field, and the ambient
    // `from_entropy` seed are violations; the declared observability read
    // is allowed by its reasoned pragma; the in-test read produces nothing.
    let diags = lint_source("crates/exec/src/fault.rs", &src);
    let (violations, allowed) = by_status(&diags);
    assert_eq!(violations.len(), 5, "{violations:?}");
    assert_eq!(
        violations
            .iter()
            .filter(|d| d.rule == rules::NO_WALLCLOCK)
            .count(),
        3
    );
    assert_eq!(
        violations
            .iter()
            .filter(|d| d.rule == rules::NO_UNORDERED_ITERATION)
            .count(),
        2
    );
    assert_eq!(allowed.len(), 1);
    // A sibling exec file is outside the pinned set: the whole fixture
    // lints clean there.
    let diags = lint_source("crates/exec/src/executor.rs", &src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn real_fault_layer_sources_lint_clean() {
    // The shipped fault layer and resilience module must satisfy the
    // contract the fixture above violates.
    for rel in ["crates/exec/src/fault.rs", "crates/serve/src/resilience.rs"] {
        let path = format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let diags = lint_source(rel, &src);
        let (violations, _) = by_status(&diags);
        assert!(violations.is_empty(), "{rel}: {violations:?}");
    }
}

#[test]
fn clean_fixture_is_clean_under_every_label() {
    let src = fixture("clean.rs");
    for label in [
        "crates/core/src/fixture.rs",
        "crates/cost/src/fixture.rs",
        "crates/serve/src/fixture.rs",
        "src/fixture.rs",
    ] {
        let diags = lint_source(label, &src);
        assert!(diags.is_empty(), "{label}: {diags:?}");
    }
}
