//! Integration tests for the `lec-audit` call-graph passes: synthetic
//! workspaces exercising each pass and the witness machinery, plus the
//! real-workspace certification assert (the serve and optimize root groups
//! must stay panic-free at budget zero).

use lec_analyze::audit::run_audit;
use lec_analyze::callgraph::Workspace;
use lec_analyze::diag::{Diagnostic, Status};
use lec_analyze::ratchet::Ratchet;
use lec_analyze::{run, RunOptions};

fn ws(files: &[(&str, &str)]) -> Workspace {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    Workspace::build(&sources)
}

fn violations<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
    diags
        .iter()
        .filter(|d| d.rule == rule && d.status == Status::Violation)
        .collect()
}

#[test]
fn cross_crate_call_resolves_and_flags_reachable_unwrap() {
    let w = ws(&[
        (
            "crates/serve/src/lib.rs",
            "pub fn serve_request() {\n    lec_core::optimize_all();\n}\n",
        ),
        (
            "crates/core/src/lib.rs",
            "pub fn optimize_all() {\n    helper();\n}\nfn helper() {\n    x.unwrap();\n}\n",
        ),
    ]);
    let out = run_audit(&w, &Ratchet::default());
    // The unwrap is reachable from BOTH root groups (serve crosses the
    // crate boundary; optimize_all is itself an optimize root).
    assert_eq!(out.summary.serve_roots, 1);
    assert_eq!(out.summary.optimize_roots, 1);
    let v = violations(&out.diagnostics, "panic-reachability");
    assert!(v
        .iter()
        .any(|d| d.file == "crates/core/src/lib.rs" && d.line == 5));
}

#[test]
fn witness_renders_the_full_call_path_three_deep() {
    let w = ws(&[
        (
            "crates/serve/src/lib.rs",
            "pub fn serve_one() {\n    stage_one();\n}\n",
        ),
        (
            "crates/core/src/lib.rs",
            "pub fn stage_one() {\n    stage_two();\n}\npub fn stage_two() {\n    boom();\n}\n\
             pub fn boom() {\n    opt.unwrap();\n}\n",
        ),
    ]);
    let out = run_audit(&w, &Ratchet::default());
    let v = violations(&out.diagnostics, "panic-reachability");
    let site = v
        .iter()
        .find(|d| d.file == "crates/core/src/lib.rs" && d.line == 8)
        .expect("unwrap site flagged");
    let expected = "serve_one (crates/serve/src/lib.rs:1) → \
                    stage_one (crates/core/src/lib.rs:1) → \
                    stage_two (crates/core/src/lib.rs:4) → \
                    boom (crates/core/src/lib.rs:7)";
    assert!(
        site.message.contains(expected),
        "witness mismatch: {}",
        site.message
    );
    assert!(site
        .message
        .contains("`.unwrap()` reachable from `serve` roots"));
}

#[test]
fn trait_dispatch_over_approximates_to_every_method_of_that_name() {
    let w = ws(&[
        (
            "crates/serve/src/lib.rs",
            "pub fn serve_priced(m: &M) {\n    m.price();\n}\n",
        ),
        (
            "crates/cost/src/model_a.rs",
            "pub struct A;\nimpl A {\n    pub fn price(&self) -> f64 {\n        \
             self.table[self.i + 1]\n    }\n}\n",
        ),
        (
            "crates/cost/src/model_b.rs",
            "pub struct B;\nimpl B {\n    pub fn price(&self) -> f64 {\n        1.0\n    }\n}\n",
        ),
    ]);
    let out = run_audit(&w, &Ratchet::default());
    // The receiver type is unknown, so `.price()` reaches BOTH impls; only
    // A::price holds a panic site (arithmetic index).
    assert_eq!(out.summary.serve_roots, 1);
    let v = violations(&out.diagnostics, "panic-reachability");
    let site = v
        .iter()
        .find(|d| d.file == "crates/cost/src/model_a.rs")
        .expect("A::price site flagged");
    assert!(site.message.contains("A::price"));
    assert!(site.message.contains("arithmetic index"));
}

#[test]
fn sample_and_certify_roots_flag_reachable_panics() {
    let w = ws(&[
        (
            "crates/catalog/src/sampling.rs",
            "pub fn sample_selectivity() {\n    draw();\n}\nfn draw() {\n    \
             bucket.expect(\"seeded\");\n}\n",
        ),
        (
            "crates/core/src/certificate.rs",
            "pub fn certify_plan() {\n    bounds.unwrap();\n}\n",
        ),
    ]);
    let out = run_audit(&w, &Ratchet::default());
    assert_eq!(out.summary.sample_roots, 1);
    assert_eq!(out.summary.certify_roots, 1);
    assert_eq!(out.summary.serve_roots, 0);
    assert_eq!(out.summary.optimize_roots, 0);
    let v = violations(&out.diagnostics, "panic-reachability");
    assert!(v
        .iter()
        .any(|d| d.message.contains("reachable from `sample` roots")));
    assert!(v
        .iter()
        .any(|d| d.message.contains("reachable from `certify` roots")));
}

#[test]
fn call_graph_cycles_terminate() {
    let w = ws(&[(
        "crates/core/src/lib.rs",
        "pub fn optimize_loop() {\n    step_a();\n}\nfn step_a() {\n    step_b();\n}\n\
         fn step_b() {\n    step_a();\n    x.unwrap();\n}\n",
    )]);
    let out = run_audit(&w, &Ratchet::default());
    assert_eq!(out.summary.optimize_roots, 1);
}

#[test]
fn panic_budget_softens_violations_to_ratcheted() {
    let ratchet = Ratchet::parse("[panic-reachability]\n\"optimize\" = 1\n").expect("valid toml");
    let w = ws(&[(
        "crates/core/src/lib.rs",
        "pub fn optimize_all() {\n    x.unwrap();\n}\n",
    )]);
    let out = run_audit(&w, &ratchet);
    assert_eq!(out.summary.optimize_roots, 0);
    assert_eq!(out.summary.panic_ratcheted, 1);
    assert!(violations(&out.diagnostics, "panic-reachability").is_empty());
}

#[test]
fn fn_scope_pragma_allows_every_site_in_the_fn() {
    let w = ws(&[(
        "crates/serve/src/lib.rs",
        "// lec-lint: allow(panic-reachability) — both tables are seeded at construction\n\
         pub fn serve_two() {\n    a.unwrap();\n    b.unwrap();\n}\n",
    )]);
    let out = run_audit(&w, &Ratchet::default());
    assert_eq!(out.summary.serve_roots, 0);
    assert_eq!(out.summary.panic_allowed, 2);
}

#[test]
fn concurrency_flags_unmediated_capture_and_relaxed() {
    let w = ws(&[(
        "crates/core/src/par_fixture.rs",
        "pub fn gather(flag: &std::sync::atomic::AtomicBool) -> f64 {\n    \
         let mut acc = 0.0;\n    \
         std::thread::scope(|s| {\n        \
         s.spawn(|| {\n            acc += 1.0;\n        });\n    \
         });\n    \
         let _seen = flag.load(std::sync::atomic::Ordering::Relaxed);\n    \
         acc\n}\n",
    )]);
    let out = run_audit(&w, &Ratchet::default());
    // One shared-mutable-capture finding, one Relaxed finding.
    assert_eq!(out.summary.concurrency.violations, 2);
    let v = violations(&out.diagnostics, "concurrency-determinism");
    assert_eq!(v.len(), 2);
}

#[test]
fn concurrency_accepts_mediated_captures() {
    let w = ws(&[(
        "crates/core/src/par_fixture.rs",
        "pub fn gather() -> u64 {\n    \
         let total = std::sync::atomic::AtomicU64::new(0);\n    \
         std::thread::scope(|s| {\n        \
         s.spawn(|| {\n            total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);\n        \
         });\n    });\n    \
         total.into_inner()\n}\n",
    )]);
    let out = run_audit(&w, &Ratchet::default());
    assert_eq!(out.summary.concurrency.violations, 0);
}

#[test]
fn float_order_flags_reduction_over_unordered_container() {
    let w = ws(&[(
        "crates/core/src/sum_fixture.rs",
        "pub fn total() -> f64 {\n    \
         std::collections::HashMap::<u32, f64>::new()\n        \
         .values()\n        .sum()\n}\n",
    )]);
    let out = run_audit(&w, &Ratchet::default());
    assert_eq!(out.summary.float_order.violations, 1);
    let v = violations(&out.diagnostics, "float-order");
    // Reported at the line carrying the reduction, not the container.
    assert_eq!(v[0].line, 4);
}

#[test]
fn invariants_require_bench_writers_to_reach_artifact_path() {
    let w = ws(&[(
        "crates/bench/src/experiments/x99_fixture.rs",
        "pub fn run_bad() {\n    \
         std::fs::write(\"results/BENCH_x99.json\", \"{}\").expect(\"write BENCH_x99\");\n}\n\
         pub fn run_good() {\n    \
         let path = artifact_path(\"BENCH_x99.json\");\n    \
         std::fs::write(path, \"{}\").expect(\"write BENCH_x99\");\n}\n",
    )]);
    let out = run_audit(&w, &Ratchet::default());
    assert_eq!(out.summary.invariants.violations, 1);
    let v = violations(&out.diagnostics, "invariant-conformance");
    assert!(v[0].message.contains("run_bad"));
}

#[test]
fn invariants_require_optimizers_to_reach_the_verifier() {
    let w = ws(&[(
        "crates/core/src/lib.rs",
        "pub fn optimize_unverified() -> u32 {\n    7\n}\n\
         pub fn optimize_verified() -> u32 {\n    debug_verify_plan();\n    7\n}\n",
    )]);
    let out = run_audit(&w, &Ratchet::default());
    assert_eq!(out.summary.invariants.violations, 1);
    let v = violations(&out.diagnostics, "invariant-conformance");
    assert!(v[0].message.contains("optimize_unverified"));
}

#[test]
fn real_workspace_certifies_clean_at_budget_zero() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let opts = RunOptions {
        audit: true,
        strict: true,
        ..RunOptions::new(&root)
    };
    let report = run(&opts).expect("audit run succeeds");
    let audit = report.audit.as_ref().expect("audit section present");
    assert_eq!(audit.serve_roots, 0, "serve loop must stay panic-free");
    assert_eq!(audit.optimize_roots, 0, "optimizers must stay panic-free");
    assert_eq!(audit.sample_roots, 0, "sampling must stay panic-free");
    assert_eq!(audit.certify_roots, 0, "certification must stay panic-free");
    assert_eq!(audit.concurrency.violations, 0);
    assert_eq!(audit.float_order.violations, 0);
    assert_eq!(audit.invariants.violations, 0);
    assert_eq!(
        report.violation_count(),
        0,
        "workspace must lint clean: {:?}",
        report
            .diagnostics
            .iter()
            .filter(|d| d.status == Status::Violation)
            .collect::<Vec<_>>()
    );
    // The JSON artifact carries the audit section the CI smoke asserts key on.
    let json = report.to_json();
    assert!(json.contains("\"audit\""));
    assert!(json.contains("\"serve_roots\": 0"));
    assert!(json.contains("\"sample_roots\": 0"));
    assert!(json.contains("\"certify_roots\": 0"));
}
