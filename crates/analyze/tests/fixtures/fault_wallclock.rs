//! Fixture: a fault layer that cheats on the determinism contract.
//!
//! Linted under the pinned label `crates/exec/src/fault.rs` (where every
//! deterministic rule applies) and under a sibling exec label (where none
//! do). The violations here are the exact shapes the no-wallclock rule
//! exists to keep out of the fault layer: wall-clock triggers, ambient
//! entropy seeds, and hash-ordered schedules.

use std::collections::HashMap;
use std::time::Instant;

struct Schedule {
    fired: HashMap<u64, bool>,
    started: Instant,
}

impl Schedule {
    fn seeded() -> u64 {
        // Ambient OS entropy: two runs, two schedules.
        let rng = rand::rngs::StdRng::from_entropy();
        let _ = rng;
        0
    }

    fn should_fire(&self) -> bool {
        // Wall-clock trigger: replay-hostile.
        self.started.elapsed().as_millis() % 7 == 0
    }

    fn tick(&self) -> u128 {
        // Observability wall-clock reads are fine when declared.
        let t = Instant::now(); // lec-lint: allow(no-wallclock-or-ambient-rng) — observability only
        t.elapsed().as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_test_wallclock_is_exempt() {
        let _ = Instant::now();
    }
}
