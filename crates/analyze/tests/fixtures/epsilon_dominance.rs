// Fixture: no-epsilon-dominance. Scanned with a deterministic-path label.

/// Epsilon tolerance in a dominance comparator: two hits (literal + EPSILON).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| *x <= *y + 1e-9 || (*x - *y).abs() < f64::EPSILON)
}

/// Tolerances outside dominance/frontier functions are someone else's business.
pub fn convergence_check(delta: f64) -> bool {
    delta < 1e-9
}

/// A frontier function using exact comparison: clean.
pub fn insert_frontier(frontier: &mut Vec<f64>, candidate: f64) {
    if frontier.iter().all(|&f| candidate < f) {
        frontier.push(candidate);
    }
}
