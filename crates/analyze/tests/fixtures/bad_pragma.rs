// Fixture: bad-pragma.

// lec-lint: allow(no-unwrap-in-lib)
pub fn reasonless(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn unknown_rule() -> u32 {
    1 // lec-lint: allow(no-such-rule) — the reason does not save an unknown rule
}
