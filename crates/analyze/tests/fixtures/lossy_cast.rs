// Fixture: no-lossy-float-cast. Scanned with a cost-path label.

pub fn truncates(total_cost: f64) -> u64 {
    total_cost as u64
}

pub fn halves(cost: f64) -> f32 {
    cost as f32
}

pub fn rounded_is_fine(total_cost: f64) -> u64 {
    total_cost.round() as u64
}

pub fn counts_are_fine(len: usize) -> u64 {
    len as u64
}
