// Fixture: no-unordered-iteration. Scanned with a deterministic-path label.
use std::collections::HashMap;

pub struct Cache {
    entries: HashMap<u64, String>,
}

pub struct Allowed {
    // lec-lint: allow(no-unordered-iteration) — keys are drained into a sorted vec before iteration
    entries: HashMap<u64, String>,
}

pub fn in_string() -> &'static str {
    "HashMap mentioned in a string literal is not a hit"
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_sets_are_fine() {
        let _s: HashSet<u32> = HashSet::new();
    }
}
