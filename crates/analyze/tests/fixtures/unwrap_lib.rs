// Fixture: no-unwrap-in-lib. Scanned with a library-path label.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn second(v: &[u32]) -> u32 {
    *v.get(1).unwrap()
}

pub fn named_unwrap_fn_is_not_a_hit() -> Unwrap {
    Unwrap
}

pub struct Unwrap;

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
        assert_eq!(*v.last().unwrap(), 1);
    }
}
