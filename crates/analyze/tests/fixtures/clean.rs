// Fixture: a file every rule is happy with, even under every path label.
use std::collections::BTreeMap;

/// Exact dominance, typed errors, ordered maps, rounded casts.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

pub fn lookup(m: &BTreeMap<u64, f64>, k: u64) -> Result<f64, String> {
    m.get(&k).copied().ok_or_else(|| format!("missing key {k}"))
}

pub fn pages(cost: f64) -> u64 {
    cost.ceil() as u64
}
