// Fixture: no-wallclock-or-ambient-rng. Scanned with a deterministic-path label.
use std::time::Instant;

pub fn timed() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn seeded() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn observed_millis() -> u128 {
    // lec-lint: allow(no-wallclock-or-ambient-rng) — observability-only timing, never feeds plan choice
    std::time::Instant::now().elapsed().as_millis()
}
