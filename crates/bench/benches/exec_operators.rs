//! Simulator operator throughput (supports experiment X9): how fast the
//! page-level operators run at various memory grants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_exec::datagen::{domain_for_selectivity, generate, DataGenSpec};
use lec_exec::ops::{block_nested_loop_join, external_sort, grace_hash_join, sort_merge_join};
use lec_exec::{BufferPool, Disk, RelId};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn setup() -> (Disk, RelId, RelId) {
    let mut disk = Disk::new();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let domain = domain_for_selectivity(5e-4);
    let a = generate(
        &mut disk,
        &mut rng,
        &DataGenSpec {
            pages: 96,
            key_domain: domain,
        },
    );
    let b = generate(
        &mut disk,
        &mut rng,
        &DataGenSpec {
            pages: 32,
            key_domain: domain,
        },
    );
    (disk, a, b)
}

fn operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_operators");
    for m in [6usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("external_sort", m), &m, |bench, _| {
            bench.iter_with_setup(setup, |(mut disk, a, _)| {
                let mut pool = BufferPool::with_capacity(m);
                external_sort(&mut disk, &mut pool, a, m).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("sort_merge", m), &m, |bench, _| {
            bench.iter_with_setup(setup, |(mut disk, a, b)| {
                let mut pool = BufferPool::with_capacity(m);
                sort_merge_join(&mut disk, &mut pool, a, b, m, false, false).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("grace_hash", m), &m, |bench, _| {
            bench.iter_with_setup(setup, |(mut disk, a, b)| {
                let mut pool = BufferPool::with_capacity(m);
                grace_hash_join(&mut disk, &mut pool, a, b, m).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("block_nl", m), &m, |bench, _| {
            bench.iter_with_setup(setup, |(mut disk, a, b)| {
                let mut pool = BufferPool::with_capacity(m);
                block_nested_loop_join(&mut disk, &mut pool, a, b, m).unwrap()
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = operators
}
criterion_main!(benches);
