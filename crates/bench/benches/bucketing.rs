//! Bucketing strategy timing (experiment X8's timing half): summarizing a
//! fine distribution and the downstream optimizer cost per strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_core::{alg_c, bucketing, MemoryModel};
use lec_cost::PaperCostModel;
use lec_stats::Bucketing;
use lec_workload::{envs, queries};
use std::hint::black_box;

fn strategies(c: &mut Criterion) {
    let q = queries::example_1_1();
    let fine = envs::lognormal(1100.0, 0.6, 512);

    let mut group = c.benchmark_group("bucketize_512_points");
    group.bench_function("equi_width_8", |b| {
        b.iter(|| Bucketing::EquiWidth(8).apply(black_box(&fine)).unwrap())
    });
    group.bench_function("equi_depth_8", |b| {
        b.iter(|| Bucketing::EquiDepth(8).apply(black_box(&fine)).unwrap())
    });
    group.bench_function("level_set", |b| {
        b.iter(|| bucketing::bucketize_memory(&q, &PaperCostModel, black_box(&fine)).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("optimize_after_bucketing");
    let coarse_ls = bucketing::bucketize_memory(&q, &PaperCostModel, &fine).unwrap();
    let coarse_ew = Bucketing::EquiWidth(8).apply(&fine).unwrap();
    for (name, dist) in [
        ("fine_512", fine.clone()),
        ("level_set", coarse_ls),
        ("equi_width_8", coarse_ew),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &dist, |b, d| {
            b.iter(|| {
                alg_c::optimize(&q, &PaperCostModel, &MemoryModel::Static(d.clone())).unwrap()
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = strategies
}
criterion_main!(benches);
