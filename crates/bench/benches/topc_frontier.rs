//! Proposition 3.1 timing (experiment X4's timing half): frontier merge vs
//! naive all-pairs merge, and the top-c DP end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_bench::fixtures::{chain_query, SEED};
use lec_core::topc::{frontier_merge, top_c_plans, MergeStrategy};
use lec_cost::PaperCostModel;
use std::hint::black_box;

fn merge_primitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier_merge");
    for n in [16usize, 64, 256] {
        let left: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let right: Vec<f64> = (0..n).map(|i| 3.5 * i as f64).collect();
        group.bench_with_input(BenchmarkId::new("frontier", n), &n, |b, _| {
            b.iter(|| frontier_merge(black_box(&left), black_box(&right), n))
        });
        group.bench_with_input(BenchmarkId::new("naive_all_pairs", n), &n, |b, _| {
            b.iter(|| {
                let mut sums: Vec<f64> = left
                    .iter()
                    .flat_map(|l| right.iter().map(move |r| l + r))
                    .collect();
                sums.sort_by(f64::total_cmp);
                sums.truncate(n);
                sums
            })
        });
    }
    group.finish();
}

fn topc_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("top_c_dp");
    let q = chain_query(5, SEED + 40);
    for cc in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("frontier", cc), &cc, |b, _| {
            b.iter(|| {
                top_c_plans(
                    black_box(&q),
                    &PaperCostModel,
                    90.0,
                    cc,
                    MergeStrategy::Frontier,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", cc), &cc, |b, _| {
            b.iter(|| {
                top_c_plans(
                    black_box(&q),
                    &PaperCostModel,
                    90.0,
                    cc,
                    MergeStrategy::Naive,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = merge_primitive, topc_dp
}
criterion_main!(benches);
