//! Expected-cost kernel timing (experiment X7's timing half): the
//! `O(b_M + b_A + b_B)` kernels of §3.6.1–3.6.2 vs the naive triple loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_cost::fast_expect::{expected_join_fast, expected_join_naive};
use lec_cost::{JoinMethod, PaperCostModel};
use lec_stats::Distribution;
use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_dist(rng: &mut ChaCha8Rng, b: usize, scale: f64) -> Distribution {
    Distribution::from_weights((0..b).map(|_| {
        let v = 1.0 + (rng.next_u32() % 1_000_000) as f64 / 1e6 * scale;
        let w = 0.05 + (rng.next_u32() % 1000) as f64 / 1000.0;
        (v, w)
    }))
    .expect("positive weights")
}

fn kernels(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for method in JoinMethod::ALL {
        let mut group = c.benchmark_group(format!("expected_{method}"));
        for b in [8usize, 32, 128] {
            let a = random_dist(&mut rng, b, 1e6);
            let bd = random_dist(&mut rng, b, 1e6);
            let m = random_dist(&mut rng, b, 2e3);
            group.bench_with_input(BenchmarkId::new("naive", b), &b, |bench, _| {
                bench.iter(|| {
                    expected_join_naive(
                        &PaperCostModel,
                        method,
                        black_box(&a),
                        black_box(&bd),
                        black_box(&m),
                    )
                })
            });
            group.bench_with_input(BenchmarkId::new("fast", b), &b, |bench, _| {
                bench.iter(|| {
                    expected_join_fast(method, black_box(&a), black_box(&bd), black_box(&m))
                })
            });
        }
        group.finish();
    }
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = kernels
}
criterion_main!(benches);
