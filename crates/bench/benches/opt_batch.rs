//! Batch-optimization throughput: `lecopt::BatchOptimizer` fanning a
//! workload of independent queries across a thread pool, against the same
//! workload optimized one query at a time on one thread.
//!
//! Complements `opt_scaling`'s `serial_vs_parallel` group (which
//! parallelizes *inside* one large query): here each query stays serial and
//! the batch is the unit of parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_bench::fixtures::{chain_query, spread_memory, static_mem, SEED};
use lec_core::{alg_c, Parallelism};
use lec_cost::PaperCostModel;
use lec_plan::JoinQuery;
use lecopt::BatchOptimizer;
use std::hint::black_box;

fn batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_batch");
    let mem = static_mem(spread_memory(4));
    for batch_size in [8usize, 32] {
        let queries: Vec<JoinQuery> = (0..batch_size)
            .map(|i| chain_query(6, SEED + 100 + i as u64))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("one_by_one", batch_size),
            &batch_size,
            |b, _| {
                b.iter(|| {
                    for q in black_box(&queries) {
                        alg_c::optimize(q, &PaperCostModel, &mem).unwrap();
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch_auto", batch_size),
            &batch_size,
            |b, _| {
                let batch = BatchOptimizer::new(&PaperCostModel, &mem)
                    .with_parallelism(Parallelism::auto());
                b.iter(|| batch.optimize_all(black_box(&queries)))
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = batch_throughput
}
criterion_main!(benches);
