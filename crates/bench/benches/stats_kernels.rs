//! Distribution-kernel microbenchmarks: the allocation-free
//! [`ConvolveScratch`] path against the allocating reference for the three
//! operations the DP hot loops lean on — independent products
//! (convolve), fused convolve-expect, and the §3.6.3 product → rebucket
//! pipeline `alg_d` runs once per dag node.

use criterion::{criterion_group, criterion_main, Criterion};
use lec_stats::{rebucket, ConvolveScratch, Distribution};
use std::hint::black_box;

/// An 8-point equi-mass distribution — the `alg_d` default bucket count.
fn dist8(base: f64, step: f64) -> Distribution {
    let pts: Vec<(f64, f64)> = (0..8).map(|i| (base + step * i as f64, 0.125)).collect();
    Distribution::new(pts).unwrap()
}

fn kernels(c: &mut Criterion) {
    let a = dist8(100.0, 17.0);
    let b = dist8(3.0, 5.0);

    let mut group = c.benchmark_group("stats_kernels");

    group.bench_function("convolve/naive", |bch| {
        bch.iter(|| black_box(&a).convolve(black_box(&b)).unwrap())
    });
    group.bench_function("convolve/scratch", |bch| {
        let mut s = ConvolveScratch::new();
        bch.iter(|| s.convolve(black_box(&a), black_box(&b)).unwrap())
    });

    group.bench_function("convolve_expect/naive", |bch| {
        bch.iter(|| {
            black_box(&a)
                .convolve(black_box(&b))
                .unwrap()
                .expect(|v| v.sqrt())
        })
    });
    group.bench_function("convolve_expect/fused", |bch| {
        let mut s = ConvolveScratch::new();
        bch.iter(|| {
            s.convolve_expect(black_box(&a), black_box(&b), |v| v.sqrt())
                .unwrap()
        })
    });

    group.bench_function("product_rebucket/naive", |bch| {
        bch.iter(|| {
            let prod = black_box(&a)
                .product_with(black_box(&b), |x, y| x * y)
                .unwrap();
            rebucket(&prod, 8).unwrap()
        })
    });
    group.bench_function("product_rebucket/scratch", |bch| {
        let mut s = ConvolveScratch::new();
        bch.iter(|| {
            s.product_rebucket(black_box(&a), black_box(&b), |x, y| x * y, 8)
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, kernels);
criterion_main!(benches);
