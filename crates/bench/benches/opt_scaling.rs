//! Optimizer-time scaling (experiment X3's timing half): wall-clock cost of
//! LSC, Algorithms A, B and C as the number of relations and the number of
//! memory buckets grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lec_bench::fixtures::{chain_query, spread_memory, static_mem, SEED};
use lec_core::{alg_a, alg_b, alg_c, lsc, pareto, Parallelism};
use lec_cost::PaperCostModel;
use lec_stats::Utility;
use std::hint::black_box;

fn by_relations(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_by_relations");
    let mem_dist = spread_memory(4);
    for n in [3usize, 5, 7, 9] {
        let q = chain_query(n, SEED + n as u64);
        let mem = static_mem(mem_dist.clone());
        group.bench_with_input(BenchmarkId::new("lsc", n), &n, |b, _| {
            b.iter(|| lsc::optimize_at_mean(black_box(&q), &PaperCostModel, &mem_dist).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("alg_a", n), &n, |b, _| {
            b.iter(|| alg_a::optimize(black_box(&q), &PaperCostModel, &mem).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("alg_b_c3", n), &n, |b, _| {
            b.iter(|| alg_b::optimize(black_box(&q), &PaperCostModel, &mem, 3).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("alg_c", n), &n, |b, _| {
            b.iter(|| alg_c::optimize(black_box(&q), &PaperCostModel, &mem).unwrap())
        });
    }
    group.finish();
}

fn by_buckets(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg_c_by_buckets");
    let q = chain_query(6, SEED + 60);
    for b in [1usize, 4, 16, 64] {
        let mem = static_mem(spread_memory(b));
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            bench.iter(|| alg_c::optimize(black_box(&q), &PaperCostModel, &mem).unwrap())
        });
    }
    group.finish();
}

fn serial_vs_parallel(c: &mut Criterion) {
    // Rank-parallel Algorithm C against the serial reference at the sizes
    // where the wavefronts are wide enough to matter. Results are
    // bit-identical (see crates/core/tests/parallel_equivalence.rs); only
    // wall-clock differs.
    let mut group = c.benchmark_group("serial_vs_parallel");
    let mem_dist = spread_memory(4);
    let par = Parallelism::auto();
    for n in [9usize, 11, 13] {
        let q = chain_query(n, SEED + n as u64);
        let mem = static_mem(mem_dist.clone());
        group.bench_with_input(BenchmarkId::new("alg_c_serial", n), &n, |b, _| {
            b.iter(|| alg_c::optimize(black_box(&q), &PaperCostModel, &mem).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("alg_c_parallel", n), &n, |b, _| {
            b.iter(|| alg_c::optimize_par(black_box(&q), &PaperCostModel, &mem, &par).unwrap())
        });
    }
    group.finish();
}

fn pareto_vs_scalar(c: &mut Criterion) {
    // The wall-clock cost of utility-exactness (X16's timing half).
    let mut group = c.benchmark_group("pareto_vs_scalar_dp");
    let q = chain_query(5, SEED + 70);
    for b in [2usize, 8] {
        let mem = spread_memory(b);
        group.bench_with_input(BenchmarkId::new("pareto_exact", b), &b, |bench, _| {
            bench.iter(|| {
                pareto::optimize(black_box(&q), &PaperCostModel, &mem, Utility::Linear).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("scalar_dp", b), &b, |bench, _| {
            bench.iter(|| {
                pareto::scalar_dp(black_box(&q), &PaperCostModel, &mem, Utility::Linear).unwrap()
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = by_relations, by_buckets, serial_vs_parallel, pareto_vs_scalar
}
criterion_main!(benches);
