//! X22 (extension) — the concurrent serving tier under cache pressure.
//!
//! A round-robin stream over 16 isomorphism classes (5-table chain
//! queries with distinct join-key domains) against a plan cache of 8
//! entries: sequentially, the LRU thrashes — nearly every request pays a
//! full optimizer run. The [`ConcurrentServer`] recovers that work
//! honestly: a batch window of consecutive global ordinals is primed with
//! **one optimization per distinct would-miss class**, and every request
//! in the window consumes the primed plans. The measured speedup is
//! algorithmic (deduplicated optimizer work), not parallel-hardware
//! scaling — on this repo's single-core reference host, thread fan-out
//! alone cannot beat 1.0×, which is exactly why the ≥2× floor below is an
//! honest claim at any worker count.
//!
//! The run **self-asserts** before writing `results/BENCH_serve_concurrent.json`:
//!
//! * the 1-worker / window-1 replay row matches the sequential loop's
//!   cache and search counters exactly (the concurrency layer is
//!   invisible when degenerate);
//! * every batched row clears `MIN_CONCURRENT_SPEEDUP` (2.0×) over the
//!   sequential loop, and the replay row clears the dispatch floor;
//! * in-window dedup actually saved optimizations, tail latency is
//!   finite, and no row recalibrated (the N ≡ 1 equivalence is exact).
//!
//! Set `X22_REQUESTS` to run a shorter stream; short runs write to
//! `BENCH_serve_concurrent_smoke.json` so the committed full-length
//! artifact is never overwritten by a smoke pass.

use crate::table::{ratio, Table};
use lec_catalog::{Catalog, ColumnMeta, TableMeta};
use lec_cost::PaperCostModel;
use lec_exec::PAGE_CAPACITY;
use lec_serve::cache::shard_of;
use lec_serve::{
    ConcurrencyConfig, ConcurrentServer, DriftConfig, QueryRequest, QueryService, ServeConfig,
};
use lec_stats::Distribution;
use lec_workload::from_catalog::{query_from_catalog, JoinSpec};
use std::path::PathBuf;
use std::time::Instant;

/// Catalog width; classes are sliding `CHAIN`-table windows over these.
const TABLES: usize = 22;
/// Isomorphism classes in the stream — double the cache capacity, so the
/// sequential LRU cannot hold the working set.
const CLASSES: usize = 16;
/// Tables per chain query. Seven relations make the optimizer run the
/// dominant per-miss cost (the quantity batching deduplicates), while the
/// single-page tables keep execution cheap and uniform.
const CHAIN: usize = 7;
/// Plan-cache capacity in entries, over `CACHE_SHARDS` shards.
const CACHE_CAPACITY: usize = 8;
const CACHE_SHARDS: usize = 4;
/// Batch window in global ordinals: eight full rounds of the class
/// rotation, so priming amortizes each class's optimization ~8×.
const BATCH_WINDOW: usize = 128;
/// Full-artifact stream length. `X22_REQUESTS` overrides in either
/// direction: shorter runs are smoke passes, while `X22_REQUESTS=1000000`
/// (or more) writes the full artifact at the million-request scale the
/// committed record targets.
const DEFAULT_REQUESTS: usize = 100_000;

/// Self-asserted floor for every batched row's throughput speedup over
/// the sequential loop. The win is deduplicated optimizer work, so it
/// holds on a single core; falling below it means the batching layer
/// stopped paying for itself and the run panics rather than writing the
/// artifact.
const MIN_CONCURRENT_SPEEDUP: f64 = 2.0;
/// Floor for the degenerate 1-worker / window-1 replay row: pure
/// dispatch, so anything beyond ~25% overhead is a bug.
const MIN_REPLAY_SPEEDUP: f64 = 0.75;

/// Debug builds additionally route to the gitignored `_debug` files.
fn json_path(smoke: bool) -> PathBuf {
    crate::artifacts::artifact_path(if smoke {
        "serve_concurrent_smoke"
    } else {
        "serve_concurrent"
    })
}

/// Twenty single-page tables whose join-key domains differ (`400 + 16·i`
/// distinct values), so the sliding chain classes below are pairwise
/// non-isomorphic: canonicalization sees distinct join selectivities.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    for i in 0..TABLES {
        let distinct = (400 + 16 * i) as u64;
        c.register(
            TableMeta::new(format!("t{i:02}"), PAGE_CAPACITY as u64, 1)
                .expect("x22: table shape is statically valid")
                .with_column(ColumnMeta::new("k", distinct, 0.0, (distinct - 1) as f64)),
        )
        .expect("x22: tables register into an empty catalog");
    }
    c
}

/// Class `c` joins tables `t{c} … t{c+CHAIN-1}` in a chain on the key.
fn templates() -> Vec<QueryRequest> {
    (0..CLASSES)
        .map(|c| {
            let tables: Vec<String> = (c..c + CHAIN).map(|i| format!("t{i:02}")).collect();
            let joins = (0..CHAIN - 1)
                .map(|j| JoinSpec {
                    left_table: tables[j].clone(),
                    left_column: "k".into(),
                    right_table: tables[j + 1].clone(),
                    right_column: "k".into(),
                })
                .collect();
            QueryRequest {
                tables,
                joins,
                filters: vec![],
                order_by: None,
            }
        })
        .collect()
}

fn stream(len: usize) -> Vec<QueryRequest> {
    let ts = templates();
    (0..len).map(|i| ts[i % ts.len()].clone()).collect()
}

/// Four memory scenarios (more precomputed plans per miss — the work the
/// batch window deduplicates); drift detection effectively disabled so
/// the stream is provably quiet and the N ≡ 1 counter equivalence is
/// exact.
fn config() -> ServeConfig {
    let dist = |pts: &[(f64, f64)]| {
        Distribution::new(pts.iter().copied()).expect("x22: scenario weights are statically valid")
    };
    let mut cfg = ServeConfig::new(
        vec![
            dist(&[(4.0, 0.6), (40.0, 0.4)]),
            dist(&[(16.0, 0.5), (80.0, 0.5)]),
            dist(&[(8.0, 1.0)]),
            dist(&[(64.0, 1.0)]),
        ],
        dist(&[(8.0, 0.5), (48.0, 0.5)]),
    );
    cfg.cache_capacity = CACHE_CAPACITY;
    cfg.cache_shards = CACHE_SHARDS;
    cfg.drift = DriftConfig {
        error_threshold: 1e9,
        min_observations: 4,
        blend: 0.8,
    };
    cfg
}

/// Nearest-rank percentile over an unsorted sample, in ns.
fn percentile(walls: &mut [u64], p: f64) -> u64 {
    walls.sort_unstable();
    let idx = ((p / 100.0) * (walls.len() - 1) as f64).round() as usize;
    walls[idx]
}

struct Row {
    label: String,
    workers: usize,
    window: usize,
    wall_ns: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    hits: u64,
    misses: u64,
    dedup_saved: u64,
    primed_consumed: u64,
    optimizer_invocations: u64,
    recalibrations: u64,
    degraded: u64,
}

fn sequential_row(requests: &[QueryRequest]) -> (Row, QueryService<PaperCostModel>) {
    let mut svc = QueryService::new(PaperCostModel, catalog(), catalog(), config())
        .expect("x22: sequential service constructs");
    let mut walls = Vec::with_capacity(requests.len());
    let clock = Instant::now();
    for req in requests {
        let t = Instant::now();
        svc.serve(req).expect("x22: sequential request serves");
        walls.push(t.elapsed().as_nanos() as u64);
    }
    let wall_ns = clock.elapsed().as_nanos() as u64;
    let stats = svc.stats();
    let row = Row {
        label: "sequential".into(),
        workers: 0,
        window: 0,
        wall_ns,
        p50_ns: percentile(&mut walls, 50.0),
        p95_ns: percentile(&mut walls, 95.0),
        p99_ns: percentile(&mut walls, 99.0),
        hits: stats.cache.hits,
        misses: stats.cache.misses,
        dedup_saved: 0,
        primed_consumed: 0,
        optimizer_invocations: svc.optimizer_invocations(),
        recalibrations: svc.recalibrations(),
        degraded: stats.resilience.degraded_serves,
    };
    (row, svc)
}

fn concurrent_row(
    requests: &[QueryRequest],
    workers: usize,
    window: usize,
) -> (Row, ConcurrentServer<PaperCostModel>) {
    let mut server = ConcurrentServer::new(
        PaperCostModel,
        catalog(),
        catalog(),
        config(),
        ConcurrencyConfig {
            workers,
            batch_window: window,
        },
    )
    .expect("x22: concurrent server constructs");
    let outcome = server
        .serve_stream(requests)
        .expect("x22: concurrent stream serves");
    assert_eq!(outcome.outcomes.len(), requests.len());
    let mut walls: Vec<u64> = outcome.outcomes.iter().map(|o| o.wall_ns).collect();
    let stats = server.stats();
    let row = Row {
        label: format!("{workers}w / window {window}"),
        workers,
        window,
        wall_ns: outcome.wall_ns,
        p50_ns: percentile(&mut walls, 50.0),
        p95_ns: percentile(&mut walls, 95.0),
        p99_ns: percentile(&mut walls, 99.0),
        hits: stats.cache.hits,
        misses: stats.cache.misses,
        dedup_saved: outcome.dedup_saved,
        primed_consumed: server.primed_consumed(),
        optimizer_invocations: server.optimizer_invocations(),
        recalibrations: outcome.recalibrations,
        degraded: stats.resilience.degraded_serves,
    };
    (row, server)
}

/// The shards the 16 classes actually land on — recorded so the artifact
/// shows the affinity split the workers inherit.
fn class_shards() -> Vec<usize> {
    let c = catalog();
    templates()
        .iter()
        .map(|req| {
            let tables: Vec<&str> = req.tables.iter().map(String::as_str).collect();
            let q = query_from_catalog(&c, &tables, &req.joins, &req.filters, req.order_by)
                .expect("x22: class query builds");
            shard_of(&lec_plan::canonicalize(&q).fingerprint, CACHE_SHARDS)
        })
        .collect()
}

/// Runs the experiment, returning a markdown section; also writes the
/// JSON artifact (full or smoke path depending on the stream length).
pub fn run() -> String {
    let requests_len = std::env::var("X22_REQUESTS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_REQUESTS);
    run_impl(requests_len)
}

fn run_impl(requests_len: usize) -> String {
    // Anything below the default stream length is a smoke pass; scaled-up
    // runs (`X22_REQUESTS=1000000`) write the full artifact.
    let smoke = requests_len < DEFAULT_REQUESTS;
    let requests = stream(requests_len);

    let (seq, seq_svc) = sequential_row(&requests);
    assert_eq!(seq.recalibrations, 0, "x22: the stream must be drift-quiet");

    let sweep = [
        (1usize, 1usize),
        (1, BATCH_WINDOW),
        (2, BATCH_WINDOW),
        (4, BATCH_WINDOW),
    ];
    let mut rows: Vec<(Row, f64, f64)> = Vec::new();
    for (workers, window) in sweep {
        let (row, server) = concurrent_row(&requests, workers, window);
        let speedup = seq.wall_ns as f64 / row.wall_ns as f64;
        let min_speedup = if window == 1 {
            MIN_REPLAY_SPEEDUP
        } else {
            MIN_CONCURRENT_SPEEDUP
        };
        assert!(
            speedup >= min_speedup,
            "x22: workers={workers} window={window} speedup {speedup:.4} fell below its \
             self-asserted floor {min_speedup} — refusing to write the artifact"
        );
        assert_eq!(row.recalibrations, 0, "x22: rows must stay drift-quiet");
        assert!(
            row.p99_ns > 0 && row.p99_ns < u64::MAX,
            "x22: p99 must be finite and positive"
        );
        if window == 1 {
            // Degenerate replay: the concurrency layer must be invisible.
            let (a, b) = (server.stats(), seq_svc.stats());
            assert_eq!(a.cache, b.cache, "x22: replay row cache counters");
            assert_eq!(a.counters, b.counters, "x22: replay row search counters");
            assert_eq!(
                server.optimizer_invocations(),
                seq.optimizer_invocations,
                "x22: replay row invocations"
            );
            assert_eq!(row.dedup_saved, 0, "x22: window 1 cannot dedup");
        } else {
            assert!(row.dedup_saved > 0, "x22: batching must deduplicate misses");
            assert!(
                row.optimizer_invocations < seq.optimizer_invocations,
                "x22: batching must cut optimizer invocations"
            );
        }
        rows.push((row, speedup, min_speedup));
    }

    let shards = class_shards();
    let distinct_shards = {
        let mut s = shards.clone();
        s.sort_unstable();
        s.dedup();
        s.len()
    };
    assert!(
        distinct_shards >= 2,
        "x22: classes must spread over several shards for affinity to mean anything"
    );

    let throughput = |row: &Row| requests_len as f64 / (row.wall_ns as f64 / 1e9);
    let mut t = Table::new(&[
        "run",
        "wall",
        "req/s",
        "speedup",
        "p50 / p95 / p99",
        "hit rate",
        "dedup saved",
        "opt runs",
    ]);
    let fmt_row = |row: &Row, speedup: Option<f64>| {
        vec![
            row.label.clone(),
            format!("{:.1} ms", row.wall_ns as f64 / 1e6),
            format!("{:.0}", throughput(row)),
            speedup.map_or("—".into(), ratio),
            format!(
                "{:.0} / {:.0} / {:.0} µs",
                row.p50_ns as f64 / 1e3,
                row.p95_ns as f64 / 1e3,
                row.p99_ns as f64 / 1e3
            ),
            format!(
                "{:.1}%",
                100.0 * row.hits as f64 / (row.hits + row.misses).max(1) as f64
            ),
            row.dedup_saved.to_string(),
            row.optimizer_invocations.to_string(),
        ]
    };
    t.row(fmt_row(&seq, None));
    for (row, speedup, _) in &rows {
        t.row(fmt_row(row, Some(*speedup)));
    }

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let row_json = |row: &Row, speedup: f64, min_speedup: f64| {
        format!(
            "    {{\"workers\": {}, \"batch_window\": {}, \"wall_ns\": {}, \
             \"throughput_rps\": {:.1}, \"speedup\": {speedup:.4}, \
             \"min_speedup\": {min_speedup}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"dedup_saved\": {}, \"primed_consumed\": {}, \
             \"optimizer_invocations\": {}, \"recalibrations\": {}, \
             \"degraded_serves\": {}}}",
            row.workers,
            row.window,
            row.wall_ns,
            throughput(row),
            row.p50_ns,
            row.p95_ns,
            row.p99_ns,
            row.hits,
            row.misses,
            row.dedup_saved,
            row.primed_consumed,
            row.optimizer_invocations,
            row.recalibrations,
            row.degraded,
        )
    };
    let rows_json: Vec<String> = rows
        .iter()
        .map(|(row, speedup, min)| row_json(row, *speedup, *min))
        .collect();
    let shard_list: Vec<String> = shards.iter().map(usize::to_string).collect();
    let json = format!(
        "{{\n  \"experiment\": \"x22_serve_concurrent\",\n  \"requests\": {requests_len},\n  \
         \"classes\": {CLASSES},\n  \"cache_capacity\": {CACHE_CAPACITY},\n  \
         \"cache_shards\": {CACHE_SHARDS},\n  \"batch_window\": {BATCH_WINDOW},\n  \
         \"host_threads\": {host_threads},\n  \"self_asserted\": true,\n  \
         \"optimized_build\": {},\n  \
         \"class_shards\": [{}],\n  \
         \"sequential\": {{\"wall_ns\": {}, \"throughput_rps\": {:.1}, \
         \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"optimizer_invocations\": {}}},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        crate::artifacts::OPTIMIZED_BUILD,
        shard_list.join(", "),
        seq.wall_ns,
        throughput(&seq),
        seq.p50_ns,
        seq.p95_ns,
        seq.p99_ns,
        seq.hits,
        seq.misses,
        seq.optimizer_invocations,
        rows_json.join(",\n")
    );
    let path = json_path(smoke);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&path, &json).expect("write BENCH_serve_concurrent json");

    format!(
        "## X22 — concurrent serving tier under cache pressure\n\n\
         {requests_len} requests round-robined over {CLASSES} chain-query \
         classes against an {CACHE_CAPACITY}-entry / {CACHE_SHARDS}-shard \
         plan cache (working set 2× capacity, so the sequential loop \
         thrashes). Batched rows prime each window of {BATCH_WINDOW} global \
         ordinals with one optimization per distinct would-miss class; the \
         speedup is deduplicated optimizer work, honest on a single core. \
         Per-request latencies exclude the shared priming (it is inside \
         the wall clock and the throughput). The 1-worker / window-1 row \
         replays the sequential loop and must match its counters exactly. \
         Machine-readable copy written to \
         `results/BENCH_serve_concurrent{}.json`.\n\n{}\n",
        if smoke { "_smoke" } else { "" },
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Short stream through the full harness; writes the smoke artifact,
    /// never the committed full-length one.
    #[test]
    fn renders_asserts_and_writes_smoke_json() {
        let md = run_impl(600);
        assert!(md.contains("X22"));
        assert!(md.contains("sequential |"));
        assert!(md.contains("4w / window 128 |"));
        let json = std::fs::read_to_string(json_path(true)).unwrap();
        assert!(json.contains("\"experiment\": \"x22_serve_concurrent\""));
        assert!(json.contains("\"self_asserted\": true"));
        assert!(json.contains("\"min_speedup\""));
        assert!(json.contains("\"dedup_saved\""));
        assert!(json.contains("\"sequential\""));
        assert!(json.contains("\"workers\": 4"));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn floors_are_sane() {
        assert!(MIN_CONCURRENT_SPEEDUP >= 2.0);
        assert!(MIN_REPLAY_SPEEDUP < 1.0);
        assert!(CLASSES > CACHE_CAPACITY, "working set must exceed capacity");
        assert_eq!(BATCH_WINDOW % CLASSES, 0, "window covers whole rotations");
    }

    #[test]
    fn classes_are_distinct_and_sharded() {
        let shards = class_shards();
        assert_eq!(shards.len(), CLASSES);
        let c = catalog();
        let mut fps = std::collections::BTreeSet::new();
        for req in templates() {
            let tables: Vec<&str> = req.tables.iter().map(String::as_str).collect();
            let q = query_from_catalog(&c, &tables, &req.joins, &req.filters, None).unwrap();
            fps.insert(lec_plan::canonicalize(&q).fingerprint.encoding().to_vec());
        }
        assert_eq!(
            fps.len(),
            CLASSES,
            "classes must be pairwise non-isomorphic"
        );
    }
}
