//! X17 (extension) — what does the left-deep restriction cost?
//!
//! System R (and hence the paper's algorithms) search only left-deep
//! trees; §4 names bushy trees as the open generalization. The bushy LEC
//! dynamic program (`lec-core::bushy`) searches every tree shape under
//! static memory, so the question becomes measurable: across topologies,
//! how much cheaper is the bushy LEC optimum than the left-deep one?

use crate::table::{num, ratio, Table};
use lec_core::{alg_c, bushy, MemoryModel};
use lec_cost::PaperCostModel;
use lec_workload::envs;
use lec_workload::queries::{QueryGen, Topology};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let mut t = Table::new(&[
        "topology",
        "n",
        "instances",
        "bushy wins",
        "mean gap",
        "max gap",
    ]);
    let mem = MemoryModel::Static(envs::lognormal(250.0, 1.0, 4));
    for (name, topology) in [
        ("chain", Topology::Chain),
        ("star", Topology::Star),
        ("clique", Topology::Clique),
    ] {
        for n in [4usize, 6, 8] {
            let mut gaps = Vec::new();
            for seed in 0..12u64 {
                let q = QueryGen {
                    topology,
                    n,
                    pages_range: (30.0, 40_000.0),
                    ..QueryGen::default()
                }
                .generate(&mut ChaCha8Rng::seed_from_u64(1700 + seed));
                let left = alg_c::optimize(&q, &PaperCostModel, &mem).expect("left-deep");
                let bushy = bushy::optimize(&q, &PaperCostModel, &mem).expect("bushy");
                gaps.push(left.cost / bushy.cost);
            }
            let wins = gaps.iter().filter(|&&g| g > 1.0 + 1e-9).count();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let max = gaps.iter().cloned().fold(1.0f64, f64::max);
            t.row(vec![
                name.into(),
                n.to_string(),
                gaps.len().to_string(),
                format!("{wins}/{}", gaps.len()),
                ratio(mean),
                ratio(max),
            ]);
        }
    }
    format!(
        "## X17 — the cost of the left-deep restriction\n\n\
         Left-deep LEC expected cost divided by bushy LEC expected cost \
         (1.000x = the restriction was free), 12 seeded instances per cell, \
         lognormal memory (mean {}, cv 1.0, 4 buckets).\n\n{}\n",
        num(250.0),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x17_gaps_are_ratios_at_least_one() {
        let md = super::run();
        for line in md.lines().filter(|l| l.starts_with("|") && l.contains('x')) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            for cell in cells.iter().filter(|c| c.ends_with('x')) {
                if let Ok(v) = cell.trim_end_matches('x').parse::<f64>() {
                    assert!(v >= 0.999, "{line}");
                }
            }
        }
        // The table covers all three topologies.
        for topo in ["chain", "star", "clique"] {
            assert!(md.contains(topo), "missing {topo}");
        }
    }
}
