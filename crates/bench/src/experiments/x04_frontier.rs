//! X4 — Proposition 3.1: the frontier merge examines at most `c + c·ln c`
//! of the `c²` combinations, with no loss of accuracy.

use crate::table::{num, Table};
use lec_core::topc::{frontier_bound, frontier_merge};

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let mut t = Table::new(&[
        "c",
        "examined",
        "bound c+c·ln c",
        "naive c^2",
        "saving",
        "top-c exact?",
    ]);
    for c in [1usize, 2, 4, 8, 16, 32, 64] {
        // Worst-case-ish sorted lists of length c each.
        let left: Vec<f64> = (0..c).map(|i| (i * i) as f64 + 0.25).collect();
        let right: Vec<f64> = (0..c).map(|i| 7.0 * i as f64).collect();
        let (fast, examined) = frontier_merge(&left, &right, c);
        let mut naive: Vec<f64> = left
            .iter()
            .flat_map(|l| right.iter().map(move |r| l + r))
            .collect();
        naive.sort_by(f64::total_cmp);
        naive.truncate(c);
        let exact = fast == naive;
        t.row(vec![
            c.to_string(),
            examined.to_string(),
            num(frontier_bound(c)),
            (c * c).to_string(),
            format!("{:.1}%", 100.0 * (1.0 - examined as f64 / (c * c) as f64)),
            if exact { "yes".into() } else { "NO".into() },
        ]);
    }
    format!(
        "## X4 — Proposition 3.1: frontier merge combinations\n\n\
         Merging two cost-sorted top-c lists: combinations examined by the \
         `i·k ≤ c` frontier vs the proposition's bound and the naive count.\n\n{}\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x4_frontier_always_exact_and_within_bound() {
        let md = super::run();
        assert!(!md.contains("NO"));
        // The c = 64 row must show a large saving.
        let row = md
            .lines()
            .find(|l| l.trim_start_matches('|').trim().starts_with("64 |"))
            .unwrap();
        let saving: f64 = row
            .split('|')
            .map(str::trim)
            .nth(5)
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(saving > 85.0, "{row}");
    }
}
