//! X14 (extension) — the value of information: when is sampling worth it?
//!
//! §2.3 describes \[SBM93\]'s decision-theoretic sampling: pay some I/O now
//! to learn a selectivity, if that knowledge buys a better plan. The exact
//! budget for that trade is the expected value of perfect information
//! (EVPI). This experiment sweeps selectivity uncertainty and reports the
//! full and per-parameter EVPI — the per-parameter column tells the
//! optimizer *which* predicate deserves the sample.

use crate::table::{num, Table};
use lec_core::alg_d::SizeModel;
use lec_core::{voi, MemoryModel};
use lec_cost::PaperCostModel;
use lec_plan::{JoinPred, JoinQuery, KeyId, Relation};
use lec_stats::Distribution;

fn query() -> JoinQuery {
    JoinQuery::new(
        vec![
            Relation::new("events", 2_000.0, 1e5),
            Relation::new("users", 150.0, 7.5e3),
            Relation::new("sessions", 5_000.0, 2.5e5),
        ],
        vec![
            JoinPred {
                left: 0,
                right: 1,
                selectivity: 1e-3,
                key: KeyId(0),
            },
            JoinPred {
                left: 1,
                right: 2,
                selectivity: 5e-4,
                key: KeyId(1),
            },
        ],
        None,
    )
    .expect("valid query")
}

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let q = query();
    let model = PaperCostModel;
    let mem = MemoryModel::Static(Distribution::new([(30.0, 0.5), (400.0, 0.5)]).expect("valid"));

    let mut t = Table::new(&[
        "sel cv",
        "committed E[cost]",
        "informed E[cost]",
        "EVPI",
        "EVPI %",
        "best single parameter to learn",
    ]);
    for cv in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let sizes = SizeModel::with_uncertainty(&q, 0.0, cv, 3).expect("sizes");
        let r = voi::analyze(&q, &model, &mem, &sizes).expect("voi");
        let names = ["|events|", "|users|", "|sessions|", "sel(k0)", "sel(k1)"];
        let (best_k, best_v) = r
            .partial
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        t.row(vec![
            format!("{cv:.1}"),
            num(r.committed_cost),
            num(r.informed_cost),
            num(r.evpi),
            format!("{:.2}%", 100.0 * r.evpi / r.committed_cost),
            format!("{} ({})", names[best_k], num(*best_v)),
        ]);
    }

    // The sampling decision itself: at cv = 1.5, what sampling budgets pay?
    let sizes = SizeModel::with_uncertainty(&q, 0.0, 1.5, 3).expect("sizes");
    let r = voi::analyze(&q, &model, &mem, &sizes).expect("voi");
    let mut decision = Table::new(&["sampling cost (pages)", "worth sampling?"]);
    for budget in [
        r.evpi * 0.1,
        r.evpi * 0.5,
        r.evpi * 0.99,
        r.evpi * 1.5,
        r.evpi * 10.0,
    ] {
        decision.row(vec![
            num(budget),
            if r.sampling_worthwhile(budget) {
                "yes"
            } else {
                "no"
            }
            .into(),
        ]);
    }

    format!(
        "## X14 — value of information: the sampling decision (\\[SBM93\\] direction)\n\n\
         Three-way join; memory 30 or 400 pages (50/50); selectivity \
         uncertainty `cv` with 3 buckets per predicate. `committed` = best \
         single plan under uncertainty (exact joint LEC); `informed` = \
         expected cost when the true values are revealed before planning.\n\n{}\n\
         Sampling decision at cv = 1.5 (EVPI = {}):\n\n{}\n",
        t.render(),
        num(r.evpi),
        decision.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x14_evpi_zero_without_uncertainty_and_grows() {
        let md = super::run();
        let evpi_at = |cv: &str| -> f64 {
            let row = md
                .lines()
                .find(|l| l.trim_start_matches('|').trim().starts_with(cv))
                .unwrap();
            row.split('|')
                .map(str::trim)
                .nth(4)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(evpi_at("0.0 |").abs() < 1e-6);
        assert!(
            evpi_at("2.0 |") > 0.0,
            "uncertainty should create value:\n{md}"
        );
        // The decision table flips from yes to no past the EVPI.
        assert!(md.contains("yes"));
        assert!(md.contains("no"));
    }
}
