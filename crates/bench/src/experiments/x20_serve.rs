//! X20 (extension) — the serving loop under drift: cache economics and
//! recalibration recovery.
//!
//! Two runs of the same request stream through a `lec-serve`
//! [`QueryService`]:
//!
//! * **Control** (beliefs ≡ truth): after one optimizer run per query
//!   template the cache answers everything — 100% hits on the steady
//!   state, zero recalibrations, beliefs untouched. These are closed-form
//!   counts and asserted, not just reported.
//! * **Drift**: mid-stream, the truth catalog's filter-column histogram
//!   shifts hot while the beliefs still think it is uniform. The drift
//!   detector fires off execution feedback, recalibrates the beliefs, and
//!   invalidates the poisoned cache entries. Recovery is measured as
//!   *regret*: the expected cost (under the truth catalog's statistics) of
//!   each served plan, relative to a fresh truth-informed optimization —
//!   the always-re-optimize-from-truth oracle. After the recalibration
//!   settles, mean regret must fall below 5% while the service still
//!   spends ≤ 10% as many optimizer invocations as the oracle.

use crate::artifacts::{artifact_path, OPTIMIZED_BUILD};
use crate::table::Table;
use lec_catalog::{Catalog, ColumnMeta, Histogram, TableMeta};
use lec_core::{alg_c, expected_cost, MemoryModel};
use lec_cost::PaperCostModel;
use lec_exec::PAGE_CAPACITY;
use lec_serve::{DriftConfig, QueryRequest, QueryService, ServeConfig};
use lec_stats::Distribution;
use lec_workload::from_catalog::{query_from_catalog, FilterSpec, JoinSpec};
use std::path::PathBuf;

/// Where the machine-readable record lands (workspace `results/`).
/// Debug builds route to the gitignored `_debug` file.
fn json_path() -> PathBuf {
    artifact_path("serve")
}

/// `cust ⋈ ord` and `cust ⋈ item` on 512 shared keys; `cust.v` over
/// [0, 100] carries the given 8-bucket mass profile.
fn catalog(hist: &[f64; 8]) -> Catalog {
    let mut c = Catalog::new();
    let values: Vec<f64> = hist
        .iter()
        .enumerate()
        .flat_map(|(b, &mass)| {
            let n = (mass * 800.0).round() as usize;
            (0..n).map(move |i| b as f64 * 12.5 + 12.5 * (i as f64 + 0.5) / n.max(1) as f64)
        })
        .collect();
    c.register(
        TableMeta::new("cust", 12 * PAGE_CAPACITY as u64, 12)
            .expect("x20: cust table shape is statically valid")
            .with_column(ColumnMeta::new("ck", 512, 0.0, 511.0))
            .with_column(
                ColumnMeta::new("v", 800, 0.0, 100.0).with_histogram(
                    Histogram::equi_width(&values, 8)
                        .expect("x20: synthesized cust.v sample is non-empty"),
                ),
            ),
    )
    .expect("x20: cust registers into an empty catalog");
    c.register(
        TableMeta::new("ord", 24 * PAGE_CAPACITY as u64, 24)
            .expect("x20: ord table shape is statically valid")
            .with_column(ColumnMeta::new("ok", 512, 0.0, 511.0)),
    )
    .expect("x20: ord registers into an empty catalog");
    c.register(
        TableMeta::new("item", 16 * PAGE_CAPACITY as u64, 16)
            .expect("x20: item table shape is statically valid")
            .with_column(ColumnMeta::new("ik", 512, 0.0, 511.0)),
    )
    .expect("x20: item registers into an empty catalog");
    c
}

const UNIFORM: [f64; 8] = [0.125; 8];
/// ~70% of `cust.v` lands below 25 (believed: 25%).
const HOT: [f64; 8] = [0.35, 0.35, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05];

fn join(l: &str, lc: &str, r: &str, rc: &str) -> JoinSpec {
    JoinSpec {
        left_table: l.into(),
        left_column: lc.into(),
        right_table: r.into(),
        right_column: rc.into(),
    }
}

/// The workload's request templates; the filtered one is the drift victim.
fn templates() -> Vec<QueryRequest> {
    vec![
        QueryRequest {
            tables: vec!["cust".into(), "ord".into()],
            joins: vec![join("cust", "ck", "ord", "ok")],
            filters: vec![FilterSpec {
                table: "cust".into(),
                column: "v".into(),
                lo: 0.0,
                hi: 25.0,
                indexed: false,
            }],
            order_by: None,
        },
        QueryRequest {
            tables: vec!["cust".into(), "item".into()],
            joins: vec![join("cust", "ck", "item", "ik")],
            filters: vec![],
            order_by: None,
        },
    ]
}

/// Round-robin over the templates.
fn stream(len: usize) -> Vec<QueryRequest> {
    let ts = templates();
    (0..len).map(|i| ts[i % ts.len()].clone()).collect()
}

fn config() -> ServeConfig {
    let mut cfg = ServeConfig::new(
        vec![
            Distribution::new([(4.0, 0.6), (40.0, 0.4)]).expect("x20: valid two-point support"),
            Distribution::new([(16.0, 0.5), (80.0, 0.5)]).expect("x20: valid two-point support"),
        ],
        Distribution::new([(8.0, 0.5), (48.0, 0.5)]).expect("x20: valid two-point support"),
    );
    cfg.drift = DriftConfig {
        error_threshold: 0.5,
        min_observations: 3,
        blend: 0.8,
    };
    cfg
}

/// Expected cost of `plan` for `request`, priced under `truth` statistics.
fn cost_under_truth(
    truth: &Catalog,
    request: &QueryRequest,
    plan: &lec_plan::Plan,
    observed: &Distribution,
) -> f64 {
    let tables: Vec<&str> = request.tables.iter().map(String::as_str).collect();
    let q = query_from_catalog(truth, &tables, &request.joins, &request.filters, None)
        .expect("truth query");
    let phases = MemoryModel::Static(observed.clone())
        .table(q.n().max(2))
        .expect("phase table");
    expected_cost(&q, &PaperCostModel, plan, &phases)
}

/// The truth-informed oracle: a fresh optimization per request.
fn oracle_cost(truth: &Catalog, request: &QueryRequest, observed: &Distribution) -> f64 {
    let tables: Vec<&str> = request.tables.iter().map(String::as_str).collect();
    let q = query_from_catalog(truth, &tables, &request.joins, &request.filters, None)
        .expect("truth query");
    alg_c::optimize(&q, &PaperCostModel, &MemoryModel::Static(observed.clone()))
        .expect("oracle optimization")
        .cost
}

struct DriftRun {
    regrets: Vec<f64>,
    recovery_regret: f64,
    optimizer_invocations: u64,
    oracle_invocations: u64,
    recalibrations: u64,
    invalidations: u64,
    hits: u64,
    misses: u64,
}

const STREAM_LEN: usize = 60;
const DRIFT_AT: usize = 10;
/// The recovery window: the stream's last quarter, long after the
/// detector had the observations it needs.
const RECOVERY_FROM: usize = 45;

fn drift_run() -> DriftRun {
    let cfg = config();
    let observed = cfg.observed_memory.clone();
    let mut svc = QueryService::new(PaperCostModel, catalog(&UNIFORM), catalog(&UNIFORM), cfg)
        .expect("x20: drift service constructs from a validated config");
    let mut regrets = Vec::with_capacity(STREAM_LEN);
    for (i, req) in stream(STREAM_LEN).iter().enumerate() {
        if i == DRIFT_AT {
            *svc.truth_mut() = catalog(&HOT);
        }
        let served = svc.serve(req).expect("x20: drift-run request serves");
        let truth_cost = cost_under_truth(svc.truth(), req, &served.plan, &observed);
        let best = oracle_cost(svc.truth(), req, &observed);
        regrets.push((truth_cost - best).max(0.0) / best);
    }
    let recovery = &regrets[RECOVERY_FROM..];
    let stats = svc.stats();
    DriftRun {
        recovery_regret: recovery.iter().sum::<f64>() / recovery.len() as f64,
        regrets,
        optimizer_invocations: svc.optimizer_invocations(),
        // One fresh optimization per request is what the oracle spends.
        oracle_invocations: STREAM_LEN as u64,
        recalibrations: svc.recalibrations(),
        invalidations: stats.cache.invalidations,
        hits: stats.cache.hits,
        misses: stats.cache.misses,
    }
}

/// Runs the experiment, returning a markdown section; also writes
/// `results/BENCH_serve.json`.
pub fn run() -> String {
    // Control: beliefs ≡ truth. Closed form: one miss per template, every
    // other request hits, nothing recalibrates.
    let n_templates = templates().len();
    let mut control = QueryService::new(
        PaperCostModel,
        catalog(&UNIFORM),
        catalog(&UNIFORM),
        config(),
    )
    .expect("x20: control service constructs from a validated config");
    for req in stream(STREAM_LEN) {
        control.serve(&req).expect("x20: control request serves");
    }
    let cstats = control.stats();
    assert_eq!(
        cstats.cache.misses, n_templates as u64,
        "control: one miss per template"
    );
    assert_eq!(
        cstats.cache.hits,
        (STREAM_LEN - n_templates) as u64,
        "control: everything after warm-up must hit"
    );
    assert_eq!(control.recalibrations(), 0, "control: no recalibrations");
    assert_eq!(cstats.cache.invalidations, 0);

    // Drift: the serving loop must recover to near-oracle plans on a
    // fraction of the oracle's optimizer budget.
    let d = drift_run();
    assert!(
        d.recalibrations >= 1,
        "the injected drift must trigger recalibration"
    );
    assert!(
        d.recovery_regret < 0.05,
        "post-recovery regret {:.4} must be below 5%",
        d.recovery_regret
    );
    assert!(
        d.optimizer_invocations * 10 <= d.oracle_invocations,
        "{} optimizer invocations vs oracle's {}: must be ≤ 10%",
        d.optimizer_invocations,
        d.oracle_invocations
    );

    let mut t = Table::new(&[
        "run",
        "hits",
        "misses",
        "recals",
        "invalidations",
        "opt runs",
    ]);
    t.row(vec![
        "control".into(),
        cstats.cache.hits.to_string(),
        cstats.cache.misses.to_string(),
        control.recalibrations().to_string(),
        cstats.cache.invalidations.to_string(),
        control.optimizer_invocations().to_string(),
    ]);
    t.row(vec![
        "drift".into(),
        d.hits.to_string(),
        d.misses.to_string(),
        d.recalibrations.to_string(),
        d.invalidations.to_string(),
        d.optimizer_invocations.to_string(),
    ]);

    let mut rt = Table::new(&["phase", "queries", "mean regret vs truth oracle"]);
    let phase = |name: &str, r: &[f64]| {
        vec![
            name.to_string(),
            r.len().to_string(),
            format!(
                "{:.2}%",
                100.0 * r.iter().sum::<f64>() / r.len().max(1) as f64
            ),
        ]
    };
    rt.row(phase("pre-drift", &d.regrets[..DRIFT_AT]));
    rt.row(phase("transient", &d.regrets[DRIFT_AT..RECOVERY_FROM]));
    rt.row(phase("recovered", &d.regrets[RECOVERY_FROM..]));

    let regret_list = d
        .regrets
        .iter()
        .map(|r| format!("{r:.6}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"experiment\": \"x20_serve\",\n  \
         \"optimized_build\": {OPTIMIZED_BUILD},\n  \"stream_len\": {STREAM_LEN},\n  \
         \"drift_at\": {DRIFT_AT},\n  \"recovery_from\": {RECOVERY_FROM},\n  \
         \"control\": {{\"hits\": {}, \"misses\": {}, \"recalibrations\": {}, \
         \"invalidations\": {}, \"hit_rate\": {:.6}}},\n  \
         \"drift\": {{\"hits\": {}, \"misses\": {}, \"recalibrations\": {}, \
         \"invalidations\": {}, \"optimizer_invocations\": {}, \
         \"oracle_invocations\": {}, \"recovery_regret\": {:.6}}},\n  \
         \"regret_trajectory\": [{regret_list}]\n}}\n",
        cstats.cache.hits,
        cstats.cache.misses,
        control.recalibrations(),
        cstats.cache.invalidations,
        cstats.cache.hit_rate(),
        d.hits,
        d.misses,
        d.recalibrations,
        d.invalidations,
        d.optimizer_invocations,
        d.oracle_invocations,
        d.recovery_regret,
    );
    let path = json_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&path, &json).expect("write BENCH_serve.json");

    format!(
        "## X20 — serving loop under drift (lec-serve)\n\n\
         A {STREAM_LEN}-request stream over {n_templates} templates through \
         the `lec-serve` plan cache + recalibration loop. The control run \
         (beliefs ≡ truth) hits the closed forms exactly: one optimizer run \
         per template, 100% cache hits afterwards, zero recalibrations. At \
         request {DRIFT_AT} the drift run shifts the truth histogram hot; \
         execution feedback recalibrates the beliefs and invalidates the \
         poisoned entries. Machine-readable copy written to \
         `results/BENCH_serve.json`.\n\n{}\n\
         Regret of each served plan against the always-re-optimize-from-\
         truth oracle, priced under truth statistics:\n\n{}\n",
        t.render(),
        rt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_writes_json_and_recovers() {
        let md = run();
        assert!(md.contains("X20"));
        assert!(md.contains("| control |"));
        assert!(md.contains("| recovered |"));
        let json = std::fs::read_to_string(json_path()).unwrap();
        assert!(json.contains("\"experiment\": \"x20_serve\""));
        // The control's closed forms, as JSON.
        assert!(json.contains(
            "\"control\": {\"hits\": 58, \"misses\": 2, \
                               \"recalibrations\": 0, \"invalidations\": 0, \
                               \"hit_rate\": 0.966667}"
        ));
        assert!(json.contains("\"recovery_regret\""));
    }
}
