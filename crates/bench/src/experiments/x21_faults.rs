//! X21 (extension) — fault injection and graceful degradation in the
//! serving loop.
//!
//! Two runs of the same 40-request stream through a `lec-serve`
//! [`QueryService`] with the resilience layer on:
//!
//! * **Control** (injection off): bit-for-bit the PR-3 serving path — all
//!   resilience counters zero, and in particular *0 faults ⇒ 0 retries*.
//! * **Faulted**: every 4th request's first attempt gets a deterministic
//!   phase-0 I/O error. Every request is still served — the fallback
//!   ladder retries on the next-best frontier plan, and once a fingerprint
//!   accumulates 3 strikes the circuit breaker reroutes its next request
//!   straight to the LSC baseline and drops the poisoned cache entry for
//!   reoptimization. All counters are closed forms of the injection
//!   config and asserted exactly, the ladder ordering (primary →
//!   frontier → LSC) is checked on every request, and the whole faulted
//!   run is asserted bit-identical across two executions.

use crate::table::Table;
use lec_catalog::{Catalog, ColumnMeta, TableMeta};
use lec_cost::PaperCostModel;
use lec_exec::{FaultKind, PAGE_CAPACITY};
use lec_serve::{
    DriftConfig, FaultInjection, QueryRequest, QueryService, ResiliencePolicy, ServeConfig,
    ServeRoute, ServedQuery,
};
use lec_stats::Distribution;
use lec_workload::from_catalog::{FilterSpec, JoinSpec};
use std::path::PathBuf;

use crate::artifacts::{artifact_path, OPTIMIZED_BUILD};

/// Where the machine-readable record lands (workspace `results/`).
/// Debug builds route to the gitignored `_debug` file.
fn json_path() -> PathBuf {
    artifact_path("faults")
}

/// `cust ⋈ ord` and `cust ⋈ item` on 512 shared keys. Beliefs ≡ truth:
/// nothing drifts, so every non-zero counter is the fault layer's doing.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        TableMeta::new("cust", 12 * PAGE_CAPACITY as u64, 12)
            .expect("x21: cust table shape is statically valid")
            .with_column(ColumnMeta::new("ck", 512, 0.0, 511.0))
            .with_column(ColumnMeta::new("v", 800, 0.0, 100.0)),
    )
    .expect("x21: cust registers into an empty catalog");
    c.register(
        TableMeta::new("ord", 24 * PAGE_CAPACITY as u64, 24)
            .expect("x21: ord table shape is statically valid")
            .with_column(ColumnMeta::new("ok", 512, 0.0, 511.0)),
    )
    .expect("x21: ord registers into an empty catalog");
    c.register(
        TableMeta::new("item", 16 * PAGE_CAPACITY as u64, 16)
            .expect("x21: item table shape is statically valid")
            .with_column(ColumnMeta::new("ik", 512, 0.0, 511.0)),
    )
    .expect("x21: item registers into an empty catalog");
    c
}

fn join(l: &str, lc: &str, r: &str, rc: &str) -> JoinSpec {
    JoinSpec {
        left_table: l.into(),
        left_column: lc.into(),
        right_table: r.into(),
        right_column: rc.into(),
    }
}

/// The workload's templates; the even-ordinal one is the fault victim.
fn templates() -> Vec<QueryRequest> {
    vec![
        QueryRequest {
            tables: vec!["cust".into(), "ord".into()],
            joins: vec![join("cust", "ck", "ord", "ok")],
            filters: vec![FilterSpec {
                table: "cust".into(),
                column: "v".into(),
                lo: 0.0,
                hi: 25.0,
                indexed: false,
            }],
            order_by: None,
        },
        QueryRequest {
            tables: vec!["cust".into(), "item".into()],
            joins: vec![join("cust", "ck", "item", "ik")],
            filters: vec![],
            order_by: None,
        },
    ]
}

/// Round-robin over the templates: even ordinals are template 0.
fn stream(len: usize) -> Vec<QueryRequest> {
    let ts = templates();
    (0..len).map(|i| ts[i % ts.len()].clone()).collect()
}

/// Scenarios far enough apart that the cached parametric entry holds two
/// *distinct* plans — the precondition for a frontier rung on the ladder.
fn config(injection: FaultInjection) -> ServeConfig {
    let mut cfg = ServeConfig::new(
        vec![
            Distribution::new([(3.0, 0.9), (6.0, 0.1)])
                .expect("x21: tight-memory scenario is a valid distribution"),
            Distribution::new([(200.0, 1.0)])
                .expect("x21: ample-memory scenario is a valid distribution"),
        ],
        Distribution::new([(8.0, 0.5), (48.0, 0.5)])
            .expect("x21: observed memory is a valid distribution"),
    );
    // Beliefs ≡ truth, and the detector is pinned to x20's settings so no
    // drift machinery contributes to the counters under test.
    cfg.drift = DriftConfig {
        error_threshold: 0.5,
        min_observations: 3,
        blend: 0.8,
    };
    cfg.resilience = ResiliencePolicy {
        max_retries: MAX_RETRIES,
        breaker_threshold: BREAKER_THRESHOLD,
        shard_breaker_threshold: 0,
    };
    cfg.fault_injection = injection;
    cfg
}

const STREAM_LEN: usize = 40;
const FAULT_PERIOD: u64 = 4;
const MAX_RETRIES: u32 = 2;
const BREAKER_THRESHOLD: u32 = 3;

fn route_label(route: ServeRoute) -> String {
    match route {
        ServeRoute::Primary => "primary".into(),
        ServeRoute::Frontier { rank } => format!("frontier:{rank}"),
        ServeRoute::LscBaseline => "lsc".into(),
    }
}

/// Ladder position, for the in-request ordering assertion.
fn route_depth(route: ServeRoute) -> usize {
    match route {
        ServeRoute::Primary => 0,
        ServeRoute::Frontier { rank } => 1 + rank,
        ServeRoute::LscBaseline => usize::MAX,
    }
}

struct FaultRun {
    served: Vec<ServedQuery>,
    counters: lec_core::ResilienceCounters,
    hits: u64,
    misses: u64,
    invalidations: u64,
    optimizer_invocations: u64,
}

fn run_stream(injection: FaultInjection) -> FaultRun {
    let mut svc = QueryService::new(PaperCostModel, catalog(), catalog(), config(injection))
        .expect("x21: service constructs from a validated config");
    let mut served = Vec::with_capacity(STREAM_LEN);
    for req in stream(STREAM_LEN) {
        // The headline property: under injection every request is still
        // served — degraded or retried, never errored out.
        served.push(svc.serve(&req).expect("x21: every request serves"));
    }
    let stats = svc.stats();
    FaultRun {
        served,
        counters: svc.resilience_counters(),
        hits: stats.cache.hits,
        misses: stats.cache.misses,
        invalidations: stats.cache.invalidations,
        optimizer_invocations: svc.optimizer_invocations(),
    }
}

/// Runs the experiment, returning a markdown section; also writes
/// `results/BENCH_faults.json`.
pub fn run() -> String {
    // Control: injection off. 0 faults ⇒ 0 retries (and every other
    // resilience counter zero); cache behaves exactly as PR-3.
    let control = run_stream(FaultInjection::OFF);
    assert!(
        control.counters.is_zero(),
        "control: all resilience counters must be zero, got {:?}",
        control.counters
    );
    assert_eq!(control.misses, 2, "control: one miss per template");
    assert_eq!(control.hits, (STREAM_LEN - 2) as u64);
    assert_eq!(control.invalidations, 0);
    assert!(control
        .served
        .iter()
        .all(|s| s.resilience.route == ServeRoute::Primary && s.resilience.attempts == 1));

    // Faulted: every 4th request's first attempt hits a phase-0 I/O error.
    let faulted = run_stream(FaultInjection::every(FAULT_PERIOD, FaultKind::IoError));

    // Closed forms of the injection config. Ordinals 0,4,...,36 fault once
    // and retry onto the next-best frontier plan (10 faults). Template 0
    // serves every *even* ordinal, so after each third strike the breaker
    // opens at the next even ordinal — 10, 22, 34 — which trips it: the
    // request is served fault-free by the LSC baseline, the strikes reset,
    // and the entry is dropped, forcing a reoptimizing miss at 12, 24, 36.
    let c = faulted.counters;
    assert_eq!(c.faults_injected, 10, "{c:?}");
    assert_eq!(c.retries, 10, "{c:?}");
    assert_eq!(c.frontier_fallbacks, 10, "{c:?}");
    assert_eq!(c.breaker_trips, 3, "{c:?}");
    assert_eq!(c.lsc_fallbacks, 3, "{c:?}");
    assert_eq!(c.degraded_serves, 13, "{c:?}");
    // k injected faults cost at most k·max_retries extra executions.
    assert!(c.retries <= c.faults_injected * MAX_RETRIES as u64);
    // Each breaker trip dropped (and later reoptimized) the entry.
    assert_eq!(faulted.invalidations, 3);
    assert_eq!(faulted.misses, 5, "initial 2 + 3 post-trip reoptimizations");
    assert_eq!(faulted.hits, (STREAM_LEN - 5) as u64);
    assert_eq!(faulted.optimizer_invocations, 5);

    // The fallback ladder ordering, per request: attempts never move up
    // the ladder (primary before frontier before LSC).
    for (i, s) in faulted.served.iter().enumerate() {
        let depths: Vec<usize> = s
            .resilience
            .attempted
            .iter()
            .map(|&r| route_depth(r))
            .collect();
        assert!(
            depths.windows(2).all(|w| w[0] < w[1]),
            "request {i}: ladder went up: {:?}",
            s.resilience.attempted
        );
    }
    // And across the stream: frontier fallbacks start serving before the
    // first LSC serve (the breaker needs strikes before it can trip).
    let first_frontier = faulted
        .served
        .iter()
        .position(|s| matches!(s.resilience.route, ServeRoute::Frontier { .. }));
    let first_lsc = faulted
        .served
        .iter()
        .position(|s| s.resilience.route == ServeRoute::LscBaseline);
    let frontier_before_lsc = match (first_frontier, first_lsc) {
        (Some(f), Some(l)) => f < l,
        _ => false,
    };
    assert!(
        frontier_before_lsc,
        "fallback ladder must serve frontier-next before LSC (frontier at {first_frontier:?}, \
         lsc at {first_lsc:?})"
    );

    // Determinism: the same injection config replays bit-identically.
    let replay = run_stream(FaultInjection::every(FAULT_PERIOD, FaultKind::IoError));
    assert_eq!(replay.counters, faulted.counters);
    for (a, b) in faulted.served.iter().zip(&replay.served) {
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.expected_cost.to_bits(), b.expected_cost.to_bits());
        assert_eq!(a.report, b.report);
    }

    let mut t = Table::new(&[
        "run",
        "faults",
        "retries",
        "degraded",
        "breaker trips",
        "frontier",
        "lsc",
        "hits",
        "misses",
    ]);
    for (name, r) in [("control", &control), ("faulted", &faulted)] {
        t.row(vec![
            name.into(),
            r.counters.faults_injected.to_string(),
            r.counters.retries.to_string(),
            r.counters.degraded_serves.to_string(),
            r.counters.breaker_trips.to_string(),
            r.counters.frontier_fallbacks.to_string(),
            r.counters.lsc_fallbacks.to_string(),
            r.hits.to_string(),
            r.misses.to_string(),
        ]);
    }

    let routes = faulted
        .served
        .iter()
        .map(|s| format!("\"{}\"", route_label(s.resilience.route)))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"experiment\": \"x21_faults\",\n  \
         \"optimized_build\": {OPTIMIZED_BUILD},\n  \"stream_len\": {STREAM_LEN},\n  \
         \"fault_period\": {FAULT_PERIOD},\n  \"max_retries\": {MAX_RETRIES},\n  \
         \"breaker_threshold\": {BREAKER_THRESHOLD},\n  \
         \"control\": {{\"faults\": {}, \"retries\": {}, \"degraded\": {}, \
         \"hits\": {}, \"misses\": {}}},\n  \
         \"faulted\": {{\"faults\": {}, \"retries\": {}, \"degraded\": {}, \
         \"breaker_trips\": {}, \"frontier_fallbacks\": {}, \"lsc_fallbacks\": {}, \
         \"hits\": {}, \"misses\": {}, \"invalidations\": {}, \
         \"optimizer_invocations\": {}}},\n  \
         \"every_request_served\": true,\n  \"frontier_before_lsc\": {frontier_before_lsc},\n  \
         \"routes\": [{routes}]\n}}\n",
        control.counters.faults_injected,
        control.counters.retries,
        control.counters.degraded_serves,
        control.hits,
        control.misses,
        c.faults_injected,
        c.retries,
        c.degraded_serves,
        c.breaker_trips,
        c.frontier_fallbacks,
        c.lsc_fallbacks,
        faulted.hits,
        faulted.misses,
        faulted.invalidations,
        faulted.optimizer_invocations,
    );
    let path = json_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&path, &json).expect("write BENCH_faults.json");

    format!(
        "## X21 — fault injection and graceful degradation (lec-serve)\n\n\
         A {STREAM_LEN}-request stream with a deterministic phase-0 I/O \
         error injected into every {FAULT_PERIOD}th request's first \
         attempt. Every request is still served: faulted executions retry \
         down the fallback ladder (next-best frontier plan by re-cost, \
         then the LSC baseline), and after {BREAKER_THRESHOLD} strikes the \
         circuit breaker reroutes the fingerprint straight to the LSC \
         baseline and drops its cache entry for reoptimization. All \
         counters are closed forms of the injection config, asserted \
         exactly, and the faulted run replays bit-identically. \
         Machine-readable copy written to `results/BENCH_faults.json`.\n\n{}\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_writes_json_and_self_asserts() {
        let md = run();
        assert!(md.contains("X21"));
        assert!(md.contains("| control |"));
        assert!(md.contains("| faulted |"));
        let json = std::fs::read_to_string(json_path()).unwrap();
        assert!(json.contains("\"experiment\": \"x21_faults\""));
        assert!(json.contains("\"every_request_served\": true"));
        assert!(json.contains("\"frontier_before_lsc\": true"));
        // The faulted run's closed forms, as JSON.
        assert!(json.contains(
            "\"faulted\": {\"faults\": 10, \"retries\": 10, \"degraded\": 13, \
             \"breaker_trips\": 3, \"frontier_fallbacks\": 10, \"lsc_fallbacks\": 3, \
             \"hits\": 35, \"misses\": 5, \"invalidations\": 3, \
             \"optimizer_invocations\": 5}"
        ));
        assert!(json.contains(
            "\"control\": {\"faults\": 0, \"retries\": 0, \"degraded\": 0, \
             \"hits\": 38, \"misses\": 2}"
        ));
    }
}
