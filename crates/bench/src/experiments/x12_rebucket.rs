//! X12 — §3.6.3 rebucketing of result-size distributions.
//!
//! The product of `b`-bucket inputs has up to `b³` support points; carrying
//! that up the dag would blow up. Rebucketing caps the support at `b`
//! while preserving mass and mean exactly. This experiment measures what
//! the cap costs: moment error and CDF (L1) distance of the rebucketed
//! result-size distribution against the full product, plus whether the
//! downstream Algorithm D plan choice survives aggressive caps.

use crate::fixtures::{chain_query, SEED};
use crate::table::Table;
use lec_core::alg_d::{self, AlgDConfig, Kernel, SizeModel};
use lec_core::MemoryModel;
use lec_stats::rebucket;
use lec_workload::envs;

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    // Full product of three 12-bucket inputs: |A| ⊗ |B| ⊗ σ.
    let a = lec_stats::families::lognormal_bucketed(5_000.0, 0.8, 12).expect("a");
    let b = lec_stats::families::lognormal_bucketed(1_200.0, 0.8, 12).expect("b");
    let sel = lec_stats::families::lognormal_bucketed(1e-3, 1.0, 12).expect("sel");
    let full = a
        .product_with(&b, |x, y| x * y)
        .and_then(|ab| ab.product_with(&sel, |x, s| x * s))
        .expect("product");

    let mut t = Table::new(&[
        "cap b",
        "support",
        "mean err %",
        "std-dev err %",
        "CDF L1 (rel)",
    ]);
    for cap in [64usize, 32, 16, 8, 4, 2] {
        let r = rebucket(&full, cap).expect("rebucket");
        t.row(vec![
            cap.to_string(),
            r.len().to_string(),
            format!(
                "{:.2e}",
                100.0 * (r.mean() - full.mean()).abs() / full.mean()
            ),
            format!(
                "{:.2}",
                100.0 * (r.std_dev() - full.std_dev()).abs() / full.std_dev()
            ),
            format!("{:.4}", full.cdf_l1_distance(&r) / full.mean()),
        ]);
    }

    // Downstream stability: Algorithm D's chosen plan across caps.
    let q = chain_query(4, SEED + 12);
    let mem = MemoryModel::Static(envs::lognormal(300.0, 0.8, 4));
    let sizes = SizeModel::with_uncertainty(&q, 0.5, 0.8, 6).expect("sizes");
    let reference = alg_d::optimize_fast(
        &q,
        &mem,
        &sizes,
        AlgDConfig {
            size_buckets: 64,
            kernel: Kernel::Fast,
        },
    )
    .expect("reference");
    let mut stability = Table::new(&["cap b", "same plan as b=64?", "E[cost] drift %"]);
    for cap in [32usize, 16, 8, 4, 2] {
        let r = alg_d::optimize_fast(
            &q,
            &mem,
            &sizes,
            AlgDConfig {
                size_buckets: cap,
                kernel: Kernel::Fast,
            },
        )
        .expect("capped");
        stability.row(vec![
            cap.to_string(),
            if r.best.plan == reference.best.plan {
                "yes"
            } else {
                "NO"
            }
            .into(),
            format!(
                "{:.3}",
                100.0 * (r.best.cost - reference.best.cost).abs() / reference.best.cost
            ),
        ]);
    }

    format!(
        "## X12 — rebucketing result-size distributions (§3.6.3)\n\n\
         Full product |A| ⊗ |B| ⊗ σ has {} support points; rebucketing caps \
         it while preserving mass and mean exactly.\n\n{}\n\
         Downstream effect on Algorithm D (chain n = 4):\n\n{}\n",
        full.len(),
        t.render(),
        stability.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x12_mean_exact_and_cost_stable() {
        let md = super::run();
        // Mean error column is always ~0 (rebucketing is mean-exact).
        let mut checked = 0;
        for line in md
            .lines()
            .filter(|l| l.starts_with("|") && l.contains("e-"))
        {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() >= 6 {
                if let Ok(err) = cells[3].parse::<f64>() {
                    assert!(err < 1e-6, "{line}");
                    checked += 1;
                }
            }
        }
        assert!(checked >= 5, "mean-error rows not found:\n{md}");
        // The chosen plan may flip between near-tied alternatives, but the
        // expected-cost drift must stay far below 1% even at cap 2.
        for line in md.lines().filter(|l| l.contains("yes") || l.contains("NO")) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() >= 4 {
                if let Ok(drift) = cells[3].parse::<f64>() {
                    assert!(drift < 1.0, "cost drift too large: {line}");
                }
            }
        }
    }
}
