//! X1 — Example 1.1 (§1.1): the motivating comparison.
//!
//! Reproduces the paper's worked numbers: Plan 1 (sort-merge) vs Plan 2
//! (Grace hash + sort) at 700 and 2000 pages of memory, their expected
//! costs under the 80/20 distribution, and what each optimizer picks.
//! Also runs the interesting-orders ablation (DESIGN.md §4).

use crate::table::{num, Table};
use lec_core::{alg_c, dp::DpOptions, evaluate, lsc, MemoryModel};
use lec_cost::{JoinMethod, PaperCostModel};
use lec_plan::{KeyId, Plan};
use lec_workload::{envs, queries};

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let q = queries::example_1_1();
    let model = PaperCostModel;
    let mem = envs::example_1_1_memory();
    let phases = MemoryModel::Static(mem.clone()).table(2).expect("valid");

    let plan1 = Plan::join(
        Plan::scan(0),
        Plan::scan(1),
        JoinMethod::SortMerge,
        Some(KeyId(0)),
    );
    let plan2 = Plan::sort(
        Plan::join(
            Plan::scan(0),
            Plan::scan(1),
            JoinMethod::GraceHash,
            Some(KeyId(0)),
        ),
        KeyId(0),
    );

    let mut costs = Table::new(&["plan", "cost @ M=700", "cost @ M=2000", "expected cost"]);
    for (name, plan) in [
        ("Plan 1: sort-merge", &plan1),
        ("Plan 2: grace-hash + sort", &plan2),
    ] {
        costs.row(vec![
            name.into(),
            num(evaluate::plan_cost_at(&q, &model, plan, 700.0)),
            num(evaluate::plan_cost_at(&q, &model, plan, 2000.0)),
            num(evaluate::expected_cost(&q, &model, plan, &phases)),
        ]);
    }

    let describe = |p: &Plan| -> &'static str {
        match p {
            Plan::Join {
                method: JoinMethod::SortMerge,
                ..
            } => "Plan 1 (sort-merge)",
            Plan::Sort { .. } => "Plan 2 (grace-hash + sort)",
            _ => "other",
        }
    };

    let lsc_mode = lsc::optimize_at_mode(&q, &model, &mem).expect("lsc");
    let lsc_mean = lsc::optimize_at_mean(&q, &model, &mem).expect("lsc");
    let lec = alg_c::optimize(&q, &model, &MemoryModel::Static(mem.clone())).expect("lec");
    let ablate = alg_c::optimize_with_options(
        &q,
        &model,
        &MemoryModel::Static(mem),
        DpOptions {
            ignore_orders: true,
        },
    )
    .expect("ablation");

    let mut choices = Table::new(&["optimizer", "chooses", "expected cost of its choice"]);
    choices.row(vec![
        "LSC @ mode (2000)".into(),
        describe(&lsc_mode.plan).into(),
        num(evaluate::expected_cost(&q, &model, &lsc_mode.plan, &phases)),
    ]);
    choices.row(vec![
        "LSC @ mean (1740)".into(),
        describe(&lsc_mean.plan).into(),
        num(evaluate::expected_cost(&q, &model, &lsc_mean.plan, &phases)),
    ]);
    choices.row(vec![
        "LEC (Algorithm C)".into(),
        describe(&lec.plan).into(),
        num(lec.cost),
    ]);
    choices.row(vec![
        "LEC, orders ablated".into(),
        describe(&ablate.plan).into(),
        num(ablate.cost),
    ]);

    format!(
        "## X1 — Example 1.1: the motivating comparison\n\n\
         Query: A (1,000,000 pages) ⋈ B (400,000 pages), result 3,000 pages, \
         ORDER BY join column. Memory: 2000 pages w.p. 0.8, 700 pages w.p. 0.2.\n\n\
         {}\n{}\n",
        costs.render(),
        choices.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x1_reports_the_papers_conclusion() {
        let md = super::run();
        // LEC must pick Plan 2; LSC at both mode and mean must pick Plan 1.
        assert!(md.contains("LEC (Algorithm C)"));
        let lec_line = md
            .lines()
            .find(|l| l.contains("LEC (Algorithm C)"))
            .unwrap();
        assert!(lec_line.contains("Plan 2"), "{lec_line}");
        for summary in ["mode", "mean"] {
            let line = md.lines().find(|l| l.contains(summary)).unwrap();
            assert!(line.contains("Plan 1"), "{line}");
        }
    }
}
