//! X10 — the LEC claim realized in execution.
//!
//! A scaled-down Example 1.1 (the simulator works at hundreds of pages, not
//! millions) is optimized by LSC(mode) and by Algorithm C, and both chosen
//! plans are then *executed* — pages, buffer pool, the lot — over many
//! sampled memory environments. The paper's claim is about modeled cost;
//! this experiment checks it survives contact with counted I/O.

use crate::table::{num, Table};
use lec_core::{alg_c, lsc, MemoryModel};
use lec_cost::PaperCostModel;
use lec_exec::datagen::{domain_for_selectivity, generate, DataGenSpec};
use lec_exec::{execute_plan, Disk, ExecMemoryEnv, RelId};
use lec_plan::{JoinPred, JoinQuery, KeyId, Plan, Relation};
use lec_stats::Distribution;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

const A_PAGES: f64 = 400.0;
const B_PAGES: f64 = 100.0;
const SELECTIVITY: f64 = 3e-4;

/// The scaled motivating query.
pub fn scaled_query() -> JoinQuery {
    JoinQuery::new(
        vec![
            Relation::new("A", A_PAGES, A_PAGES * 64.0),
            Relation::new("B", B_PAGES, B_PAGES * 64.0),
        ],
        vec![JoinPred {
            left: 0,
            right: 1,
            selectivity: SELECTIVITY,
            key: KeyId(0),
        }],
        Some(KeyId(0)),
    )
    .expect("valid scaled query")
}

/// The scaled bimodal memory environment: 25 pages (mode) or 12 pages.
pub fn scaled_memory() -> Distribution {
    Distribution::new([(12.0, 0.2), (25.0, 0.8)]).expect("valid")
}

fn load_tables(seed: u64) -> (Disk, Vec<RelId>) {
    let mut disk = Disk::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let domain = domain_for_selectivity(SELECTIVITY);
    let a = generate(
        &mut disk,
        &mut rng,
        &DataGenSpec {
            pages: A_PAGES as usize,
            key_domain: domain,
        },
    );
    let b = generate(
        &mut disk,
        &mut rng,
        &DataGenSpec {
            pages: B_PAGES as usize,
            key_domain: domain,
        },
    );
    (disk, vec![a, b])
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Monte-Carlo race between two plans over `iters` paired environment
/// draws; returns (mean, p95, wins of plan1, totals of both).
fn race(plan1: &Plan, plan2: &Plan, iters: usize) -> (Vec<u64>, Vec<u64>, usize) {
    let (mut disk, base) = load_tables(4242);
    let mem = scaled_memory();
    let mut totals1 = Vec::with_capacity(iters);
    let mut totals2 = Vec::with_capacity(iters);
    let mut wins1 = 0;
    for i in 0..iters {
        // Paired draws: both plans see the same environment sample.
        let mut env1 = ExecMemoryEnv::draw_once(mem.clone(), 1000 + i as u64);
        let mut env2 = ExecMemoryEnv::draw_once(mem.clone(), 1000 + i as u64);
        let r1 = execute_plan(plan1, &base, &mut disk, &mut env1).expect("plan1");
        let r2 = execute_plan(plan2, &base, &mut disk, &mut env2).expect("plan2");
        totals1.push(r1.total.total());
        totals2.push(r2.total.total());
        if r1.total.total() < r2.total.total() {
            wins1 += 1;
        }
    }
    (totals1, totals2, wins1)
}

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let q = scaled_query();
    let model = PaperCostModel;
    let mem = scaled_memory();

    let lsc_choice = lsc::optimize_at_mode(&q, &model, &mem).expect("lsc");
    let lec_choice = alg_c::optimize(&q, &model, &MemoryModel::Static(mem.clone())).expect("lec");

    let iters = 400;
    let (mut t_lsc, mut t_lec, lsc_wins) = race(&lsc_choice.plan, &lec_choice.plan, iters);
    t_lsc.sort_unstable();
    t_lec.sort_unstable();

    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    let mut t = Table::new(&["plan", "mean I/O", "p50", "p95", "max"]);
    t.row(vec![
        "LSC(mode) choice".into(),
        num(mean(&t_lsc)),
        t_lsc[t_lsc.len() / 2].to_string(),
        percentile(&t_lsc, 0.95).to_string(),
        t_lsc.last().expect("non-empty").to_string(),
    ]);
    t.row(vec![
        "LEC choice".into(),
        num(mean(&t_lec)),
        t_lec[t_lec.len() / 2].to_string(),
        percentile(&t_lec, 0.95).to_string(),
        t_lec.last().expect("non-empty").to_string(),
    ]);

    format!(
        "## X10 — Monte-Carlo: realized I/O of LEC vs LSC plans\n\n\
         Scaled Example 1.1 (A = 400 pages, B = 100 pages, result ≈ 12 \
         pages, ORDER BY); memory 25 pages w.p. 0.8, 12 pages w.p. 0.2; \
         {iters} paired executions in the page-level simulator.\n\n\
         LSC(mode) chose: `{}`; LEC chose: `{}`.\n\n{}\n\
         LSC plan won {} / {iters} paired draws; LEC plan won {}.\n\
         Modeled expected costs: LSC plan {}, LEC plan {} (optimizer units).\n",
        summarize(&lsc_choice.plan),
        summarize(&lec_choice.plan),
        t.render(),
        lsc_wins,
        iters - lsc_wins,
        num(lec_of(&q, &lsc_choice.plan)),
        num(lec_choice.cost),
    )
}

fn lec_of(q: &JoinQuery, plan: &Plan) -> f64 {
    let mem = MemoryModel::Static(scaled_memory());
    let phases = mem.table(q.n()).expect("valid");
    lec_core::evaluate::expected_cost(q, &PaperCostModel, plan, &phases)
}

fn summarize(plan: &Plan) -> &'static str {
    match plan {
        Plan::Join {
            method: lec_cost::JoinMethod::SortMerge,
            ..
        } => "sort-merge",
        Plan::Sort { .. } => "grace-hash + sort",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x10_optimizers_disagree_as_designed() {
        let q = scaled_query();
        let mem = scaled_memory();
        let lsc_choice = lsc::optimize_at_mode(&q, &PaperCostModel, &mem).unwrap();
        let lec_choice = alg_c::optimize(&q, &PaperCostModel, &MemoryModel::Static(mem)).unwrap();
        assert_eq!(summarize(&lsc_choice.plan), "sort-merge");
        assert_eq!(summarize(&lec_choice.plan), "grace-hash + sort");
    }

    #[test]
    fn x10_lec_plan_wins_on_average_in_realized_io() {
        let q = scaled_query();
        let mem = scaled_memory();
        let lsc_choice = lsc::optimize_at_mode(&q, &PaperCostModel, &mem).unwrap();
        let lec_choice =
            alg_c::optimize(&q, &PaperCostModel, &MemoryModel::Static(mem.clone())).unwrap();
        let (t_lsc, t_lec, _) = race(&lsc_choice.plan, &lec_choice.plan, 120);
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&t_lec) < mean(&t_lsc),
            "LEC realized mean {} vs LSC {}",
            mean(&t_lec),
            mean(&t_lsc)
        );
    }
}
