//! X7 — the §3.6.1/3.6.2 linear-time expected-cost kernels.
//!
//! Exactness (max relative error vs the naive triple loop) and wall-clock
//! speedup as the bucket count grows. The asymptotic claim — `O(b)` vs
//! `O(b³)` — shows up as a speedup that grows roughly quadratically in `b`.

use crate::table::{ratio, Table};
use lec_cost::fast_expect::{expected_join_fast, expected_join_naive};
use lec_cost::{JoinMethod, PaperCostModel};
use lec_stats::Distribution;
use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn random_dist(rng: &mut ChaCha8Rng, b: usize, scale: f64) -> Distribution {
    Distribution::from_weights((0..b).map(|_| {
        let v = 1.0 + (rng.next_u32() % 1_000_000) as f64 / 1_000_000.0 * scale;
        let w = 0.05 + (rng.next_u32() % 1000) as f64 / 1000.0;
        (v, w)
    }))
    .expect("positive weights")
}

fn time_it(mut f: impl FnMut() -> f64, iters: usize) -> (f64, f64) {
    let start = Instant::now();
    let mut acc = 0.0;
    for _ in 0..iters {
        acc += f();
    }
    (start.elapsed().as_secs_f64() / iters as f64, acc)
}

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let mut t = Table::new(&[
        "b (buckets per input)",
        "max rel error",
        "naive µs",
        "fast µs",
        "speedup",
    ]);
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    for b in [4usize, 16, 64, 256] {
        let a = random_dist(&mut rng, b, 1e6);
        let bd = random_dist(&mut rng, b, 1e6);
        let m = random_dist(&mut rng, b, 2e3);
        let mut max_err: f64 = 0.0;
        for method in JoinMethod::ALL {
            let nv = expected_join_naive(&PaperCostModel, method, &a, &bd, &m);
            let fv = expected_join_fast(method, &a, &bd, &m);
            max_err = max_err.max((nv - fv).abs() / nv.abs().max(1.0));
        }
        let iters = (40_000 / (b * b).max(1)).max(3);
        let (naive_t, _) = time_it(
            || expected_join_naive(&PaperCostModel, JoinMethod::SortMerge, &a, &bd, &m),
            iters,
        );
        let (fast_t, _) = time_it(
            || expected_join_fast(JoinMethod::SortMerge, &a, &bd, &m),
            iters * 8,
        );
        t.row(vec![
            b.to_string(),
            format!("{max_err:.2e}"),
            format!("{:.2}", naive_t * 1e6),
            format!("{:.2}", fast_t * 1e6),
            ratio(naive_t / fast_t),
        ]);
    }
    format!(
        "## X7 — linear-time expected-cost kernels (§3.6.1–3.6.2)\n\n\
         Fast `O(b_M + b_A + b_B)` kernels vs the naive `O(b_M·b_A·b_B)` \
         triple loop, equal-size buckets per input, random supports.\n\n{}\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x7_kernels_exact_and_faster_at_scale() {
        let md = super::run();
        // Every error cell is tiny.
        for line in md
            .lines()
            .filter(|l| l.starts_with("| ") && l.contains("e-"))
        {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            let err: f64 = cells[2].parse().unwrap();
            assert!(err < 1e-9, "{line}");
        }
        // b = 256 must show a real speedup.
        let row = md
            .lines()
            .find(|l| l.trim_start_matches('|').trim().starts_with("256"))
            .unwrap();
        let speedup: f64 = row
            .split('|')
            .map(str::trim)
            .nth(5)
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(speedup > 20.0, "{row}");
    }
}
