//! X18 (extension) — the machine-readable perf trajectory of the
//! rank-parallel optimizer.
//!
//! Serial Algorithm C against its rank-parallel twin (`alg_c::optimize_par`)
//! on the chain sizes where the DP wavefronts are widest. Besides the
//! markdown table this experiment writes `results/BENCH_parallel.json`, so
//! successive checkouts can diff the speedup trajectory mechanically.
//! The two paths return bit-identical plans (property-tested in
//! `crates/core/tests/parallel_equivalence.rs`); only wall-clock differs,
//! and on a single-core host the honest expectation is a speedup near (or
//! slightly below) 1.0 — the JSON records whatever the machine delivers.

use crate::fixtures::{chain_query, spread_memory, static_mem, SEED};
use crate::table::{ratio, Table};
use lec_core::{alg_c, Parallelism};
use lec_cost::PaperCostModel;
use std::path::PathBuf;
use std::time::Instant;

/// Median wall-clock of `f` over `reps` runs after one warm-up call.
fn median_ns<F: FnMut()>(mut f: F, reps: usize) -> u128 {
    f();
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Where the machine-readable trajectory lands (workspace `results/`).
fn json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_parallel.json")
}

/// Runs the experiment, returning a markdown section; also writes
/// `results/BENCH_parallel.json`.
pub fn run() -> String {
    let par = Parallelism::auto();
    let threads = par.effective_threads();
    let mut t = Table::new(&[
        "n",
        "threads",
        "serial median",
        "parallel median",
        "speedup",
    ]);
    let mut json_rows = Vec::new();
    for n in [9usize, 11, 13] {
        let q = chain_query(n, SEED + n as u64);
        let mem = static_mem(spread_memory(4));
        let serial = median_ns(
            || {
                alg_c::optimize(&q, &PaperCostModel, &mem).expect("serial");
            },
            7,
        );
        let parallel = median_ns(
            || {
                alg_c::optimize_par(&q, &PaperCostModel, &mem, &par).expect("parallel");
            },
            7,
        );
        let speedup = serial as f64 / parallel as f64;
        t.row(vec![
            n.to_string(),
            threads.to_string(),
            format!("{:.3} ms", serial as f64 / 1e6),
            format!("{:.3} ms", parallel as f64 / 1e6),
            ratio(speedup),
        ]);
        json_rows.push(format!(
            "    {{\"n\": {n}, \"threads\": {threads}, \"serial_median_ns\": {serial}, \
             \"parallel_median_ns\": {parallel}, \"speedup\": {speedup:.4}}}"
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"x18_parallel\",\n  \"algorithm\": \"alg_c\",\n  \
         \"memory_buckets\": 4,\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = json_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    format!(
        "## X18 — serial vs. rank-parallel optimization time\n\n\
         Median of 7 runs, chain queries, 4 memory buckets, \
         {threads} worker thread(s) (`Parallelism::auto()`). Both paths \
         return bit-identical plans; speedup above 1.000x means the \
         parallel path was faster. Machine-readable copy written to \
         `results/BENCH_parallel.json`.\n\n{}\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_writes_json() {
        let md = run();
        assert!(md.contains("X18"));
        assert!(md.contains("| 13 |"));
        let json = std::fs::read_to_string(json_path()).unwrap();
        assert!(json.contains("\"experiment\": \"x18_parallel\""));
        assert!(json.contains("\"n\": 9"));
        assert!(json.contains("\"n\": 13"));
        assert!(json.contains("\"speedup\""));
    }
}
