//! X18 (extension) — the machine-readable perf trajectory of the
//! rank-parallel optimizer.
//!
//! Serial Algorithm C against its rank-parallel twin (`alg_c::optimize_par`)
//! on the chain sizes where the DP wavefronts are widest, swept over
//! *forced* worker counts (1, 2, 4) so the scaling curve is visible even
//! where `Parallelism::auto()` would collapse to one thread. Besides the
//! markdown table this experiment writes `results/BENCH_parallel.json`
//! with per-rank wall times per row and the serial speedup over the
//! pre-kernel baseline, so successive checkouts can diff both the
//! parallel scaling and the serial trajectory mechanically.
//!
//! The serial and parallel paths return bit-identical plans
//! (property-tested in `crates/core/tests/parallel_equivalence.rs`); only
//! wall-clock differs, and on a single-core host the honest expectation
//! for the thread sweep is a speedup near (or below) 1.0 — the JSON
//! records whatever the machine delivers.

use crate::fixtures::{chain_query, spread_memory, static_mem, SEED};
use crate::table::{ratio, Table};
use lec_core::{alg_c, Parallelism};
use lec_cost::PaperCostModel;
use std::path::PathBuf;
use std::time::Instant;

/// Forced worker counts for the scaling sweep.
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Chain size the serial-speedup headline is judged at.
const SPEEDUP_N: usize = 13;

/// On-box serial median for `alg_c` at `n = 13`, 4 memory buckets,
/// measured at the pre-kernel-rewrite baseline commit on this machine.
/// The `serial_speedup` JSON block reports the current serial median
/// against this number.
const BASELINE_SERIAL_NS: u128 = 3_616_000;

/// Median wall-clock of `f` over `reps` runs after one warm-up call.
fn median_ns<F: FnMut()>(mut f: F, reps: usize) -> u128 {
    f();
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Where the machine-readable trajectory lands (workspace `results/`).
fn json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_parallel.json")
}

fn fmt_rank_ns(rank_wall_ns: &[u64]) -> String {
    let inner: Vec<String> = rank_wall_ns.iter().map(u64::to_string).collect();
    format!("[{}]", inner.join(", "))
}

/// Runs the experiment, returning a markdown section; also writes
/// `results/BENCH_parallel.json`.
pub fn run() -> String {
    let mut t = Table::new(&[
        "n",
        "threads",
        "serial median",
        "parallel median",
        "speedup",
    ]);
    let mut json_rows = Vec::new();
    let mut speedup_block = String::new();
    for n in [9usize, 11, 13] {
        let q = chain_query(n, SEED + n as u64);
        let mem = static_mem(spread_memory(4));
        let serial = median_ns(
            || {
                alg_c::optimize(&q, &PaperCostModel, &mem).expect("serial");
            },
            7,
        );
        if n == SPEEDUP_N {
            speedup_block = format!(
                "  \"serial_speedup\": {{\"n\": {SPEEDUP_N}, \
                 \"baseline_serial_ns\": {BASELINE_SERIAL_NS}, \
                 \"serial_ns\": {serial}, \"speedup\": {:.4}}},\n",
                BASELINE_SERIAL_NS as f64 / serial as f64
            );
        }
        for threads in THREAD_SWEEP {
            let par = Parallelism::with_threads(threads);
            let effective = par.effective_threads();
            let parallel = median_ns(
                || {
                    alg_c::optimize_par(&q, &PaperCostModel, &mem, &par).expect("parallel");
                },
                7,
            );
            // Per-rank wall times from one representative run (timing is
            // the only non-deterministic stat).
            let (_, stats) =
                alg_c::optimize_with_stats_par(&q, &PaperCostModel, &mem, &par).expect("stats run");
            let speedup = serial as f64 / parallel as f64;
            t.row(vec![
                n.to_string(),
                threads.to_string(),
                format!("{:.3} ms", serial as f64 / 1e6),
                format!("{:.3} ms", parallel as f64 / 1e6),
                ratio(speedup),
            ]);
            json_rows.push(format!(
                "    {{\"n\": {n}, \"threads\": {threads}, \
                 \"effective_threads\": {effective}, \
                 \"serial_median_ns\": {serial}, \
                 \"parallel_median_ns\": {parallel}, \"speedup\": {speedup:.4}, \
                 \"rank_wall_ns\": {}}}",
                fmt_rank_ns(&stats.rank_wall_ns)
            ));
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"x18_parallel\",\n  \"algorithm\": \"alg_c\",\n  \
         \"memory_buckets\": 4,\n{speedup_block}  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = json_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    format!(
        "## X18 — serial vs. rank-parallel optimization time\n\n\
         Median of 7 runs, chain queries, 4 memory buckets, forced worker \
         counts {THREAD_SWEEP:?}. Both paths return bit-identical plans; \
         speedup above 1.000x means the parallel path was faster (threads \
         = 1 routes through the serial path, so its speedup isolates \
         dispatch overhead). Machine-readable copy — including per-rank \
         wall times per row and the serial speedup over the pre-kernel \
         baseline — written to `results/BENCH_parallel.json`.\n\n{}\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_writes_json() {
        let md = run();
        assert!(md.contains("X18"));
        assert!(md.contains("| 13 |"));
        let json = std::fs::read_to_string(json_path()).unwrap();
        assert!(json.contains("\"experiment\": \"x18_parallel\""));
        assert!(json.contains("\"n\": 9"));
        assert!(json.contains("\"n\": 13"));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"effective_threads\""));
        assert!(json.contains("\"rank_wall_ns\""));
        assert!(json.contains("\"serial_speedup\""));
        assert!(json.contains("\"baseline_serial_ns\""));
    }
}
