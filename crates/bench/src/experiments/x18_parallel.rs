//! X18 (extension) — the machine-readable perf trajectory of the
//! rank-parallel optimizer.
//!
//! Serial Algorithm C against its rank-parallel twin (`alg_c::optimize_par`)
//! on the chain sizes where the DP wavefronts are widest, swept over
//! *forced* worker counts (1, 2, 4) so the scaling curve is visible even
//! where `Parallelism::auto()` would collapse to one thread. Besides the
//! markdown table this experiment writes `results/BENCH_parallel.json`
//! with per-rank wall times per row and the serial speedup over the
//! pre-kernel baseline, so successive checkouts can diff both the
//! parallel scaling and the serial trajectory mechanically.
//!
//! The serial and parallel paths return bit-identical plans
//! (property-tested in `crates/core/tests/parallel_equivalence.rs`); only
//! wall-clock differs, and on a single-core host the honest expectation
//! for the thread sweep is a speedup near (or below) 1.0.
//!
//! The run **self-asserts** before writing: the serial median must not
//! regress below the recorded baseline (`serial_speedup ≥ 1.0`), and
//! every thread-sweep row must clear the floor recorded next to it as
//! `min_speedup` — dispatch-only rows ≥ 0.75, truly fanned-out rows
//! ≥ 0.5 (on an oversubscribed host >1.0 is physically impossible; the
//! floor bounds coordination overhead instead). A regression therefore
//! panics `make kernel-smoke` rather than being silently written to the
//! artifact. Debug builds (e.g. `cargo test --workspace`) check only the
//! ratio floors and write `BENCH_parallel_debug.json` (gitignored) — an
//! unoptimized run can neither trip the absolute-time floor nor clobber
//! the committed release artifact.

use crate::artifacts::{artifact_path, OPTIMIZED_BUILD};
use crate::fixtures::{chain_query, spread_memory, static_mem, SEED};
use crate::table::{ratio, Table};
use lec_core::{alg_c, Parallelism};
use lec_cost::PaperCostModel;
use std::path::PathBuf;
use std::time::Instant;

/// Forced worker counts for the scaling sweep.
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Chain size the serial-speedup headline is judged at.
const SPEEDUP_N: usize = 13;

/// On-box serial median for `alg_c` at `n = 13`, 4 memory buckets,
/// measured at the pre-kernel-rewrite baseline commit on this machine.
/// The `serial_speedup` JSON block reports the current serial median
/// against this number.
const BASELINE_SERIAL_NS: u128 = 3_616_000;

/// The serial path must never regress below the pre-kernel baseline: the
/// run panics (failing `make kernel-smoke`) instead of silently writing a
/// sub-1.0 serial speedup into the artifact. A committed artifact once
/// recorded 0.1396 here — an unoptimized debug-build test run (~0.14× is
/// exactly debug-vs-release for this kernel) that clobbered the release
/// artifact, while the docs kept quoting the healthy number. Two guards
/// make that class of artifact impossible to commit: this assertion, and
/// `json_path` routing debug builds to a separate gitignored file.
const MIN_SERIAL_SPEEDUP: f64 = 1.0;

/// Self-asserted floor for thread-sweep rows that never leave the serial
/// path (forced threads = 1, or `n` below the sequential cutoff): the
/// parallel entry point is then pure dispatch, so anything beyond ~25%
/// overhead is a bug, not noise.
const MIN_DISPATCH_SPEEDUP: f64 = 0.75;

/// Self-asserted floor for rows that really fan out. When the forced
/// worker count exceeds the machine's cores the workers time-share one
/// CPU, so a speedup above 1.0 is physically impossible — the floor only
/// bounds the oversubscription overhead (barrier wake-ups and claim
/// traffic on a single core). With threads ≤ cores the same floor is
/// deliberately conservative: scaling wins are environment-dependent, but
/// losing more than half to coordination is a regression on any machine.
const MIN_PARALLEL_SPEEDUP: f64 = 0.5;

/// The floor a row is judged against, recorded next to its measured
/// speedup so the artifact is self-describing.
fn row_min_speedup(parallelized: bool) -> f64 {
    if parallelized {
        MIN_PARALLEL_SPEEDUP
    } else {
        MIN_DISPATCH_SPEEDUP
    }
}

/// Samples per median. High enough that a transient stall on a busy box
/// cannot drag the median of an unchanged code path below its floor.
const REPS: usize = 15;

/// Measurement attempts per thread-sweep row. A row that misses its floor
/// is re-measured from scratch (both sides) before the assertion fires:
/// a real regression misses every attempt, while a stall burst from a
/// co-scheduled process (e.g. the rest of the test suite on a 1-CPU box)
/// rarely survives one re-measure, let alone two.
const ROW_ATTEMPTS: usize = 3;

/// Median wall-clock of `f` over `reps` runs after one warm-up call.
fn median_ns<F: FnMut()>(mut f: F, reps: usize) -> u128 {
    f();
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Where the machine-readable trajectory lands (workspace `results/`).
/// Debug builds write a separate, gitignored file: their absolute wall
/// times are meaningless against the release baseline, and a debug test
/// run must never overwrite the committed release artifact.
fn json_path() -> PathBuf {
    artifact_path("parallel")
}

fn fmt_rank_ns(rank_wall_ns: &[u64]) -> String {
    let inner: Vec<String> = rank_wall_ns.iter().map(u64::to_string).collect();
    format!("[{}]", inner.join(", "))
}

/// Runs the experiment, returning a markdown section; also writes
/// `results/BENCH_parallel.json`.
pub fn run() -> String {
    let mut t = Table::new(&[
        "n",
        "threads",
        "serial median",
        "parallel median",
        "speedup",
    ]);
    let mut json_rows = Vec::new();
    let mut speedup_block = String::new();
    for n in [9usize, 11, 13] {
        let q = chain_query(n, SEED + n as u64);
        let mem = static_mem(spread_memory(4));
        if n == SPEEDUP_N {
            // Same second-chance scheme as the sweep rows below: against a
            // fixed nanosecond baseline, a co-scheduled stall during the
            // one measured median reads as a regression of unchanged code,
            // so only a miss on every attempt is treated as real. Debug
            // builds skip the absolute floor entirely — they are ~7×
            // slower by construction and their artifact lands elsewhere.
            let mut serial = 0u128;
            let mut speedup = 0.0f64;
            for _ in 0..ROW_ATTEMPTS {
                serial = median_ns(
                    || {
                        alg_c::optimize(&q, &PaperCostModel, &mem).expect("serial");
                    },
                    REPS,
                );
                speedup = BASELINE_SERIAL_NS as f64 / serial as f64;
                if !OPTIMIZED_BUILD || speedup >= MIN_SERIAL_SPEEDUP {
                    break;
                }
            }
            assert!(
                !OPTIMIZED_BUILD || speedup >= MIN_SERIAL_SPEEDUP,
                "serial regression: alg_c n={SPEEDUP_N} serial median {serial} ns is \
                 {speedup:.4}x the {BASELINE_SERIAL_NS} ns baseline (self-asserted \
                 floor {MIN_SERIAL_SPEEDUP}) on all {ROW_ATTEMPTS} measurement \
                 attempts — refusing to write the artifact"
            );
            speedup_block = format!(
                "  \"serial_speedup\": {{\"n\": {SPEEDUP_N}, \
                 \"baseline_serial_ns\": {BASELINE_SERIAL_NS}, \
                 \"serial_ns\": {serial}, \"speedup\": {speedup:.4}, \
                 \"min_speedup\": {MIN_SERIAL_SPEEDUP:.1}}},\n",
            );
        }
        for threads in THREAD_SWEEP {
            let par = Parallelism::with_threads(threads);
            let effective = par.effective_threads();
            let parallelized = par.use_parallel(n);
            let min_speedup = row_min_speedup(parallelized);
            // Re-measure the serial reference adjacent to each row so the
            // ratio compares two medians taken under the same machine
            // conditions — a frequency dip or background stall between the
            // top-of-loop serial measurement and this row would otherwise
            // read as a phantom regression of an unchanged code path. A row
            // that still misses its floor gets measured again from scratch
            // (ROW_ATTEMPTS): real regressions miss every time, stall
            // bursts don't.
            let mut serial_row = 0u128;
            let mut parallel = 0u128;
            let mut speedup = 0.0f64;
            for _ in 0..ROW_ATTEMPTS {
                serial_row = median_ns(
                    || {
                        alg_c::optimize(&q, &PaperCostModel, &mem).expect("serial");
                    },
                    REPS,
                );
                parallel = median_ns(
                    || {
                        alg_c::optimize_par(&q, &PaperCostModel, &mem, &par).expect("parallel");
                    },
                    REPS,
                );
                speedup = serial_row as f64 / parallel as f64;
                if speedup >= min_speedup {
                    break;
                }
            }
            // Per-rank wall times from one representative run (timing is
            // the only non-deterministic stat).
            let (_, stats) =
                alg_c::optimize_with_stats_par(&q, &PaperCostModel, &mem, &par).expect("stats run");
            assert!(
                speedup >= min_speedup,
                "parallel regression: n={n} threads={threads} (parallelized: \
                 {parallelized}) speedup {speedup:.4} fell below its self-asserted \
                 floor {min_speedup} on all {ROW_ATTEMPTS} measurement attempts — \
                 refusing to write the artifact"
            );
            t.row(vec![
                n.to_string(),
                threads.to_string(),
                format!("{:.3} ms", serial_row as f64 / 1e6),
                format!("{:.3} ms", parallel as f64 / 1e6),
                ratio(speedup),
            ]);
            json_rows.push(format!(
                "    {{\"n\": {n}, \"threads\": {threads}, \
                 \"effective_threads\": {effective}, \
                 \"parallelized\": {parallelized}, \
                 \"serial_median_ns\": {serial_row}, \
                 \"parallel_median_ns\": {parallel}, \"speedup\": {speedup:.4}, \
                 \"min_speedup\": {min_speedup}, \
                 \"rank_wall_ns\": {}}}",
                fmt_rank_ns(&stats.rank_wall_ns)
            ));
        }
    }
    // `host_threads` records what the sweep was up against: rows with
    // threads > host_threads time-share cores, so their floors are the
    // oversubscription bound, not a scaling claim.
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"experiment\": \"x18_parallel\",\n  \"algorithm\": \"alg_c\",\n  \
         \"memory_buckets\": 4,\n  \"host_threads\": {host_threads},\n  \
         \"optimized_build\": {OPTIMIZED_BUILD},\n  \
         \"self_asserted\": true,\n{speedup_block}  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = json_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    format!(
        "## X18 — serial vs. rank-parallel optimization time\n\n\
         Median of {REPS} runs, chain queries, 4 memory buckets, forced worker \
         counts {THREAD_SWEEP:?}. Both paths return bit-identical plans; \
         speedup above 1.000x means the parallel path was faster (threads \
         = 1 routes through the serial path, so its speedup isolates \
         dispatch overhead). Machine-readable copy — including per-rank \
         wall times per row and the serial speedup over the pre-kernel \
         baseline — written to `results/BENCH_parallel.json`.\n\n{}\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_writes_json() {
        let md = run();
        assert!(md.contains("X18"));
        assert!(md.contains("| 13 |"));
        let json = std::fs::read_to_string(json_path()).unwrap();
        assert!(json.contains("\"experiment\": \"x18_parallel\""));
        assert!(json.contains("\"n\": 9"));
        assert!(json.contains("\"n\": 13"));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"effective_threads\""));
        assert!(json.contains("\"parallelized\""));
        assert!(json.contains("\"rank_wall_ns\""));
        assert!(json.contains("\"serial_speedup\""));
        assert!(json.contains("\"baseline_serial_ns\""));
        assert!(json.contains("\"host_threads\""));
        assert!(json.contains("\"self_asserted\": true"));
        assert!(json.contains("\"min_speedup\""));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn floors_are_recorded_per_row_shape() {
        assert_eq!(row_min_speedup(false), MIN_DISPATCH_SPEEDUP);
        assert_eq!(row_min_speedup(true), MIN_PARALLEL_SPEEDUP);
        assert!(MIN_SERIAL_SPEEDUP >= 1.0);
        assert!(MIN_DISPATCH_SPEEDUP < 1.0 && MIN_PARALLEL_SPEEDUP < MIN_DISPATCH_SPEEDUP);
    }
}
