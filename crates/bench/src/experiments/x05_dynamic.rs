//! X5 — dynamic memory (§3.5, Theorem 3.4).
//!
//! Memory changes *between join phases*. Two regimes are swept:
//!
//! * a symmetric random walk (volatility sweep) — memory jitters around
//!   its starting level;
//! * an upward **drift** (recovery sweep) — the query is admitted while
//!   the system is busy and memory frees up as it runs, so later phases
//!   see much more memory than phase 0.
//!
//! Three optimizers are scored under the *true* dynamics: Algorithm C with
//! the evolved per-phase marginals (exact, Theorem 3.4), Algorithm C
//! pretending the phase-0 distribution holds throughout ("static
//! assumption"), and LSC at the initial mean. Drift is where the static
//! assumption pays: it plans for starvation that will not last.

use crate::fixtures::chain_query;
use crate::fixtures::SEED;
use crate::table::{num, ratio, Table};
use lec_core::{alg_c, evaluate, exhaustive, lsc, MemoryModel};
use lec_cost::PaperCostModel;
use lec_stats::MarkovChain;
use lec_workload::envs;
use lec_workload::queries::{QueryGen, Topology};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Row {
    label: String,
    lec_dyn: f64,
    static_e: f64,
    lsc_e: f64,
    verified: bool,
}

fn score(q: &lec_plan::JoinQuery, chain: MarkovChain, initial: Vec<f64>, label: String) -> Row {
    let model = PaperCostModel;
    let dynamic = MemoryModel::dynamic(chain, initial).expect("valid");
    let phases = dynamic.table(q.n()).expect("valid");

    let lec_dyn = alg_c::optimize(q, &model, &dynamic).expect("lec dyn");
    let truth = exhaustive::exhaustive_lec(q, &model, &phases).expect("truth");
    let verified = (lec_dyn.cost - truth.cost).abs() <= 1e-6 * truth.cost;

    let initial_dist = dynamic.initial_distribution().expect("valid");
    let lec_static =
        alg_c::optimize(q, &model, &MemoryModel::Static(initial_dist.clone())).expect("lec");
    let static_e = evaluate::expected_cost(q, &model, &lec_static.plan, &phases);

    let lsc_plan = lsc::optimize_at_mean(q, &model, &initial_dist).expect("lsc");
    let lsc_e = evaluate::expected_cost(q, &model, &lsc_plan.plan, &phases);

    Row {
        label,
        lec_dyn: lec_dyn.cost,
        static_e,
        lsc_e,
        verified,
    }
}

fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "environment",
        "E[cost] LEC-dynamic",
        "E[cost] static-assumption",
        "E[cost] LSC(mean)",
        "static penalty",
        "lsc penalty",
    ]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            num(r.lec_dyn),
            num(r.static_e),
            num(r.lsc_e),
            ratio(r.static_e / r.lec_dyn),
            ratio(r.lsc_e / r.lec_dyn),
        ]);
    }
    t.render()
}

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let q = chain_query(5, SEED + 5);
    // A star query with very uneven relation sizes: the order in which the
    // big relations are joined interacts with *when* memory is available,
    // which is exactly what the drift regime probes.
    let star = QueryGen {
        topology: Topology::Star,
        n: 5,
        pages_range: (100.0, 80_000.0),
        ..QueryGen::default()
    }
    .generate(&mut ChaCha8Rng::seed_from_u64(211));
    let levels = 7;
    let mut initial = vec![0.0; levels];
    initial[1] = 1.0; // admitted while busy: second-lowest rung (24 pages)
    let states: Vec<f64> = (0..levels).map(|i| 12.0 * 2f64.powi(i as i32)).collect();

    let mut sym = Vec::new();
    for vol in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let chain = envs::markov_ladder(12.0, levels, vol);
        sym.push(score(
            &q,
            chain,
            initial.clone(),
            format!("walk p={vol:.2}"),
        ));
    }

    let mut drift = Vec::new();
    for p_up in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let chain = MarkovChain::birth_death(states.clone(), 0.05, p_up).expect("chain");
        drift.push(score(
            &star,
            chain,
            initial.clone(),
            format!("drift up={p_up:.1}"),
        ));
    }

    let verified = sym.iter().chain(&drift).all(|r| r.verified);
    format!(
        "## X5 — dynamic memory: Markov walks and drifts\n\n\
         Memory ladder 12·2^k pages, admitted at 24 pages. Penalties are \
         expected-cost ratios against the exact dynamic-aware LEC plan \
         under the true dynamics.\n\n\
         (a) Symmetric volatility (chain query, n = 5):\n\n{}\n\
         (b) Upward drift (star query with uneven sizes, n = 5; \
         p_down = 0.05). The dynamic-aware optimizer defers the memory-\
         hungry joins to late, memory-rich phases; the static assumption \
         cannot see why it should:\n\n{}\n\
         Theorem 3.4 check (dynamic DP equals exhaustive in every \
         environment): {}\n",
        render(&sym),
        render(&drift),
        if verified { "PASS" } else { "FAIL" }
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x5_theorem_verified_and_penalties_valid() {
        let md = super::run();
        assert!(md.contains("PASS"));
        // The strong-drift row must show a substantial static-assumption
        // penalty (this is the experiment's point).
        let row = md.lines().find(|l| l.contains("drift up=0.8")).unwrap();
        let pen: f64 = row
            .split('|')
            .map(str::trim)
            .nth(5)
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(pen > 1.3, "{row}");
        // Every penalty cell is >= 1 (the dynamic-aware plan is optimal).
        for line in md.lines().filter(|l| l.starts_with("|") && l.contains('x')) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            for cell in cells.iter().filter(|c| c.ends_with('x')) {
                if let Ok(v) = cell.trim_end_matches('x').parse::<f64>() {
                    assert!(v >= 0.999, "{line}");
                }
            }
        }
    }
}
