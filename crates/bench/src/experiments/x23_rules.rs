//! X23 (extension) — selection rules head-to-head: least expected cost
//! vs minmax regret vs penalty-aware vs tail risk (CVaR).
//!
//! Three suites, one artifact (`results/BENCH_rules.json`):
//!
//! * **Skewed beliefs** (core level): seeded environments optimized under
//!   a *uniform* believed memory distribution, then priced under a
//!   Zipf-reweighted truth ([`lec_catalog::synthetic::zipf_masses`]) that
//!   piles probability onto the scarce-memory scenarios beliefs treated
//!   as co-equal. Per rule and environment the suite records the believed
//!   expected cost, the truth-weighted cost, the regret against the
//!   truth-informed frontier oracle, and the **worst-case regret** over
//!   the belief support (against the frontier's per-scenario optima).
//! * **Drift** (serving level): the x20-style miscalibrated stream —
//!   beliefs uniform, truth hot — served end to end under each rule, with
//!   regret and p99 true cost measured against the always-re-optimize
//!   truth oracle.
//! * **Faults** (serving level): the same stream with periodic injected
//!   I/O faults and a calibrated control run, so p99 degradation under
//!   the fallback ladder is attributable to the faults alone.
//!
//! The run **self-asserts** closed-form facts before writing anything:
//!
//! * the LEC rule's fresh-optimization cost is *bit-identical* to
//!   `alg_c` in every environment, and the LEC-rule serve stream is
//!   bit-identical to the default (rule-less) configuration;
//! * no rule ever beats LEC on *believed* expected cost (LEC is by
//!   definition minimal in expectation over the same candidates);
//! * the minmax winner's worst-case regret never exceeds the LEC plan's
//!   (it minimized exactly that objective over the same frontier), and on
//!   at least one environment a robust rule's worst-case regret is
//!   **strictly** lower — the regime where rule choice actually matters;
//! * every rule serves every drift/fault request, and fault-run p99 never
//!   improves on the fault-free control (degraded plans cannot beat the
//!   optimum they degrade from).

use crate::artifacts::{artifact_path, OPTIMIZED_BUILD};
use crate::table::Table;
use lec_catalog::synthetic::zipf_masses;
use lec_catalog::{Catalog, ColumnMeta, Histogram, TableMeta};
use lec_core::evaluate::cost_profile;
use lec_core::rules::optimize_with_rule;
use lec_core::{alg_c, expected_cost, pareto, MemoryModel};
use lec_cost::PaperCostModel;
use lec_exec::{FaultKind, PAGE_CAPACITY};
use lec_serve::{
    DriftConfig, FaultInjection, QueryRequest, QueryService, Rule, SelectionRule, ServeConfig,
    ServedQuery,
};
use lec_stats::{Distribution, Utility};
use lec_workload::from_catalog::{query_from_catalog, FilterSpec, JoinSpec};
use lec_workload::queries::{QueryGen, Topology};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

/// Belief support: four log-spaced memory grants (pages). Beliefs weigh
/// them uniformly; the skewed truth concentrates on the scarce end.
const MEMORY_SUPPORT: [f64; 4] = [20.0, 90.0, 400.0, 1800.0];

/// Zipf exponent of the truth reweighting (mass piles on rank 0, the
/// scarcest grant).
const TRUTH_THETA: f64 = 1.5;

/// Serving-stream length per rule (drift and fault suites).
const STREAM_LEN: usize = 32;

/// Where the machine-readable record lands (workspace `results/`).
/// Debug builds route to the gitignored `_debug` file.
fn json_path() -> PathBuf {
    artifact_path("rules")
}

fn dot(probs: &[f64], profile: &[f64]) -> f64 {
    probs.iter().zip(profile).map(|(p, c)| p * c).sum()
}

// ---------------------------------------------------------------------------
// Suite 1: skewed beliefs, core level.
// ---------------------------------------------------------------------------

struct RuleOutcome {
    rule: String,
    believed_cost: f64,
    true_cost: f64,
    true_regret: f64,
    worst_case_regret: f64,
}

struct SkewEnv {
    label: String,
    rules: Vec<RuleOutcome>,
}

fn skew_environments() -> Vec<(String, lec_plan::JoinQuery)> {
    let mut envs = Vec::new();
    for (t, topology) in [Topology::Chain, Topology::Star, Topology::Clique]
        .into_iter()
        .enumerate()
    {
        for n in 4..=6 {
            for seed in 0..2u64 {
                let q = QueryGen {
                    topology,
                    n,
                    ..QueryGen::default()
                }
                .generate(&mut ChaCha8Rng::seed_from_u64(
                    0x23 ^ (t as u64) << 24 ^ (n as u64) << 16 ^ seed,
                ));
                envs.push((format!("{topology:?} n={n} seed={seed}"), q));
            }
        }
    }
    envs
}

/// Runs every rule over the seeded environments; self-asserts the
/// closed-form dominance facts and returns the per-environment table plus
/// the count of environments where a robust rule strictly beat LEC on
/// worst-case regret.
fn skew_suite() -> (Vec<SkewEnv>, usize) {
    let model = PaperCostModel;
    let belief = Distribution::new(MEMORY_SUPPORT.map(|v| (v, 0.25))).expect("uniform belief");
    let truth_probs = zipf_masses(MEMORY_SUPPORT.len(), TRUTH_THETA);
    let mut out = Vec::new();
    let mut strict_envs = 0usize;
    for (label, q) in skew_environments() {
        let direct = alg_c::optimize(&q, &model, &MemoryModel::Static(belief.clone()))
            .expect("x23: alg_c optimizes the seeded environment");
        let frontier = pareto::optimize(&q, &model, &belief, Utility::Linear)
            .expect("x23: frontier builds")
            .frontier_profiles;

        let results: Vec<(Rule, lec_core::rules::RuleResult)> = Rule::all()
            .into_iter()
            .map(|rule| {
                let r = optimize_with_rule(&q, &model, &belief, &rule)
                    .expect("x23: every shipped rule certifies and optimizes");
                (rule, r)
            })
            .collect();
        let profiles: Vec<Vec<f64>> = results
            .iter()
            .map(|(_, r)| cost_profile(&q, &model, &r.best.plan, belief.values()))
            .collect();

        // Per-scenario optima and the truth oracle, over the frontier
        // plus every rule's winner (the frontier attains both minima for
        // monotone objectives; chaining the winners keeps the yardstick
        // honest even at tolerance boundaries).
        let opt: Vec<f64> = (0..MEMORY_SUPPORT.len())
            .map(|s| {
                frontier
                    .iter()
                    .chain(&profiles)
                    .map(|p| p[s])
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let oracle_true = frontier
            .iter()
            .chain(&profiles)
            .map(|p| dot(&truth_probs, p))
            .fold(f64::INFINITY, f64::min);
        let worst_case_regret = |p: &[f64]| {
            p.iter()
                .zip(&opt)
                .map(|(c, o)| c - o)
                .fold(0.0f64, f64::max)
        };

        let lec_believed = results[0].1.expected_cost;
        assert_eq!(
            results[0].1.best.cost.to_bits(),
            direct.cost.to_bits(),
            "x23 {label}: LEC rule must be bit-identical to alg_c"
        );
        let lec_wcr = worst_case_regret(&profiles[0]);
        let mm_wcr = worst_case_regret(&profiles[1]);
        assert!(
            mm_wcr <= lec_wcr + 1e-9 * lec_wcr.max(1.0),
            "x23 {label}: minmax regret must not exceed LEC's worst case"
        );
        let rules = results
            .iter()
            .zip(&profiles)
            .map(|((rule, r), profile)| {
                assert!(
                    r.expected_cost >= lec_believed - 1e-9 * lec_believed.max(1.0),
                    "x23 {label}: {rule} beat LEC on believed expected cost"
                );
                let true_cost = dot(&truth_probs, profile);
                RuleOutcome {
                    rule: rule.name().into(),
                    believed_cost: r.expected_cost,
                    true_cost,
                    true_regret: (true_cost - oracle_true).max(0.0),
                    worst_case_regret: worst_case_regret(profile),
                }
            })
            .collect::<Vec<_>>();
        if rules[1..]
            .iter()
            .any(|r| r.worst_case_regret < lec_wcr - 1e-9 * lec_wcr.max(1.0))
        {
            strict_envs += 1;
        }
        out.push(SkewEnv { label, rules });
    }
    assert!(
        strict_envs >= 1,
        "x23: no environment where a robust rule strictly reduced worst-case regret — \
         the head-to-head would be vacuous; refusing to write the artifact"
    );
    (out, strict_envs)
}

// ---------------------------------------------------------------------------
// Suites 2 and 3: serving level (drift and faults).
// ---------------------------------------------------------------------------

/// `cust ⋈ ord` on 512 shared keys; `cust.v` over [0, 100] carries the
/// given 8-bucket mass profile (same fixture family as x20).
fn catalog(hist: &[f64; 8]) -> Catalog {
    let mut c = Catalog::new();
    let values: Vec<f64> = hist
        .iter()
        .enumerate()
        .flat_map(|(b, &mass)| {
            let n = (mass * 800.0).round() as usize;
            (0..n).map(move |i| b as f64 * 12.5 + 12.5 * (i as f64 + 0.5) / n.max(1) as f64)
        })
        .collect();
    c.register(
        TableMeta::new("cust", 10 * PAGE_CAPACITY as u64, 10)
            .expect("x23: cust table shape is statically valid")
            .with_column(ColumnMeta::new("ck", 512, 0.0, 511.0))
            .with_column(
                ColumnMeta::new("v", 800, 0.0, 100.0)
                    .with_histogram(Histogram::equi_width(&values, 8).expect("x23: histogram")),
            ),
    )
    .expect("x23: cust registers");
    c.register(
        TableMeta::new("ord", 18 * PAGE_CAPACITY as u64, 18)
            .expect("x23: ord table shape is statically valid")
            .with_column(ColumnMeta::new("ok", 512, 0.0, 511.0)),
    )
    .expect("x23: ord registers");
    c
}

const UNIFORM: [f64; 8] = [0.125; 8];

fn hot() -> [f64; 8] {
    let mut h = [0.03; 8];
    h[0] = 0.79;
    h
}

fn request(lo: f64) -> QueryRequest {
    QueryRequest {
        tables: vec!["cust".into(), "ord".into()],
        joins: vec![JoinSpec {
            left_table: "cust".into(),
            left_column: "ck".into(),
            right_table: "ord".into(),
            right_column: "ok".into(),
        }],
        filters: vec![FilterSpec {
            table: "cust".into(),
            column: "v".into(),
            lo,
            hi: lo + 12.5,
            indexed: false,
        }],
        order_by: None,
    }
}

fn stream() -> Vec<QueryRequest> {
    (0..STREAM_LEN)
        .map(|i| request(12.5 * ((i % 3) as f64) / 4.0))
        .collect()
}

fn config(rule: Option<Rule>, faults: FaultInjection) -> ServeConfig {
    let mut cfg = ServeConfig::new(
        vec![
            Distribution::new([(4.0, 0.6), (40.0, 0.4)]).expect("x23: scenario"),
            Distribution::new([(16.0, 0.5), (80.0, 0.5)]).expect("x23: scenario"),
        ],
        Distribution::new([(8.0, 0.5), (48.0, 0.5)]).expect("x23: observed memory"),
    );
    cfg.drift = DriftConfig {
        error_threshold: 0.5,
        min_observations: 3,
        blend: 0.8,
    };
    cfg.fault_injection = faults;
    if let Some(rule) = rule {
        cfg.selection_rule = rule;
    }
    cfg
}

/// Expected cost of `plan` for `request`, priced under `truth` statistics
/// (the x20 repricing idiom).
fn cost_under_truth(
    truth: &Catalog,
    req: &QueryRequest,
    plan: &lec_plan::Plan,
    observed: &Distribution,
) -> f64 {
    let tables: Vec<&str> = req.tables.iter().map(String::as_str).collect();
    let q = query_from_catalog(truth, &tables, &req.joins, &req.filters, None)
        .expect("x23: truth query builds");
    let phases = MemoryModel::Static(observed.clone())
        .table(q.n().max(2))
        .expect("x23: phase table");
    expected_cost(&q, &PaperCostModel, plan, &phases)
}

/// The truth-informed oracle: a fresh optimization per request.
fn oracle_cost(truth: &Catalog, req: &QueryRequest, observed: &Distribution) -> f64 {
    let tables: Vec<&str> = req.tables.iter().map(String::as_str).collect();
    let q = query_from_catalog(truth, &tables, &req.joins, &req.filters, None)
        .expect("x23: truth query builds");
    alg_c::optimize(&q, &PaperCostModel, &MemoryModel::Static(observed.clone()))
        .expect("x23: oracle optimization")
        .cost
}

/// Nearest-rank percentile over an unsorted sample.
fn percentile(sample: &[f64], p: f64) -> f64 {
    let mut s = sample.to_vec();
    s.sort_by(f64::total_cmp);
    s[((p / 100.0) * (s.len() - 1) as f64).round() as usize]
}

fn serve_stream(
    rule: Option<Rule>,
    beliefs: &[f64; 8],
    truth: &[f64; 8],
    faults: FaultInjection,
) -> (Vec<ServedQuery>, QueryService<PaperCostModel>) {
    let mut svc = QueryService::new(
        PaperCostModel,
        catalog(beliefs),
        catalog(truth),
        config(rule, faults),
    )
    .expect("x23: service constructs");
    let served = stream()
        .iter()
        .map(|req| svc.serve(req).expect("x23: every request serves"))
        .collect();
    (served, svc)
}

struct ServeRow {
    rule: String,
    mean_regret: f64,
    p99_true_cost: f64,
    p99_oracle: f64,
    recalibrations: u64,
    faults_injected: u64,
    degraded_serves: u64,
}

/// Drift suite: miscalibrated beliefs, no faults. Regret is against the
/// truth oracle, per request.
fn drift_suite() -> Vec<ServeRow> {
    // Bit-identity gate: the default (rule-less) config and the explicit
    // LEC rule must serve indistinguishable streams.
    let (default_run, _) = serve_stream(None, &UNIFORM, &hot(), FaultInjection::OFF);
    let (lec_run, _) = serve_stream(
        Some(Rule::LeastExpectedCost),
        &UNIFORM,
        &hot(),
        FaultInjection::OFF,
    );
    for (d, l) in default_run.iter().zip(&lec_run) {
        assert_eq!(d.plan, l.plan, "x23: default vs LEC plan");
        assert_eq!(
            d.expected_cost.to_bits(),
            l.expected_cost.to_bits(),
            "x23: default vs LEC cost bits"
        );
    }

    Rule::all()
        .into_iter()
        .map(|rule| {
            let (served, svc) = serve_stream(Some(rule), &UNIFORM, &hot(), FaultInjection::OFF);
            let observed = config(None, FaultInjection::OFF).observed_memory;
            let reqs = stream();
            let true_costs: Vec<f64> = reqs
                .iter()
                .zip(&served)
                .map(|(req, s)| cost_under_truth(svc.truth(), req, &s.plan, &observed))
                .collect();
            let oracle: Vec<f64> = reqs
                .iter()
                .map(|req| oracle_cost(svc.truth(), req, &observed))
                .collect();
            let regrets: Vec<f64> = true_costs
                .iter()
                .zip(&oracle)
                .map(|(c, o)| (c - o).max(0.0) / o)
                .collect();
            let recalibrations = svc.recalibrations();
            assert!(
                recalibrations >= 1,
                "x23 {rule}: sustained miscalibration must recalibrate under any rule"
            );
            ServeRow {
                rule: rule.name().into(),
                mean_regret: regrets.iter().sum::<f64>() / regrets.len() as f64,
                p99_true_cost: percentile(&true_costs, 99.0),
                p99_oracle: percentile(&oracle, 99.0),
                recalibrations,
                faults_injected: 0,
                degraded_serves: 0,
            }
        })
        .collect()
}

/// Fault suite: calibrated beliefs (so the control stream is provably
/// optimal) with periodic injected I/O faults; p99 degradation is the
/// faulted p99 over the fault-free p99, per rule.
fn fault_suite() -> Vec<(ServeRow, f64)> {
    Rule::all()
        .into_iter()
        .map(|rule| {
            let observed = config(None, FaultInjection::OFF).observed_memory;
            let reqs = stream();
            let truth = hot();
            let run = |faults: FaultInjection| {
                let (served, svc) = serve_stream(Some(rule), &truth, &truth, faults);
                let costs: Vec<f64> = reqs
                    .iter()
                    .zip(&served)
                    .map(|(req, s)| cost_under_truth(svc.truth(), req, &s.plan, &observed))
                    .collect();
                (costs, svc)
            };
            let (clean_costs, _) = run(FaultInjection::OFF);
            let (fault_costs, svc) = run(FaultInjection::every(5, FaultKind::IoError));
            let stats = svc.stats();
            assert!(
                stats.resilience.faults_injected >= 1,
                "x23 {rule}: injection must have fired"
            );
            for (f, c) in fault_costs.iter().zip(&clean_costs) {
                assert!(
                    *f >= c - 1e-9 * c.max(1.0),
                    "x23 {rule}: a degraded serve repriced below the calibrated optimum"
                );
            }
            let p99_clean = percentile(&clean_costs, 99.0);
            let p99_faulted = percentile(&fault_costs, 99.0);
            let row = ServeRow {
                rule: rule.name().into(),
                mean_regret: fault_costs
                    .iter()
                    .zip(&clean_costs)
                    .map(|(f, c)| (f - c).max(0.0) / c)
                    .sum::<f64>()
                    / reqs.len() as f64,
                p99_true_cost: p99_faulted,
                p99_oracle: p99_clean,
                recalibrations: svc.recalibrations(),
                faults_injected: stats.resilience.faults_injected,
                degraded_serves: stats.resilience.degraded_serves,
            };
            (row, p99_faulted / p99_clean)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Render + artifact.
// ---------------------------------------------------------------------------

/// Runs the experiment, returning a markdown section; also writes
/// `results/BENCH_rules.json`.
pub fn run() -> String {
    let (skew, strict_envs) = skew_suite();
    let drift = drift_suite();
    let faults = fault_suite();

    // Markdown: aggregate the skew suite per rule (mean over envs), then
    // the serving rows verbatim.
    let nrules = Rule::all().len();
    let mut st = Table::new(&[
        "rule",
        "believed cost (mean)",
        "true cost (mean)",
        "true regret (mean)",
        "worst-case regret (mean)",
    ]);
    for i in 0..nrules {
        let mean = |f: &dyn Fn(&RuleOutcome) -> f64| {
            skew.iter().map(|e| f(&e.rules[i])).sum::<f64>() / skew.len() as f64
        };
        st.row(vec![
            skew[0].rules[i].rule.clone(),
            format!("{:.1}", mean(&|r| r.believed_cost)),
            format!("{:.1}", mean(&|r| r.true_cost)),
            format!("{:.1}", mean(&|r| r.true_regret)),
            format!("{:.1}", mean(&|r| r.worst_case_regret)),
        ]);
    }
    let mut dt = Table::new(&[
        "rule",
        "mean regret",
        "p99 true cost",
        "p99 oracle",
        "recals",
    ]);
    for r in &drift {
        dt.row(vec![
            r.rule.clone(),
            format!("{:.4}", r.mean_regret),
            format!("{:.1}", r.p99_true_cost),
            format!("{:.1}", r.p99_oracle),
            r.recalibrations.to_string(),
        ]);
    }
    let mut ft = Table::new(&[
        "rule",
        "faults",
        "degraded",
        "p99 clean",
        "p99 faulted",
        "p99 ×",
    ]);
    for (r, deg) in &faults {
        ft.row(vec![
            r.rule.clone(),
            r.faults_injected.to_string(),
            r.degraded_serves.to_string(),
            format!("{:.1}", r.p99_oracle),
            format!("{:.1}", r.p99_true_cost),
            format!("{deg:.3}"),
        ]);
    }

    let skew_json: Vec<String> = skew
        .iter()
        .map(|e| {
            let rules: Vec<String> = e
                .rules
                .iter()
                .map(|r| {
                    format!(
                        "{{\"rule\": \"{}\", \"believed_cost\": {:.4}, \"true_cost\": {:.4}, \
                         \"true_regret\": {:.4}, \"worst_case_regret\": {:.4}}}",
                        r.rule, r.believed_cost, r.true_cost, r.true_regret, r.worst_case_regret
                    )
                })
                .collect();
            format!(
                "    {{\"env\": \"{}\", \"rules\": [{}]}}",
                e.label,
                rules.join(", ")
            )
        })
        .collect();
    let drift_json: Vec<String> = drift
        .iter()
        .map(|r| {
            format!(
                "    {{\"rule\": \"{}\", \"mean_regret\": {:.6}, \"p99_true_cost\": {:.4}, \
                 \"p99_oracle\": {:.4}, \"recalibrations\": {}}}",
                r.rule, r.mean_regret, r.p99_true_cost, r.p99_oracle, r.recalibrations
            )
        })
        .collect();
    let fault_json: Vec<String> = faults
        .iter()
        .map(|(r, deg)| {
            format!(
                "    {{\"rule\": \"{}\", \"faults_injected\": {}, \"degraded_serves\": {}, \
                 \"mean_fault_regret\": {:.6}, \"p99_clean\": {:.4}, \"p99_faulted\": {:.4}, \
                 \"p99_degradation\": {deg:.6}}}",
                r.rule,
                r.faults_injected,
                r.degraded_serves,
                r.mean_regret,
                r.p99_oracle,
                r.p99_true_cost
            )
        })
        .collect();
    let rule_names: Vec<String> = Rule::all()
        .iter()
        .map(|r| format!("\"{}\"", r.name()))
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"x23_rules\",\n  \"self_asserted\": true,\n  \
         \"optimized_build\": {OPTIMIZED_BUILD},\n  \
         \"rules\": [{}],\n  \
         \"memory_support\": [{}],\n  \"truth_theta\": {TRUTH_THETA},\n  \
         \"stream_len\": {STREAM_LEN},\n  \
         \"strict_regret_win_envs\": {strict_envs},\n  \
         \"skewed_belief\": [\n{}\n  ],\n  \
         \"drift\": [\n{}\n  ],\n  \
         \"faults\": [\n{}\n  ]\n}}\n",
        rule_names.join(", "),
        MEMORY_SUPPORT.map(|v| v.to_string()).join(", "),
        skew_json.join(",\n"),
        drift_json.join(",\n"),
        fault_json.join(",\n"),
    );
    let path = json_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&path, &json).expect("write BENCH_rules.json");

    format!(
        "## X23 — selection rules head-to-head (lec-rules)\n\n\
         Four selection rules over three regimes. Skewed beliefs: {} seeded \
         environments optimized under a uniform 4-point memory belief and \
         priced under a Zipf(θ={TRUTH_THETA}) truth; on {strict_envs} of \
         them a robust rule strictly reduced worst-case regret versus LEC \
         (self-asserted, with LEC bit-identical to `alg_c` everywhere). \
         Mean over environments:\n\n{}\n\
         Drift stream ({STREAM_LEN} requests, beliefs uniform / truth hot), \
         regret vs the always-re-optimize truth oracle:\n\n{}\n\
         Fault stream (calibrated beliefs, I/O fault every 5th request): \
         p99 degradation is the fallback ladder's doing alone:\n\n{}\n\
         Machine-readable copy written to `results/BENCH_rules.json`.\n",
        skew.len(),
        st.render(),
        dt.render(),
        ft.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full harness run: every self-assertion fires, the artifact lands.
    #[test]
    fn renders_asserts_and_writes_json() {
        let md = run();
        assert!(md.contains("X23"));
        assert!(md.contains("least-expected-cost"));
        assert!(md.contains("minmax-regret"));
        let json = std::fs::read_to_string(json_path()).unwrap();
        assert!(json.contains("\"experiment\": \"x23_rules\""));
        assert!(json.contains("\"self_asserted\": true"));
        assert!(json.contains("\"worst_case_regret\""));
        assert!(json.contains("\"p99_degradation\""));
        assert!(json.contains("\"penalty-aware\""));
        assert!(json.contains("\"tail-risk\""));
    }

    #[test]
    fn truth_reweighting_is_a_distribution() {
        let p = zipf_masses(MEMORY_SUPPORT.len(), TRUTH_THETA);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > 0.5, "the scarce grant must dominate the truth");
    }
}
