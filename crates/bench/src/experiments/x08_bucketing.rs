//! X8 — bucketing strategies (§3.7).
//!
//! A fine-grained "true" memory distribution is summarized by equi-width,
//! equi-depth and level-set bucketings. For each summary the LEC optimizer
//! runs on the buckets; its chosen plan is then scored under the *fine*
//! distribution. Two error measures: how wrong the optimizer's cost
//! estimate was (estimation error), and how much worse its plan is than
//! the fine-distribution LEC plan (regret). §3.7's claim: level-set
//! bucketing is exact with only a handful of buckets.

use crate::table::{num, ratio, Table};
use lec_core::{alg_c, bucketing, evaluate, MemoryModel};
use lec_cost::PaperCostModel;
use lec_stats::{Bucketing, Distribution};
use lec_workload::queries;

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let q = queries::example_1_1();
    let model = PaperCostModel;
    // "True" environment: 512-point lognormal around 1100 pages, squarely
    // straddling the 632/1000 breakpoints.
    let fine = lec_workload::envs::lognormal(1100.0, 0.6, 512);
    let fine_mem = MemoryModel::Static(fine.clone());
    let fine_phases = fine_mem.table(q.n()).expect("valid");
    let lec_fine = alg_c::optimize(&q, &model, &fine_mem).expect("fine");

    let mut t = Table::new(&[
        "strategy",
        "buckets",
        "optimizer estimate",
        "true E[cost] of choice",
        "estimate error",
        "regret",
    ]);
    let mut score = |name: String, coarse: Distribution| {
        let b = coarse.len();
        let opt = alg_c::optimize(&q, &model, &MemoryModel::Static(coarse)).expect("coarse");
        let true_cost = evaluate::expected_cost(&q, &model, &opt.plan, &fine_phases);
        t.row(vec![
            name,
            b.to_string(),
            num(opt.cost),
            num(true_cost),
            format!("{:.3}%", 100.0 * (opt.cost - true_cost).abs() / true_cost),
            ratio(true_cost / lec_fine.cost),
        ]);
    };

    for b in [1usize, 2, 3, 4, 8, 16] {
        score(
            format!("equi-width({b})"),
            Bucketing::EquiWidth(b).apply(&fine).expect("bucketing"),
        );
    }
    for b in [1usize, 2, 3, 4, 8, 16] {
        score(
            format!("equi-depth({b})"),
            Bucketing::EquiDepth(b).apply(&fine).expect("bucketing"),
        );
    }
    score(
        "level-set (§3.7)".into(),
        bucketing::bucketize_memory(&q, &model, &fine).expect("level set"),
    );

    // The coarse-to-fine heuristic, reported on its own line (its "estimate"
    // is exact by construction — the final plan is re-costed under the fine
    // distribution).
    let adaptive = bucketing::adaptive_optimize(&q, &model, &fine, 2).expect("adaptive");
    t.row(vec![
        format!("coarse-to-fine ({} invocations)", adaptive.refinements),
        adaptive.buckets_used.to_string(),
        num(adaptive.optimized.cost),
        num(adaptive.optimized.cost),
        "0.000%".into(),
        ratio(adaptive.optimized.cost / lec_fine.cost),
    ]);

    format!(
        "## X8 — bucketing strategies for the memory parameter\n\n\
         True environment: 512-point lognormal (mean 1100 pages, cv 0.6) on \
         Example 1.1's query. The fine-distribution LEC expected cost is {}.\n\n{}\n",
        num(lec_fine.cost),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x8_level_set_is_exact() {
        let md = super::run();
        let row = md.lines().find(|l| l.contains("level-set")).unwrap();
        let cells: Vec<&str> = row.split('|').map(str::trim).collect();
        // Estimation error ~0 and regret exactly 1x.
        let err: f64 = cells[5].trim_end_matches('%').parse().unwrap();
        assert!(err < 1e-6, "{row}");
        assert_eq!(cells[6], "1.000x", "{row}");
        // Level-set needs far fewer buckets than the fine distribution.
        let buckets: usize = cells[2].parse().unwrap();
        assert!(buckets < 64, "{row}");
    }

    #[test]
    fn x8_one_bucket_is_the_traditional_optimizer() {
        // b = 1 rows exist (the "standard approach is the special case
        // where there is only one bucket", §3.2).
        let md = super::run();
        assert!(md.contains("equi-width(1)"));
        assert!(md.contains("equi-depth(1)"));
    }
}
