//! One module per experiment from DESIGN.md §3.

pub mod x01_example;
pub mod x02_variation;
pub mod x03_scaling;
pub mod x04_frontier;
pub mod x05_dynamic;
pub mod x06_selectivity;
pub mod x07_kernels;
pub mod x08_bucketing;
pub mod x09_validation;
pub mod x10_montecarlo;
pub mod x11_utility;
pub mod x12_rebucket;
pub mod x13_figure1;
pub mod x14_voi;
pub mod x15_parametric;
pub mod x16_frontier_growth;
pub mod x17_bushy;
pub mod x18_parallel;
pub mod x19_stats;
pub mod x20_serve;
pub mod x21_faults;
pub mod x22_serve_concurrent;
pub mod x23_rules;
pub mod x24_sampling;
