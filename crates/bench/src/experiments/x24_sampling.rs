//! X24 (extension) — point-estimate vs sample-certified optimization.
//!
//! The 51-environment differential battery (chain/star/clique, seeded
//! splitmix64 statistics — the same generator as
//! `crates/core/tests/optimizer_differential.rs`), plus two n ≥ 9
//! showcase chains, each run through two arms that *only see sampled
//! statistics*:
//!
//! * **Point arm**: every selectivity is replaced by its sampled point
//!   estimate and Algorithm C optimizes as if the estimate were exact —
//!   the classical estimate-then-optimize pipeline.
//! * **Certified arm**: the same draws, but kept as confidence intervals
//!   ([`lec_catalog::sampling`]). The intervals widen into bucketed
//!   [`Distribution`]s for Algorithm D's `SizeModel` (uncertainty as
//!   spread, the paper's own machinery), the bushy optimum of the point
//!   query joins it as a candidate, and the winner by *certified upper
//!   bound* ships with its (ε, δ) certificate
//!   ([`lec_core::certificate`]).
//!
//! Both arms are then priced under the **truth** statistics the sampler
//! drew from, against the exhaustive bushy optimum. The run
//! **self-asserts** before writing anything:
//!
//! * **soundness**: whenever the truth lies inside the sampled interval
//!   box, the certificate *must* hold (`true cost ≤ (1+ε) · true
//!   optimum`) — this is the certificate theorem, checked per
//!   environment, not a statistical statement;
//! * **validity rate**: per environment group (chain/star/clique/
//!   showcase), the empirical certificate-validity rate is ≥ 1 − δ;
//! * **tightness** (full draw count only): at least one n ≥ 9
//!   environment certifies ε ≤ 0.25 — sampling buys a *usable* bound,
//!   not a vacuous one.
//!
//! `X24_DRAWS=<n>` reruns everything at a reduced draw count for smoke
//! testing; the artifact then routes to `BENCH_sampling_smoke.json` so a
//! quick run can never clobber the committed record (on top of the usual
//! debug-build `_debug` routing).

use crate::artifacts::{artifact_path, OPTIMIZED_BUILD};
use crate::table::Table;
use lec_catalog::sampling::{sample_interval, BoundKind, SampleConfig, StatInterval};
use lec_core::alg_d::{self, AlgDConfig, SizeModel};
use lec_core::certificate::{certify_plan, Certificate, QueryIntervals};
use lec_core::evaluate::expected_cost;
use lec_core::{alg_c, bushy, MemoryModel};
use lec_cost::PaperCostModel;
use lec_plan::{JoinPred, JoinQuery, KeyId, Plan, Relation};
use lec_stats::families::interval_widened;
use lec_stats::Distribution;
use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Total certificate failure probability per environment; each of the
/// `k` sampled statistics gets δ/k (union bound).
const DELTA: f64 = 0.05;

/// Draws per statistic in the battery environments (Hoeffding bounds:
/// deterministic width, conservative coverage).
const BATTERY_DRAWS: u64 = 4096;

/// Draws per statistic in the n ≥ 9 showcase chains (Wilson bounds:
/// near-nominal coverage, tight enough for a usable ε at this depth).
const SHOWCASE_DRAWS: u64 = 1 << 20;

/// Bucket count for the interval-widened size distributions.
const BUCKETS: usize = 8;

/// Point estimates are clamped onto the open filtered branch of the
/// access-cost model: strictly positive, strictly below 1.
const SEL_FLOOR: f64 = 1e-9;
const SEL_CEIL: f64 = 1.0 - f64::EPSILON;

fn json_path(smoke: bool) -> PathBuf {
    artifact_path(if smoke { "sampling_smoke" } else { "sampling" })
}

// ---------------------------------------------------------------------------
// Environment battery (the optimizer_differential generator, replicated).
// ---------------------------------------------------------------------------

/// splitmix64 — the battery's only randomness for *environment shapes*,
/// bit-identical to the differential suite's generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() % 1000) as f64 / 1000.0
    }
}

/// A relation's truth statistics: page count and, if filtered, the true
/// local selectivity the sampler will draw against.
struct RelSpec {
    pages: f64,
    filter: Option<f64>,
}

struct EnvSpec {
    label: String,
    group: &'static str,
    rels: Vec<RelSpec>,
    preds: Vec<(usize, usize, f64)>,
    ordered: bool,
    memory: Distribution,
    draws: u64,
    bound: BoundKind,
}

/// Chain (0), star (1), or clique (2) shapes with the differential
/// battery's exact RNG consumption order.
fn battery_shape(topo: usize, n: usize, seed: u64) -> (Vec<RelSpec>, Vec<(usize, usize, f64)>) {
    let mut rng = SplitMix64(seed ^ (topo as u64) << 32 ^ (n as u64) << 48);
    let rels = (0..n)
        .map(|_| {
            let pages = (rng.next() % 7000 + 50) as f64;
            let filter = rng.next().is_multiple_of(3).then(|| rng.range(0.05, 0.95));
            RelSpec { pages, filter }
        })
        .collect();
    let mut preds = Vec::new();
    let push = |preds: &mut Vec<(usize, usize, f64)>, l: usize, r: usize, g: &mut SplitMix64| {
        preds.push((l, r, g.range(1e-5, 1e-2)));
    };
    match topo {
        0 => (0..n - 1).for_each(|i| push(&mut preds, i, i + 1, &mut rng)),
        1 => (1..n).for_each(|i| push(&mut preds, 0, i, &mut rng)),
        _ => (0..n).for_each(|i| {
            (i + 1..n).for_each(|j| push(&mut preds, i, j, &mut rng));
        }),
    }
    (rels, preds)
}

/// Two- or three-point memory distributions, same generator as the
/// differential battery.
fn build_memory(seed: u64) -> Distribution {
    let mut rng = SplitMix64(seed.wrapping_mul(0xA24BAED4963EE407));
    let lo = rng.range(5.0, 80.0);
    let hi = rng.range(150.0, 3000.0);
    if rng.next().is_multiple_of(2) {
        let p = rng.range(0.1, 0.9);
        Distribution::new([(lo, p), (hi, 1.0 - p)]).expect("two-point memory")
    } else {
        let mid = rng.range(90.0, 140.0);
        Distribution::new([(lo, 0.25), (mid, 0.4), (hi, 0.35)]).expect("three-point memory")
    }
}

/// Deep chains with moderate selectivities: relative interval width at
/// `SHOWCASE_DRAWS` is ~1%, so even 9 propagated statistics certify a
/// non-vacuous ε.
fn showcase_shape(n: usize) -> (Vec<RelSpec>, Vec<(usize, usize, f64)>) {
    let mut rng = SplitMix64(0xC0FFEE ^ (n as u64) << 40);
    let rels = (0..n)
        .map(|i| {
            let pages = (rng.next() % 2500 + 500) as f64;
            let filter = (i % 3 == 0).then(|| rng.range(0.3, 0.7));
            RelSpec { pages, filter }
        })
        .collect();
    let preds = (0..n - 1)
        .map(|i| (i, i + 1, rng.range(0.2, 0.45)))
        .collect();
    (rels, preds)
}

/// All 53 environments: the 51-env battery plus the two showcase chains.
fn environments() -> Vec<EnvSpec> {
    const GROUPS: [&str; 3] = ["chain", "star", "clique"];
    let mut envs = Vec::new();
    for (topo, group) in GROUPS.into_iter().enumerate() {
        for n in 2..=5 {
            for seed in 0..4u64 {
                let (rels, preds) = battery_shape(topo, n, seed);
                envs.push(EnvSpec {
                    label: format!("{group} n={n} seed={seed}"),
                    group,
                    rels,
                    preds,
                    ordered: seed % 2 == 1,
                    memory: build_memory(seed * 31 + topo as u64 * 7 + n as u64),
                    draws: BATTERY_DRAWS,
                    bound: BoundKind::Hoeffding,
                });
            }
        }
    }
    for seed in 0..3u64 {
        let (rels, preds) = battery_shape(0, 6, 100 + seed);
        envs.push(EnvSpec {
            label: format!("chain n=6 seed={}", 100 + seed),
            group: "chain",
            rels,
            preds,
            ordered: false,
            memory: build_memory(500 + seed),
            draws: BATTERY_DRAWS,
            bound: BoundKind::Hoeffding,
        });
    }
    for n in [9usize, 10] {
        let (rels, preds) = showcase_shape(n);
        envs.push(EnvSpec {
            label: format!("showcase chain n={n}"),
            group: "showcase",
            rels,
            preds,
            ordered: false,
            memory: build_memory(0x240 + n as u64),
            draws: SHOWCASE_DRAWS,
            bound: BoundKind::Wilson,
        });
    }
    envs
}

/// Builds the query with the given per-relation and per-predicate
/// selectivities (truth or sampled points — same shape either way).
fn to_query(spec: &EnvSpec, rel_sels: &[f64], pred_sels: &[f64]) -> JoinQuery {
    let relations = spec
        .rels
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut rel = Relation::new(format!("r{i}"), r.pages, r.pages * 40.0);
            if r.filter.is_some() {
                rel = rel.with_local_selectivity(rel_sels[i]).with_index();
            }
            rel
        })
        .collect();
    let predicates = spec
        .preds
        .iter()
        .enumerate()
        .map(|(k, &(l, r, _))| JoinPred {
            left: l,
            right: r,
            selectivity: pred_sels[k],
            key: KeyId(k),
        })
        .collect();
    let required = spec.ordered.then(|| KeyId(spec.preds.len() - 1));
    JoinQuery::new(relations, predicates, required).expect("x24: seeded environment is valid")
}

// ---------------------------------------------------------------------------
// Per-environment race.
// ---------------------------------------------------------------------------

/// Bernoulli draws at probability `p`, counted.
fn bernoulli(rng: &mut ChaCha8Rng, p: f64, draws: u64) -> u64 {
    let threshold = (p * u64::MAX as f64) as u64;
    (0..draws).filter(|_| rng.next_u64() <= threshold).count() as u64
}

struct EnvOutcome {
    label: String,
    group: &'static str,
    n: usize,
    statistics: usize,
    draws: u64,
    bound: &'static str,
    certificate: Certificate,
    true_point: f64,
    true_certified: f64,
    true_optimum: f64,
    valid: bool,
    truth_in_box: bool,
}

fn run_env(idx: usize, spec: &EnvSpec) -> EnvOutcome {
    let model = PaperCostModel;
    let truth_rel_sels: Vec<f64> = spec.rels.iter().map(|r| r.filter.unwrap_or(1.0)).collect();
    let truth_pred_sels: Vec<f64> = spec.preds.iter().map(|&(_, _, s)| s).collect();
    let q_truth = to_query(spec, &truth_rel_sels, &truth_pred_sels);

    // One Bernoulli sample per unknown statistic, each carrying δ/k.
    let k = spec.rels.iter().filter(|r| r.filter.is_some()).count() + spec.preds.len();
    let cfg = SampleConfig {
        draws: spec.draws,
        delta: DELTA / k as f64,
        bound: spec.bound,
        buckets: BUCKETS,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0x2400 + idx as u64);
    let rel_ivs: Vec<Option<StatInterval>> = spec
        .rels
        .iter()
        .map(|r| {
            r.filter.map(|p| {
                sample_interval(bernoulli(&mut rng, p, cfg.draws), cfg.draws, &cfg)
                    .expect("x24: relation interval")
            })
        })
        .collect();
    let pred_ivs: Vec<StatInterval> = spec
        .preds
        .iter()
        .map(|&(_, _, p)| {
            sample_interval(bernoulli(&mut rng, p, cfg.draws), cfg.draws, &cfg)
                .expect("x24: predicate interval")
        })
        .collect();

    let rel_sels: Vec<f64> = rel_ivs
        .iter()
        .map(|iv| iv.map_or(1.0, |iv| iv.point.clamp(SEL_FLOOR, SEL_CEIL)))
        .collect();
    let pred_sels: Vec<f64> = pred_ivs
        .iter()
        .map(|iv| iv.point.clamp(SEL_FLOOR, 1.0))
        .collect();
    let q_point = to_query(spec, &rel_sels, &pred_sels);

    let static_mem = MemoryModel::Static(spec.memory.clone());
    let phases = static_mem
        .table(q_truth.n().max(2))
        .expect("x24: phase table");

    // Point arm: Algorithm C trusts the sampled points outright.
    let point_plan = alg_c::optimize(&q_point, &model, &static_mem)
        .expect("x24: point-estimate optimization")
        .plan;
    let true_point = expected_cost(&q_truth, &model, &point_plan, &phases);

    // Certified arm, candidate 1: Algorithm D over interval-widened size
    // distributions (uncertainty as spread).
    let sizes = SizeModel {
        rel_sizes: spec
            .rels
            .iter()
            .zip(&rel_ivs)
            .enumerate()
            .map(|(i, (r, iv))| match iv {
                Some(iv) => {
                    let point = rel_sels[i];
                    interval_widened(point, iv.lo.min(point), iv.hi.max(point), BUCKETS)
                        .and_then(|d| d.map(|s| (r.pages * s.max(SEL_FLOOR)).max(1.0)))
                        .expect("x24: widened relation sizes")
                }
                None => Distribution::point(r.pages).expect("x24: certain relation size"),
            })
            .collect(),
        selectivities: pred_ivs
            .iter()
            .enumerate()
            .map(|(j, iv)| {
                let point = pred_sels[j];
                interval_widened(point, iv.lo.min(point), iv.hi.max(point), BUCKETS)
                    .and_then(|d| d.map(|s| s.clamp(SEL_FLOOR, 1.0)))
                    .expect("x24: widened predicate selectivities")
            })
            .collect(),
    };
    let d_plan = alg_d::optimize_fast(&q_point, &static_mem, &sizes, AlgDConfig::default())
        .expect("x24: distribution-widened optimization")
        .best
        .plan;
    // Candidate 2: the exact bushy optimum of the point query.
    let b_plan = bushy::optimize(&q_point, &model, &static_mem)
        .expect("x24: bushy optimization of the sampled stats")
        .plan;

    let intervals = QueryIntervals {
        relation_selectivity: rel_ivs
            .iter()
            .enumerate()
            .map(|(i, iv)| match iv {
                Some(iv) => (iv.lo.min(rel_sels[i]), iv.hi.max(rel_sels[i])),
                None => (1.0, 1.0),
            })
            .collect(),
        predicate_selectivity: pred_ivs
            .iter()
            .enumerate()
            .map(|(j, iv)| (iv.lo.min(pred_sels[j]), iv.hi.max(pred_sels[j])))
            .collect(),
        delta: DELTA,
    };
    // The certified arm ships whichever candidate certifies the smaller
    // upper bound — choosing *by the guarantee*, not by a point estimate.
    let (cert_plan, certificate): (Plan, Certificate) = [d_plan, b_plan]
        .into_iter()
        .map(|plan| {
            let cert = certify_plan(&q_point, &model, &static_mem, &plan, &intervals)
                .expect("x24: certification");
            (plan, cert)
        })
        .min_by(|a, b| a.1.chosen_upper.total_cmp(&b.1.chosen_upper))
        .expect("x24: two candidates");
    let true_certified = expected_cost(&q_truth, &model, &cert_plan, &phases);
    let true_optimum = bushy::optimize(&q_truth, &model, &static_mem)
        .expect("x24: truth oracle")
        .cost;

    let truth_in_box = truth_rel_sels
        .iter()
        .zip(&intervals.relation_selectivity)
        .all(|(&s, &(lo, hi))| lo <= s && s <= hi)
        && truth_pred_sels
            .iter()
            .zip(&intervals.predicate_selectivity)
            .all(|(&s, &(lo, hi))| lo <= s && s <= hi);
    let valid = true_certified <= (1.0 + certificate.epsilon) * true_optimum * (1.0 + 1e-9);
    // The certificate *theorem*: inside the box, validity is not a matter
    // of luck. A violation here means the (ε, δ) math is broken, so the
    // run refuses to write an artifact.
    assert!(
        !truth_in_box || valid,
        "x24 {}: truth inside the sampled box but the certified bound failed \
         (true {} vs (1+{:.4})·{})",
        spec.label,
        true_certified,
        certificate.epsilon,
        true_optimum
    );

    EnvOutcome {
        label: spec.label.clone(),
        group: spec.group,
        n: spec.rels.len(),
        statistics: k,
        draws: spec.draws,
        bound: match spec.bound {
            BoundKind::Hoeffding => "hoeffding",
            BoundKind::Wilson => "wilson",
        },
        certificate,
        true_point,
        true_certified,
        true_optimum,
        valid,
        truth_in_box,
    }
}

// ---------------------------------------------------------------------------
// Render + artifact.
// ---------------------------------------------------------------------------

/// Runs the experiment, returning a markdown section; also writes
/// `results/BENCH_sampling.json` (or the `_smoke` variant under
/// `X24_DRAWS`).
pub fn run() -> String {
    let draws_override = std::env::var("X24_DRAWS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    run_at(draws_override)
}

fn run_at(draws_override: Option<u64>) -> String {
    let mut envs = environments();
    if let Some(draws) = draws_override {
        for e in &mut envs {
            e.draws = draws;
        }
    }
    let outcomes: Vec<EnvOutcome> = envs
        .iter()
        .enumerate()
        .map(|(i, spec)| run_env(i, spec))
        .collect();

    // Per-group empirical validity: the δ side of the certificate.
    let mut groups: BTreeMap<&str, Vec<&EnvOutcome>> = BTreeMap::new();
    for o in &outcomes {
        groups.entry(o.group).or_default().push(o);
    }
    let validity: BTreeMap<&str, f64> = groups
        .iter()
        .map(|(g, os)| {
            let rate = os.iter().filter(|o| o.valid).count() as f64 / os.len() as f64;
            assert!(
                rate >= 1.0 - DELTA,
                "x24 group {g}: empirical certificate validity {rate:.3} below the \
                 promised {:.3} — refusing to write the artifact",
                1.0 - DELTA
            );
            (*g, rate)
        })
        .collect();
    // The ε side, at the committed draw count only: deep environments
    // must certify a usable bound, not a vacuous one.
    if draws_override.is_none() {
        assert!(
            outcomes
                .iter()
                .any(|o| o.n >= 9 && o.certificate.epsilon <= 0.25),
            "x24: no n ≥ 9 environment certified ε ≤ 0.25 at the full draw count"
        );
    }

    let mut gt = Table::new(&[
        "group",
        "envs",
        "validity",
        "mean ε",
        "true cost point (mean)",
        "true cost certified (mean)",
    ]);
    for (g, os) in &groups {
        let mean =
            |f: &dyn Fn(&EnvOutcome) -> f64| os.iter().map(|o| f(o)).sum::<f64>() / os.len() as f64;
        gt.row(vec![
            g.to_string(),
            os.len().to_string(),
            format!("{:.3}", validity[g]),
            format!("{:.3}", mean(&|o| o.certificate.epsilon)),
            format!("{:.1}", mean(&|o| o.true_point)),
            format!("{:.1}", mean(&|o| o.true_certified)),
        ]);
    }
    let mut st = Table::new(&["env", "n", "stats", "draws", "ε", "cost ∈", "valid"]);
    for o in outcomes.iter().filter(|o| o.group == "showcase") {
        st.row(vec![
            o.label.clone(),
            o.n.to_string(),
            o.statistics.to_string(),
            o.draws.to_string(),
            format!("{:.4}", o.certificate.epsilon),
            format!(
                "[{:.0}, {:.0}]",
                o.certificate.optimal_lower, o.certificate.chosen_upper
            ),
            o.valid.to_string(),
        ]);
    }

    let env_json: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "    {{\"env\": \"{}\", \"group\": \"{}\", \"n\": {}, \"statistics\": {}, \
                 \"draws\": {}, \"bound\": \"{}\", \"epsilon\": {:.6}, \"delta\": {}, \
                 \"chosen_upper\": {:.4}, \"optimal_lower\": {:.4}, \
                 \"true_cost_point\": {:.4}, \"true_cost_certified\": {:.4}, \
                 \"true_optimum\": {:.4}, \"certificate_valid\": {}, \"truth_in_box\": {}}}",
                o.label,
                o.group,
                o.n,
                o.statistics,
                o.draws,
                o.bound,
                o.certificate.epsilon,
                DELTA,
                o.certificate.chosen_upper,
                o.certificate.optimal_lower,
                o.true_point,
                o.true_certified,
                o.true_optimum,
                o.valid,
                o.truth_in_box
            )
        })
        .collect();
    let validity_json: Vec<String> = validity
        .iter()
        .map(|(g, r)| format!("\"{g}\": {r:.6}"))
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"x24_sampling\",\n  \"self_asserted\": true,\n  \
         \"optimized_build\": {OPTIMIZED_BUILD},\n  \
         \"delta\": {DELTA},\n  \"battery_draws\": {},\n  \"showcase_draws\": {},\n  \
         \"smoke\": {},\n  \
         \"certificate_validity\": {{{}}},\n  \
         \"environments\": [\n{}\n  ]\n}}\n",
        draws_override.unwrap_or(BATTERY_DRAWS),
        draws_override.unwrap_or(SHOWCASE_DRAWS),
        draws_override.is_some(),
        validity_json.join(", "),
        env_json.join(",\n"),
    );
    let path = json_path(draws_override.is_some());
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&path, &json).expect("write BENCH_sampling.json");

    let best_deep = outcomes
        .iter()
        .filter(|o| o.n >= 9)
        .map(|o| o.certificate.epsilon)
        .fold(f64::INFINITY, f64::min);
    format!(
        "## X24 — point-estimate vs sample-certified optimization (lec-catalog sampling)\n\n\
         {} environments (the 51-env differential battery plus two n ≥ 9 \
         showcase chains), optimized from *sampled* statistics only: the \
         point arm trusts the estimates, the certified arm keeps the \
         confidence intervals and ships an (ε, δ) suboptimality \
         certificate with δ = {DELTA}. Certificate soundness is \
         self-asserted per environment (truth in box ⇒ bound holds) and \
         the empirical validity rate per group is ≥ 1 − δ:\n\n{}\n\
         Showcase chains (Wilson bounds, {} draws/stat): the deepest \
         certified ε is {:.4}.\n\n{}\n\
         Machine-readable copy written to `results/{}`.\n",
        outcomes.len(),
        gt.render(),
        draws_override.unwrap_or(SHOWCASE_DRAWS),
        best_deep,
        st.render(),
        path.file_name()
            .and_then(|f| f.to_str())
            .unwrap_or("BENCH_sampling.json")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced-draw harness run: every per-environment soundness assert
    /// and the per-group validity asserts fire; the artifact lands on the
    /// smoke path (never the committed one).
    #[test]
    fn renders_asserts_and_writes_smoke_json() {
        let md = run_at(Some(128));
        assert!(md.contains("X24"));
        assert!(md.contains("certificate"));
        let json = std::fs::read_to_string(json_path(true)).unwrap();
        assert!(json.contains("\"experiment\": \"x24_sampling\""));
        assert!(json.contains("\"self_asserted\": true"));
        assert!(json.contains("\"certificate_validity\""));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("\"group\": \"showcase\""));
    }

    /// The battery shape generator is bit-identical to the differential
    /// suite's: same splitmix64, same consumption order.
    #[test]
    fn battery_shapes_are_deterministic() {
        let (r1, p1) = battery_shape(2, 5, 3);
        let (r2, p2) = battery_shape(2, 5, 3);
        assert_eq!(p1, p2);
        assert_eq!(r1.len(), r2.len());
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.pages, b.pages);
            assert_eq!(a.filter, b.filter);
        }
        assert_eq!(p1.len(), 10, "clique n=5 has C(5,2) predicates");
    }
}
