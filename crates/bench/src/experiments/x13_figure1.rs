//! X13 — Figure 1 (§3.6): the four distributions carried at a dag node.
//!
//! For a concrete node of a 4-relation chain query — joining `B_j = r0 ⋈ r1
//! ⋈ r2` with `A_j = r3` — render the memory distribution `M`, the input
//! size distributions `|B_j|` and `|A_j|`, the predicate selectivity `σ`,
//! and the derived result-size distribution `|B_j ⋈ A_j|` as text
//! histograms.

use crate::fixtures::{chain_query, SEED};
use lec_core::alg_d::SizeModel;
use lec_stats::{rebucket, Distribution};
use lec_workload::envs;

fn sketch(name: &str, d: &Distribution) -> String {
    let mut out = format!("{name} (b = {}):\n", d.len());
    let max_p = d.probs().iter().cloned().fold(0.0, f64::max);
    for (v, p) in d.iter() {
        let bars = ((p / max_p) * 30.0).round() as usize;
        out.push_str(&format!(
            "  {:>12}  {:>6.3}  {}\n",
            crate::table::num(v),
            p,
            "#".repeat(bars.max(1))
        ));
    }
    out
}

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let q = chain_query(4, SEED + 13);
    let mem = envs::lognormal(300.0, 0.8, 4);
    let sizes = SizeModel::with_uncertainty(&q, 0.4, 0.8, 4).expect("sizes");

    // |B_j| = size of r0 ⋈ r1 ⋈ r2 under independent propagation.
    let mut bj = sizes.rel_sizes[0]
        .product_with(&sizes.rel_sizes[1], |x, y| x * y)
        .and_then(|d| d.product_with(&sizes.selectivities[0], |x, s| x * s))
        .and_then(|d| rebucket(&d, 4))
        .and_then(|d| d.product_with(&sizes.rel_sizes[2], |x, y| x * y))
        .and_then(|d| d.product_with(&sizes.selectivities[1], |x, s| x * s))
        .and_then(|d| rebucket(&d, 4))
        .expect("propagation");
    bj = bj.map(|v| v.max(1.0)).expect("floor");
    let aj = &sizes.rel_sizes[3];
    let sigma = &sizes.selectivities[2];
    let result = bj
        .product_with(aj, |x, y| x * y)
        .and_then(|d| d.product_with(sigma, |x, s| x * s))
        .and_then(|d| rebucket(&d, 4))
        .and_then(|d| d.map(|v| v.max(1.0)))
        .expect("result size");

    format!(
        "## X13 — Figure 1: the four distributions at a dag node\n\n\
         Node: S = {{r0, r1, r2, r3}} via j = r3 on a chain query. Exactly \
         four distributions are needed regardless of how many parameters \
         the query started with; the fifth shown is the derived result size \
         passed to the parent.\n\n```text\n{}\n{}\n{}\n{}\n{}```\n",
        sketch("M    — memory (pages)", &mem),
        sketch("|B_j| — intermediate size (pages)", &bj),
        sketch("|A_j| — joined relation size (pages)", aj),
        sketch("sigma — predicate selectivity", sigma),
        sketch("|B_j >< A_j| — result size (pages)", &result),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x13_renders_all_five_distributions() {
        let md = super::run();
        for label in ["M    —", "|B_j| —", "|A_j| —", "sigma —", "|B_j >< A_j| —"] {
            assert!(md.contains(label), "missing {label}:\n{md}");
        }
        assert!(md.contains("#"));
    }
}
