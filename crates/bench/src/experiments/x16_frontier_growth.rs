//! X16 (extension) — the price of exactness for general utilities.
//!
//! The Pareto-frontier DP is exact for any monotone utility, but its per-
//! node frontier can grow with the number of memory buckets (more values →
//! fewer dominated profiles). This experiment maps that growth across
//! relation count and bucket count, and reports the search-space blow-up
//! relative to the scalar DP's single entry per node.

use crate::table::{ratio, Table};
use lec_core::pareto;
use lec_cost::PaperCostModel;
use lec_stats::Utility;
use lec_workload::envs;
use lec_workload::queries::{QueryGen, Topology};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let mut t = Table::new(&["n", "b=2", "b=4", "b=8", "b=16"]);
    let mut exactness_ok = true;
    for n in [3usize, 4, 5] {
        let mut cells = vec![n.to_string()];
        for b in [2usize, 4, 8, 16] {
            // Max frontier across a few seeded instances.
            let mut worst = 0usize;
            for seed in 0..5u64 {
                let q = QueryGen {
                    topology: Topology::Chain,
                    n,
                    pages_range: (20.0, 30_000.0),
                    ..QueryGen::default()
                }
                .generate(&mut ChaCha8Rng::seed_from_u64(1600 + seed));
                let mem = envs::lognormal(250.0, 1.2, b);
                let r =
                    pareto::optimize(&q, &PaperCostModel, &mem, Utility::Linear).expect("pareto");
                worst = worst.max(r.max_frontier);
                // Exactness spot-check against the exhaustive optimum.
                if n <= 4 {
                    let truth =
                        pareto::exhaustive_utility(&q, &PaperCostModel, &mem, Utility::Linear)
                            .expect("truth");
                    if (r.best.cost - truth.best.cost).abs() > 1e-6 * truth.best.cost {
                        exactness_ok = false;
                    }
                }
            }
            cells.push(worst.to_string());
        }
        t.row(cells);
    }

    // The blow-up vs the scalar DP on one representative setting.
    let q = QueryGen {
        topology: Topology::Chain,
        n: 5,
        pages_range: (20.0, 30_000.0),
        ..QueryGen::default()
    }
    .generate(&mut ChaCha8Rng::seed_from_u64(1605));
    let mem = envs::lognormal(250.0, 1.2, 8);
    let r = pareto::optimize(&q, &PaperCostModel, &mem, Utility::Linear).expect("pareto");

    format!(
        "## X16 — Pareto frontier growth: the price of utility-exactness\n\n\
         Maximum per-node frontier size (worst of 5 seeded chain queries) as \
         relations `n` and memory buckets `b` grow. The scalar DP keeps 1 \
         entry per node; every extra frontier entry is the overhead exact \
         general-utility optimization pays.\n\n{}\n\
         Representative blow-up at n = 5, b = 8: max frontier {} \
         ({} vs the scalar DP). Exactness spot-checks vs exhaustive: {}.\n",
        t.render(),
        r.max_frontier,
        ratio(r.max_frontier as f64),
        if exactness_ok { "PASS" } else { "FAIL" }
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x16_frontier_bounded_and_exact() {
        let md = super::run();
        assert!(md.contains("PASS"), "{md}");
        // Frontiers stay manageable (the discrete parameter space caps them).
        for line in md
            .lines()
            .filter(|l| l.starts_with("| ") && !l.contains("n"))
        {
            for cell in line
                .split('|')
                .map(str::trim)
                .filter(|c| !c.is_empty())
                .skip(1)
            {
                if let Ok(v) = cell.parse::<usize>() {
                    assert!(v <= 64, "frontier exploded: {line}");
                }
            }
        }
    }
}
