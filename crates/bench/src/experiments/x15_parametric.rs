//! X15 (extension) — parametric LEC: precompute at compile time, pick at
//! start-up time (§3.2/§3.4 meets \[INSS92\]).
//!
//! Compile time stores one LEC plan per anticipated environment scenario.
//! At start-up the observed memory distribution is re-costed against the
//! stored plans only — no plan search. The sweep perturbs the observed
//! environment away from the stored scenarios and reports the regret
//! against a full re-optimization, plus the work saved.

use crate::table::{num, ratio, Table};
use lec_core::parametric::ParametricPlans;
use lec_core::{alg_c, MemoryModel};
use lec_cost::{CountingModel, PaperCostModel};
use lec_stats::Distribution;
use lec_workload::queries;

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let q = queries::example_1_1();
    let model = CountingModel::new(PaperCostModel);
    // Compile-time scenario family: mixes of roomy and starved.
    let scenarios: Vec<Distribution> = [0.0, 0.2, 0.5, 0.8]
        .iter()
        .map(|&p_lo| lec_workload::envs::bimodal(700.0, 2000.0, p_lo))
        .collect();
    let set = ParametricPlans::precompute(&q, &model, &scenarios).expect("precompute");
    let precompute_evals = model.evaluations();

    let mut t = Table::new(&[
        "observed environment",
        "parametric pick E[cost]",
        "fresh re-optimization E[cost]",
        "regret",
        "pick evals",
        "fresh evals",
    ]);
    let mut observations: Vec<(String, Distribution)> = vec![
        (
            "stored: 80/20".into(),
            lec_workload::envs::bimodal(700.0, 2000.0, 0.2),
        ),
        (
            "between: 65/35 @ 750".into(),
            Distribution::new([(750.0, 0.35), (1950.0, 0.65)]).expect("valid"),
        ),
        (
            "sharpened: point 2000".into(),
            Distribution::point(2000.0).expect("valid"),
        ),
        (
            "sharpened: point 800".into(),
            Distribution::point(800.0).expect("valid"),
        ),
    ];
    observations.push((
        "off-family: lognormal".into(),
        lec_workload::envs::lognormal(1200.0, 0.5, 6),
    ));

    for (name, observed) in &observations {
        model.reset();
        let choice = set.pick(&q, &model, observed).expect("pick");
        let pick_evals = model.evaluations();
        model.reset();
        let fresh =
            alg_c::optimize(&q, &model, &MemoryModel::Static(observed.clone())).expect("fresh");
        let fresh_evals = model.evaluations();
        t.row(vec![
            name.clone(),
            num(choice.expected_cost),
            num(fresh.cost),
            ratio(choice.expected_cost / fresh.cost),
            pick_evals.to_string(),
            fresh_evals.to_string(),
        ]);
    }

    format!(
        "## X15 — parametric LEC: compile-time precompute, start-up pick\n\n\
         Example 1.1's query; four stored scenarios (bimodal mixes), \
         precomputed with {} formula evaluations total. At start-up the \
         observed distribution is re-costed against stored plans only.\n\n{}\n",
        precompute_evals,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x15_zero_regret_on_family_and_cheap_picks() {
        let md = super::run();
        for line in md.lines().filter(|l| l.starts_with("|") && l.contains('x')) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() < 7 {
                continue;
            }
            if let Ok(regret) = cells[4].trim_end_matches('x').parse::<f64>() {
                assert!((1.0..1.25).contains(&regret), "{line}");
                let pick: u64 = cells[5].parse().unwrap();
                let fresh: u64 = cells[6].parse().unwrap();
                assert!(pick < fresh, "picking should be cheaper: {line}");
            }
        }
        // Stored and sharpened observations should tie fresh optimization.
        let stored_row = md.lines().find(|l| l.contains("stored: 80/20")).unwrap();
        assert!(stored_row.contains("1.000x"), "{stored_row}");
    }
}
