//! X19 (extension) — the machine-readable search-space trajectory of the
//! observability layer.
//!
//! Drives `alg_c::optimize_with_stats` over growing chain queries and
//! records the deterministic [`lec_core::OptStats`] counters: masks
//! expanded, candidate combinations priced, DP entries written, and the
//! precompute table sizes. The counters have closed forms on a chain of
//! `n` relations (`2^n - n - 1` masks, `3(n·2^{n-1} - n)` candidates), so
//! the JSON doubles as a regression oracle for the enumeration itself —
//! any change to the search space shows up as a diff in
//! `results/BENCH_stats.json` before it shows up as a plan change.
//! Small-`n` rows also run the Pareto utility DP and record its
//! per-rank frontier sizes, the quantity that decides whether the exact
//! profile DP is affordable.

use crate::artifacts::{artifact_path, OPTIMIZED_BUILD};
use crate::fixtures::{chain_query, spread_memory, static_mem, SEED};
use crate::table::Table;
use lec_core::{alg_c, pareto};
use lec_cost::PaperCostModel;
use lec_stats::Utility;
use std::path::PathBuf;

/// Where the machine-readable trajectory lands (workspace `results/`).
/// Debug builds route to the gitignored `_debug` file — the counters are
/// build-independent, but the wall times are not.
fn json_path() -> PathBuf {
    artifact_path("stats")
}

/// Runs the experiment, returning a markdown section; also writes
/// `results/BENCH_stats.json`.
pub fn run() -> String {
    let mut t = Table::new(&["n", "masks", "candidates", "entries", "pages tbl", "wall"]);
    let mut json_rows = Vec::new();
    for n in 4usize..=12 {
        let q = chain_query(n, SEED + n as u64);
        let mem = static_mem(spread_memory(4));
        let (_, stats) =
            alg_c::optimize_with_stats(&q, &PaperCostModel, &mem).expect("alg_c with stats");
        let c = &stats.counters;
        t.row(vec![
            n.to_string(),
            c.masks_expanded.to_string(),
            c.candidates_priced.to_string(),
            c.entries_written.to_string(),
            stats.precompute.pages_entries.to_string(),
            format!("{:.3} ms", stats.total_wall_ns() as f64 / 1e6),
        ]);
        json_rows.push(format!(
            "    {{\"n\": {n}, \"masks_expanded\": {}, \"candidates_priced\": {}, \
             \"entries_written\": {}, \"pages_entries\": {}, \"wall_ns\": {}}}",
            c.masks_expanded,
            c.candidates_priced,
            c.entries_written,
            stats.precompute.pages_entries,
            stats.total_wall_ns()
        ));
    }

    let mut pt = Table::new(&["n", "max frontier", "frontier per rank"]);
    let mut pareto_rows = Vec::new();
    for n in 4usize..=6 {
        let q = chain_query(n, SEED + n as u64);
        let mem = spread_memory(4);
        let (res, stats) = pareto::optimize_with_stats(
            &q,
            &PaperCostModel,
            &mem,
            Utility::Exponential { gamma: 1e-5 },
        )
        .expect("pareto with stats");
        let ranks = &stats.counters.frontier_per_rank;
        pt.row(vec![
            n.to_string(),
            res.max_frontier.to_string(),
            format!("{ranks:?}"),
        ]);
        let rank_list = ranks
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        pareto_rows.push(format!(
            "    {{\"n\": {n}, \"max_frontier\": {}, \"frontier_per_rank\": [{rank_list}]}}",
            res.max_frontier
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"x19_stats\",\n  \"algorithm\": \"alg_c\",\n  \
         \"optimized_build\": {OPTIMIZED_BUILD},\n  \
         \"memory_buckets\": 4,\n  \"rows\": [\n{}\n  ],\n  \"pareto\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
        pareto_rows.join(",\n")
    );
    let path = json_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&path, &json).expect("write BENCH_stats.json");

    format!(
        "## X19 — optimizer search-space statistics\n\n\
         `alg_c::optimize_with_stats` on chain queries with 4 memory \
         buckets. The counters are deterministic (identical between serial \
         and rank-parallel runs; see `parallel_equivalence.rs`) and follow \
         the chain-query closed forms, so this table is an enumeration \
         regression oracle. Machine-readable copy written to \
         `results/BENCH_stats.json`.\n\n{}\n\
         Pareto utility DP (exponential utility) on the same queries: the \
         per-rank frontier sizes measure what exactness over profiles \
         costs.\n\n{}\n",
        t.render(),
        pt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_writes_json_and_matches_closed_forms() {
        let md = run();
        assert!(md.contains("X19"));
        assert!(md.contains("| 12 |"));
        let json = std::fs::read_to_string(json_path()).unwrap();
        assert!(json.contains("\"experiment\": \"x19_stats\""));
        // Chain closed forms at n = 4: 2^4 - 4 - 1 masks and
        // 3 (4·2^3 - 4) candidate combinations.
        assert!(json.contains("\"n\": 4, \"masks_expanded\": 11, \"candidates_priced\": 84"));
        assert!(json.contains("\"n\": 12, \"masks_expanded\": 4083"));
        assert!(json.contains("\"max_frontier\""));
        assert!(json.contains("\"frontier_per_rank\""));
    }
}
