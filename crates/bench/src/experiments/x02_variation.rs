//! X2 — "The greater the run-time variation ... the greater the cost
//! advantage of the LEC plan is likely to be" (§1.2).
//!
//! Two sweeps on Example 1.1's environment: (a) the probability of the
//! low-memory mode, (b) how low the low-memory mode is. Reported metric:
//! expected cost of the LSC(mode) plan divided by expected cost of the LEC
//! plan (≥ 1 by construction; 1.0 means LEC buys nothing).

use crate::table::{num, ratio, Table};
use lec_core::{alg_c, evaluate, lsc, MemoryModel};
use lec_cost::PaperCostModel;
use lec_workload::{envs, queries};

fn advantage(lo: f64, hi: f64, p_lo: f64) -> (f64, f64, f64) {
    let q = queries::example_1_1();
    let model = PaperCostModel;
    let mem = envs::bimodal(lo, hi, p_lo);
    let phases = MemoryModel::Static(mem.clone()).table(2).expect("valid");
    let lsc_plan = lsc::optimize_at_mode(&q, &model, &mem).expect("lsc");
    let lec = alg_c::optimize(&q, &model, &MemoryModel::Static(mem)).expect("lec");
    let lsc_expected = evaluate::expected_cost(&q, &model, &lsc_plan.plan, &phases);
    (lsc_expected, lec.cost, lsc_expected / lec.cost)
}

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let mut by_p = Table::new(&[
        "Pr(M = 700)",
        "E[cost] LSC(mode) plan",
        "E[cost] LEC plan",
        "advantage",
    ]);
    for p in [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.49, 0.6, 0.8, 1.0] {
        let (l, c, r) = advantage(700.0, 2000.0, p);
        by_p.row(vec![format!("{p:.2}"), num(l), num(c), ratio(r)]);
    }

    let mut by_lo = Table::new(&[
        "low-memory mode",
        "E[cost] LSC(mode) plan",
        "E[cost] LEC plan",
        "advantage",
    ]);
    for lo in [1500.0, 1100.0, 900.0, 700.0, 500.0, 200.0, 50.0, 10.0] {
        let (l, c, r) = advantage(lo, 2000.0, 0.2);
        by_lo.row(vec![num(lo), num(l), num(c), ratio(r)]);
    }

    format!(
        "## X2 — LEC advantage vs run-time variation\n\n\
         Sweep (a): probability of the 700-page mode (2000 pages otherwise).\n\n{}\n\
         Sweep (b): depth of the low mode at fixed Pr = 0.2.\n\n{}\n",
        by_p.render(),
        by_lo.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantage_is_at_least_one_and_grows_with_variation() {
        // No variation: LEC == LSC.
        let (_, _, r0) = advantage(700.0, 2000.0, 0.0);
        assert!((r0 - 1.0).abs() < 1e-9);
        // The paper's 80/20 point: strictly > 1.
        let (_, _, r) = advantage(700.0, 2000.0, 0.2);
        assert!(r > 1.05, "advantage {r}");
        // Every sweep point is >= 1 (the contribution-1 guarantee).
        for p in [0.1, 0.3, 0.5, 0.9] {
            let (_, _, rp) = advantage(700.0, 2000.0, p);
            assert!(rp >= 1.0 - 1e-9);
        }
    }
}
