//! X11 — from expected cost to expected utility (the PODS 2002 question).
//!
//! Part (a): the risk profile of LSC / LEC / risk-averse-exponential /
//! deadline plans on a spread memory environment — mean cost, tail cost,
//! and deadline-miss probability.
//!
//! Part (b): the soundness boundary. The scalar utility DP is exact for the
//! linear utility (Theorem 3.3) but *unsound* beyond it: the harness
//! searches seeded instances and exhibits one where the scalar deadline DP
//! returns a strictly worse plan than the exact Pareto-frontier DP.

use crate::fixtures::{chain_query, SEED};
use crate::table::{num, Table};
use lec_core::pareto::{self, UtilityResult};
use lec_cost::PaperCostModel;
use lec_stats::{Distribution, Utility};
use lec_workload::envs;
use lec_workload::queries::{QueryGen, Topology};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    // A search-found instance where the linear, risk-averse and deadline
    // objectives pick three *different* plans.
    let q = QueryGen {
        topology: Topology::Chain,
        n: 4,
        pages_range: (20.0, 30_000.0),
        shrink: 3.0,
        ..QueryGen::default()
    }
    .generate(&mut ChaCha8Rng::seed_from_u64(92));
    let model = PaperCostModel;
    let mem = envs::lognormal(120.0, 1.5, 6);

    // A deadline at the linear optimum's 60th percentile cost.
    let linear = pareto::optimize(&q, &model, &mem, Utility::Linear).expect("linear");
    let deadline = linear
        .cost_distribution
        .quantile(0.6)
        .expect("valid quantile");

    let utilities: Vec<(&str, Utility)> = vec![
        ("LEC (linear)", Utility::Linear),
        ("risk-averse (γ=1e-4)", Utility::Exponential { gamma: 1e-4 }),
        (
            "risk-seeking (γ=-1e-4)",
            Utility::Exponential { gamma: -1e-4 },
        ),
        (
            "deadline",
            Utility::Deadline {
                threshold: deadline,
            },
        ),
    ];

    let mut t = Table::new(&[
        "objective",
        "mean cost",
        "p95 cost",
        "max cost",
        "Pr(miss deadline)",
    ]);
    let profile = |r: &UtilityResult| -> Vec<String> {
        let d: &Distribution = &r.cost_distribution;
        vec![
            num(d.mean()),
            num(d.quantile(0.95).expect("valid")),
            num(d.max()),
            format!("{:.3}", 1.0 - d.cdf(deadline)),
        ]
    };
    for (name, u) in &utilities {
        let r = pareto::optimize(&q, &model, &mem, *u).expect("pareto");
        let mut row = vec![name.to_string()];
        row.extend(profile(&r));
        t.row(row);
    }

    // Part (b): hunt for a scalar-DP counterexample.
    let mut counterexample = String::from("no counterexample found in 60 seeds (unexpected)");
    let mut linear_sound = true;
    for seed in 0..60u64 {
        let qq = chain_query(4, SEED + 100 + seed);
        let mm = envs::lognormal(250.0, 1.2, 5);
        // Soundness half: linear scalar DP must equal the exhaustive optimum.
        let lin_scalar = pareto::scalar_dp(&qq, &model, &mm, Utility::Linear).expect("scalar");
        let lin_truth =
            pareto::exhaustive_utility(&qq, &model, &mm, Utility::Linear).expect("truth");
        if (lin_scalar.best.cost - lin_truth.best.cost).abs() > 1e-6 * lin_truth.best.cost {
            linear_sound = false;
        }
        // Unsoundness half: deadline scalar DP vs exact.
        let probe = lin_truth.cost_distribution.quantile(0.6).expect("valid");
        let u = Utility::Deadline { threshold: probe };
        let scal = pareto::scalar_dp(&qq, &model, &mm, u).expect("scalar");
        let exact = pareto::optimize(&qq, &model, &mm, u).expect("pareto");
        if scal.best.cost > exact.best.cost + 1e-9 {
            counterexample = format!(
                "seed {seed}: scalar deadline DP miss-probability {:.3} vs exact {:.3} \
                 (frontier size {})",
                scal.best.cost, exact.best.cost, exact.max_frontier
            );
            break;
        }
    }

    format!(
        "## X11 — expected utility: risk profiles and the DP soundness boundary\n\n\
         Chain query (n = 4), lognormal memory (mean 120, cv 1.5, 6 buckets); \
         deadline = 60th-percentile cost of the LEC plan ({}).\n\n{}\n\
         Scalar-DP soundness for the linear utility across 60 seeded instances: {}.\n\
         Scalar-DP counterexample for the deadline utility: {}.\n",
        num(deadline),
        t.render(),
        if linear_sound { "PASS" } else { "FAIL" },
        counterexample
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x11_linear_sound_and_deadline_counterexample_found() {
        let md = super::run();
        assert!(md.contains("PASS"));
        assert!(md.contains("seed "), "no counterexample exhibited:\n{md}");
    }

    #[test]
    fn x11_risk_averse_trims_the_tail() {
        let md = super::run();
        let get = |name: &str, col: usize| -> f64 {
            let row = md.lines().find(|l| l.contains(name)).unwrap();
            let cell = row.split('|').map(str::trim).nth(col).unwrap();
            // num() may render scientific notation; f64::parse handles it.
            cell.parse::<f64>().expect("numeric cell")
        };
        let lec_p95 = get("LEC (linear)", 3);
        let averse_p95 = get("risk-averse", 3);
        assert!(
            averse_p95 <= lec_p95 * 1.0 + 1e-9,
            "risk-averse p95 {averse_p95} vs LEC {lec_p95}"
        );
    }
}
