//! X9 — cost-formula validation against the execution simulator.
//!
//! For each operator, counted page I/O (reads + writes) across a memory
//! grid vs the paper's formula (in pass units) and the detailed textbook
//! formula. Absolute agreement is not expected — the unit conventions
//! differ (see `lec-cost`'s crate docs) — but the *structure* must match:
//! measured I/O is non-increasing in memory, and it steps where the
//! formulas step.

use crate::table::{num, Table};
use lec_cost::{CostModel, DetailedCostModel, JoinMethod, PaperCostModel};
use lec_exec::datagen::{domain_for_selectivity, generate, DataGenSpec};
use lec_exec::ops::{block_nested_loop_join, external_sort, grace_hash_join, sort_merge_join};
use lec_exec::{BufferPool, Disk};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

const A_PAGES: usize = 120;
const B_PAGES: usize = 40;

fn setup() -> (Disk, lec_exec::RelId, lec_exec::RelId) {
    let mut disk = Disk::new();
    let mut rng = ChaCha8Rng::seed_from_u64(909);
    let domain = domain_for_selectivity(2e-4);
    let a = generate(
        &mut disk,
        &mut rng,
        &DataGenSpec {
            pages: A_PAGES,
            key_domain: domain,
        },
    );
    let b = generate(
        &mut disk,
        &mut rng,
        &DataGenSpec {
            pages: B_PAGES,
            key_domain: domain,
        },
    );
    (disk, a, b)
}

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let grid = [4usize, 5, 7, 11, 15, 25, 60, 130];
    let mut out = String::from(
        "## X9 — formulas vs simulator (counted page I/O)\n\n\
         A = 120 pages, B = 40 pages. `measured` = reads + writes through \
         the buffer pool; `paper` / `detailed` = formula values. Ratios vary \
         because the unit conventions differ; the shape (levels and step \
         positions) is what is validated.\n\n",
    );

    for method in JoinMethod::ALL {
        let mut t = Table::new(&[
            "M (pages)",
            "measured I/O",
            "paper formula",
            "detailed formula",
        ]);
        for &m in &grid {
            let (mut disk, a, b) = setup();
            let mut pool = BufferPool::with_capacity(m);
            match method {
                JoinMethod::SortMerge => {
                    sort_merge_join(&mut disk, &mut pool, a, b, m, false, false).expect("sm");
                }
                JoinMethod::GraceHash => {
                    grace_hash_join(&mut disk, &mut pool, a, b, m).expect("gh");
                }
                JoinMethod::NestedLoop => {
                    block_nested_loop_join(&mut disk, &mut pool, a, b, m).expect("nl");
                }
            }
            let measured = pool.counters().total();
            t.row(vec![
                m.to_string(),
                measured.to_string(),
                num(PaperCostModel.join_cost(method, A_PAGES as f64, B_PAGES as f64, m as f64)),
                num(DetailedCostModel.join_cost(method, A_PAGES as f64, B_PAGES as f64, m as f64)),
            ]);
        }
        out.push_str(&format!("### {method}\n\n{}\n", t.render()));
    }

    // External sort of the A relation.
    let mut t = Table::new(&[
        "M (pages)",
        "measured I/O",
        "paper formula",
        "detailed formula",
    ]);
    for &m in &grid {
        let (mut disk, a, _) = setup();
        let mut pool = BufferPool::with_capacity(m);
        external_sort(&mut disk, &mut pool, a, m).expect("sort");
        let measured = pool.counters().total();
        t.row(vec![
            m.to_string(),
            measured.to_string(),
            num(PaperCostModel.sort_cost(A_PAGES as f64, m as f64)),
            num(DetailedCostModel.sort_cost(A_PAGES as f64, m as f64)),
        ]);
    }
    out.push_str(&format!(
        "### external sort (120 pages)\n\n{}\n",
        t.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x9_measured_io_is_monotone_in_memory() {
        let grid = [4usize, 7, 15, 60, 130];
        for method in JoinMethod::ALL {
            let mut last = u64::MAX;
            for &m in &grid {
                let (mut disk, a, b) = setup();
                let mut pool = BufferPool::with_capacity(m);
                match method {
                    JoinMethod::SortMerge => {
                        sort_merge_join(&mut disk, &mut pool, a, b, m, false, false).unwrap();
                    }
                    JoinMethod::GraceHash => {
                        grace_hash_join(&mut disk, &mut pool, a, b, m).unwrap();
                    }
                    JoinMethod::NestedLoop => {
                        block_nested_loop_join(&mut disk, &mut pool, a, b, m).unwrap();
                    }
                }
                let total = pool.counters().total();
                assert!(total <= last, "{method} at m={m}: {total} > {last}");
                last = total;
            }
        }
    }

    #[test]
    fn x9_sm_steps_where_the_formula_steps() {
        // The paper formula for SM on 120 pages steps at √120 ≈ 10.95:
        // measured I/O at m = 15 must be well below m = 7 (extra merge pass).
        let io_at = |m: usize| {
            let (mut disk, a, b) = setup();
            let mut pool = BufferPool::with_capacity(m);
            sort_merge_join(&mut disk, &mut pool, a, b, m, false, false).unwrap();
            pool.counters().total()
        };
        let low = io_at(7);
        let high = io_at(15);
        assert!(
            (low as f64) > (high as f64) * 1.2,
            "expected a pass-count step: {low} vs {high}"
        );
    }
}
