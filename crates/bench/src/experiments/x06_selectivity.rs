//! X6 — Algorithm D: uncertain selectivities (§3.6).
//!
//! Two views:
//!
//! * a **showcase** instance (found by search over random chain queries)
//!   where selectivity uncertainty flips the plan choice, swept over the
//!   uncertainty level;
//! * an **aggregate** over 40 random chain queries per uncertainty level:
//!   how often Algorithm D's plan differs from Algorithm C's, and the mean
//!   true-cost ratio when it does.
//!
//! All plans are scored by the exact joint-enumeration ground truth
//! [`lec_core::evaluate::expected_cost_joint`], which weights every
//! (sizes, selectivities, memory) assignment — no independence
//! approximation on the evaluation side.

use crate::table::{num, ratio, Table};
use lec_core::alg_d::{self, AlgDConfig, SizeModel};
use lec_core::{alg_c, evaluate, lsc, MemoryModel};
use lec_cost::PaperCostModel;
use lec_plan::JoinQuery;
use lec_workload::envs;
use lec_workload::queries::{QueryGen, Topology};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn gen_query(seed: u64) -> JoinQuery {
    QueryGen {
        topology: Topology::Chain,
        n: 4,
        pages_range: (20.0, 20_000.0),
        shrink: 5.0,
        ..QueryGen::default()
    }
    .generate(&mut ChaCha8Rng::seed_from_u64(seed))
}

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let model = PaperCostModel;
    let mem_dist = envs::lognormal(300.0, 0.8, 4);
    let mem = MemoryModel::Static(mem_dist.clone());

    // Showcase: the search-found instance where uncertainty flips the plan.
    let q = gen_query(318);
    let phases = mem.table(q.n()).expect("valid");
    let mut showcase = Table::new(&[
        "sel cv",
        "true E[cost] LSC(mean) plan",
        "true E[cost] Alg C plan",
        "true E[cost] Alg D plan",
        "D vs C",
        "D differs?",
    ]);
    for cv in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let sizes = SizeModel::with_uncertainty(&q, 0.0, cv, 3).expect("sizes");
        let d = alg_d::optimize_fast(&q, &mem, &sizes, AlgDConfig::default()).expect("alg d");
        let c = alg_c::optimize(&q, &model, &mem).expect("alg c");
        let l = lsc::optimize_at_mean(&q, &model, &mem_dist).expect("lsc");
        let truth = |plan: &lec_plan::Plan| {
            evaluate::expected_cost_joint(&q, &model, plan, &sizes, &phases)
        };
        let (tl, tc, td) = (truth(&l.plan), truth(&c.plan), truth(&d.best.plan));
        showcase.row(vec![
            format!("{cv:.1}"),
            num(tl),
            num(tc),
            num(td),
            ratio(td / tc),
            if d.best.plan == c.plan { "no" } else { "yes" }.into(),
        ]);
    }

    // Aggregate over 40 random instances per level.
    let mut agg = Table::new(&[
        "sel cv",
        "instances where D != C",
        "mean D/C true-cost (those)",
        "worst-case D/C",
    ]);
    for cv in [0.5, 1.0, 2.0] {
        let mut flips = 0usize;
        let mut ratios = Vec::new();
        for seed in 200..240u64 {
            let qq = gen_query(seed);
            let m = MemoryModel::Static(mem_dist.clone());
            let ph = m.table(qq.n()).expect("valid");
            let sizes = SizeModel::with_uncertainty(&qq, 0.0, cv, 3).expect("sizes");
            let d = alg_d::optimize_fast(&qq, &m, &sizes, AlgDConfig::default()).expect("alg d");
            let c = alg_c::optimize(&qq, &model, &m).expect("alg c");
            if d.best.plan != c.plan {
                flips += 1;
                let td = evaluate::expected_cost_joint(&qq, &model, &d.best.plan, &sizes, &ph);
                let tc = evaluate::expected_cost_joint(&qq, &model, &c.plan, &sizes, &ph);
                ratios.push(td / tc);
            }
        }
        let mean = if ratios.is_empty() {
            1.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        };
        let worst = ratios.iter().cloned().fold(1.0f64, f64::max);
        agg.row(vec![
            format!("{cv:.1}"),
            format!("{flips}/40"),
            ratio(mean),
            ratio(worst),
        ]);
    }

    format!(
        "## X6 — Algorithm D under selectivity uncertainty\n\n\
         Chain queries (n = 4), lognormal memory (mean 300 pages, cv 0.8, \
         4 buckets); per-predicate lognormal selectivity uncertainty with \
         coefficient of variation `cv`, 3 buckets each. Scores are exact \
         joint enumerations.\n\n\
         Showcase instance (search-found):\n\n{}\n\
         Aggregate over 40 random instances per level:\n\n{}\n",
        showcase.render(),
        agg.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x6_showcase_flips_and_d_wins_big() {
        let md = super::run();
        // At cv = 0 the plans agree; at cv = 2 they differ and D wins by a
        // lot on this instance.
        let row0 = md
            .lines()
            .find(|l| l.trim_start_matches('|').trim().starts_with("0.0 |"))
            .unwrap();
        assert!(row0.contains("no"), "{row0}");
        let row2 = md
            .lines()
            .find(|l| l.trim_start_matches('|').trim().starts_with("2.0 |"))
            .unwrap();
        assert!(row2.contains("yes"), "{row2}");
        let dvc: f64 = row2
            .split('|')
            .map(str::trim)
            .nth(5)
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(dvc < 0.5, "expected a large win, got {dvc} in {row2}");
    }

    #[test]
    fn x6_aggregate_never_catastrophic() {
        let md = super::run();
        // Across the aggregate, D's worst-case true-cost ratio stays near 1.
        for line in md.lines().filter(|l| l.contains("/40")) {
            let worst: f64 = line
                .split('|')
                .map(str::trim)
                .nth(4)
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!(worst <= 1.1, "{line}");
        }
    }
}
