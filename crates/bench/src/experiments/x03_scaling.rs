//! X3 — plan quality and optimizer work across the algorithm family.
//!
//! Part (a): regret (expected cost / exhaustive-LEC expected cost) of
//! LSC(mean), Algorithm A, Algorithm B (c = 3) and Algorithm C over chain
//! queries of increasing size, plus the left-deep optimum's regret against
//! the bushy exhaustive optimum. Part (b): the §3.2/§3.4 work claims —
//! cost-formula evaluations as the bucket count grows (Algorithm C must be
//! exactly `b ×` the single-bucket count).

use crate::fixtures::{chain_query, spread_memory, static_mem, SEED};
use crate::table::{num, ratio, Table};
use lec_core::{alg_a, alg_b, alg_c, evaluate, exhaustive, lsc};
use lec_cost::{CountingModel, PaperCostModel};
use lec_stats::Distribution;

/// Runs the experiment, returning a markdown section.
pub fn run() -> String {
    let mem_dist = spread_memory(4);

    let mut quality = Table::new(&[
        "n",
        "LSC(mean)",
        "Alg A",
        "Alg B (c=3)",
        "Alg C",
        "bushy gap",
    ]);
    for n in 2..=6 {
        let q = chain_query(n, SEED + n as u64);
        let model = PaperCostModel;
        let mem = static_mem(mem_dist.clone());
        let phases = mem.table(n).expect("valid");
        let truth = exhaustive::exhaustive_lec(&q, &model, &phases).expect("truth");

        let lsc_plan = lsc::optimize_at_mean(&q, &model, &mem_dist).expect("lsc");
        let a = alg_a::optimize(&q, &model, &mem).expect("a");
        let b = alg_b::optimize(&q, &model, &mem, 3).expect("b");
        let c = alg_c::optimize(&q, &model, &mem).expect("c");
        let lsc_e = evaluate::expected_cost(&q, &model, &lsc_plan.plan, &phases);

        let bushy_gap = if n <= 5 {
            let bushy = exhaustive::exhaustive_lec_bushy(&q, &model, &phases).expect("bushy");
            ratio(truth.cost / bushy.cost)
        } else {
            "-".into()
        };
        quality.row(vec![
            n.to_string(),
            ratio(lsc_e / truth.cost),
            ratio(a.best.cost / truth.cost),
            ratio(b.best.cost / truth.cost),
            ratio(c.cost / truth.cost),
            bushy_gap,
        ]);
    }

    let mut work = Table::new(&[
        "b buckets",
        "Alg C evals",
        "vs b=1",
        "Alg A evals",
        "vs b=1",
    ]);
    let q = chain_query(5, SEED + 50);
    let evals = |b: usize| -> (u64, u64) {
        let values: Vec<(f64, f64)> = (0..b)
            .map(|i| (60.0 * (i + 1) as f64, 1.0 / b as f64))
            .collect();
        let dist = Distribution::new(values).expect("valid");
        let mem = static_mem(dist.clone());
        let mc = CountingModel::new(PaperCostModel);
        alg_c::optimize(&q, &mc, &mem).expect("c");
        let c_evals = mc.evaluations();
        let ma = CountingModel::new(PaperCostModel);
        alg_a::optimize(&q, &ma, &mem).expect("a");
        (c_evals, ma.evaluations())
    };
    let (c1, a1) = evals(1);
    for b in [1usize, 2, 4, 8, 16, 32] {
        let (c, a) = evals(b);
        work.row(vec![
            b.to_string(),
            c.to_string(),
            ratio(c as f64 / c1 as f64),
            a.to_string(),
            ratio(a as f64 / a1 as f64),
        ]);
    }

    // (c) §3.2's caveat made concrete: an instance (found by search) where
    // Algorithm A's candidate set misses the LEC plan and Algorithm B
    // recovers it.
    let showcase = {
        use lec_plan::{JoinPred, JoinQuery, KeyId, Plan, Relation};
        let q = JoinQuery::new(
            vec![
                Relation::new("r0", 587.0, 37_568.0),
                Relation::new("r1", 93.0, 5_952.0),
                Relation::new("r2", 767.0, 49_088.0),
            ],
            vec![
                JoinPred {
                    left: 0,
                    right: 1,
                    selectivity: 0.0034071550255536627,
                    key: KeyId(0),
                },
                JoinPred {
                    left: 1,
                    right: 2,
                    selectivity: 0.002607561929595828,
                    key: KeyId(1),
                },
            ],
            Some(KeyId(1)),
        )
        .expect("valid showcase query");
        let b = 5;
        let step = (1500.0f64 / 20.0).powf(1.0 / (b as f64 - 1.0));
        let mem = static_mem(
            Distribution::new((0..b).map(|i| (20.0 * step.powi(i), 1.0 / b as f64)))
                .expect("valid"),
        );
        let model = PaperCostModel;
        let a = alg_a::optimize(&q, &model, &mem).expect("a");
        let b3 = alg_b::optimize(&q, &model, &mem, 3).expect("b");
        let c = alg_c::optimize(&q, &model, &mem).expect("c");
        let shape = |p: &Plan| p.explain(&q).replace('\n', " / ");
        let mut t = Table::new(&["algorithm", "expected cost", "vs LEC", "plan"]);
        t.row(vec![
            "Alg A".into(),
            num(a.best.cost),
            ratio(a.best.cost / c.cost),
            shape(&a.best.plan),
        ]);
        t.row(vec![
            "Alg B (c=3)".into(),
            num(b3.best.cost),
            ratio(b3.best.cost / c.cost),
            shape(&b3.best.plan),
        ]);
        t.row(vec![
            "Alg C".into(),
            num(c.cost),
            ratio(1.0),
            shape(&c.plan),
        ]);
        t.render()
    };

    format!(
        "## X3 — plan quality and optimizer work\n\n\
         (a) Expected-cost regret vs the exhaustive left-deep LEC optimum \
         (1.000x = optimal). `bushy gap` = left-deep optimum / bushy optimum.\n\n{}\n\
         (b) Cost-formula evaluations vs bucket count `b` (chain, n = 5). \
         §3.4 predicts Algorithm C at exactly b× the single-bucket count; \
         §3.2 predicts Algorithm A at roughly b× one LSC invocation plus \
         candidate-costing overhead.\n\n{}\nSingle-bucket baselines: Alg C {} evals, Alg A {} evals.\n\n\
         (c) §3.2's caveat: a search-found instance where no per-bucket LSC \
         plan is the LEC plan, so Algorithm A is strictly suboptimal while \
         Algorithm B's extra candidates recover the optimum.\n\n{}\n",
        quality.render(),
        work.render(),
        num(c1 as f64),
        num(a1 as f64),
        showcase,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn x3_algorithm_c_is_always_optimal_and_work_scales_linearly() {
        let md = super::run();
        // Every Alg C row in the quality table shows regret 1.000x.
        let quality_rows: Vec<&str> = md
            .lines()
            .filter(|l| l.starts_with("|") && !l.contains("LSC") && !l.contains("---"))
            .collect();
        assert!(!quality_rows.is_empty());
        for n in 2..=6 {
            let row = md
                .lines()
                .find(|l| {
                    l.trim_start_matches('|')
                        .trim()
                        .starts_with(&format!("{n} |"))
                })
                .unwrap_or_else(|| panic!("missing row for n = {n}\n{md}"));
            let cells: Vec<&str> = row.split('|').map(str::trim).collect();
            assert_eq!(cells[5], "1.000x", "Alg C regret for n = {n}: {row}");
        }
        // Work table: b = 32 must be exactly 32.000x for Alg C.
        let row32 = md
            .lines()
            .find(|l| l.trim_start_matches('|').trim().starts_with("32 |"))
            .unwrap();
        assert!(row32.contains("32.000x"), "{row32}");
    }
}
