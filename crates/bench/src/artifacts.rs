//! Artifact-path policy for the machine-readable `results/BENCH_*.json`
//! records.
//!
//! A committed artifact once recorded a 0.1396× "speedup" — an
//! unoptimized debug-build test run (~0.14× is exactly debug-vs-release
//! for that kernel) that clobbered the release artifact while the docs
//! kept quoting the healthy number. X18 grew a guard against that class
//! of bug; this module is the same guard, shared by every BENCH writer:
//! debug builds route to a `_debug`-suffixed, gitignored file, and every
//! artifact records `"optimized_build"` so a stray debug record is
//! machine-detectable (`lec-analyze` flags it) even if it lands on the
//! wrong path.

use std::path::PathBuf;

/// Whether this binary can honestly be compared against recorded
/// release-build baselines. Debug builds still run every self-assertion
/// that is build-independent (counter equalities, ratio floors where both
/// sides slow down together) but must never overwrite a committed release
/// artifact with their wall times.
pub const OPTIMIZED_BUILD: bool = !cfg!(debug_assertions);

/// Resolves `results/BENCH_<stem>.json` in the workspace, routing debug
/// builds to the gitignored `results/BENCH_<stem>_debug.json` instead.
pub fn artifact_path(stem: &str) -> PathBuf {
    let suffix = if OPTIMIZED_BUILD { "" } else { "_debug" };
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join(format!("../../results/BENCH_{stem}{suffix}.json"))
}

/// Resolves `results/<stem>.md` in the workspace, routing debug builds
/// to the gitignored `results/<stem>_debug.md`. Same policy as the JSON
/// artifacts: `results/xtable_all.md` used to be a raw stdout redirect,
/// which is exactly how a debug run clobbers a committed record.
pub fn markdown_path(stem: &str) -> PathBuf {
    let suffix = if OPTIMIZED_BUILD { "" } else { "_debug" };
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../results/{stem}{suffix}.md"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_path_routes_on_build_profile() {
        let p = markdown_path("xtable_all");
        let name = p.file_name().unwrap().to_str().unwrap();
        if OPTIMIZED_BUILD {
            assert_eq!(name, "xtable_all.md");
        } else {
            assert_eq!(name, "xtable_all_debug.md");
        }
    }

    #[test]
    fn path_routes_on_build_profile() {
        let p = artifact_path("stats");
        let name = p.file_name().unwrap().to_str().unwrap();
        if OPTIMIZED_BUILD {
            assert_eq!(name, "BENCH_stats.json");
        } else {
            assert_eq!(name, "BENCH_stats_debug.json");
        }
        assert!(p.to_str().unwrap().contains("results"));
    }
}
