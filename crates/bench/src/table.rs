//! Minimal markdown table rendering for experiment output.

/// A markdown table builder with right-aligned numeric-friendly cells.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are free-form strings).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Renders the table as markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with a sensible number of digits for tables.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a == 0.0 {
        "0".into()
    } else if a >= 1e6 {
        format!("{:.3e}", v)
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats a ratio as `1.23x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.3}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), num(1234567.0)]);
        t.row(vec!["bb".into(), num(0.5)]);
        let md = t.render();
        assert!(md.starts_with("| name |"));
        assert_eq!(md.lines().count(), 4);
        assert!(md.contains("1.235e6"));
        assert!(md.contains("0.5000"));
    }

    #[test]
    fn num_formats_by_magnitude() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(3.17159), "3.17");
        assert_eq!(num(250.4), "250");
        assert_eq!(num(2.8e6), "2.800e6");
    }
}
