//! `xtable` — regenerate the experiment tables.
//!
//! ```text
//! xtable x1          # one experiment
//! xtable x3 x5       # several
//! xtable all         # everything, in order; also writes results/xtable_all.md
//! ```
//!
//! `xtable all` writes `results/xtable_all.md` itself through the
//! artifact-path policy (debug builds route to the gitignored `_debug`
//! variant), so the committed record can no longer be clobbered by a
//! stray `xtable all > results/xtable_all.md` from the wrong build.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if args.is_empty() {
        eprintln!("usage: xtable <x1..x24|all> ...");
        eprintln!("experiments: {}", lec_bench::ALL_EXPERIMENTS.join(", "));
        std::process::exit(2);
    }
    let all = args.iter().any(|a| a == "all");
    let ids: Vec<String> = if all {
        lec_bench::ALL_EXPERIMENTS
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };
    let mut sections = String::new();
    for id in &ids {
        match lec_bench::run_experiment(id) {
            Some(section) => {
                writeln!(out, "{section}").expect("stdout");
                sections.push_str(&section);
                sections.push('\n');
            }
            None => {
                eprintln!("unknown experiment `{id}`");
                std::process::exit(2);
            }
        }
    }
    if all {
        let path = lec_bench::artifacts::markdown_path("xtable_all");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("results dir");
        }
        std::fs::write(&path, &sections).expect("write xtable_all.md");
        eprintln!("wrote {}", path.display());
    }
}
