//! `xtable` — regenerate the experiment tables.
//!
//! ```text
//! xtable x1          # one experiment
//! xtable x3 x5       # several
//! xtable all         # everything, in order (what EXPERIMENTS.md records)
//! ```

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if args.is_empty() {
        eprintln!("usage: xtable <x1..x18|all> ...");
        eprintln!("experiments: {}", lec_bench::ALL_EXPERIMENTS.join(", "));
        std::process::exit(2);
    }
    let ids: Vec<String> = if args.iter().any(|a| a == "all") {
        lec_bench::ALL_EXPERIMENTS
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };
    for id in &ids {
        match lec_bench::run_experiment(id) {
            Some(section) => {
                writeln!(out, "{section}").expect("stdout");
            }
            None => {
                eprintln!("unknown experiment `{id}`");
                std::process::exit(2);
            }
        }
    }
}
