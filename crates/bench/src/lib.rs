#![warn(missing_docs)]

//! Experiment harness for the LEC reproduction.
//!
//! Each experiment `X1`–`X13` from DESIGN.md §3 lives in its own module
//! under [`experiments`] and renders a markdown section; the `xtable`
//! binary dispatches on experiment id (`xtable x1`, `xtable all`). The
//! Criterion benches under `benches/` reuse the same fixtures.

pub mod artifacts;
pub mod experiments;
pub mod fixtures;
pub mod table;

/// Runs one experiment by id (`"x1"` … `"x24"`), returning its markdown
/// section, or `None` for an unknown id.
pub fn run_experiment(id: &str) -> Option<String> {
    use experiments::*;
    let out = match id.to_ascii_lowercase().as_str() {
        "x1" => x01_example::run(),
        "x2" => x02_variation::run(),
        "x3" => x03_scaling::run(),
        "x4" => x04_frontier::run(),
        "x5" => x05_dynamic::run(),
        "x6" => x06_selectivity::run(),
        "x7" => x07_kernels::run(),
        "x8" => x08_bucketing::run(),
        "x9" => x09_validation::run(),
        "x10" => x10_montecarlo::run(),
        "x11" => x11_utility::run(),
        "x12" => x12_rebucket::run(),
        "x13" => x13_figure1::run(),
        "x14" => x14_voi::run(),
        "x15" => x15_parametric::run(),
        "x16" => x16_frontier_growth::run(),
        "x17" => x17_bushy::run(),
        "x18" => x18_parallel::run(),
        "x19" => x19_stats::run(),
        "x20" => x20_serve::run(),
        "x21" => x21_faults::run(),
        "x22" => x22_serve_concurrent::run(),
        "x23" => x23_rules::run(),
        "x24" => x24_sampling::run(),
        _ => return None,
    };
    Some(out)
}

/// All experiment ids, in order.
pub const ALL_EXPERIMENTS: [&str; 24] = [
    "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "x11", "x12", "x13", "x14", "x15",
    "x16", "x17", "x18", "x19", "x20", "x21", "x22", "x23", "x24",
];
