//! Shared fixtures: the queries and environments the experiments and the
//! Criterion benches both use.

use lec_core::MemoryModel;
use lec_plan::JoinQuery;
use lec_stats::Distribution;
use lec_workload::queries::{QueryGen, Topology};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The fixed master seed for all experiments (reproducibility).
pub const SEED: u64 = 0x1EC0;

/// A deterministic chain query with `n` relations.
pub fn chain_query(n: usize, seed: u64) -> JoinQuery {
    QueryGen {
        topology: Topology::Chain,
        n,
        ..QueryGen::default()
    }
    .generate(&mut ChaCha8Rng::seed_from_u64(seed))
}

/// The spread memory environment used by the scaling experiments.
pub fn spread_memory(buckets: usize) -> Distribution {
    lec_workload::envs::lognormal(400.0, 1.0, buckets)
}

/// Static memory model from a distribution.
pub fn static_mem(d: Distribution) -> MemoryModel {
    MemoryModel::Static(d)
}
