//! Small-support inline storage for [`crate::Distribution`].
//!
//! The paper's bucketed distributions are tiny by design — §3.7 argues for
//! a handful of level-set buckets, and `alg_d` rebuckets size distributions
//! back to 8 points after every product. Storing the support and the
//! probability vector inline (no heap) whenever `b ≤ 8` makes cloning and
//! constructing steady-state distributions allocation-free; larger supports
//! (fine-grained inputs, un-rebucketed products) spill to a `Vec`.

/// Supports of at most this many points are stored inline.
pub(crate) const INLINE_CAP: usize = 8;

/// A `Vec<f64>`-like buffer that stores up to [`INLINE_CAP`] elements
/// inline. Read access is through `Deref<Target = [f64]>`.
#[derive(Debug, Clone)]
pub(crate) enum SmallBuf {
    /// Inline storage: the first `len` slots of `buf` are live.
    Inline {
        /// Number of live elements (≤ [`INLINE_CAP`]).
        len: u8,
        /// Backing array; slots past `len` are meaningless.
        buf: [f64; INLINE_CAP],
    },
    /// Heap storage for supports larger than [`INLINE_CAP`].
    Heap(Vec<f64>),
}

impl SmallBuf {
    /// Builds from an owned vector, copying inline when it fits.
    pub(crate) fn from_vec(v: Vec<f64>) -> Self {
        if v.len() <= INLINE_CAP {
            Self::from_slice(&v)
        } else {
            SmallBuf::Heap(v)
        }
    }

    /// Builds from a slice, copying inline when it fits.
    pub(crate) fn from_slice(s: &[f64]) -> Self {
        if s.len() <= INLINE_CAP {
            let mut buf = [0.0; INLINE_CAP];
            buf[..s.len()].copy_from_slice(s);
            SmallBuf::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            SmallBuf::Heap(s.to_vec())
        }
    }

    /// The live elements as a slice.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[f64] {
        match self {
            SmallBuf::Inline { len, buf } => &buf[..*len as usize],
            SmallBuf::Heap(v) => v,
        }
    }

    /// True when the elements live inline (no heap allocation).
    #[cfg(test)]
    pub(crate) fn is_inline(&self) -> bool {
        matches!(self, SmallBuf::Inline { .. })
    }
}

impl std::ops::Deref for SmallBuf {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl PartialEq for SmallBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_slices_stay_inline() {
        let b = SmallBuf::from_slice(&[1.0, 2.0, 3.0]);
        assert!(b.is_inline());
        assert_eq!(&*b, &[1.0, 2.0, 3.0]);
        let c = b.clone();
        assert!(c.is_inline());
        assert_eq!(b, c);
    }

    #[test]
    fn exactly_cap_is_inline_one_more_spills() {
        let at_cap: Vec<f64> = (0..INLINE_CAP).map(|i| i as f64).collect();
        assert!(SmallBuf::from_vec(at_cap.clone()).is_inline());
        let over: Vec<f64> = (0..=INLINE_CAP).map(|i| i as f64).collect();
        let spilled = SmallBuf::from_vec(over.clone());
        assert!(!spilled.is_inline());
        assert_eq!(&*spilled, &over[..]);
    }

    #[test]
    fn equality_ignores_representation() {
        let a = SmallBuf::from_slice(&[1.0, 2.0]);
        let b = SmallBuf::Heap(vec![1.0, 2.0]);
        assert_eq!(a, b);
    }
}
