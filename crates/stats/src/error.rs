//! Error type for the probability substrate.

use std::fmt;

/// Errors raised while constructing or manipulating distributions and chains.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution was given no support points.
    EmptySupport,
    /// A value in the support was NaN or infinite.
    NonFiniteValue(f64),
    /// A probability was negative or non-finite.
    InvalidProbability(f64),
    /// The probabilities summed to something too far from 1 to normalize
    /// safely (total mass recorded).
    MassNotNormalizable(f64),
    /// A quantile was requested outside `[0, 1]`.
    QuantileOutOfRange(f64),
    /// A bucket count of zero was requested.
    ZeroBuckets,
    /// A Markov transition matrix row does not match the state count, or a
    /// row is not a probability vector. Carries the offending row index.
    MalformedTransitionRow(usize),
    /// The Markov chain has no states.
    EmptyChain,
    /// Power iteration for the stationary distribution failed to converge
    /// within the iteration budget.
    StationaryDidNotConverge,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySupport => write!(f, "distribution has empty support"),
            StatsError::NonFiniteValue(v) => write!(f, "non-finite support value: {v}"),
            StatsError::InvalidProbability(p) => write!(f, "invalid probability: {p}"),
            StatsError::MassNotNormalizable(m) => {
                write!(f, "total probability mass {m} is not normalizable")
            }
            StatsError::QuantileOutOfRange(q) => {
                write!(f, "quantile {q} outside [0, 1]")
            }
            StatsError::ZeroBuckets => write!(f, "bucket count must be at least 1"),
            StatsError::MalformedTransitionRow(i) => {
                write!(f, "transition matrix row {i} is malformed")
            }
            StatsError::EmptyChain => write!(f, "Markov chain has no states"),
            StatsError::StationaryDidNotConverge => {
                write!(
                    f,
                    "stationary distribution power iteration did not converge"
                )
            }
        }
    }
}

impl std::error::Error for StatsError {}
