//! (Dis)utility functions: from least expected *cost* to least expected
//! *utility* (the PODS 2002 question: "what can we expect?").
//!
//! LEC optimization minimizes `E[cost]`, which is the right objective when
//! the query runs many times and the user cares about the long-run average.
//! A risk-averse user (one slow execution is catastrophic) or a deadline-
//! bound user (only "finished by T" matters) has a different objective:
//! minimize `E[u(cost)]` for a disutility function `u`.
//!
//! The decision-theoretically interesting fact — and the reason System-R
//! style dynamic programming survives the generalization only partially —
//! is how `u` interacts with cost *addition*:
//!
//! * **Linear** `u(c) = c`: expectation distributes over addition, so the
//!   DP principle of optimality holds (Theorem 3.3).
//! * **Exponential** `u(c) = sign(γ)·e^{γc}`: `u(c₁+c₂) = u(c₁)·u(c₂)` up
//!   to sign, so when stage costs are *independent* the expected disutility
//!   factors and DP again works (the classic risk-sensitive MDP result).
//!   With a *shared* static parameter the stage costs are dependent and only
//!   the Pareto-frontier DP (see `lec-core::pareto`) is exact.
//! * **Step / deadline** `u(c) = 1{c > T}`: no algebraic structure at all;
//!   scalar DP is provably unsound (`lec-core` constructs a counterexample)
//!   and exact optimization needs full cost distributions per plan.
//!
//! All utilities here are *disutilities*: lower is better, and
//! [`Utility::score`] returns a value on the cost scale (a certainty
//! equivalent) so scores of different plans are directly comparable.

use crate::dist::Distribution;

/// A disutility function over plan cost. Lower scores are better.
///
/// # Examples
///
/// ```
/// use lec_stats::{Distribution, Utility};
///
/// // A risky plan: usually cheap, sometimes catastrophic.
/// let costs = Distribution::new([(100.0, 0.9), (10_000.0, 0.1)])?;
/// let mean = Utility::Linear.score(&costs);
/// let averse = Utility::Exponential { gamma: 1e-3 }.score(&costs);
/// let miss = Utility::Deadline { threshold: 500.0 }.score(&costs);
/// assert!((mean - 1090.0).abs() < 1e-9);
/// assert!(averse > mean);       // risk aversion penalizes the tail
/// assert!((miss - 0.1).abs() < 1e-12);
/// # Ok::<(), lec_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Utility {
    /// Risk-neutral: score = expected cost. This is plain LEC.
    Linear,
    /// Exponential / risk-sensitive with coefficient `gamma`:
    /// positive `gamma` is risk-averse (penalizes the upper tail), negative
    /// is risk-seeking. Scores are certainty equivalents
    /// `(1/γ) · ln E[e^{γ·cost}]`, computed in log-space for stability.
    Exponential {
        /// Risk coefficient; must be non-zero (use [`Utility::Linear`] for 0).
        gamma: f64,
    },
    /// Deadline utility: all that matters is whether the cost exceeds
    /// `threshold`. Score = probability of missing the deadline.
    Deadline {
        /// The cost budget.
        threshold: f64,
    },
}

impl Utility {
    /// Pointwise disutility of a deterministic cost.
    pub fn apply(&self, cost: f64) -> f64 {
        match *self {
            Utility::Linear => cost,
            // On a point mass the certainty equivalent is the cost itself.
            Utility::Exponential { .. } => cost,
            Utility::Deadline { threshold } => {
                if cost > threshold {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The comparable score of a cost distribution; lower is better.
    ///
    /// * `Linear` → the mean.
    /// * `Exponential` → the certainty equivalent (same units as cost).
    /// * `Deadline` → `Pr[cost > threshold]`.
    pub fn score(&self, costs: &Distribution) -> f64 {
        match *self {
            Utility::Linear => costs.mean(),
            Utility::Exponential { gamma } => certainty_equivalent(costs, gamma),
            Utility::Deadline { threshold } => 1.0 - costs.cdf(threshold),
        }
    }

    /// True iff scalar expected-cost-style dynamic programming is exact for
    /// this utility under a shared static parameter (Theorem 3.3 and its
    /// 2002 generalization): only the linear case qualifies.
    pub fn admits_scalar_dp(&self) -> bool {
        matches!(self, Utility::Linear)
    }
}

/// Certainty equivalent `(1/γ) ln E[e^{γX}]` computed with the log-sum-exp
/// trick so that large page-count costs do not overflow.
pub fn certainty_equivalent(costs: &Distribution, gamma: f64) -> f64 {
    debug_assert!(gamma != 0.0, "gamma = 0 is the linear utility");
    // ln Σ pᵢ e^{γxᵢ} = m + ln Σ pᵢ e^{γxᵢ - m},  m = max γxᵢ.
    let m = costs
        .values()
        .iter()
        .map(|&v| gamma * v)
        .fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = costs.iter().map(|(v, p)| p * (gamma * v - m).exp()).sum();
    (m + sum.ln()) / gamma
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread() -> Distribution {
        Distribution::new([(100.0, 0.5), (300.0, 0.5)]).unwrap()
    }

    #[test]
    fn linear_score_is_mean() {
        let d = spread();
        assert!((Utility::Linear.score(&d) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_ce_brackets_mean_and_max() {
        let d = spread();
        let averse = Utility::Exponential { gamma: 0.01 }.score(&d);
        assert!(averse > d.mean() && averse < d.max(), "ce = {averse}");
        let seeking = Utility::Exponential { gamma: -0.01 }.score(&d);
        assert!(seeking < d.mean() && seeking > d.min(), "ce = {seeking}");
    }

    #[test]
    fn exponential_ce_on_point_mass_is_the_value() {
        let d = Distribution::point(42.0).unwrap();
        let ce = Utility::Exponential { gamma: 0.5 }.score(&d);
        assert!((ce - 42.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_ce_is_stable_for_huge_costs() {
        // Page counts in the millions would overflow a naive exp().
        let d = Distribution::new([(2.8e6, 0.8), (5.6e6, 0.2)]).unwrap();
        let ce = Utility::Exponential { gamma: 1e-5 }.score(&d);
        assert!(ce.is_finite());
        assert!(ce > d.mean() && ce < d.max());
    }

    #[test]
    fn exponential_ce_limits_to_mean_as_gamma_vanishes() {
        let d = spread();
        let ce = certainty_equivalent(&d, 1e-9);
        assert!((ce - d.mean()).abs() < 1e-3);
    }

    #[test]
    fn deadline_score_is_miss_probability() {
        let d = spread();
        assert!((Utility::Deadline { threshold: 150.0 }.score(&d) - 0.5).abs() < 1e-12);
        assert!((Utility::Deadline { threshold: 300.0 }.score(&d) - 0.0).abs() < 1e-12);
        assert!((Utility::Deadline { threshold: 50.0 }.score(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pointwise_apply() {
        assert_eq!(Utility::Linear.apply(7.0), 7.0);
        assert_eq!(Utility::Deadline { threshold: 5.0 }.apply(7.0), 1.0);
        assert_eq!(Utility::Deadline { threshold: 7.0 }.apply(7.0), 0.0);
    }

    #[test]
    fn only_linear_admits_scalar_dp() {
        assert!(Utility::Linear.admits_scalar_dp());
        assert!(!Utility::Exponential { gamma: 0.1 }.admits_scalar_dp());
        assert!(!Utility::Deadline { threshold: 1.0 }.admits_scalar_dp());
    }
}
