#![warn(missing_docs)]

//! Discrete probability substrate for LEC query optimization.
//!
//! The LEC papers (Chu–Halpern–Seshadri, PODS 1999; Chu–Halpern–Gehrke,
//! PODS 2002) model every uncertain optimizer parameter — available buffer
//! memory, relation sizes, predicate selectivities — as a *bucketed* discrete
//! probability distribution: the parameter space is partitioned into a small
//! number of buckets, each represented by a single value carrying the
//! bucket's probability mass.
//!
//! This crate provides that substrate:
//!
//! * [`Distribution`] — a validated, sorted discrete distribution over `f64`
//!   values with exact-mass arithmetic (expectations, partial expectations,
//!   quantiles, pushforwards, independent products).
//! * [`bucket`] — bucketing strategies (equi-width, equi-depth, breakpoint /
//!   level-set driven) and the mean-preserving `rebucket` reduction used by
//!   §3.6.3 of the paper.
//! * [`markov`] — finite Markov chains over parameter values, used for the
//!   dynamic-parameter model of §3.5 (memory changes between join phases).
//! * [`utility`] — (dis)utility functions for the PODS 2002 extension from
//!   least *expected cost* to least *expected utility* (linear, exponential /
//!   risk-sensitive, and step "deadline" utilities).
//!
//! Everything is deterministic given an RNG seed; sampling helpers accept any
//! [`rand::Rng`].

pub mod bucket;
pub mod dist;
pub mod error;
pub mod families;
pub mod markov;
pub mod scratch;
mod smallbuf;
pub mod utility;

pub use bucket::{rebucket, Bucketing};
pub use dist::Distribution;
pub use error::StatsError;
pub use markov::MarkovChain;
pub use scratch::ConvolveScratch;
pub use utility::Utility;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
