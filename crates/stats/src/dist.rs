//! Discrete distributions over `f64` values.
//!
//! A [`Distribution`] is the paper's "bucketed" parameter model: a small set
//! of representative values, each carrying the probability mass of its
//! bucket. The invariants, enforced at construction and preserved by every
//! operation, are:
//!
//! * the support is non-empty, finite, strictly increasing;
//! * every probability is in `(0, 1]` (zero-mass points are dropped);
//! * probabilities sum to 1 (renormalized if within a small tolerance).

use crate::error::StatsError;
use crate::smallbuf::SmallBuf;
use rand::Rng;

/// Relative tolerance within which total mass is silently renormalized.
pub(crate) const MASS_TOLERANCE: f64 = 1e-6;

/// A discrete probability distribution over finitely many `f64` values.
///
/// The support is kept sorted and deduplicated, which makes prefix scans
/// (used by the linear-time expected-cost kernels of §3.6.1–3.6.2) and
/// quantile queries cheap.
///
/// # Examples
///
/// The paper's Example 1.1 memory model — 2000 pages 80% of the time, 700
/// pages otherwise:
///
/// ```
/// use lec_stats::Distribution;
///
/// let memory = Distribution::new([(2000.0, 0.8), (700.0, 0.2)])?;
/// assert_eq!(memory.mode(), 2000.0);
/// assert_eq!(memory.mean(), 1740.0);
///
/// // Expected pass count of a join whose cost steps at 1000 pages:
/// let passes = memory.expect(|m| if m > 1000.0 { 2.0 } else { 4.0 });
/// assert!((passes - 2.4).abs() < 1e-12);
/// # Ok::<(), lec_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    values: SmallBuf,
    probs: SmallBuf,
}

impl Distribution {
    /// Builds a distribution from `(value, probability)` pairs.
    ///
    /// Pairs may be unsorted and may repeat values (masses are merged).
    /// Probabilities must be non-negative and sum to 1 within a small
    /// tolerance; the sum is renormalized exactly.
    pub fn new(points: impl IntoIterator<Item = (f64, f64)>) -> Result<Self, StatsError> {
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for (v, p) in points {
            if !v.is_finite() {
                return Err(StatsError::NonFiniteValue(v));
            }
            if !p.is_finite() || p < 0.0 {
                return Err(StatsError::InvalidProbability(p));
            }
            if p > 0.0 {
                pairs.push((v, p));
            }
        }
        if pairs.is_empty() {
            return Err(StatsError::EmptySupport);
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut values = Vec::with_capacity(pairs.len());
        let mut probs = Vec::with_capacity(pairs.len());
        for (v, p) in pairs {
            if values.last() == Some(&v) {
                *probs.last_mut().expect("non-empty") += p; // lec-lint: allow(panic-reachability) — values and probs grow in lockstep, and this branch requires a previous push
            } else {
                values.push(v);
                probs.push(p);
            }
        }

        let total: f64 = probs.iter().sum();
        if !(total.is_finite() && (total - 1.0).abs() <= MASS_TOLERANCE * total.max(1.0)) {
            return Err(StatsError::MassNotNormalizable(total));
        }
        // Skip the renormalizing divide for exactly-unit mass: division by
        // 1.0 is exact in IEEE 754, so this changes no bits — it only avoids
        // `b` needless divides on the (common) already-normalized path. The
        // `normalized_input_probs_are_bit_stable` test pins both halves of
        // that claim.
        if total != 1.0 {
            for p in &mut probs {
                *p /= total;
            }
        }
        Ok(Self {
            values: SmallBuf::from_vec(values),
            probs: SmallBuf::from_vec(probs),
        })
    }

    /// Crate-internal constructor for kernels that have already produced a
    /// sorted, deduplicated, normalized support (the [`crate::scratch`]
    /// convolution arena). Copies out of the caller's buffers — inline, no
    /// heap, when the support fits [`crate::smallbuf::INLINE_CAP`].
    ///
    /// Invariants are the caller's responsibility and are debug-asserted
    /// here: same lengths, non-empty, values finite and strictly increasing
    /// under `total_cmp` after `==`-dedup, probabilities positive.
    pub(crate) fn from_normalized_slices(values: &[f64], probs: &[f64]) -> Self {
        debug_assert_eq!(values.len(), probs.len());
        debug_assert!(!values.is_empty());
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(values.iter().all(|v| v.is_finite()));
        debug_assert!(probs.iter().all(|&p| p > 0.0));
        Self {
            values: SmallBuf::from_slice(values),
            probs: SmallBuf::from_slice(probs),
        }
    }

    /// Builds a distribution from unnormalized non-negative weights.
    pub fn from_weights(points: impl IntoIterator<Item = (f64, f64)>) -> Result<Self, StatsError> {
        let pts: Vec<(f64, f64)> = points.into_iter().collect();
        let total: f64 = pts.iter().map(|&(_, w)| w).sum();
        if !(total.is_finite() && total > 0.0) {
            return Err(StatsError::MassNotNormalizable(total));
        }
        Self::new(pts.into_iter().map(|(v, w)| (v, w / total)))
    }

    /// The degenerate (deterministic) distribution concentrated on `value`.
    pub fn point(value: f64) -> Result<Self, StatsError> {
        Self::new([(value, 1.0)])
    }

    /// A uniform distribution over the given values (duplicates merge mass).
    pub fn uniform_over(values: impl IntoIterator<Item = f64>) -> Result<Self, StatsError> {
        let vs: Vec<f64> = values.into_iter().collect();
        if vs.is_empty() {
            return Err(StatsError::EmptySupport);
        }
        let p = 1.0 / vs.len() as f64;
        Self::new(vs.into_iter().map(|v| (v, p)))
    }

    /// Number of support points (buckets), written `b` in the paper.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the distribution is a single point mass.
    pub fn is_point(&self) -> bool {
        self.values.len() == 1
    }

    /// Always false: distributions cannot be empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted support values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The probabilities, aligned with [`Self::values`].
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Iterates over `(value, probability)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values.iter().copied().zip(self.probs.iter().copied())
    }

    /// Smallest support value.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Largest support value.
    pub fn max(&self) -> f64 {
        *self.values.last().expect("non-empty") // lec-lint: allow(panic-reachability) — the constructor rejects empty supports
    }

    /// The mean `E[X]`.
    pub fn mean(&self) -> f64 {
        self.iter().map(|(v, p)| v * p).sum()
    }

    /// The variance `E[(X - E[X])^2]`, computed stably around the mean.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.iter().map(|(v, p)| (v - m) * (v - m) * p).sum()
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The modal value (largest probability; ties broken toward the smaller
    /// value). This is the "modal value" an LSC optimizer would plug in.
    pub fn mode(&self) -> f64 {
        let mut best = 0;
        for i in 1..self.len() {
            if self.probs[i] > self.probs[best] {
                best = i;
            }
        }
        self.values[best]
    }

    /// Expectation of an arbitrary function: `E[f(X)]`.
    pub fn expect(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.iter().map(|(v, p)| f(v) * p).sum()
    }

    /// Probability of an arbitrary event: `Pr[pred(X)]`.
    pub fn pr(&self, mut pred: impl FnMut(f64) -> bool) -> f64 {
        self.iter().filter(|&(v, _)| pred(v)).map(|(_, p)| p).sum()
    }

    /// `Pr[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.values.partition_point(|&v| v <= x);
        self.probs[..idx].iter().sum()
    }

    /// Partial expectation `E[X · 1{X <= x}]`. Together with [`Self::cdf`]
    /// this is what the §3.6.1 prefix tables store.
    pub fn partial_expect_le(&self, x: f64) -> f64 {
        let idx = self.values.partition_point(|&v| v <= x);
        self.values[..idx]
            .iter()
            .zip(&self.probs[..idx])
            .map(|(v, p)| v * p)
            .sum()
    }

    /// The `q`-quantile (smallest support value `v` with `Pr[X <= v] >= q`).
    pub fn quantile(&self, q: f64) -> Result<f64, StatsError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::QuantileOutOfRange(q));
        }
        let mut acc = 0.0;
        for (v, p) in self.iter() {
            acc += p;
            if acc >= q - 1e-12 {
                return Ok(v);
            }
        }
        Ok(self.max())
    }

    /// Pushforward under `f`: the distribution of `f(X)`. Equal outputs have
    /// their masses merged.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Result<Self, StatsError> {
        Self::new(self.iter().map(|(v, p)| (f(v), p)))
    }

    /// Distribution of `f(X, Y)` for independent `X` (self) and `Y`.
    ///
    /// The result has up to `self.len() * other.len()` support points; callers
    /// that need to bound growth should follow with [`crate::rebucket`]
    /// (the §3.6.3 strategy).
    pub fn product_with(
        &self,
        other: &Distribution,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self, StatsError> {
        let mut pts = Vec::with_capacity(self.len() * other.len());
        for (x, px) in self.iter() {
            for (y, py) in other.iter() {
                pts.push((f(x, y), px * py));
            }
        }
        Self::new(pts)
    }

    /// Distribution of `X + Y` for independent `X` and `Y` (convolution).
    pub fn convolve(&self, other: &Distribution) -> Result<Self, StatsError> {
        self.product_with(other, |x, y| x + y)
    }

    /// Conditions on an event: the distribution of `X` given `pred(X)`,
    /// renormalized. Errors with [`StatsError::MassNotNormalizable`] when
    /// the event has zero probability.
    ///
    /// This is the start-up-time operation: the compile-time belief about a
    /// parameter sharpens once part of the environment is observed (e.g.
    /// "the system is currently busy ⇒ memory is below 1000 pages").
    pub fn condition(&self, mut pred: impl FnMut(f64) -> bool) -> Result<Self, StatsError> {
        Self::from_weights(self.iter().filter(|&(v, _)| pred(v)))
    }

    /// Mixture: with probability `w` draw from `self`, else from `other`.
    pub fn mix(&self, other: &Distribution, w: f64) -> Result<Self, StatsError> {
        if !(0.0..=1.0).contains(&w) {
            return Err(StatsError::InvalidProbability(w));
        }
        let pts = self
            .iter()
            .map(|(v, p)| (v, p * w))
            .chain(other.iter().map(|(v, p)| (v, p * (1.0 - w))));
        Self::new(pts)
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let mut u: f64 = rng.gen();
        for (v, p) in self.iter() {
            if u < p {
                return v;
            }
            u -= p;
        }
        self.max()
    }

    /// The L1 (Wasserstein-1 / earth-mover) distance between the CDFs of
    /// two distributions: `∫ |F_self(x) − F_other(x)| dx` over the union of
    /// supports. Zero iff the distributions are identical; used to quantify
    /// rebucketing error (§3.6.3) and scenario mismatch.
    pub fn cdf_l1_distance(&self, other: &Distribution) -> f64 {
        let mut grid: Vec<f64> = self
            .values()
            .iter()
            .chain(other.values())
            .copied()
            .collect();
        grid.sort_by(f64::total_cmp);
        grid.dedup();
        let mut total = 0.0;
        for w in grid.windows(2) {
            total += (self.cdf(w[0]) - other.cdf(w[0])).abs() * (w[1] - w[0]);
        }
        total
    }

    /// True when both distributions have the same support and probabilities
    /// within `tol` (absolute, per entry). Intended for tests.
    pub fn approx_eq(&self, other: &Distribution, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other.iter())
                .all(|((v1, p1), (v2, p2))| (v1 - v2).abs() <= tol && (p1 - p2).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bimodal() -> Distribution {
        // Example 1.1's memory distribution: 2000 pages 80% / 700 pages 20%.
        Distribution::new([(2000.0, 0.8), (700.0, 0.2)]).unwrap()
    }

    #[test]
    fn construction_sorts_and_merges() {
        let d = Distribution::new([(3.0, 0.25), (1.0, 0.5), (3.0, 0.25)]).unwrap();
        assert_eq!(d.values(), &[1.0, 3.0]);
        assert_eq!(d.probs(), &[0.5, 0.5]);
    }

    #[test]
    fn zero_mass_points_dropped() {
        let d = Distribution::new([(1.0, 0.0), (2.0, 1.0)]).unwrap();
        assert_eq!(d.values(), &[2.0]);
        assert!(d.is_point());
    }

    #[test]
    fn construction_rejects_bad_input() {
        assert_eq!(
            Distribution::new(std::iter::empty::<(f64, f64)>()),
            Err(StatsError::EmptySupport)
        );
        assert!(matches!(
            Distribution::new([(f64::NAN, 1.0)]),
            Err(StatsError::NonFiniteValue(_))
        ));
        assert!(matches!(
            Distribution::new([(1.0, -0.1), (2.0, 1.1)]),
            Err(StatsError::InvalidProbability(_))
        ));
        assert!(matches!(
            Distribution::new([(1.0, 0.4)]),
            Err(StatsError::MassNotNormalizable(_))
        ));
    }

    #[test]
    fn normalized_input_probs_are_bit_stable() {
        // When the input masses already sum to exactly 1.0, construction
        // must not renormalize: dividing by 1.0 is an IEEE identity, but we
        // skip the divide entirely, and this pins that the stored
        // probabilities are the very bits that came in. 0.1 + 0.2 + 0.7
        // sums to exactly 1.0 in f64 (0.30000000000000004 + 0.7 == 1.0).
        let probs = [0.1f64, 0.2, 0.7];
        assert_eq!(probs.iter().sum::<f64>().to_bits(), 1.0f64.to_bits());
        let d = Distribution::new([(1.0, probs[0]), (2.0, probs[1]), (3.0, probs[2])]).unwrap();
        for (stored, input) in d.probs().iter().zip(probs) {
            assert_eq!(stored.to_bits(), input.to_bits());
        }
        // And a nearly-normalized input (inside tolerance, total != 1.0)
        // still renormalizes to exact unit mass.
        let e = Distribution::new([(1.0, 0.5), (2.0, 0.5 + 1e-9)]).unwrap();
        assert!((e.probs().iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mean_mode_of_example_1_1() {
        let d = bimodal();
        // The paper: "2000 pages as a modal value, or 1740 pages as a mean".
        assert_eq!(d.mode(), 2000.0);
        assert!((d.mean() - 1740.0).abs() < 1e-9);
    }

    #[test]
    fn variance_and_std_dev() {
        let d = Distribution::new([(0.0, 0.5), (2.0, 0.5)]).unwrap();
        assert!((d.mean() - 1.0).abs() < 1e-12);
        assert!((d.variance() - 1.0).abs() < 1e-12);
        assert!((d.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_partial_expectation() {
        let d = Distribution::new([(1.0, 0.2), (2.0, 0.3), (4.0, 0.5)]).unwrap();
        assert!((d.cdf(0.5) - 0.0).abs() < 1e-12);
        assert!((d.cdf(2.0) - 0.5).abs() < 1e-12);
        assert!((d.cdf(10.0) - 1.0).abs() < 1e-12);
        // E[X 1{X<=2}] = 1*0.2 + 2*0.3 = 0.8
        assert!((d.partial_expect_le(2.0) - 0.8).abs() < 1e-12);
        assert!((d.partial_expect_le(100.0) - d.mean()).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let d = Distribution::new([(1.0, 0.25), (2.0, 0.25), (3.0, 0.5)]).unwrap();
        assert_eq!(d.quantile(0.0).unwrap(), 1.0);
        assert_eq!(d.quantile(0.25).unwrap(), 1.0);
        assert_eq!(d.quantile(0.5).unwrap(), 2.0);
        assert_eq!(d.quantile(0.51).unwrap(), 3.0);
        assert_eq!(d.quantile(1.0).unwrap(), 3.0);
        assert!(d.quantile(1.5).is_err());
    }

    #[test]
    fn map_merges_collisions() {
        let d = Distribution::new([(-1.0, 0.5), (1.0, 0.5)]).unwrap();
        let sq = d.map(|v| v * v).unwrap();
        assert_eq!(sq.values(), &[1.0]);
        assert!((sq.probs()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_and_convolution() {
        let a = Distribution::new([(1.0, 0.5), (2.0, 0.5)]).unwrap();
        let b = Distribution::new([(10.0, 0.5), (20.0, 0.5)]).unwrap();
        let s = a.convolve(&b).unwrap();
        assert_eq!(s.values(), &[11.0, 12.0, 21.0, 22.0]);
        assert!((s.mean() - (a.mean() + b.mean())).abs() < 1e-12);

        let p = a.product_with(&b, |x, y| x * y).unwrap();
        assert!((p.mean() - a.mean() * b.mean()).abs() < 1e-12);
    }

    #[test]
    fn cdf_l1_distance_properties() {
        let a = Distribution::new([(0.0, 0.5), (10.0, 0.5)]).unwrap();
        let b = Distribution::new([(0.0, 0.5), (10.0, 0.5)]).unwrap();
        assert_eq!(a.cdf_l1_distance(&b), 0.0);
        // Point masses distance |x - y|: earth-mover over the line.
        let p = Distribution::point(3.0).unwrap();
        let q = Distribution::point(8.0).unwrap();
        assert!((p.cdf_l1_distance(&q) - 5.0).abs() < 1e-12);
        // Symmetry.
        assert_eq!(a.cdf_l1_distance(&p), p.cdf_l1_distance(&a));
    }

    #[test]
    fn conditioning_restricts_and_renormalizes() {
        let d = Distribution::new([(1.0, 0.2), (2.0, 0.3), (4.0, 0.5)]).unwrap();
        let low = d.condition(|v| v < 3.0).unwrap();
        assert_eq!(low.values(), &[1.0, 2.0]);
        assert!((low.probs()[0] - 0.4).abs() < 1e-12);
        assert!((low.probs()[1] - 0.6).abs() < 1e-12);
        // Zero-probability events cannot be conditioned on.
        assert!(matches!(
            d.condition(|v| v > 100.0),
            Err(StatsError::MassNotNormalizable(_))
        ));
    }

    #[test]
    fn mixture_mass_and_mean() {
        let a = Distribution::point(0.0).unwrap();
        let b = Distribution::point(10.0).unwrap();
        let m = a.mix(&b, 0.3).unwrap();
        assert!((m.mean() - 7.0).abs() < 1e-12);
        assert!((m.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_masses() {
        let d = bimodal();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let hi = (0..n).filter(|_| d.sample(&mut rng) == 2000.0).count();
        let frac = hi as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn expectation_matches_manual_sum() {
        let d = bimodal();
        let e = d.expect(|m| if m >= 1000.0 { 2.0 } else { 4.0 });
        assert!((e - (0.8 * 2.0 + 0.2 * 4.0)).abs() < 1e-12);
    }
}
