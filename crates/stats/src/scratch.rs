//! Allocation-free convolution kernels (the `lec-stats` hot path).
//!
//! Every LEC optimizer prices candidates by combining bucketed
//! distributions: `alg_d` forms a size product and rebuckets it once per
//! `(subset, relation)` visit (§3.6.3), and the utility extension convolves
//! running-cost distributions. Routed through [`Distribution::product_with`]
//! each of those steps allocates an `O(b_A · b_B)` point vector, stable-sorts
//! it, and allocates again for the result.
//!
//! [`ConvolveScratch`] removes all of that in the steady state. The key
//! observation: for a fixed left value `x`, the product points
//! `f(x, y₀), f(x, y₁), …` are produced in `y`-ascending order, and every
//! combiner the optimizers use (`+`, `·` over positive supports) is monotone
//! non-decreasing in `y` — so the `b_A · b_B` points form `b_A` pre-sorted
//! runs, and a stable k-way merge (ties broken toward the lower run index)
//! reproduces the collect-and-stable-sort result **bit for bit**, without
//! sorting and without allocating: all buffers live in the scratch and are
//! reused across calls. Monotonicity is checked at runtime; non-monotone
//! combiners fall back to a stable sort of the same points (still
//! bit-identical, no longer allocation-free).
//!
//! The merged support is materialized only inside the scratch. Small results
//! (≤ 8 points, the `alg_d` default) are emitted with inline storage, so a
//! warm `product → rebucket` loop performs **zero** heap allocations — the
//! `alloc_free` integration test pins this with a counting allocator, and
//! the proptest battery in `tests/scratch_kernels.rs` pins bit-identity
//! against the naive reference.

use crate::dist::{Distribution, MASS_TOLERANCE};
use crate::error::StatsError;
use std::cmp::Ordering;

/// Reusable buffers for allocation-free products, convolutions, fused
/// convolve-expectations, and product-then-rebucket pipelines.
///
/// Construct once (per worker, per optimizer run, …) and feed it every
/// combination in the loop. Results are ordinary [`Distribution`]s.
///
/// # Examples
///
/// ```
/// use lec_stats::{ConvolveScratch, Distribution};
///
/// let a = Distribution::new([(1.0, 0.5), (2.0, 0.5)])?;
/// let b = Distribution::new([(10.0, 0.5), (20.0, 0.5)])?;
/// let mut scratch = ConvolveScratch::new();
/// let sum = scratch.convolve(&a, &b)?;
/// assert_eq!(sum, a.convolve(&b)?); // bit-identical to the allocating path
/// let e = scratch.convolve_expect(&a, &b, |v| v * v)?;
/// assert_eq!(e, a.convolve(&b)?.expect(|v| v * v));
/// # Ok::<(), lec_stats::StatsError>(())
/// ```
#[derive(Debug, Default)]
pub struct ConvolveScratch {
    /// Raw `(value, mass)` product points, `runs` runs of `run_len` each.
    pairs: Vec<(f64, f64)>,
    /// Merged, deduplicated, normalized support.
    vals: Vec<f64>,
    /// Probabilities aligned with `vals`.
    prbs: Vec<f64>,
    /// Per-run read cursors for the k-way merge.
    cursors: Vec<usize>,
    /// Stable-sort fallback buffer (non-monotone combiners only).
    sorted: Vec<(f64, f64)>,
}

impl ConvolveScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// `a.product_with(b, f)` without steady-state allocations.
    /// Bit-identical to the [`Distribution::product_with`] reference.
    pub fn product_with(
        &mut self,
        a: &Distribution,
        b: &Distribution,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Distribution, StatsError> {
        let run_len = self.fill_product(a, b, &mut f);
        self.merge_normalize(run_len)?;
        Ok(self.emit())
    }

    /// `a.convolve(b)` without steady-state allocations.
    pub fn convolve(
        &mut self,
        a: &Distribution,
        b: &Distribution,
    ) -> Result<Distribution, StatsError> {
        self.product_with(a, b, |x, y| x + y)
    }

    /// Fused `a.convolve(b)?.expect(g)`: the expectation is computed
    /// directly off the scratch buffers and no product [`Distribution`] is
    /// ever materialized. Bit-identical to the two-step reference (the
    /// merged support and the summation order are exactly the same).
    pub fn convolve_expect(
        &mut self,
        a: &Distribution,
        b: &Distribution,
        mut g: impl FnMut(f64) -> f64,
    ) -> Result<f64, StatsError> {
        let run_len = self.fill_product(a, b, &mut |x, y| x + y);
        self.merge_normalize(run_len)?;
        Ok(self
            .vals
            .iter()
            .zip(&self.prbs)
            .map(|(&v, &p)| g(v) * p)
            .sum())
    }

    /// `rebucket(&a.product_with(b, f)?, buckets)` — the §3.6.3 step of
    /// `alg_d` — without materializing the wide product distribution and
    /// without steady-state allocations.
    pub fn product_rebucket(
        &mut self,
        a: &Distribution,
        b: &Distribution,
        mut f: impl FnMut(f64, f64) -> f64,
        buckets: usize,
    ) -> Result<Distribution, StatsError> {
        if buckets == 0 {
            return Err(StatsError::ZeroBuckets);
        }
        let run_len = self.fill_product(a, b, &mut f);
        self.merge_normalize(run_len)?;
        self.rebucket_emit(buckets)
    }

    /// `d.map(f)` without steady-state allocations (single-run case of the
    /// merge: monotone `f` needs no sort, anything else falls back).
    pub fn map(
        &mut self,
        d: &Distribution,
        mut f: impl FnMut(f64) -> f64,
    ) -> Result<Distribution, StatsError> {
        self.pairs.clear();
        self.pairs.reserve(d.len());
        for (v, p) in d.iter() {
            self.pairs.push((f(v), p));
        }
        self.merge_normalize(d.len())?;
        Ok(self.emit())
    }

    /// Fills `pairs` with the product points in the reference order
    /// (`a`-major, `b`-minor) and returns the run length (= `b.len()`).
    fn fill_product(
        &mut self,
        a: &Distribution,
        b: &Distribution,
        f: &mut impl FnMut(f64, f64) -> f64,
    ) -> usize {
        self.pairs.clear();
        self.pairs.reserve(a.len() * b.len());
        for (x, px) in a.iter() {
            for (y, py) in b.iter() {
                self.pairs.push((f(x, y), px * py));
            }
        }
        b.len()
    }

    /// The [`Distribution::new`] pipeline over `pairs` (runs of `run_len`),
    /// writing the merged result into `vals`/`prbs`: validate, drop
    /// zero-mass points, order by `total_cmp` (stable), merge `==`-equal
    /// values, check total mass, renormalize unless exactly 1. Sorted-merge
    /// fast path when every run is non-decreasing; stable-sort fallback
    /// otherwise.
    fn merge_normalize(&mut self, run_len: usize) -> Result<(), StatsError> {
        debug_assert!(run_len > 0 && self.pairs.len().is_multiple_of(run_len));

        // Validation sweep, identical checks and order to the reference
        // collection loop; also detects per-run monotonicity (w.r.t.
        // total_cmp, over the surviving positive-mass points).
        let mut monotone = true;
        for run in self.pairs.chunks(run_len) {
            let mut last: Option<f64> = None;
            for &(v, p) in run {
                if !v.is_finite() {
                    return Err(StatsError::NonFiniteValue(v));
                }
                if !p.is_finite() || p < 0.0 {
                    return Err(StatsError::InvalidProbability(p));
                }
                if p > 0.0 {
                    if let Some(prev) = last {
                        if prev.total_cmp(&v) == Ordering::Greater {
                            monotone = false;
                        }
                    }
                    last = Some(v);
                }
            }
        }

        self.vals.clear();
        self.prbs.clear();
        if monotone {
            self.kway_merge(run_len);
        } else {
            // Non-monotone combiner: reproduce the reference exactly with a
            // stable sort of the same (filtered) sequence. This path is not
            // allocation-free; the optimizers' combiners never take it.
            self.sorted.clear();
            self.sorted
                .extend(self.pairs.iter().copied().filter(|&(_, p)| p > 0.0));
            self.sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            for &(v, p) in &self.sorted {
                push_merged(&mut self.vals, &mut self.prbs, v, p);
            }
        }

        if self.vals.is_empty() {
            return Err(StatsError::EmptySupport);
        }
        let total: f64 = self.prbs.iter().sum();
        if !(total.is_finite() && (total - 1.0).abs() <= MASS_TOLERANCE * total.max(1.0)) {
            return Err(StatsError::MassNotNormalizable(total));
        }
        if total != 1.0 {
            for p in &mut self.prbs {
                *p /= total;
            }
        }
        Ok(())
    }

    /// Stable k-way merge of the pre-sorted runs in `pairs`: at each step
    /// take the `total_cmp`-smallest head, ties to the lowest run index —
    /// exactly the order a stable sort gives the concatenated runs.
    fn kway_merge(&mut self, run_len: usize) {
        let runs = self.pairs.len() / run_len;
        self.cursors.clear();
        self.cursors.extend((0..runs).map(|r| r * run_len));
        // Pre-skip zero-mass heads so every live cursor points at a
        // contributing element.
        for r in 0..runs {
            skip_zero_mass(&self.pairs, &mut self.cursors[r], (r + 1) * run_len);
        }
        loop {
            let mut best: Option<(usize, f64)> = None;
            for r in 0..runs {
                let c = self.cursors[r];
                if c < (r + 1) * run_len {
                    let v = self.pairs[c].0;
                    // Strict Less keeps the earlier run on ties (stability).
                    if best.is_none_or(|(_, bv)| v.total_cmp(&bv) == Ordering::Less) {
                        best = Some((r, v));
                    }
                }
            }
            let Some((r, v)) = best else { break };
            let p = self.pairs[self.cursors[r]].1;
            self.cursors[r] += 1;
            skip_zero_mass(&self.pairs, &mut self.cursors[r], (r + 1) * run_len);
            push_merged(&mut self.vals, &mut self.prbs, v, p);
        }
    }

    /// Builds a [`Distribution`] from the merged buffers (inline storage,
    /// hence allocation-free, when the support fits 8 points).
    fn emit(&self) -> Distribution {
        Distribution::from_normalized_slices(&self.vals, &self.prbs)
    }

    /// [`bucket::rebucket`] applied to the merged buffers: emit directly
    /// when the support already fits, else equi-depth grouping — the same
    /// arithmetic, in the same order, as the reference implementation.
    fn rebucket_emit(&mut self, buckets: usize) -> Result<Distribution, StatsError> {
        if self.vals.len() <= buckets {
            return Ok(self.emit());
        }
        if buckets == 1 {
            // equi_depth(_, 1) → point(mean); replicate `Distribution::point`
            // (validation included; mass is exactly 1.0 by construction).
            let mean: f64 = self.vals.iter().zip(&self.prbs).map(|(&v, &p)| v * p).sum();
            if !mean.is_finite() {
                return Err(StatsError::NonFiniteValue(mean));
            }
            return Ok(Distribution::from_normalized_slices(&[mean], &[1.0]));
        }
        // Inlined `equi_depth` + `group_contiguous` over (vals, prbs):
        // close a bucket once cumulative mass reaches the next multiple of
        // 1/buckets; each group becomes one point at its conditional mean.
        let target = 1.0 / buckets as f64;
        let mut cum = 0.0;
        let mut next_idx = 0usize;
        let mut cur_group = usize::MAX;
        let mut mass = 0.0;
        let mut weighted = 0.0;
        // Grouped points are staged back into `pairs` (its contents are
        // dead here) as one run, then fed through the same
        // validate/merge/normalize pipeline `Distribution::new` applies.
        self.pairs.clear();
        for i in 0..self.vals.len() {
            let (v, p) = (self.vals[i], self.prbs[i]);
            let g = next_idx;
            cum += p;
            if cum >= target * (next_idx + 1) as f64 - 1e-12 {
                next_idx += 1;
            }
            if g != cur_group && mass > 0.0 {
                self.pairs.push((weighted / mass, mass));
                mass = 0.0;
                weighted = 0.0;
            }
            cur_group = g;
            mass += p;
            weighted += v * p;
        }
        if mass > 0.0 {
            self.pairs.push((weighted / mass, mass));
        }
        let n = self.pairs.len();
        self.merge_normalize(n)?;
        Ok(self.emit())
    }
}

/// Appends `(v, p)`, merging mass into the last point when the value is
/// `==`-equal — the reference's dedup step.
#[inline]
fn push_merged(vals: &mut Vec<f64>, prbs: &mut Vec<f64>, v: f64, p: f64) {
    if vals.last() == Some(&v) {
        *prbs.last_mut().expect("non-empty") += p; // lec-lint: allow(panic-reachability) — values and probs grow in lockstep, and the merge guard implies a previous push
    } else {
        vals.push(v);
        prbs.push(p);
    }
}

/// Advances `cursor` past zero-mass points (dropped by the reference before
/// sorting) up to `end`.
#[inline]
fn skip_zero_mass(pairs: &[(f64, f64)], cursor: &mut usize, end: usize) {
    while *cursor < end && pairs[*cursor].1 <= 0.0 {
        *cursor += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket;

    fn d(points: &[(f64, f64)]) -> Distribution {
        Distribution::new(points.iter().copied()).unwrap()
    }

    #[test]
    fn product_matches_reference_bitwise() {
        let a = d(&[(1.0, 0.25), (2.0, 0.5), (3.0, 0.25)]);
        let b = d(&[(10.0, 0.3), (20.0, 0.7)]);
        let mut s = ConvolveScratch::new();
        for f in [|x: f64, y: f64| x + y, |x: f64, y: f64| x * y] {
            let fast = s.product_with(&a, &b, f).unwrap();
            let slow = a.product_with(&b, f).unwrap();
            assert_eq!(fast, slow);
            for (x, y) in fast.values().iter().zip(slow.values()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in fast.probs().iter().zip(slow.probs()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn collisions_merge_exactly_like_reference() {
        // 1+3 == 2+2 == 4: cross-run collisions must merge in the same
        // order the stable sort produces.
        let a = d(&[(1.0, 0.5), (2.0, 0.5)]);
        let b = d(&[(2.0, 0.5), (3.0, 0.5)]);
        let mut s = ConvolveScratch::new();
        let fast = s.convolve(&a, &b).unwrap();
        let slow = a.convolve(&b).unwrap();
        assert_eq!(fast.values(), &[3.0, 4.0, 5.0]);
        assert_eq!(fast, slow);
    }

    #[test]
    fn fused_expect_matches_two_step() {
        let a = d(&[(1.5, 0.2), (4.0, 0.8)]);
        let b = d(&[(0.5, 0.9), (100.0, 0.1)]);
        let mut s = ConvolveScratch::new();
        let fused = s.convolve_expect(&a, &b, |v| v.sqrt()).unwrap();
        let two_step = a.convolve(&b).unwrap().expect(|v| v.sqrt());
        assert_eq!(fused.to_bits(), two_step.to_bits());
    }

    #[test]
    fn non_monotone_combiner_falls_back_correctly() {
        // f decreasing in y: runs are reversed, the merge cannot be used.
        let a = d(&[(1.0, 0.5), (2.0, 0.5)]);
        let b = d(&[(1.0, 0.25), (2.0, 0.25), (3.0, 0.5)]);
        let f = |x: f64, y: f64| x - y;
        let mut s = ConvolveScratch::new();
        let fast = s.product_with(&a, &b, f).unwrap();
        let slow = a.product_with(&b, f).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn product_rebucket_matches_reference_bitwise() {
        let a = d(&[(10.0, 0.125), (20.0, 0.25), (30.0, 0.5), (40.0, 0.125)]);
        let b = d(&[(1.0, 0.2), (2.0, 0.2), (3.0, 0.6)]);
        let mut s = ConvolveScratch::new();
        for buckets in [1, 2, 4, 8, 64] {
            let fast = s.product_rebucket(&a, &b, |x, y| x * y, buckets).unwrap();
            let prod = a.product_with(&b, |x, y| x * y).unwrap();
            let slow = bucket::rebucket(&prod, buckets).unwrap();
            assert_eq!(fast, slow, "buckets = {buckets}");
            for (x, y) in fast
                .values()
                .iter()
                .chain(fast.probs())
                .zip(slow.values().iter().chain(slow.probs()))
            {
                assert_eq!(x.to_bits(), y.to_bits(), "buckets = {buckets}");
            }
        }
        assert_eq!(
            s.product_rebucket(&a, &b, |x, y| x * y, 0),
            Err(StatsError::ZeroBuckets)
        );
    }

    #[test]
    fn map_matches_reference() {
        let a = d(&[(1.0, 0.25), (2.0, 0.25), (3.0, 0.5)]);
        let mut s = ConvolveScratch::new();
        // Monotone map.
        assert_eq!(
            s.map(&a, |v| v.max(2.0)).unwrap(),
            a.map(|v| v.max(2.0)).unwrap()
        );
        // Non-monotone map (collision through the fallback).
        let f = |v: f64| (v - 2.0) * (v - 2.0);
        assert_eq!(s.map(&a, f).unwrap(), a.map(f).unwrap());
    }

    #[test]
    fn errors_match_reference() {
        let a = d(&[(1.0, 0.5), (2.0, 0.5)]);
        let b = d(&[(3.0, 1.0)]);
        let mut s = ConvolveScratch::new();
        // Non-finite combined value.
        assert!(matches!(
            s.product_with(&a, &b, |_, _| f64::NAN),
            Err(StatsError::NonFiniteValue(_))
        ));
        assert!(matches!(
            a.product_with(&b, |_, _| f64::NAN),
            Err(StatsError::NonFiniteValue(_))
        ));
    }

    #[test]
    fn scratch_is_reusable_across_shapes() {
        let mut s = ConvolveScratch::new();
        let a = d(&[(1.0, 0.5), (2.0, 0.5)]);
        let pts: Vec<(f64, f64)> = (0..8).map(|i| (i as f64 + 1.0, 0.125)).collect();
        let b = d(&pts);
        let wide = s.product_with(&a, &b, |x, y| x + y).unwrap();
        let narrow = s.convolve(&a, &a).unwrap();
        assert_eq!(wide, a.product_with(&b, |x, y| x + y).unwrap());
        assert_eq!(narrow, a.convolve(&a).unwrap());
    }
}
