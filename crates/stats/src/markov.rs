//! Finite Markov chains over parameter values (paper §3.5).
//!
//! The dynamic-parameter model assumes plan execution proceeds in *phases*
//! (one per join); the parameter (available memory) is constant within a
//! phase but may change between phases according to a transition probability
//! that "depends only on the current memory usage, not on the time" — i.e. a
//! time-homogeneous Markov chain. Algorithm C then needs, at each dag depth
//! `k`, the *marginal* distribution of the parameter during phase `k`, which
//! is the initial distribution evolved `k - 1` steps.

use crate::dist::Distribution;
use crate::error::StatsError;
use rand::Rng;

/// A time-homogeneous Markov chain over a finite, sorted set of parameter
/// values (e.g. memory sizes in pages).
///
/// # Examples
///
/// Memory that random-walks a ladder between join phases (§3.5); the
/// optimizer needs the marginal distribution at each phase:
///
/// ```
/// use lec_stats::MarkovChain;
///
/// let chain = MarkovChain::random_walk(vec![500.0, 1000.0, 2000.0], 0.4)?;
/// let phase0 = [1.0, 0.0, 0.0];                 // admitted at 500 pages
/// let phase2 = chain.marginal_after(&phase0, 2); // two joins later
/// assert!(phase2[2] > 0.0);                      // some chance of 2000 pages
/// assert!((phase2.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// # Ok::<(), lec_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    states: Vec<f64>,
    /// Row-stochastic transition matrix: `rows[i][j] = Pr(next = j | cur = i)`.
    rows: Vec<Vec<f64>>,
}

const ROW_TOLERANCE: f64 = 1e-9;

impl MarkovChain {
    /// Builds a chain from state values and a row-stochastic matrix.
    pub fn new(states: Vec<f64>, rows: Vec<Vec<f64>>) -> Result<Self, StatsError> {
        if states.is_empty() {
            return Err(StatsError::EmptyChain);
        }
        for &s in &states {
            if !s.is_finite() {
                return Err(StatsError::NonFiniteValue(s));
            }
        }
        if rows.len() != states.len() {
            return Err(StatsError::MalformedTransitionRow(rows.len()));
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != states.len() {
                return Err(StatsError::MalformedTransitionRow(i));
            }
            let mut sum = 0.0;
            for &p in row {
                if !p.is_finite() || p < -ROW_TOLERANCE {
                    return Err(StatsError::MalformedTransitionRow(i));
                }
                sum += p;
            }
            if (sum - 1.0).abs() > 1e-6 {
                return Err(StatsError::MalformedTransitionRow(i));
            }
        }
        Ok(Self { states, rows })
    }

    /// The chain that never moves (static parameters as a degenerate case).
    pub fn identity(states: Vec<f64>) -> Result<Self, StatsError> {
        let n = states.len();
        let rows = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        Self::new(states, rows)
    }

    /// A lazy birth–death walk: from state `i`, move down/up one state with
    /// probability `p_move / 2` each (reflected at the ends), else stay.
    /// `p_move` is the "volatility" knob used by the experiments.
    pub fn random_walk(states: Vec<f64>, p_move: f64) -> Result<Self, StatsError> {
        if !(0.0..=1.0).contains(&p_move) {
            return Err(StatsError::InvalidProbability(p_move));
        }
        let n = states.len();
        if n == 0 {
            return Err(StatsError::EmptyChain);
        }
        let half = p_move / 2.0;
        let mut rows = vec![vec![0.0; n]; n];
        for (i, row) in rows.iter_mut().enumerate() {
            let down = if i > 0 { i - 1 } else { i };
            let up = if i + 1 < n { i + 1 } else { i };
            row[down] += half;
            row[up] += half;
            row[i] += 1.0 - p_move;
        }
        Self::new(states, rows)
    }

    /// A general birth–death chain: from state `i`, step down with
    /// probability `p_down`, up with `p_up` (reflected at the ends), else
    /// stay. Asymmetric probabilities model *drifting* environments — e.g.
    /// a system draining its morning load, so memory trends upward while
    /// the query runs.
    pub fn birth_death(states: Vec<f64>, p_down: f64, p_up: f64) -> Result<Self, StatsError> {
        for p in [p_down, p_up, p_down + p_up] {
            if !(0.0..=1.0).contains(&p) {
                return Err(StatsError::InvalidProbability(p));
            }
        }
        let n = states.len();
        if n == 0 {
            return Err(StatsError::EmptyChain);
        }
        let mut rows = vec![vec![0.0; n]; n];
        for (i, row) in rows.iter_mut().enumerate() {
            let down = if i > 0 { i - 1 } else { i };
            let up = if i + 1 < n { i + 1 } else { i };
            row[down] += p_down;
            row[up] += p_up;
            row[i] += 1.0 - p_down - p_up;
        }
        Self::new(states, rows)
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// The state values.
    pub fn states(&self) -> &[f64] {
        &self.states
    }

    /// The transition matrix rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// One step of the forward (distribution) evolution: `p' = p · P`.
    pub fn step(&self, probs: &[f64]) -> Vec<f64> {
        let n = self.n_states();
        debug_assert_eq!(probs.len(), n);
        let mut out = vec![0.0; n];
        for (i, &pi) in probs.iter().enumerate() {
            if pi == 0.0 {
                continue;
            }
            for (j, &t) in self.rows[i].iter().enumerate() {
                out[j] += pi * t;
            }
        }
        out
    }

    /// The marginal state distribution after `k` steps from `initial`
    /// (a probability vector aligned with [`Self::states`]).
    pub fn marginal_after(&self, initial: &[f64], k: usize) -> Vec<f64> {
        let mut p = initial.to_vec();
        for _ in 0..k {
            p = self.step(&p);
        }
        p
    }

    /// Converts a probability vector over chain states into a
    /// value-[`Distribution`].
    pub fn distribution(&self, probs: &[f64]) -> Result<Distribution, StatsError> {
        Distribution::new(self.states.iter().copied().zip(probs.iter().copied()))
    }

    /// Interprets a value-distribution as a probability vector over this
    /// chain's states. Every support value must be (nearly) a state value.
    pub fn probs_from_distribution(&self, dist: &Distribution) -> Result<Vec<f64>, StatsError> {
        let mut probs = vec![0.0; self.n_states()];
        for (v, p) in dist.iter() {
            let idx = self
                .states
                .iter()
                .position(|&s| (s - v).abs() <= 1e-9 * s.abs().max(1.0))
                .ok_or(StatsError::NonFiniteValue(v))?;
            probs[idx] += p;
        }
        Ok(probs)
    }

    /// The stationary distribution via power iteration from uniform.
    pub fn stationary(&self) -> Result<Vec<f64>, StatsError> {
        let n = self.n_states();
        let mut p = vec![1.0 / n as f64; n];
        for _ in 0..100_000 {
            let next = self.step(&p);
            let delta: f64 = next.iter().zip(&p).map(|(a, b)| (a - b).abs()).sum();
            p = next;
            if delta < 1e-12 {
                return Ok(p);
            }
        }
        Err(StatsError::StationaryDidNotConverge)
    }

    /// Enumerates all length-`len` state-index sequences with their
    /// probabilities (the `b_M^{n-1}` sequence space of §3.5). Exponential;
    /// intended as ground truth in tests for small `len`.
    pub fn enumerate_sequences(&self, initial: &[f64], len: usize) -> Vec<(Vec<usize>, f64)> {
        let mut seqs: Vec<(Vec<usize>, f64)> = vec![(Vec::new(), 1.0)];
        for step in 0..len {
            let mut next = Vec::with_capacity(seqs.len() * self.n_states());
            for (seq, p) in &seqs {
                for (j, &init_p) in initial.iter().enumerate() {
                    let pj = if step == 0 {
                        init_p
                    } else {
                        self.rows[*seq.last().expect("non-first step")][j]
                    };
                    if pj > 0.0 {
                        let mut s = seq.clone();
                        s.push(j);
                        next.push((s, p * pj));
                    }
                }
            }
            seqs = next;
        }
        seqs
    }

    /// Samples a length-`len` path of state *values*.
    pub fn sample_path(&self, rng: &mut impl Rng, initial: &[f64], len: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(len);
        let mut cur: Option<usize> = None;
        for _ in 0..len {
            let weights: &[f64] = match cur {
                None => initial,
                Some(i) => &self.rows[i],
            };
            let mut u: f64 = rng.gen();
            let mut chosen = weights.len() - 1;
            for (j, &w) in weights.iter().enumerate() {
                if u < w {
                    chosen = j;
                    break;
                }
                u -= w;
            }
            cur = Some(chosen);
            out.push(self.states[chosen]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn chain() -> MarkovChain {
        MarkovChain::random_walk(vec![500.0, 1000.0, 2000.0], 0.4).unwrap()
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(matches!(
            MarkovChain::new(vec![1.0], vec![vec![0.5]]),
            Err(StatsError::MalformedTransitionRow(0))
        ));
        assert!(matches!(
            MarkovChain::new(vec![1.0, 2.0], vec![vec![1.0, 0.0]]),
            Err(StatsError::MalformedTransitionRow(1))
        ));
        assert!(matches!(
            MarkovChain::new(vec![], vec![]),
            Err(StatsError::EmptyChain)
        ));
    }

    #[test]
    fn step_preserves_mass() {
        let c = chain();
        let p = c.step(&[0.2, 0.5, 0.3]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_chain_is_static() {
        let c = MarkovChain::identity(vec![1.0, 2.0, 3.0]).unwrap();
        let p0 = [0.1, 0.6, 0.3];
        assert_eq!(c.marginal_after(&p0, 5), p0.to_vec());
    }

    #[test]
    fn random_walk_reflects_at_boundaries() {
        let c = MarkovChain::random_walk(vec![1.0, 2.0], 1.0).unwrap();
        // From state 0 with p_move=1: half mass tries to go down (reflected
        // back to 0), half goes up.
        assert!((c.rows()[0][0] - 0.5).abs() < 1e-12);
        assert!((c.rows()[0][1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn birth_death_drifts_upward() {
        let c = MarkovChain::birth_death(vec![1.0, 2.0, 4.0, 8.0], 0.1, 0.6).unwrap();
        let initial = [1.0, 0.0, 0.0, 0.0];
        let d0 = c.distribution(&c.marginal_after(&initial, 0)).unwrap();
        let d3 = c.distribution(&c.marginal_after(&initial, 3)).unwrap();
        assert!(
            d3.mean() > d0.mean() * 2.0,
            "{} vs {}",
            d3.mean(),
            d0.mean()
        );
        assert!(MarkovChain::birth_death(vec![1.0], 0.7, 0.7).is_err());
    }

    #[test]
    fn stationary_is_fixed_point() {
        let c = chain();
        let pi = c.stationary().unwrap();
        let stepped = c.step(&pi);
        for (a, b) in pi.iter().zip(&stepped) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn marginals_match_sequence_enumeration() {
        let c = chain();
        let initial = [0.5, 0.3, 0.2];
        let len = 4;
        let seqs = c.enumerate_sequences(&initial, len);
        let total: f64 = seqs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Marginal of phase k from the enumeration must equal marginal_after.
        for k in 0..len {
            let mut marg = [0.0; 3];
            for (seq, p) in &seqs {
                marg[seq[k]] += p;
            }
            let direct = c.marginal_after(&initial, k);
            for (a, b) in marg.iter().zip(&direct) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn distribution_round_trip() {
        let c = chain();
        let probs = [0.25, 0.25, 0.5];
        let d = c.distribution(&probs).unwrap();
        let back = c.probs_from_distribution(&d).unwrap();
        for (a, b) in probs.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn probs_from_foreign_distribution_fails() {
        let c = chain();
        let d = Distribution::point(777.0).unwrap();
        assert!(c.probs_from_distribution(&d).is_err());
    }

    #[test]
    fn sampled_paths_follow_marginals() {
        let c = chain();
        let initial = [1.0, 0.0, 0.0];
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 10_000;
        let len = 3;
        let mut counts = vec![vec![0usize; 3]; len];
        for _ in 0..n {
            let path = c.sample_path(&mut rng, &initial, len);
            for (k, v) in path.iter().enumerate() {
                let idx = c.states().iter().position(|s| s == v).unwrap();
                counts[k][idx] += 1;
            }
        }
        for (k, phase_counts) in counts.iter().enumerate() {
            let marg = c.marginal_after(&initial, k);
            for j in 0..3 {
                let freq = phase_counts[j] as f64 / n as f64;
                assert!(
                    (freq - marg[j]).abs() < 0.02,
                    "phase {k} state {j}: {freq} vs {}",
                    marg[j]
                );
            }
        }
    }
}
