//! Parametric distribution families, discretized into buckets.
//!
//! The LEC framework consumes *bucketed* distributions; these constructors
//! produce them from familiar parametric shapes. All constructions are
//! mean-exact: the returned distribution's mean equals the requested one.

use crate::dist::Distribution;
use crate::error::StatsError;

/// A bucketed lognormal-shaped distribution with the given `mean` and
/// coefficient of variation `cv`, discretized into `buckets` equal-mass
/// buckets at mid-bucket quantiles and renormalized so the mean is exact.
///
/// Used for multiplicative uncertainty around point estimates: relation
/// sizes and predicate selectivities "known up to a factor".
pub fn lognormal_bucketed(mean: f64, cv: f64, buckets: usize) -> Result<Distribution, StatsError> {
    if !(mean.is_finite() && mean > 0.0) {
        return Err(StatsError::NonFiniteValue(mean));
    }
    if !(cv.is_finite() && cv >= 0.0) {
        return Err(StatsError::InvalidProbability(cv));
    }
    if buckets == 0 {
        return Err(StatsError::ZeroBuckets);
    }
    if cv == 0.0 || buckets == 1 {
        return Distribution::point(mean);
    }
    let sigma = (1.0 + cv * cv).ln().sqrt();
    let b = buckets;
    let mut factors: Vec<f64> = (0..b)
        .map(|i| {
            let q = (i as f64 + 0.5) / b as f64;
            (sigma * normal_quantile(q)).exp()
        })
        .collect();
    let factor_mean: f64 = factors.iter().sum::<f64>() / b as f64;
    for f in &mut factors {
        *f /= factor_mean;
    }
    let p = 1.0 / b as f64;
    Distribution::new(factors.into_iter().map(|f| (mean * f, p)))
}

/// A bucketed distribution supported on the confidence interval `[lo, hi]`
/// whose mean equals the point estimate `point` exactly.
///
/// Construction: `buckets` equal-mass cells spread uniformly over `[lo, hi]`
/// (cell midpoints), mixed with an anchor mass at whichever endpoint pulls
/// the uniform mean `(lo + hi) / 2` onto `point`. The result is the
/// "interval-widened" belief DESIGN.md §11 feeds the LEC machinery: the
/// statistical uncertainty of a sampled estimate becomes extra spread in the
/// bucketed distribution rather than a side channel the optimizer ignores.
pub fn interval_widened(
    point: f64,
    lo: f64,
    hi: f64,
    buckets: usize,
) -> Result<Distribution, StatsError> {
    for v in [point, lo, hi] {
        if !v.is_finite() {
            return Err(StatsError::NonFiniteValue(v));
        }
    }
    if buckets == 0 {
        return Err(StatsError::ZeroBuckets);
    }
    if !(lo <= point && point <= hi) {
        return Err(StatsError::NonFiniteValue(point));
    }
    let width = hi - lo;
    if width <= 0.0 || buckets == 1 || width < 1e-12 * point.abs().max(1.0) {
        return Distribution::point(point);
    }
    let b = buckets as f64;
    let mids: Vec<f64> = (0..buckets)
        .map(|i| lo + width * (i as f64 + 0.5) / b)
        .collect();
    let mid_mean: f64 = mids.iter().sum::<f64>() / b;
    let anchor = if point >= mid_mean { hi } else { lo };
    // Solve (1 - alpha) * mid_mean + alpha * anchor = point.
    let denom = anchor - mid_mean;
    let alpha = if denom.abs() < f64::MIN_POSITIVE {
        0.0
    } else {
        ((point - mid_mean) / denom).clamp(0.0, 1.0)
    };
    let cell = (1.0 - alpha) / b;
    let pairs = mids
        .into_iter()
        .map(|v| (v, cell))
        .chain(std::iter::once((anchor, alpha)))
        .filter(|&(_, p)| p > 0.0);
    Distribution::from_weights(pairs)
}

/// Standard normal quantile (inverse CDF): Acklam's rational approximation,
/// relative error below `1.2e-9` on `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_exact_and_cv_close() {
        for (mean, cv, b) in [(100.0, 0.3, 8), (5e5, 1.0, 16), (0.01, 0.5, 5)] {
            let d = lognormal_bucketed(mean, cv, b).unwrap();
            assert_eq!(d.len(), b);
            assert!((d.mean() - mean).abs() < 1e-9 * mean);
            let realized = d.std_dev() / d.mean();
            assert!((realized - cv).abs() < 0.25 * cv, "cv {realized} vs {cv}");
        }
    }

    #[test]
    fn degenerate_cases() {
        assert!(lognormal_bucketed(10.0, 0.0, 8).unwrap().is_point());
        assert!(lognormal_bucketed(10.0, 0.5, 1).unwrap().is_point());
        assert!(lognormal_bucketed(0.0, 0.5, 4).is_err());
        assert!(lognormal_bucketed(10.0, -1.0, 4).is_err());
        assert!(lognormal_bucketed(10.0, 0.5, 0).is_err());
    }

    #[test]
    fn values_are_positive() {
        let d = lognormal_bucketed(1e-6, 3.0, 32).unwrap();
        assert!(d.min() > 0.0);
    }

    #[test]
    fn interval_widened_mean_is_exact_and_support_bounded() {
        for (point, lo, hi, b) in [
            (0.3, 0.1, 0.9, 8),
            (0.05, 0.0, 0.011, 6),
            (0.5, 0.5, 0.5, 4),
            (120.0, 80.0, 400.0, 16),
        ] {
            let point = f64::clamp(point, lo, hi);
            let d = interval_widened(point, lo, hi, b).unwrap();
            assert!(
                (d.mean() - point).abs() <= 1e-12 * point.abs().max(1.0),
                "mean {} vs point {point}",
                d.mean()
            );
            assert!(d.min() >= lo - 1e-12 && d.max() <= hi + 1e-12);
        }
    }

    #[test]
    fn interval_widened_degenerate_and_invalid() {
        assert!(interval_widened(0.5, 0.5, 0.5, 8).unwrap().is_point());
        assert!(interval_widened(0.5, 0.2, 0.8, 1).unwrap().is_point());
        assert!(interval_widened(0.5, 0.6, 0.8, 8).is_err());
        assert!(interval_widened(0.9, 0.2, 0.8, 8).is_err());
        assert!(interval_widened(0.5, 0.2, 0.8, 0).is_err());
        assert!(interval_widened(f64::NAN, 0.0, 1.0, 8).is_err());
    }

    #[test]
    fn interval_widened_has_spread_when_interval_is_wide() {
        let d = interval_widened(0.4, 0.1, 0.9, 8).unwrap();
        assert!(d.std_dev() > 0.05, "std dev {}", d.std_dev());
    }

    #[test]
    fn normal_quantile_symmetry() {
        for q in [0.01, 0.1, 0.25, 0.4] {
            assert!((normal_quantile(q) + normal_quantile(1.0 - q)).abs() < 1e-8);
        }
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
    }
}
