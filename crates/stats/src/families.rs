//! Parametric distribution families, discretized into buckets.
//!
//! The LEC framework consumes *bucketed* distributions; these constructors
//! produce them from familiar parametric shapes. All constructions are
//! mean-exact: the returned distribution's mean equals the requested one.

use crate::dist::Distribution;
use crate::error::StatsError;

/// A bucketed lognormal-shaped distribution with the given `mean` and
/// coefficient of variation `cv`, discretized into `buckets` equal-mass
/// buckets at mid-bucket quantiles and renormalized so the mean is exact.
///
/// Used for multiplicative uncertainty around point estimates: relation
/// sizes and predicate selectivities "known up to a factor".
pub fn lognormal_bucketed(mean: f64, cv: f64, buckets: usize) -> Result<Distribution, StatsError> {
    if !(mean.is_finite() && mean > 0.0) {
        return Err(StatsError::NonFiniteValue(mean));
    }
    if !(cv.is_finite() && cv >= 0.0) {
        return Err(StatsError::InvalidProbability(cv));
    }
    if buckets == 0 {
        return Err(StatsError::ZeroBuckets);
    }
    if cv == 0.0 || buckets == 1 {
        return Distribution::point(mean);
    }
    let sigma = (1.0 + cv * cv).ln().sqrt();
    let b = buckets;
    let mut factors: Vec<f64> = (0..b)
        .map(|i| {
            let q = (i as f64 + 0.5) / b as f64;
            (sigma * normal_quantile(q)).exp()
        })
        .collect();
    let factor_mean: f64 = factors.iter().sum::<f64>() / b as f64;
    for f in &mut factors {
        *f /= factor_mean;
    }
    let p = 1.0 / b as f64;
    Distribution::new(factors.into_iter().map(|f| (mean * f, p)))
}

/// Standard normal quantile (inverse CDF): Acklam's rational approximation,
/// relative error below `1.2e-9` on `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_exact_and_cv_close() {
        for (mean, cv, b) in [(100.0, 0.3, 8), (5e5, 1.0, 16), (0.01, 0.5, 5)] {
            let d = lognormal_bucketed(mean, cv, b).unwrap();
            assert_eq!(d.len(), b);
            assert!((d.mean() - mean).abs() < 1e-9 * mean);
            let realized = d.std_dev() / d.mean();
            assert!((realized - cv).abs() < 0.25 * cv, "cv {realized} vs {cv}");
        }
    }

    #[test]
    fn degenerate_cases() {
        assert!(lognormal_bucketed(10.0, 0.0, 8).unwrap().is_point());
        assert!(lognormal_bucketed(10.0, 0.5, 1).unwrap().is_point());
        assert!(lognormal_bucketed(0.0, 0.5, 4).is_err());
        assert!(lognormal_bucketed(10.0, -1.0, 4).is_err());
        assert!(lognormal_bucketed(10.0, 0.5, 0).is_err());
    }

    #[test]
    fn values_are_positive() {
        let d = lognormal_bucketed(1e-6, 3.0, 32).unwrap();
        assert!(d.min() > 0.0);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for q in [0.01, 0.1, 0.25, 0.4] {
            assert!((normal_quantile(q) + normal_quantile(1.0 - q)).abs() < 1e-8);
        }
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
    }
}
