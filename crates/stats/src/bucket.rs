//! Bucketing strategies for parameter distributions (paper §3.2 and §3.7).
//!
//! The complexity of every LEC algorithm is linear (or worse) in the number
//! of buckets per parameter, so how the parameter space is partitioned is a
//! first-class design decision. This module implements:
//!
//! * **equi-width** — buckets of equal value-range,
//! * **equi-depth** — buckets of (approximately) equal probability mass,
//! * **breakpoint-driven** ("level-set") — bucket boundaries placed exactly
//!   at the discontinuities of the cost formulas, the strategy §3.7 argues
//!   for (a sort-merge join needs only three memory buckets, a nested-loop
//!   join only two);
//!
//! plus [`rebucket`], the §3.6.3 reduction that caps a distribution at `b`
//! support points while preserving total mass and the mean *exactly*.

use crate::dist::Distribution;
use crate::error::StatsError;

/// A strategy for partitioning a parameter's value space into buckets.
///
/// # Examples
///
/// Level-set bucketing at the Example 1.1 breakpoints (√400000 ≈ 632 and
/// √1000000 = 1000):
///
/// ```
/// use lec_stats::{Bucketing, Distribution};
///
/// let fine = Distribution::uniform_over((1..=100).map(|i| 20.0 * i as f64))?;
/// let coarse = Bucketing::Breakpoints(vec![632.46, 1000.0]).apply(&fine)?;
/// assert_eq!(coarse.len(), 3);                       // one bucket per level set
/// assert!((coarse.mean() - fine.mean()).abs() < 1e-9); // mean preserved exactly
/// # Ok::<(), lec_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Bucketing {
    /// `b` buckets of equal width spanning the observed value range.
    EquiWidth(usize),
    /// `b` buckets of (approximately) equal probability mass.
    EquiDepth(usize),
    /// Buckets delimited by the given boundaries: `(-inf, b0], (b0, b1], ...`.
    /// Boundaries are sorted and deduplicated internally; `k` boundaries
    /// yield at most `k + 1` buckets (empty buckets are dropped).
    Breakpoints(Vec<f64>),
}

impl Bucketing {
    /// Applies this strategy to a fine-grained distribution, producing a
    /// coarser one. Each bucket is represented by its conditional mean and
    /// carries its probability mass, so the overall mean is preserved
    /// exactly for every strategy.
    pub fn apply(&self, fine: &Distribution) -> Result<Distribution, StatsError> {
        match self {
            Bucketing::EquiWidth(b) => equi_width(fine, *b),
            Bucketing::EquiDepth(b) => equi_depth(fine, *b),
            Bucketing::Breakpoints(bps) => by_breakpoints(fine, bps),
        }
    }

    /// Builds a distribution directly from raw observations (each sample
    /// weighted `1/n`) and then applies this strategy.
    pub fn from_samples(&self, samples: &[f64]) -> Result<Distribution, StatsError> {
        let n = samples.len();
        if n == 0 {
            return Err(StatsError::EmptySupport);
        }
        let w = 1.0 / n as f64;
        let fine = Distribution::new(samples.iter().map(|&s| (s, w)))?;
        self.apply(&fine)
    }
}

/// Groups contiguous runs of support points; each group becomes one bucket
/// at its conditional mean. `group_of(i)` assigns a non-decreasing group id.
fn group_contiguous(
    fine: &Distribution,
    mut group_of: impl FnMut(usize, f64) -> usize,
) -> Result<Distribution, StatsError> {
    let mut pts: Vec<(f64, f64)> = Vec::new();
    let mut cur_group = usize::MAX;
    let mut mass = 0.0;
    let mut weighted = 0.0;
    for (i, (v, p)) in fine.iter().enumerate() {
        let g = group_of(i, v);
        if g != cur_group && mass > 0.0 {
            pts.push((weighted / mass, mass));
            mass = 0.0;
            weighted = 0.0;
        }
        cur_group = g;
        mass += p;
        weighted += v * p;
    }
    if mass > 0.0 {
        pts.push((weighted / mass, mass));
    }
    Distribution::new(pts)
}

fn equi_width(fine: &Distribution, b: usize) -> Result<Distribution, StatsError> {
    if b == 0 {
        return Err(StatsError::ZeroBuckets);
    }
    let lo = fine.min();
    let hi = fine.max();
    if hi == lo || b == 1 {
        return Distribution::point(fine.mean());
    }
    let width = (hi - lo) / b as f64;
    group_contiguous(fine, |_, v| {
        (((v - lo) / width).floor() as usize).min(b - 1)
    })
}

fn equi_depth(fine: &Distribution, b: usize) -> Result<Distribution, StatsError> {
    if b == 0 {
        return Err(StatsError::ZeroBuckets);
    }
    if b == 1 {
        return Distribution::point(fine.mean());
    }
    // Walk the support accumulating mass; close a bucket once cumulative
    // mass reaches the next multiple of 1/b.
    let target = 1.0 / b as f64;
    let mut cum = 0.0;
    let probs = fine.probs();
    let mut next_idx = 0usize;
    group_contiguous(fine, move |i, _| {
        let g = next_idx;
        cum += probs[i];
        if cum >= target * (next_idx + 1) as f64 - 1e-12 {
            next_idx += 1;
        }
        g
    })
}

fn by_breakpoints(fine: &Distribution, breakpoints: &[f64]) -> Result<Distribution, StatsError> {
    let mut bps: Vec<f64> = breakpoints
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    bps.sort_by(f64::total_cmp);
    bps.dedup();
    group_contiguous(fine, |_, v| bps.partition_point(|&b| b < v))
}

/// Reduces a distribution to at most `b` support points while preserving the
/// total mass (exactly 1) and the mean exactly: adjacent points are grouped
/// into equal-mass runs and each run is replaced by its conditional mean.
///
/// This is the §3.6.3 strategy: after an independent product blows the
/// support up to `b_A · b_B · b_σ` points, rebucket back down so the result-
/// size distribution carried to the parent node stays at `b` buckets.
pub fn rebucket(dist: &Distribution, b: usize) -> Result<Distribution, StatsError> {
    if b == 0 {
        return Err(StatsError::ZeroBuckets);
    }
    if dist.len() <= b {
        return Ok(dist.clone());
    }
    equi_depth(dist, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fine() -> Distribution {
        Distribution::uniform_over((0..100).map(f64::from)).unwrap()
    }

    #[test]
    fn equi_width_preserves_mass_and_mean() {
        let d = fine();
        let c = Bucketing::EquiWidth(4).apply(&d).unwrap();
        assert_eq!(c.len(), 4);
        assert!((c.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((c.mean() - d.mean()).abs() < 1e-9);
    }

    #[test]
    fn equi_depth_balances_mass() {
        let d = fine();
        let c = Bucketing::EquiDepth(5).apply(&d).unwrap();
        assert_eq!(c.len(), 5);
        for &p in c.probs() {
            assert!((p - 0.2).abs() < 0.011, "bucket mass {p}");
        }
        assert!((c.mean() - d.mean()).abs() < 1e-9);
    }

    #[test]
    fn equi_depth_skewed_masses() {
        // 90% of mass on one point: equi-depth cannot split a point, so the
        // heavy point forms one bucket and the rest are grouped.
        let d = Distribution::new([(1.0, 0.9), (2.0, 0.05), (3.0, 0.05)]).unwrap();
        let c = Bucketing::EquiDepth(2).apply(&d).unwrap();
        assert!((c.mean() - d.mean()).abs() < 1e-12);
        assert!((c.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakpoints_split_where_told() {
        // Memory breakpoints at 633 and 1000 (Example 1.1's buckets).
        let d = Distribution::uniform_over([100.0, 500.0, 700.0, 900.0, 1500.0, 2500.0]).unwrap();
        let c = Bucketing::Breakpoints(vec![633.0, 1000.0])
            .apply(&d)
            .unwrap();
        assert_eq!(c.len(), 3);
        // [0,633]: {100,500} mass 1/3 mean 300; (633,1000]: {700,900}; (1000,inf): rest.
        assert!((c.values()[0] - 300.0).abs() < 1e-9);
        assert!((c.values()[1] - 800.0).abs() < 1e-9);
        assert!((c.values()[2] - 2000.0).abs() < 1e-9);
        assert!((c.mean() - d.mean()).abs() < 1e-9);
    }

    #[test]
    fn breakpoints_outside_support_are_harmless() {
        let d = fine();
        let c = Bucketing::Breakpoints(vec![-5.0, 1e9]).apply(&d).unwrap();
        assert_eq!(c.len(), 1);
        assert!((c.values()[0] - d.mean()).abs() < 1e-9);
    }

    #[test]
    fn one_bucket_degenerates_to_mean() {
        let d = fine();
        for strat in [Bucketing::EquiWidth(1), Bucketing::EquiDepth(1)] {
            let c = strat.apply(&d).unwrap();
            assert!(c.is_point());
            assert!((c.values()[0] - d.mean()).abs() < 1e-9);
        }
    }

    #[test]
    fn from_samples_weights_equally() {
        let c = Bucketing::EquiDepth(2)
            .from_samples(&[1.0, 1.0, 1.0, 5.0])
            .unwrap();
        assert!((c.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_buckets_rejected() {
        let d = fine();
        assert_eq!(
            Bucketing::EquiWidth(0).apply(&d),
            Err(StatsError::ZeroBuckets)
        );
        assert_eq!(rebucket(&d, 0), Err(StatsError::ZeroBuckets));
    }

    #[test]
    fn rebucket_caps_support_and_preserves_mean() {
        let a = fine();
        let b = fine();
        let prod = a.product_with(&b, |x, y| x * y).unwrap();
        assert!(prod.len() > 1000);
        let r = rebucket(&prod, 10).unwrap();
        assert!(r.len() <= 10);
        assert!((r.mean() - prod.mean()).abs() < 1e-6 * prod.mean().max(1.0));
        assert!((r.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rebucket_noop_when_small() {
        let d = Distribution::new([(1.0, 0.5), (2.0, 0.5)]).unwrap();
        let r = rebucket(&d, 8).unwrap();
        assert_eq!(r, d);
    }
}
