//! Property tests pinning the [`ConvolveScratch`] kernels bit-for-bit to
//! the naive allocating reference: the scratch path is a pure
//! allocation/scheduling change, so every value, probability, and fused
//! expectation must match the `product_with` / `convolve().expect()` /
//! `rebucket` composition exactly — same bits, not just same tolerance.

use lec_stats::{rebucket, ConvolveScratch, Distribution};
use proptest::prelude::*;

/// Strategy: a random distribution with 1..=12 support points.
fn arb_dist() -> impl Strategy<Value = Distribution> {
    prop::collection::vec((0.0f64..1e6, 0.01f64..1.0), 1..=12)
        .prop_map(|pts| Distribution::from_weights(pts).expect("positive weights"))
}

/// Asserts two distributions are bitwise equal, support and mass alike.
fn assert_bits_eq(fast: &Distribution, slow: &Distribution) {
    assert_eq!(fast.len(), slow.len());
    for (a, b) in fast.values().iter().zip(slow.values()) {
        assert_eq!(a.to_bits(), b.to_bits(), "value bits differ");
    }
    for (a, b) in fast.probs().iter().zip(slow.probs()) {
        assert_eq!(a.to_bits(), b.to_bits(), "prob bits differ");
    }
}

proptest! {
    #[test]
    fn scratch_convolve_is_bit_identical(a in arb_dist(), b in arb_dist()) {
        let mut s = ConvolveScratch::new();
        let fast = s.convolve(&a, &b).unwrap();
        let slow = a.convolve(&b).unwrap();
        assert_bits_eq(&fast, &slow);
    }

    #[test]
    fn scratch_product_is_bit_identical(a in arb_dist(), b in arb_dist()) {
        let mut s = ConvolveScratch::new();
        // Multiplicative product: the alg_d size-propagation combiner.
        let fast = s.product_with(&a, &b, |x, y| x * y).unwrap();
        let slow = a.product_with(&b, |x, y| x * y).unwrap();
        assert_bits_eq(&fast, &slow);
    }

    #[test]
    fn fused_convolve_expect_is_bit_identical(a in arb_dist(), b in arb_dist()) {
        let mut s = ConvolveScratch::new();
        // A few distinct integrands, including non-monotone ones — the
        // fusion only changes *where* the expectation is accumulated.
        let fns: [fn(f64) -> f64; 3] = [|v| v, |v| v.sqrt(), |v| (v - 5e5) * (v - 5e5)];
        for g in fns {
            let fused = s.convolve_expect(&a, &b, g).unwrap();
            let two_step = a.convolve(&b).unwrap().expect(g);
            prop_assert_eq!(fused.to_bits(), two_step.to_bits());
        }
    }

    #[test]
    fn scratch_product_rebucket_is_bit_identical(
        a in arb_dist(),
        b in arb_dist(),
        buckets in 1usize..=10,
    ) {
        let mut s = ConvolveScratch::new();
        let fast = s.product_rebucket(&a, &b, |x, y| x * y, buckets).unwrap();
        let prod = a.product_with(&b, |x, y| x * y).unwrap();
        let slow = rebucket(&prod, buckets).unwrap();
        assert_bits_eq(&fast, &slow);
    }

    #[test]
    fn scratch_reuse_does_not_leak_state(a in arb_dist(), b in arb_dist(), c in arb_dist()) {
        // Interleave shapes through ONE scratch and re-check against fresh
        // references: stale buffer contents must never surface.
        let mut s = ConvolveScratch::new();
        let f1 = s.convolve(&a, &b).unwrap();
        let f2 = s.product_rebucket(&b, &c, |x, y| x * y, 4).unwrap();
        let f3 = s.convolve(&a, &c).unwrap();
        assert_bits_eq(&f1, &a.convolve(&b).unwrap());
        assert_bits_eq(
            &f2,
            &rebucket(&b.product_with(&c, |x, y| x * y).unwrap(), 4).unwrap(),
        );
        assert_bits_eq(&f3, &a.convolve(&c).unwrap());
    }
}
