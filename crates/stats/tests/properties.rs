//! Property-based tests for the probability substrate invariants listed in
//! DESIGN.md §5: mass conservation, mean preservation under (re)bucketing,
//! stochasticity of Markov evolution, and utility-score sanity.

use lec_stats::{rebucket, Bucketing, Distribution, MarkovChain, Utility};
use proptest::prelude::*;

/// Strategy: a random distribution with 1..=12 support points.
fn arb_dist() -> impl Strategy<Value = Distribution> {
    prop::collection::vec((0.0f64..1e6, 0.01f64..1.0), 1..=12)
        .prop_map(|pts| Distribution::from_weights(pts).expect("positive weights"))
}

/// Strategy: a random row-stochastic Markov chain with 2..=6 states.
fn arb_chain() -> impl Strategy<Value = MarkovChain> {
    (2usize..=6)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(1.0f64..1e5, n),
                prop::collection::vec(prop::collection::vec(0.01f64..1.0, n), n),
            )
        })
        .prop_map(|(mut states, raw_rows)| {
            states.sort_by(f64::total_cmp);
            states.dedup();
            // Re-pad in case dedup shrank the list (values are continuous, so
            // collisions are essentially impossible, but stay total).
            while states.len() < raw_rows.len() {
                let last = *states.last().unwrap();
                states.push(last + 1.0);
            }
            let rows = raw_rows
                .into_iter()
                .map(|row| {
                    let s: f64 = row.iter().sum();
                    row.into_iter().map(|w| w / s).collect::<Vec<_>>()
                })
                .collect();
            MarkovChain::new(states, rows).expect("normalized rows")
        })
}

proptest! {
    #[test]
    fn mass_is_always_one(d in arb_dist()) {
        prop_assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn support_is_sorted_strictly(d in arb_dist()) {
        for w in d.values().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn mean_is_within_support_range(d in arb_dist()) {
        let m = d.mean();
        prop_assert!(m >= d.min() - 1e-9 && m <= d.max() + 1e-9);
    }

    #[test]
    fn cdf_is_monotone(d in arb_dist(), x in 0.0f64..1e6, y in 0.0f64..1e6) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
    }

    #[test]
    fn expectation_is_monotone_in_f(d in arb_dist()) {
        // f <= g pointwise implies E[f] <= E[g].
        let ef = d.expect(|v| v);
        let eg = d.expect(|v| v + 1.0);
        prop_assert!(ef < eg);
    }

    #[test]
    fn pushforward_preserves_mass(d in arb_dist()) {
        let m = d.map(|v| (v / 1000.0).floor()).unwrap();
        prop_assert!((m.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_mean_adds(a in arb_dist(), b in arb_dist()) {
        let c = a.convolve(&b).unwrap();
        let expected = a.mean() + b.mean();
        prop_assert!((c.mean() - expected).abs() <= 1e-6 * expected.abs().max(1.0));
    }

    #[test]
    fn bucketing_preserves_mass_and_mean(d in arb_dist(), b in 1usize..=8) {
        for strat in [Bucketing::EquiWidth(b), Bucketing::EquiDepth(b)] {
            let c = strat.apply(&d).unwrap();
            prop_assert!(c.len() <= d.len().max(1));
            prop_assert!((c.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!((c.mean() - d.mean()).abs() <= 1e-6 * d.mean().abs().max(1.0));
        }
    }

    #[test]
    fn rebucket_caps_and_preserves(d in arb_dist(), b in 1usize..=6) {
        let r = rebucket(&d, b).unwrap();
        prop_assert!(r.len() <= b.max(d.len().min(b)));
        prop_assert!((r.mean() - d.mean()).abs() <= 1e-6 * d.mean().abs().max(1.0));
        prop_assert!((r.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_bounds(d in arb_dist(), q in 0.0f64..=1.0) {
        let v = d.quantile(q).unwrap();
        prop_assert!(v >= d.min() && v <= d.max());
    }

    #[test]
    fn markov_step_preserves_stochasticity(c in arb_chain(), k in 0usize..6) {
        let n = c.n_states();
        let initial = vec![1.0 / n as f64; n];
        let p = c.marginal_after(&initial, k);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn markov_stationary_fixed_point(c in arb_chain()) {
        let pi = c.stationary().unwrap();
        let next = c.step(&pi);
        for (a, b) in pi.iter().zip(&next) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn sequence_enumeration_total_mass(c in arb_chain(), len in 1usize..4) {
        let n = c.n_states();
        let initial = vec![1.0 / n as f64; n];
        let total: f64 = c.enumerate_sequences(&initial, len).iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_ce_between_min_and_max(d in arb_dist(), gamma in 1e-7f64..1e-4) {
        let ce = Utility::Exponential { gamma }.score(&d);
        prop_assert!(ce >= d.min() - 1e-6 && ce <= d.max() + 1e-6, "ce = {ce}");
        // Risk-averse CE dominates the mean.
        prop_assert!(ce >= d.mean() - 1e-6);
    }

    #[test]
    fn deadline_score_is_probability(d in arb_dist(), t in 0.0f64..1e6) {
        let s = Utility::Deadline { threshold: t }.score(&d);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s));
    }
}
