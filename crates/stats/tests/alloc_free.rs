// The one place the workspace genuinely needs `unsafe`: implementing a
// counting `GlobalAlloc` shim. It delegates every call to `System` verbatim.
#![allow(unsafe_code)]

//! Pins the "allocation-free steady state" claim with a counting
//! allocator: once a [`ConvolveScratch`] is warm and results fit the
//! inline small-support storage, a product → rebucket → fused-expect loop
//! must perform **zero** heap allocations. This is the loop `alg_d` runs
//! once per dag node, so a regression here silently reintroduces
//! per-node malloc traffic.

use lec_stats::{ConvolveScratch, Distribution};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Passes through to the system allocator, counting allocation events
/// while `TRACKING` is set.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);
static TRACKING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting enabled and returns how many
/// allocation events (alloc / alloc_zeroed / realloc) it performed.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOC_EVENTS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    f();
    TRACKING.store(false, Ordering::SeqCst);
    ALLOC_EVENTS.load(Ordering::SeqCst)
}

#[test]
fn warm_convolve_loop_is_allocation_free() {
    // Bucketed inputs shaped like alg_d's: 8-point size distributions,
    // 4-point selectivity factors.
    let pts_a: Vec<(f64, f64)> = (0..8).map(|i| (100.0 + 17.0 * i as f64, 0.125)).collect();
    let pts_b: Vec<(f64, f64)> = (0..8).map(|i| (3.0 + 5.0 * i as f64, 0.125)).collect();
    let pts_sel: Vec<(f64, f64)> = (0..4).map(|i| (0.1 + 0.2 * i as f64, 0.25)).collect();
    let a = Distribution::new(pts_a).unwrap();
    let b = Distribution::new(pts_b).unwrap();
    let sel = Distribution::new(pts_sel).unwrap();

    let mut scratch = ConvolveScratch::new();
    let mut sink = 0.0f64;
    let steady = |scratch: &mut ConvolveScratch, sink: &mut f64| {
        // The alg_d node pipeline: size product rebucketed to 8 points...
        let prod = scratch.product_rebucket(&a, &b, |x, y| x * y, 8).unwrap();
        let sized = scratch
            .product_rebucket(&prod, &sel, |s, f| s * f, 8)
            .unwrap();
        // ...plus a fused convolve-expect (the utility-extension step).
        *sink += scratch
            .convolve_expect(&sized, &prod, |v| v.sqrt())
            .unwrap();
    };

    // Warm-up: buffers grow to their steady-state capacity here.
    steady(&mut scratch, &mut sink);

    let events = count_allocs(|| {
        for _ in 0..100 {
            steady(&mut scratch, &mut sink);
        }
    });
    assert!(sink.is_finite());
    assert_eq!(
        events, 0,
        "warm scratch loop performed {events} heap allocations"
    );
}

#[test]
fn small_distribution_construction_is_allocation_free() {
    // Constructing a <= 8-point distribution from a pre-collected slice
    // must stay inline: lec_core clones these on every DP seed row.
    let pts: Vec<(f64, f64)> = (0..8).map(|i| (1.0 + i as f64, 0.125)).collect();
    let d = Distribution::new(pts.clone()).unwrap();
    let events = count_allocs(|| {
        for _ in 0..50 {
            let c = d.clone();
            assert_eq!(c.len(), 8);
        }
    });
    assert_eq!(
        events, 0,
        "cloning an inline distribution allocated {events} times"
    );
}
