//! Costing *given* plans: deterministic, phased, expected, and full cost
//! distributions.
//!
//! These evaluators and the dynamic programs share the same step-accounting
//! helpers, so a plan's DP cost and its evaluated cost agree exactly — a
//! property the theorem tests rely on.

use crate::env::PhaseDists;
use lec_cost::{AccessMethod, CostModel};
use lec_plan::{JoinQuery, Plan, Relation};
use lec_stats::Distribution;

/// Access-path step: `(cost, output pages)`.
///
/// Plain full scans are free (the consuming join's formula reads the base
/// table); a selective scan reads every page and materializes the filtered
/// result; an index scan pays a random-access premium per output page plus
/// a fixed descend cost, which beats the full scan for selective predicates
/// on large tables.
pub(crate) fn access_step(rel: &Relation, method: AccessMethod) -> (f64, f64) {
    let out = rel.effective_pages();
    match method {
        AccessMethod::FullScan => {
            if rel.local_selectivity >= 1.0 {
                (0.0, out)
            } else {
                (rel.pages + out, out)
            }
        }
        AccessMethod::IndexScan => (2.0 + 3.0 * out, out),
    }
}

/// Access paths applicable to a relation: full scan always; index scan only
/// when an index exists and there is a local predicate to push into it.
pub(crate) fn access_choices(rel: &Relation) -> Vec<AccessMethod> {
    let mut v = vec![AccessMethod::FullScan];
    if rel.has_index && rel.local_selectivity < 1.0 {
        v.push(AccessMethod::IndexScan);
    }
    v
}

/// Join step cost on top of the children: the join formula plus
/// materializing the output.
pub(crate) fn join_step<M: CostModel + ?Sized>(
    model: &M,
    method: lec_cost::JoinMethod,
    left_pages: f64,
    right_pages: f64,
    out_pages: f64,
    memory: f64,
) -> f64 {
    model.join_cost(method, left_pages, right_pages, memory) + out_pages
}

/// Sort step cost: the sort formula plus materializing the output.
pub(crate) fn sort_step<M: CostModel + ?Sized>(model: &M, pages: f64, memory: f64) -> f64 {
    model.sort_cost(pages, memory) + pages
}

/// Cost of `plan` when every phase sees memory `mem_of(phase)`. Phases are
/// numbered in post-order over join and sort operators (§3.5).
pub fn plan_cost_phased<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    plan: &Plan,
    mem_of: &mut impl FnMut(usize) -> f64,
) -> f64 {
    fn walk<M: CostModel + ?Sized>(
        query: &JoinQuery,
        model: &M,
        plan: &Plan,
        phase: &mut usize,
        mem_of: &mut impl FnMut(usize) -> f64,
    ) -> (f64, f64) {
        match plan {
            Plan::Access { rel, method } => access_step(query.relation(*rel), *method),
            Plan::Join {
                left,
                right,
                method,
                ..
            } => {
                let (lc, lp) = walk(query, model, left, phase, mem_of);
                let (rc, rp) = walk(query, model, right, phase, mem_of);
                let out = query.result_pages(plan.rel_set());
                let m = mem_of(*phase);
                *phase += 1;
                (lc + rc + join_step(model, *method, lp, rp, out, m), out)
            }
            Plan::Sort { input, .. } => {
                let (ic, ip) = walk(query, model, input, phase, mem_of);
                let m = mem_of(*phase);
                *phase += 1;
                (ic + sort_step(model, ip, m), ip)
            }
        }
    }
    let mut phase = 0;
    walk(query, model, plan, &mut phase, mem_of).0
}

/// Cost of `plan` under one constant memory value (the static §3.4 world).
pub fn plan_cost_at<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    plan: &Plan,
    memory: f64,
) -> f64 {
    plan_cost_phased(query, model, plan, &mut |_| memory)
}

/// Expected cost of `plan` under per-phase memory distributions.
///
/// Because plan cost is a *sum* of per-phase costs and each phase's cost
/// depends only on that phase's memory, linearity of expectation gives
/// `E[cost] = Σ_phase E_{marginal at phase}[phase cost]` — no enumeration
/// over the `b^{n-1}` memory sequences is needed. (The tests check this
/// against explicit sequence enumeration.)
pub fn expected_cost<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    plan: &Plan,
    phases: &PhaseDists,
) -> f64 {
    fn walk<M: CostModel + ?Sized>(
        query: &JoinQuery,
        model: &M,
        plan: &Plan,
        phase: &mut usize,
        phases: &PhaseDists,
    ) -> (f64, f64) {
        match plan {
            Plan::Access { rel, method } => access_step(query.relation(*rel), *method),
            Plan::Join {
                left,
                right,
                method,
                ..
            } => {
                let (lc, lp) = walk(query, model, left, phase, phases);
                let (rc, rp) = walk(query, model, right, phase, phases);
                let out = query.result_pages(plan.rel_set());
                let dist = phases.at(*phase);
                *phase += 1;
                let step =
                    model.expected_join_step(*method, lp, rp, out, dist.values(), dist.probs());
                (lc + rc + step, out)
            }
            Plan::Sort { input, .. } => {
                let (ic, ip) = walk(query, model, input, phase, phases);
                let dist = phases.at(*phase);
                *phase += 1;
                (
                    ic + model.expected_sort_step(ip, dist.values(), dist.probs()),
                    ip,
                )
            }
        }
    }
    let mut phase = 0;
    walk(query, model, plan, &mut phase, phases).0
}

/// The static-case cost *profile*: the plan's cost at each memory value, in
/// the same order as `values`. This is the object the Pareto DP works with.
pub fn cost_profile<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    plan: &Plan,
    values: &[f64],
) -> Vec<f64> {
    values
        .iter()
        .map(|&m| plan_cost_at(query, model, plan, m))
        .collect()
}

/// The static-case cost distribution of a plan: the pushforward of the
/// memory distribution through the plan's cost function. Equal costs from
/// different memory values merge their mass.
pub fn cost_distribution_static<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    plan: &Plan,
    memory: &Distribution,
) -> Distribution {
    memory
        .map(|m| plan_cost_at(query, model, plan, m))
        .expect("finite costs from finite memory support") // lec-lint: allow(panic-reachability) — the cost model maps a finite memory support through finite arithmetic, so the min exists
}

/// Renders a plan as an indented tree with each operator's *expected* step
/// cost and estimated output size — EXPLAIN with uncertainty-aware numbers.
pub fn explain_with_costs<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    plan: &Plan,
    phases: &PhaseDists,
) -> String {
    fn walk<M: CostModel + ?Sized>(
        query: &JoinQuery,
        model: &M,
        plan: &Plan,
        phase: &mut usize,
        phases: &PhaseDists,
        depth: usize,
        out: &mut String,
    ) -> (f64, f64) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match plan {
            Plan::Access { rel, method } => {
                let r = query.relation(*rel);
                let (cost, pages) = access_step(r, *method);
                let _ = writeln!(
                    out,
                    "{pad}{method} {}  [cost {cost:.0}, out {pages:.0} pages]",
                    r.name
                );
                (cost, pages)
            }
            Plan::Join {
                left,
                right,
                method,
                key,
            } => {
                // Children are rendered after the operator line, so stage
                // the subtree text.
                let mut left_txt = String::new();
                let (lc, lp) = walk(query, model, left, phase, phases, depth + 1, &mut left_txt);
                let mut right_txt = String::new();
                let (rc, rp) = walk(
                    query,
                    model,
                    right,
                    phase,
                    phases,
                    depth + 1,
                    &mut right_txt,
                );
                let out_pages = query.result_pages(plan.rel_set());
                let dist = phases.at(*phase);
                *phase += 1;
                let step = model.expected_join_step(
                    *method,
                    lp,
                    rp,
                    out_pages,
                    dist.values(),
                    dist.probs(),
                );
                let on = key.map_or("(cross)".to_string(), |k| format!("on {k}"));
                let _ = writeln!(
                    out,
                    "{pad}join[{method}] {on}  [E[step] {step:.0}, out {out_pages:.0} pages]"
                );
                out.push_str(&left_txt);
                out.push_str(&right_txt);
                (lc + rc + step, out_pages)
            }
            Plan::Sort { input, key } => {
                let mut in_txt = String::new();
                let (ic, ip) = walk(query, model, input, phase, phases, depth + 1, &mut in_txt);
                let dist = phases.at(*phase);
                *phase += 1;
                let step = model.expected_sort_step(ip, dist.values(), dist.probs());
                let _ = writeln!(out, "{pad}sort by {key}  [E[step] {step:.0}]");
                out.push_str(&in_txt);
                (ic + step, ip)
            }
        }
    }
    let mut out = String::new();
    let mut phase = 0;
    let (total, _) = walk(query, model, plan, &mut phase, phases, 0, &mut out);
    use std::fmt::Write;
    let _ = writeln!(out, "total expected cost: {total:.0}");
    out
}

/// [`explain_with_costs`] enriched with the optimizer's search counters:
/// the plan tree and cost totals followed by the [`OptStats`] block
/// (masks expanded, candidates priced, entries written, precompute table
/// sizes, per-rank frontier sizes and wall time) from the
/// `*_with_stats` optimizer entry point that produced the plan.
///
/// [`OptStats`]: crate::stats::OptStats
pub fn explain_with_costs_and_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    plan: &Plan,
    phases: &PhaseDists,
    stats: &crate::stats::OptStats,
) -> String {
    let mut out = explain_with_costs(query, model, plan, phases);
    out.push_str(&stats.render());
    out
}

/// Exact expected cost of a plan when relation sizes and predicate
/// selectivities are themselves distributed (the multi-parameter world of
/// §3.6), by *joint enumeration*: every combination of size and selectivity
/// values is priced and probability-weighted. Exponential in the number of
/// uncertain parameters — this is the ground truth Algorithm D's
/// independence-propagation approximation is judged against (X6), not a
/// production path.
pub fn expected_cost_joint<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    plan: &Plan,
    sizes: &crate::alg_d::SizeModel,
    phases: &PhaseDists,
) -> f64 {
    let n = query.n();
    let np = query.predicates().len();
    debug_assert_eq!(sizes.rel_sizes.len(), n);
    debug_assert_eq!(sizes.selectivities.len(), np);

    // Odometer over all parameter assignments.
    let dims: Vec<&lec_stats::Distribution> = sizes
        .rel_sizes
        .iter()
        .chain(sizes.selectivities.iter())
        .collect();
    let mut idx = vec![0usize; dims.len()];
    let mut total = 0.0;
    loop {
        let mut prob = 1.0;
        for (d, &i) in dims.iter().zip(&idx) {
            prob *= d.probs()[i];
        }
        // Build the query instance for this assignment.
        let relations: Vec<Relation> = query
            .relations()
            .iter()
            .enumerate()
            .map(|(r, rel)| {
                // The size distribution models *effective* pages; realize it
                // by scaling the relation so effective_pages matches.
                let pages = dims[r].values()[idx[r]] / rel.local_selectivity;
                let mut out = rel.clone();
                out.pages = pages.max(1.0);
                out
            })
            .collect();
        let predicates: Vec<lec_plan::JoinPred> = query
            .predicates()
            .iter()
            .enumerate()
            .map(|(p, pred)| {
                let mut out = *pred;
                out.selectivity = dims[n + p].values()[idx[n + p]].clamp(1e-300, 1.0); // lec-lint: allow(panic-reachability) — dims holds n relation dims followed by the predicate dims, so n + p is in bounds
                out
            })
            .collect();
        let instance = JoinQuery::new(relations, predicates, query.required_order())
            .expect("instance stays valid"); // lec-lint: allow(panic-reachability) — rescaling pages and selectivities of a valid query preserves validity
        let e = expected_cost(&instance, model, plan, phases);
        total += prob * e;

        // Advance the odometer.
        let mut k = 0;
        loop {
            if k == dims.len() {
                return total;
            }
            idx[k] += 1;
            if idx[k] < dims[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemoryModel;
    use lec_cost::{JoinMethod, PaperCostModel};
    use lec_plan::{JoinPred, KeyId, Relation};
    use lec_stats::MarkovChain;

    /// Example 1.1's query: A(1e6 pages) ⋈ B(4e5 pages), result 3000 pages,
    /// ordered by the join column.
    fn example_1_1() -> JoinQuery {
        JoinQuery::new(
            vec![
                Relation::new("A", 1_000_000.0, 5e7),
                Relation::new("B", 400_000.0, 2e7),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 3000.0 / (1_000_000.0 * 400_000.0),
                key: KeyId(0),
            }],
            Some(KeyId(0)),
        )
        .unwrap()
    }

    fn plan1() -> Plan {
        // Sort-merge join: output already ordered.
        Plan::join(
            Plan::scan(0),
            Plan::scan(1),
            JoinMethod::SortMerge,
            Some(KeyId(0)),
        )
    }

    fn plan2() -> Plan {
        // Grace hash join + explicit sort.
        Plan::sort(
            Plan::join(
                Plan::scan(0),
                Plan::scan(1),
                JoinMethod::GraceHash,
                Some(KeyId(0)),
            ),
            KeyId(0),
        )
    }

    #[test]
    fn example_1_1_costs_at_fixed_memory() {
        let q = example_1_1();
        let m = PaperCostModel;
        // Plan 1 at 2000: join 2.8e6 + materialize 3000.
        assert_eq!(plan_cost_at(&q, &m, &plan1(), 2000.0), 2_803_000.0);
        // Plan 1 at 700: 5.6e6 + 3000.
        assert_eq!(plan_cost_at(&q, &m, &plan1(), 700.0), 5_603_000.0);
        // Plan 2 at both: join 2.8e6 + 3000 + sort 6000 + 3000.
        assert_eq!(plan_cost_at(&q, &m, &plan2(), 2000.0), 2_812_000.0);
        assert_eq!(plan_cost_at(&q, &m, &plan2(), 700.0), 2_812_000.0);
    }

    #[test]
    fn example_1_1_expected_costs() {
        let q = example_1_1();
        let m = PaperCostModel;
        let mem = Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap();
        let table = MemoryModel::Static(mem).table(2).unwrap();
        let e1 = expected_cost(&q, &m, &plan1(), &table);
        let e2 = expected_cost(&q, &m, &plan2(), &table);
        assert!((e1 - (0.8 * 2_803_000.0 + 0.2 * 5_603_000.0)).abs() < 1e-6);
        assert!((e2 - 2_812_000.0).abs() < 1e-6);
        assert!(e2 < e1, "Plan 2 must win in expectation");
    }

    #[test]
    fn expected_cost_equals_mixture_of_fixed_costs_static() {
        let q = example_1_1();
        let m = PaperCostModel;
        let mem = Distribution::new([(500.0, 0.3), (900.0, 0.3), (2000.0, 0.4)]).unwrap();
        let table = MemoryModel::Static(mem.clone()).table(4).unwrap();
        for plan in [plan1(), plan2()] {
            let direct: f64 = mem
                .iter()
                .map(|(v, p)| p * plan_cost_at(&q, &m, &plan, v))
                .sum();
            let e = expected_cost(&q, &m, &plan, &table);
            assert!((direct - e).abs() < 1e-6 * direct.max(1.0));
        }
    }

    #[test]
    fn dynamic_expected_cost_matches_sequence_enumeration() {
        // Theorem 3.4's accounting: E over memory *sequences* equals the
        // per-phase-marginal sum by linearity.
        let q = example_1_1();
        let m = PaperCostModel;
        let chain = MarkovChain::random_walk(vec![600.0, 1100.0, 2100.0], 0.6).unwrap();
        let initial = vec![0.3, 0.4, 0.3];
        let model = MemoryModel::dynamic(chain.clone(), initial.clone()).unwrap();
        for plan in [plan1(), plan2()] {
            let phases = plan.phase_count();
            let table = model.table(phases).unwrap();
            let by_marginals = expected_cost(&q, &m, &plan, &table);
            let by_sequences: f64 = chain
                .enumerate_sequences(&initial, phases)
                .into_iter()
                .map(|(seq, p)| {
                    let mems: Vec<f64> = seq.iter().map(|&i| chain.states()[i]).collect();
                    p * plan_cost_phased(&q, &m, &plan, &mut |k| mems[k])
                })
                .sum();
            assert!(
                (by_marginals - by_sequences).abs() < 1e-6 * by_sequences.max(1.0),
                "{by_marginals} vs {by_sequences}"
            );
        }
    }

    #[test]
    fn cost_profile_and_distribution_agree() {
        let q = example_1_1();
        let m = PaperCostModel;
        let mem = Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap();
        let profile = cost_profile(&q, &m, &plan1(), mem.values());
        assert_eq!(profile, vec![5_603_000.0, 2_803_000.0]);
        let dist = cost_distribution_static(&q, &m, &plan1(), &mem);
        assert!(
            (dist.mean()
                - mem
                    .iter()
                    .zip(&profile)
                    .map(|((_, p), c)| p * c)
                    .sum::<f64>())
            .abs()
                < 1e-6
        );
        // Plan 2's cost is memory-independent here: distribution collapses.
        let dist2 = cost_distribution_static(&q, &m, &plan2(), &mem);
        assert!(dist2.is_point());
    }

    #[test]
    fn explain_with_costs_totals_match_expected_cost() {
        let q = example_1_1();
        let model = PaperCostModel;
        let mem = Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap();
        let phases = MemoryModel::Static(mem).table(2).unwrap();
        for plan in [plan1(), plan2()] {
            let text = explain_with_costs(&q, &model, &plan, &phases);
            let expected = expected_cost(&q, &model, &plan, &phases);
            let total_line = text
                .lines()
                .find(|l| l.starts_with("total expected cost:"))
                .unwrap();
            let total: f64 = total_line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(
                (total - expected).abs() <= 1.0,
                "explain total {total} vs {expected}\n{text}"
            );
            assert!(text.contains("E[step]"));
            assert!(text.contains("scan A"));
        }
    }

    #[test]
    fn explain_with_stats_appends_the_counter_block() {
        let q = example_1_1();
        let model = PaperCostModel;
        let mem = Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap();
        let memory = MemoryModel::Static(mem);
        let phases = memory.table(2).unwrap();
        let (opt, stats) = crate::alg_c::optimize_with_stats(&q, &model, &memory).unwrap();
        let plain = explain_with_costs(&q, &model, &opt.plan, &phases);
        let rich = explain_with_costs_and_stats(&q, &model, &opt.plan, &phases, &stats);
        assert!(
            rich.starts_with(&plain),
            "stats block is appended, not interleaved"
        );
        assert!(rich.contains("-- optimizer stats (alg_c, n=2) --"));
        assert!(rich.contains("masks expanded:    1"));
        assert!(rich.contains("candidates priced:"));
        assert!(rich.contains("precompute:"));
    }

    #[test]
    fn joint_enumeration_reduces_to_expected_cost_for_point_sizes() {
        let q = example_1_1();
        let model = PaperCostModel;
        let mem = Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap();
        let phases = MemoryModel::Static(mem).table(2).unwrap();
        let sizes = crate::alg_d::SizeModel::certain(&q).unwrap();
        for plan in [plan1(), plan2()] {
            let joint = expected_cost_joint(&q, &model, &plan, &sizes, &phases);
            let direct = expected_cost(&q, &model, &plan, &phases);
            assert!((joint - direct).abs() < 1e-6 * direct.max(1.0));
        }
    }

    #[test]
    fn joint_enumeration_weights_every_assignment() {
        // Two-point size distribution on B: the joint expectation must be
        // the probability mix of the two instantiated expectations.
        let q = example_1_1();
        let model = PaperCostModel;
        let mem = Distribution::point(2000.0).unwrap();
        let phases = MemoryModel::Static(mem).table(2).unwrap();
        let mut sizes = crate::alg_d::SizeModel::certain(&q).unwrap();
        sizes.rel_sizes[1] = Distribution::new([(200_000.0, 0.5), (600_000.0, 0.5)]).unwrap();
        let joint = expected_cost_joint(&q, &model, &plan1(), &sizes, &phases);
        let mut manual = 0.0;
        for b in [200_000.0, 600_000.0] {
            let inst = JoinQuery::new(
                vec![
                    Relation::new("A", 1_000_000.0, 5e7),
                    Relation::new("B", b, 2e7),
                ],
                vec![JoinPred {
                    left: 0,
                    right: 1,
                    selectivity: 3000.0 / 4e11,
                    key: KeyId(0),
                }],
                Some(KeyId(0)),
            )
            .unwrap();
            manual += 0.5 * expected_cost(&inst, &model, &plan1(), &phases);
        }
        assert!((joint - manual).abs() < 1e-6 * manual);
    }

    #[test]
    fn access_paths_cost_as_documented() {
        let plain = Relation::new("r", 100.0, 1000.0);
        assert_eq!(access_step(&plain, AccessMethod::FullScan), (0.0, 100.0));
        assert_eq!(access_choices(&plain), vec![AccessMethod::FullScan]);

        let filtered = Relation::new("r", 100.0, 1000.0).with_local_selectivity(0.1);
        assert_eq!(
            access_step(&filtered, AccessMethod::FullScan),
            (110.0, 10.0)
        );

        let indexed = Relation::new("r", 100.0, 1000.0)
            .with_local_selectivity(0.1)
            .with_index();
        assert_eq!(access_step(&indexed, AccessMethod::IndexScan), (32.0, 10.0));
        assert_eq!(access_choices(&indexed).len(), 2);
    }
}
