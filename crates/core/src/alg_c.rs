//! Algorithm C (§3.4–3.5): dynamic programming directly on expected cost.
//!
//! This is the paper's exact LEC optimizer. It is the System R DP with one
//! change: each join step is priced at its *expected* cost over the memory
//! distribution in effect during that step's phase ("this computation
//! requires b evaluations of the cost formula"). Theorem 3.3 shows the
//! result is the LEC left-deep plan; Theorem 3.4 extends it to dynamically
//! varying memory, where the phase distributions come from evolving the
//! initial distribution along the Markov chain — exactly what
//! [`MemoryModel::table`] computes.
//!
//! Like every instantiation of the generic left-deep DP, the winning plan
//! passes through the plan-IR verifier in debug builds (`dp::finalize`
//! calls [`crate::verify::debug_verify_plan`]); this module adds no hook of
//! its own.

use crate::dp::{
    optimize_left_deep_par_with_stats, optimize_left_deep_with_stats, DpOptions, ExpectedCoster,
    Optimized,
};
use crate::env::MemoryModel;
use crate::error::CoreError;
use crate::par::Parallelism;
use crate::stats::OptStats;
use lec_cost::CostModel;
use lec_plan::JoinQuery;

/// Computes the LEC left-deep plan (Theorems 3.3 / 3.4).
///
/// # Examples
///
/// ```
/// use lec_core::{alg_c, MemoryModel};
/// use lec_cost::PaperCostModel;
/// use lec_plan::{JoinPred, JoinQuery, KeyId, Relation};
/// use lec_stats::Distribution;
///
/// let query = JoinQuery::new(
///     vec![
///         Relation::new("a", 5_000.0, 2.5e5),
///         Relation::new("b", 800.0, 4e4),
///     ],
///     vec![JoinPred { left: 0, right: 1, selectivity: 1e-4, key: KeyId(0) }],
///     None,
/// )?;
/// let memory = MemoryModel::Static(Distribution::new([(30.0, 0.4), (300.0, 0.6)])?);
/// let lec = alg_c::optimize(&query, &PaperCostModel, &memory)?;
/// println!("{}", lec.plan.explain(&query));
/// assert!(lec.cost > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
) -> Result<Optimized, CoreError> {
    optimize_with_options(query, model, memory, DpOptions::default())
}

/// [`optimize`] with explicit DP options (the `ignore_orders` ablation).
pub fn optimize_with_options<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    options: DpOptions,
) -> Result<Optimized, CoreError> {
    Ok(optimize_with_options_and_stats(query, model, memory, options)?.0)
}

/// [`optimize`], also returning the search-space [`OptStats`].
pub fn optimize_with_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
) -> Result<(Optimized, OptStats), CoreError> {
    optimize_with_options_and_stats(query, model, memory, DpOptions::default())
}

/// [`optimize_with_options`], also returning the search-space [`OptStats`].
pub fn optimize_with_options_and_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    options: DpOptions,
) -> Result<(Optimized, OptStats), CoreError> {
    // Phases: n-1 joins plus a possible root sort.
    let phases = memory.table(query.n().max(2))?;
    let coster = ExpectedCoster::new(model, &phases);
    let (best, mut stats) = optimize_left_deep_with_stats(query, &coster, options)?;
    stats.algorithm = "alg_c";
    Ok((best, stats))
}

/// [`optimize`] on the rank-parallel DP. Bit-identical to the serial
/// result; queries below the parallel cutoff run serially.
pub fn optimize_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    par: &Parallelism,
) -> Result<Optimized, CoreError> {
    optimize_with_options_par(query, model, memory, DpOptions::default(), par)
}

/// [`optimize_with_options`] on the rank-parallel DP.
pub fn optimize_with_options_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    options: DpOptions,
    par: &Parallelism,
) -> Result<Optimized, CoreError> {
    Ok(optimize_with_options_and_stats_par(query, model, memory, options, par)?.0)
}

/// [`optimize_par`], also returning the search-space [`OptStats`]. The
/// counters are identical to [`optimize_with_stats`]'s on the same query.
pub fn optimize_with_stats_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    par: &Parallelism,
) -> Result<(Optimized, OptStats), CoreError> {
    optimize_with_options_and_stats_par(query, model, memory, DpOptions::default(), par)
}

/// [`optimize_with_options_par`], also returning the search-space
/// [`OptStats`].
pub fn optimize_with_options_and_stats_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    options: DpOptions,
    par: &Parallelism,
) -> Result<(Optimized, OptStats), CoreError> {
    let phases = memory.table(query.n().max(2))?;
    let coster = ExpectedCoster::new(model, &phases);
    let (best, mut stats) = optimize_left_deep_par_with_stats(query, &coster, options, par)?;
    stats.algorithm = "alg_c";
    Ok((best, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::expected_cost;
    use crate::exhaustive;
    use crate::lsc;
    use lec_cost::{CountingModel, JoinMethod, PaperCostModel};
    use lec_plan::{JoinPred, KeyId, Plan, Relation};
    use lec_stats::{Distribution, MarkovChain};

    fn example_1_1() -> JoinQuery {
        JoinQuery::new(
            vec![
                Relation::new("A", 1_000_000.0, 5e7),
                Relation::new("B", 400_000.0, 2e7),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 3000.0 / 4e11,
                key: KeyId(0),
            }],
            Some(KeyId(0)),
        )
        .unwrap()
    }

    fn bimodal() -> Distribution {
        Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap()
    }

    fn chain_query(n: usize) -> JoinQuery {
        let relations = (0..n)
            .map(|i| Relation::new(format!("r{i}"), 200.0 * (i + 1) as f64, 1e4))
            .collect();
        let predicates = (0..n - 1)
            .map(|i| JoinPred {
                left: i,
                right: i + 1,
                selectivity: 0.002,
                key: KeyId(i),
            })
            .collect();
        JoinQuery::new(relations, predicates, Some(KeyId(n - 2))).unwrap()
    }

    #[test]
    fn example_1_1_lec_chooses_plan2_while_lsc_chooses_plan1() {
        let q = example_1_1();
        let model = PaperCostModel;
        let mem = MemoryModel::Static(bimodal());

        let lec = optimize(&q, &model, &mem).unwrap();
        // LEC: Grace hash + explicit sort.
        match &lec.plan {
            Plan::Sort { input, .. } => match &**input {
                Plan::Join { method, .. } => assert_eq!(*method, JoinMethod::GraceHash),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("expected sort root, got:\n{}", other.explain(&q)),
        }
        assert!((lec.cost - 2_812_000.0).abs() < 1.0);

        // LSC at the mode picks the sort-merge plan, which is worse in
        // expectation — the paper's headline comparison.
        let lsc_plan = lsc::optimize_at_mode(&q, &model, &bimodal()).unwrap();
        let phases = mem.table(2).unwrap();
        let lsc_expected = expected_cost(&q, &model, &lsc_plan.plan, &phases);
        assert!(lec.cost < lsc_expected);
        assert!((lsc_expected - 3_363_000.0).abs() < 1.0);
    }

    #[test]
    fn one_bucket_reduces_to_lsc() {
        // "the algorithm with one bucket reduces to the standard System R
        // algorithm" (§3.7).
        let q = chain_query(5);
        let model = PaperCostModel;
        for mem in [40.0, 400.0, 4000.0] {
            let lec = optimize(
                &q,
                &model,
                &MemoryModel::Static(Distribution::point(mem).unwrap()),
            )
            .unwrap();
            let lsc = lsc::optimize_at(&q, &model, mem).unwrap();
            assert_eq!(lec.plan, lsc.plan);
            assert!((lec.cost - lsc.cost).abs() < 1e-9 * lsc.cost.max(1.0));
        }
    }

    #[test]
    fn theorem_3_3_matches_exhaustive_static() {
        let q = chain_query(4);
        let model = PaperCostModel;
        let dist = Distribution::new([(30.0, 0.3), (150.0, 0.4), (900.0, 0.3)]).unwrap();
        let mem = MemoryModel::Static(dist);
        let lec = optimize(&q, &model, &mem).unwrap();
        let phases = mem.table(q.n()).unwrap();
        let truth = exhaustive::exhaustive_lec(&q, &model, &phases).unwrap();
        assert!(
            (lec.cost - truth.cost).abs() <= 1e-6 * truth.cost.max(1.0),
            "DP {} vs exhaustive {}",
            lec.cost,
            truth.cost
        );
    }

    #[test]
    fn theorem_3_4_matches_exhaustive_dynamic() {
        let q = chain_query(4);
        let model = PaperCostModel;
        let chain = MarkovChain::random_walk(vec![25.0, 120.0, 800.0], 0.7).unwrap();
        let mem = MemoryModel::dynamic(chain, vec![0.2, 0.5, 0.3]).unwrap();
        let lec = optimize(&q, &model, &mem).unwrap();
        let phases = mem.table(q.n()).unwrap();
        let truth = exhaustive::exhaustive_lec(&q, &model, &phases).unwrap();
        assert!(
            (lec.cost - truth.cost).abs() <= 1e-6 * truth.cost.max(1.0),
            "DP {} vs exhaustive {}",
            lec.cost,
            truth.cost
        );
    }

    #[test]
    fn work_scales_linearly_in_buckets() {
        // §3.4: "the cost of the computation is b times the cost of the
        // standard computation using a single memory size" — measured in
        // cost-formula evaluations.
        let q = chain_query(5);
        let evals_for = |b: usize| {
            let model = CountingModel::new(PaperCostModel);
            let values: Vec<(f64, f64)> = (0..b)
                .map(|i| (50.0 * (i + 1) as f64, 1.0 / b as f64))
                .collect();
            let mem = MemoryModel::Static(Distribution::new(values).unwrap());
            optimize(&q, &model, &mem).unwrap();
            model.evaluations()
        };
        let e1 = evals_for(1);
        let e4 = evals_for(4);
        let e8 = evals_for(8);
        assert_eq!(e4, 4 * e1);
        assert_eq!(e8, 8 * e1);
    }

    #[test]
    fn lec_expected_cost_never_above_lsc_choices() {
        // The contribution-1 guarantee: LEC ≤ LSC(mean), LSC(mode), and any
        // other specific value, measured in expected cost.
        let q = chain_query(4);
        let model = PaperCostModel;
        let dist = Distribution::new([(20.0, 0.25), (90.0, 0.5), (2500.0, 0.25)]).unwrap();
        let mem = MemoryModel::Static(dist.clone());
        let phases = mem.table(q.n()).unwrap();
        let lec = optimize(&q, &model, &mem).unwrap();
        for candidate in [
            lsc::optimize_at_mean(&q, &model, &dist).unwrap(),
            lsc::optimize_at_mode(&q, &model, &dist).unwrap(),
            lsc::optimize_at(&q, &model, 20.0).unwrap(),
            lsc::optimize_at(&q, &model, 2500.0).unwrap(),
        ] {
            let e = expected_cost(&q, &model, &candidate.plan, &phases);
            assert!(lec.cost <= e + 1e-9 * e.max(1.0));
        }
    }
}
