//! The least-specific-cost (LSC) baseline: System R dynamic programming at
//! one fixed parameter value (§2.2, Theorem 2.1).
//!
//! "Current optimizers simply approximate each distribution by using the
//! mean or modal value" (§1) — [`optimize_at_mean`] and [`optimize_at_mode`]
//! are exactly those two baselines.

use crate::dp::{optimize_left_deep, DpOptions, FixedMemoryCoster, Optimized};
use crate::error::CoreError;
use lec_cost::CostModel;
use lec_plan::JoinQuery;
use lec_stats::Distribution;

/// The LSC left-deep plan for a specific memory value (Theorem 2.1).
pub fn optimize_at<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: f64,
) -> Result<Optimized, CoreError> {
    if !(memory.is_finite() && memory > 0.0) {
        return Err(CoreError::BadParameter(format!(
            "memory must be positive, got {memory}"
        )));
    }
    let coster = FixedMemoryCoster::new(model, memory);
    optimize_left_deep(query, &coster, DpOptions::default())
}

/// The traditional optimizer with the distribution summarized by its mean.
pub fn optimize_at_mean<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
) -> Result<Optimized, CoreError> {
    optimize_at(query, model, memory.mean())
}

/// The traditional optimizer with the distribution summarized by its mode.
pub fn optimize_at_mode<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
) -> Result<Optimized, CoreError> {
    optimize_at(query, model, memory.mode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::plan_cost_at;
    use crate::exhaustive;
    use lec_cost::{JoinMethod, PaperCostModel};
    use lec_plan::{JoinPred, KeyId, Plan, Relation};

    fn example_1_1() -> JoinQuery {
        JoinQuery::new(
            vec![
                Relation::new("A", 1_000_000.0, 5e7),
                Relation::new("B", 400_000.0, 2e7),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 3000.0 / 4e11,
                key: KeyId(0),
            }],
            Some(KeyId(0)),
        )
        .unwrap()
    }

    #[test]
    fn lsc_picks_plan1_at_high_memory() {
        // At the mode (2000) and the mean (1740) the sort-merge plan wins —
        // the trap Example 1.1 sets for traditional optimizers.
        let q = example_1_1();
        for memory in [2000.0, 1740.0] {
            let opt = optimize_at(&q, &PaperCostModel, memory).unwrap();
            match &opt.plan {
                Plan::Join { method, .. } => assert_eq!(*method, JoinMethod::SortMerge),
                other => panic!("expected a bare SM join, got:\n{}", other.explain(&q)),
            }
        }
    }

    #[test]
    fn lsc_picks_plan2_at_low_memory() {
        let q = example_1_1();
        let opt = optimize_at(&q, &PaperCostModel, 700.0).unwrap();
        // Grace hash + sort is cheaper when SM would need an extra pass.
        match &opt.plan {
            Plan::Sort { input, .. } => match &**input {
                Plan::Join { method, .. } => assert_eq!(*method, JoinMethod::GraceHash),
                other => panic!("expected hash join under sort, got {other:?}"),
            },
            other => panic!("expected sort at root, got:\n{}", other.explain(&q)),
        }
    }

    #[test]
    fn theorem_2_1_lsc_is_optimal_among_left_deep_plans() {
        // Exhaustive check over all left-deep plans for a 4-relation chain.
        let relations = vec![
            Relation::new("a", 3000.0, 3e4),
            Relation::new("b", 500.0, 5e3),
            Relation::new("c", 8000.0, 8e4),
            Relation::new("d", 1200.0, 1.2e4),
        ];
        let predicates = vec![
            JoinPred {
                left: 0,
                right: 1,
                selectivity: 1e-3,
                key: KeyId(0),
            },
            JoinPred {
                left: 1,
                right: 2,
                selectivity: 1e-4,
                key: KeyId(1),
            },
            JoinPred {
                left: 2,
                right: 3,
                selectivity: 1e-3,
                key: KeyId(2),
            },
        ];
        let q = JoinQuery::new(relations, predicates, Some(KeyId(2))).unwrap();
        let model = PaperCostModel;
        for memory in [10.0, 100.0, 1000.0] {
            let opt = optimize_at(&q, &model, memory).unwrap();
            let mut best = f64::INFINITY;
            for plan in exhaustive::enumerate_left_deep(&q) {
                best = best.min(plan_cost_at(&q, &model, &plan, memory));
            }
            assert!(
                (opt.cost - best).abs() <= 1e-6 * best.max(1.0),
                "memory {memory}: DP found {}, exhaustive found {best}",
                opt.cost
            );
        }
    }

    #[test]
    fn rejects_nonpositive_memory() {
        let q = example_1_1();
        assert!(optimize_at(&q, &PaperCostModel, 0.0).is_err());
        assert!(optimize_at(&q, &PaperCostModel, f64::NAN).is_err());
    }
}
