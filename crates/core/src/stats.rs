//! Search-space observability for the optimizer family.
//!
//! Robust-plan work lives or dies by *observable* plan-space behavior, yet
//! until this module only top-`c` reported anything about its search (the
//! combination counters X4 measures). [`OptStats`] generalizes that: every
//! enumerator (`dp`/`alg_c`, `alg_d`, `topc`, `bushy`, `exhaustive`) and the
//! Pareto utility DP can report how many masks it expanded, how many
//! candidate (subplan × access × join-method) combinations it priced, how
//! many DP entries it wrote, how big the precomputed [`QueryTables`] were,
//! the Pareto frontier sizes per DP rank, and coarse wall time per rank.
//!
//! ### Determinism contract
//!
//! The counters in [`SearchCounters`] are accumulated **in mask order** —
//! the serial sweeps iterate the subset lattice rank by rank, and the
//! rank-parallel wavefronts gather per-mask counts back in the same order
//! (exactly how `topc` has always merged its combination counters). Serial
//! and parallel runs of the same enumerator therefore produce *identical*
//! counters, and plan results stay bit-for-bit unchanged; the equivalence
//! property tests assert both. Wall time ([`OptStats::rank_wall_ns`]) is
//! the one deliberately non-deterministic field and is excluded from every
//! equality comparison.
//!
//! [`QueryTables`]: crate::precompute::QueryTables

/// Deterministic search counters, identical between serial and
/// rank-parallel runs of the same enumerator on the same query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchCounters {
    /// Subset-lattice masks (cardinality ≥ 2) whose entry was computed.
    /// Zero for the exhaustive enumerators, which do not walk the lattice.
    pub masks_expanded: u64,
    /// Candidate (subplan × access × join-method) combinations priced.
    /// For `topc` this is the frontier-merge `combos_examined`; for the
    /// exhaustive enumerators it is the number of complete plans scored.
    pub candidates_priced: u64,
    /// Entries written into the DP table: the depth-1 seeds plus one per
    /// expanded mask (for `topc` and the Pareto DP, the *list/frontier
    /// lengths* actually kept).
    pub entries_written: u64,
    /// Largest Pareto frontier encountered at any mask of each rank
    /// (rank `k` holds subsets of cardinality `k + 2`). Empty for every
    /// scalar enumerator; populated by `pareto::optimize_with_stats`.
    pub frontier_per_rank: Vec<usize>,
}

/// Plan-cache behavior counters, folded into [`OptStats`] by the
/// `lec-serve` query service.
///
/// Deterministic under the same determinism contract as
/// [`SearchCounters`]: the serving loop processes its request stream
/// sequentially, so hits/misses/evictions/invalidations depend only on the
/// stream — never on the optimizer backend's thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Requests answered from a cached parametric entry.
    pub hits: u64,
    /// Requests that fell through to the optimizer.
    pub misses: u64,
    /// Entries displaced by the capacity bound (LRU order).
    pub evictions: u64,
    /// Entries dropped or migrated because drift recalibrated a statistic
    /// they were optimized under.
    pub invalidations: u64,
}

impl CacheCounters {
    /// Hit fraction over all lookups (zero when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// True when every field is zero (render elides the cache line then).
    pub fn is_zero(&self) -> bool {
        *self == CacheCounters::default()
    }
}

/// Fault/retry/degradation counters, folded into [`OptStats`] by the
/// `lec-serve` resilience layer.
///
/// Deterministic under the same contract as [`CacheCounters`]: faults come
/// from a seedable [`FaultSchedule`] keyed on simulated coordinates, so the
/// counters depend only on the request stream and the injection config —
/// never on wall clock or thread count.
///
/// [`FaultSchedule`]: https://docs.rs/lec-exec
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Faults the schedule actually fired during serving.
    pub faults_injected: u64,
    /// Execution attempts beyond the first (a retry switches plans down the
    /// fallback ladder before re-executing).
    pub retries: u64,
    /// Requests served by something other than the primary plan (a
    /// frontier fallback, the LSC baseline, or a breaker reroute).
    pub degraded_serves: u64,
    /// Circuit-breaker trips: fingerprints routed straight to the robust
    /// fallback after repeated faults, flagged for reoptimization.
    pub breaker_trips: u64,
    /// Shard-breaker trips: whole cache shards routed to the robust
    /// fallback (and flushed) after accumulating faults across their
    /// fingerprints — the coarse layer above per-fingerprint trips.
    pub shard_breaker_trips: u64,
    /// Degraded serves answered by a next-best Pareto-frontier plan.
    pub frontier_fallbacks: u64,
    /// Degraded serves answered by the LSC baseline (last resort).
    pub lsc_fallbacks: u64,
}

impl ResilienceCounters {
    /// True when every field is zero (render elides the line then).
    pub fn is_zero(&self) -> bool {
        *self == ResilienceCounters::default()
    }
}

/// Sizes of the precomputed per-query tables
/// ([`QueryTables`](crate::precompute::QueryTables), or the enumerator's
/// equivalent memoization).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrecomputeSizes {
    /// Best-access entries (one per relation).
    pub access_entries: usize,
    /// Result-size entries (one per subset, `2^n` including the unused
    /// empty-set slot).
    pub pages_entries: usize,
    /// Predicate-adjacency entries (two per join predicate).
    pub adjacency_entries: usize,
}

/// Observability record for one optimizer invocation.
///
/// Everything except [`rank_wall_ns`](Self::rank_wall_ns) is deterministic;
/// compare [`counters`](Self::counters) and
/// [`precompute`](Self::precompute) across serial/parallel runs, never the
/// wall times.
#[derive(Debug, Clone, Default)]
pub struct OptStats {
    /// Which enumerator produced this record (`"alg_c"`, `"alg_d"`,
    /// `"topc"`, `"bushy"`, `"exhaustive"`, `"pareto"`, `"batch"`, ...).
    pub algorithm: &'static str,
    /// Number of relations in the query.
    pub relations: usize,
    /// The deterministic search counters.
    pub counters: SearchCounters,
    /// Sizes of the precomputed tables the run consumed.
    pub precompute: PrecomputeSizes,
    /// Plan-cache behavior, when the record comes from a caching layer
    /// (all zeros for a bare optimizer run).
    pub cache: CacheCounters,
    /// Fault-injection and degradation behavior, when the record comes from
    /// the serving layer's resilience path (all zeros otherwise).
    pub resilience: ResilienceCounters,
    /// Coarse wall-clock nanoseconds per DP rank (rank `k` covers subsets
    /// of cardinality `k + 2`; a single entry for non-lattice enumerators).
    /// Scheduling-dependent: excluded from all determinism comparisons.
    pub rank_wall_ns: Vec<u64>,
    /// The (ε, δ) suboptimality certificate attached by a sample-backed
    /// optimization run (`None` for point-estimate runs).
    pub certificate: Option<crate::certificate::Certificate>,
}

impl OptStats {
    /// An empty record for `algorithm` on an `n`-relation query.
    pub fn new(algorithm: &'static str, relations: usize) -> Self {
        OptStats {
            algorithm,
            relations,
            ..Self::default()
        }
    }

    /// Total wall time across all ranks, in nanoseconds.
    pub fn total_wall_ns(&self) -> u64 {
        self.rank_wall_ns.iter().sum()
    }

    /// Folds another record into this one (for batch aggregation): counters
    /// and precompute sizes add, `frontier_per_rank` and `rank_wall_ns` add
    /// elementwise (shorter vectors are zero-extended), `relations` keeps
    /// the maximum. Summation in input order keeps the aggregate
    /// deterministic when the inputs are.
    pub fn absorb(&mut self, other: &OptStats) {
        self.relations = self.relations.max(other.relations);
        self.counters.masks_expanded += other.counters.masks_expanded;
        self.counters.candidates_priced += other.counters.candidates_priced;
        self.counters.entries_written += other.counters.entries_written;
        extend_max(
            &mut self.counters.frontier_per_rank,
            &other.counters.frontier_per_rank,
        );
        self.precompute.access_entries += other.precompute.access_entries;
        self.precompute.pages_entries += other.precompute.pages_entries;
        self.precompute.adjacency_entries += other.precompute.adjacency_entries;
        self.cache.hits += other.cache.hits;
        self.cache.misses += other.cache.misses;
        self.cache.evictions += other.cache.evictions;
        self.cache.invalidations += other.cache.invalidations;
        self.resilience.faults_injected += other.resilience.faults_injected;
        self.resilience.retries += other.resilience.retries;
        self.resilience.degraded_serves += other.resilience.degraded_serves;
        self.resilience.breaker_trips += other.resilience.breaker_trips;
        self.resilience.shard_breaker_trips += other.resilience.shard_breaker_trips;
        self.resilience.frontier_fallbacks += other.resilience.frontier_fallbacks;
        self.resilience.lsc_fallbacks += other.resilience.lsc_fallbacks;
        extend_add(&mut self.rank_wall_ns, &other.rank_wall_ns);
        if self.certificate.is_none() {
            self.certificate = other.certificate.clone();
        }
    }

    /// Renders the record as the multi-line footer `explain_with_costs_and_stats`
    /// appends below the plan tree.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "-- optimizer stats ({}, n={}) --",
            self.algorithm, self.relations
        );
        let _ = writeln!(out, "masks expanded:    {}", self.counters.masks_expanded);
        let _ = writeln!(
            out,
            "candidates priced: {}",
            self.counters.candidates_priced
        );
        let _ = writeln!(out, "entries written:   {}", self.counters.entries_written);
        let _ = writeln!(
            out,
            "precompute:        {} access, {} pages, {} adjacency",
            self.precompute.access_entries,
            self.precompute.pages_entries,
            self.precompute.adjacency_entries
        );
        if !self.cache.is_zero() {
            let _ = writeln!(
                out,
                "plan cache:        {} hit / {} miss / {} evict / {} invalidate ({:.1}% hit rate)",
                self.cache.hits,
                self.cache.misses,
                self.cache.evictions,
                self.cache.invalidations,
                100.0 * self.cache.hit_rate()
            );
        }
        if !self.resilience.is_zero() {
            let _ = writeln!(
                out,
                "resilience:        {} fault / {} retry / {} degraded / {} breaker / {} shard-breaker ({} frontier, {} lsc)",
                self.resilience.faults_injected,
                self.resilience.retries,
                self.resilience.degraded_serves,
                self.resilience.breaker_trips,
                self.resilience.shard_breaker_trips,
                self.resilience.frontier_fallbacks,
                self.resilience.lsc_fallbacks
            );
        }
        if let Some(cert) = &self.certificate {
            let _ = writeln!(out, "{}", cert.render());
        }
        if !self.counters.frontier_per_rank.is_empty() {
            let _ = writeln!(
                out,
                "frontier per rank: {:?}",
                self.counters.frontier_per_rank
            );
        }
        let _ = writeln!(
            out,
            "wall time:         {:.3} ms over {} rank(s)",
            self.total_wall_ns() as f64 / 1e6,
            self.rank_wall_ns.len()
        );
        out
    }
}

fn extend_add(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

fn extend_max(dst: &mut Vec<usize>, src: &[usize]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters_and_extends_vectors() {
        let mut a = OptStats::new("alg_c", 4);
        a.counters.masks_expanded = 11;
        a.counters.candidates_priced = 100;
        a.counters.entries_written = 15;
        a.precompute.access_entries = 4;
        a.rank_wall_ns = vec![5, 7];

        let mut b = OptStats::new("alg_c", 6);
        b.counters.masks_expanded = 57;
        b.counters.candidates_priced = 500;
        b.counters.entries_written = 63;
        b.counters.frontier_per_rank = vec![2, 3, 1];
        b.precompute.access_entries = 6;
        b.rank_wall_ns = vec![1, 2, 3];

        a.absorb(&b);
        assert_eq!(a.relations, 6);
        assert_eq!(a.counters.masks_expanded, 68);
        assert_eq!(a.counters.candidates_priced, 600);
        assert_eq!(a.counters.entries_written, 78);
        assert_eq!(a.counters.frontier_per_rank, vec![2, 3, 1]);
        assert_eq!(a.precompute.access_entries, 10);
        assert_eq!(a.rank_wall_ns, vec![6, 9, 3]);
        assert_eq!(a.total_wall_ns(), 18);
    }

    #[test]
    fn render_mentions_every_counter() {
        let mut s = OptStats::new("pareto", 5);
        s.counters.masks_expanded = 26;
        s.counters.frontier_per_rank = vec![3, 4];
        s.rank_wall_ns = vec![1000];
        let text = s.render();
        assert!(text.contains("optimizer stats (pareto, n=5)"));
        assert!(text.contains("masks expanded:    26"));
        assert!(text.contains("frontier per rank: [3, 4]"));
        assert!(text.contains("rank(s)"));
    }

    #[test]
    fn cache_counters_absorb_and_render() {
        let mut a = OptStats::new("serve", 3);
        a.cache = CacheCounters {
            hits: 7,
            misses: 3,
            evictions: 1,
            invalidations: 2,
        };
        let mut b = OptStats::new("serve", 3);
        b.cache.hits = 3;
        a.absorb(&b);
        assert_eq!(a.cache.hits, 10);
        assert_eq!(a.cache.misses, 3);
        assert!((a.cache.hit_rate() - 10.0 / 13.0).abs() < 1e-12);
        let text = a.render();
        assert!(text.contains("plan cache:        10 hit / 3 miss / 1 evict / 2 invalidate"));
        // A bare optimizer record says nothing about caching.
        assert!(CacheCounters::default().is_zero());
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
        assert!(!OptStats::new("alg_c", 3).render().contains("plan cache"));
    }

    #[test]
    fn resilience_counters_absorb_and_render() {
        let mut a = OptStats::new("serve", 3);
        a.resilience = ResilienceCounters {
            faults_injected: 4,
            retries: 3,
            degraded_serves: 2,
            breaker_trips: 1,
            shard_breaker_trips: 1,
            frontier_fallbacks: 2,
            lsc_fallbacks: 1,
        };
        let mut b = OptStats::new("serve", 3);
        b.resilience.faults_injected = 6;
        b.resilience.retries = 5;
        a.absorb(&b);
        assert_eq!(a.resilience.faults_injected, 10);
        assert_eq!(a.resilience.retries, 8);
        assert_eq!(a.resilience.degraded_serves, 2);
        let text = a.render();
        assert!(
            text.contains(
                "resilience:        10 fault / 8 retry / 2 degraded / 1 breaker / 1 shard-breaker"
            ),
            "{text}"
        );
        // A record with no faults says nothing about resilience.
        assert!(ResilienceCounters::default().is_zero());
        assert!(!OptStats::new("alg_c", 3).render().contains("resilience"));
    }

    #[test]
    fn counters_equality_ignores_nothing_but_wall_time() {
        // SearchCounters derives Eq: two runs with identical search
        // behavior compare equal regardless of their wall times, because
        // wall time lives on OptStats (which has no PartialEq) instead.
        let a = SearchCounters {
            masks_expanded: 1,
            candidates_priced: 2,
            entries_written: 3,
            frontier_per_rank: vec![4],
        };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
