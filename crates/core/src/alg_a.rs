//! Algorithm A (§3.2): the standard optimizer as a black box.
//!
//! For each memory bucket representative `m_i`, run the LSC optimizer
//! pretending `m_i` is the true memory; then cost every candidate in
//! expectation and keep the cheapest. Costs `b` optimizer invocations and
//! is guaranteed no worse than the traditional (mean/mode) choice whenever
//! the summarized value is among the representatives — but it can miss the
//! true LEC plan, because a plan optimal for *no* specific `m_i` can still
//! be best on average (§3.2's closing caveat; Algorithm B and C exist to
//! close that gap).

use crate::dp::Optimized;
use crate::env::MemoryModel;
use crate::error::CoreError;
use crate::evaluate::expected_cost;
use crate::lsc;
use lec_cost::CostModel;
use lec_plan::JoinQuery;

/// A candidate produced by one black-box invocation.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The memory representative the LSC optimizer was run with.
    pub assumed_memory: f64,
    /// The plan it produced.
    pub optimized: Optimized,
    /// That plan's expected cost under the full distribution.
    pub expected_cost: f64,
}

/// Result of Algorithm A: the winner plus every candidate considered
/// (useful to the experiments).
#[derive(Debug, Clone)]
pub struct AlgAResult {
    /// The least-expected-cost candidate.
    pub best: Optimized,
    /// All candidates, one per memory bucket, in bucket order.
    pub candidates: Vec<Candidate>,
}

/// Runs Algorithm A. The candidate set is one LSC plan per support point of
/// the phase-0 memory distribution; candidates are compared by expected
/// cost under the (possibly dynamic) memory model.
pub fn optimize<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
) -> Result<AlgAResult, CoreError> {
    let initial = memory.initial_distribution()?;
    let phases = memory.table(query.n().max(2))?;
    let mut candidates = Vec::with_capacity(initial.len());
    for &m_i in initial.values() {
        let optimized = lsc::optimize_at(query, model, m_i)?;
        let e = expected_cost(query, model, &optimized.plan, &phases);
        candidates.push(Candidate {
            assumed_memory: m_i,
            optimized,
            expected_cost: e,
        });
    }
    let best = candidates
        .iter()
        .min_by(|a, b| a.expected_cost.total_cmp(&b.expected_cost))
        .ok_or(CoreError::NoPlanFound)?;
    let best = Optimized {
        plan: best.optimized.plan.clone(),
        cost: best.expected_cost,
    };
    crate::verify::debug_verify_plan(query, &best.plan, best.cost);
    Ok(AlgAResult { best, candidates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c;
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};
    use lec_stats::Distribution;

    fn example_1_1() -> JoinQuery {
        JoinQuery::new(
            vec![
                Relation::new("A", 1_000_000.0, 5e7),
                Relation::new("B", 400_000.0, 2e7),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 3000.0 / 4e11,
                key: KeyId(0),
            }],
            Some(KeyId(0)),
        )
        .unwrap()
    }

    #[test]
    fn algorithm_a_finds_plan2_on_example_1_1() {
        // With buckets at 700 and 2000, the 700-bucket invocation produces
        // Plan 2, which wins in expectation — Algorithm A succeeds here.
        let q = example_1_1();
        let model = PaperCostModel;
        let mem = MemoryModel::Static(Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap());
        let res = optimize(&q, &model, &mem).unwrap();
        assert_eq!(res.candidates.len(), 2);
        let lec = alg_c::optimize(&q, &model, &mem).unwrap();
        assert_eq!(res.best.plan, lec.plan);
        assert!((res.best.cost - lec.cost).abs() < 1e-6);
    }

    #[test]
    fn candidates_are_one_per_bucket_and_best_is_min() {
        let q = example_1_1();
        let model = PaperCostModel;
        let dist =
            Distribution::new([(500.0, 0.2), (700.0, 0.2), (1500.0, 0.3), (2500.0, 0.3)]).unwrap();
        let mem = MemoryModel::Static(dist);
        let res = optimize(&q, &model, &mem).unwrap();
        assert_eq!(res.candidates.len(), 4);
        let min = res
            .candidates
            .iter()
            .map(|c| c.expected_cost)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best.cost, min);
    }

    #[test]
    fn algorithm_a_can_miss_the_lec_plan() {
        // §3.2's caveat made concrete: "It is conceivable that a plan not
        // optimal for any m_i actually does better on average than any
        // candidate considered". On this instance (found by search over
        // random chain queries) Algorithm A is strictly suboptimal while
        // Algorithm C — and Algorithm B with c = 3 — find the true LEC plan.
        let q = JoinQuery::new(
            vec![
                Relation::new("r0", 587.0, 37_568.0),
                Relation::new("r1", 93.0, 5_952.0),
                Relation::new("r2", 767.0, 49_088.0),
            ],
            vec![
                JoinPred {
                    left: 0,
                    right: 1,
                    selectivity: 0.0034071550255536627,
                    key: KeyId(0),
                },
                JoinPred {
                    left: 1,
                    right: 2,
                    selectivity: 0.002607561929595828,
                    key: KeyId(1),
                },
            ],
            Some(KeyId(1)),
        )
        .unwrap();
        // Five geometric memory levels between 20 and 1500 pages.
        let b = 5;
        let step = (1500.0f64 / 20.0).powf(1.0 / (b as f64 - 1.0));
        let mem = MemoryModel::Static(
            Distribution::new((0..b).map(|i| (20.0 * step.powi(i), 1.0 / b as f64))).unwrap(),
        );
        let model = PaperCostModel;
        let a = optimize(&q, &model, &mem).unwrap();
        let c = alg_c::optimize(&q, &model, &mem).unwrap();
        let b3 = crate::alg_b::optimize(&q, &model, &mem, 3).unwrap();
        assert!(
            a.best.cost > c.cost * 1.0001,
            "expected a strict gap: A {} vs C {}",
            a.best.cost,
            c.cost
        );
        assert!(
            (b3.best.cost - c.cost).abs() <= 1e-9 * c.cost,
            "Algorithm B (c=3) should recover the LEC plan: {} vs {}",
            b3.best.cost,
            c.cost
        );
        // And no Algorithm A candidate equals the LEC plan.
        assert!(a
            .candidates
            .iter()
            .all(|cand| cand.optimized.plan != c.plan));
    }

    #[test]
    fn never_worse_than_lec_is_false_but_never_worse_than_lsc_is_true() {
        // Algorithm A is sandwiched: LEC cost ≤ A's cost ≤ expected cost of
        // the LSC(mode)/LSC(mean) plans (which are candidates whenever the
        // summary value is a bucket representative — mode always is).
        let q = example_1_1();
        let model = PaperCostModel;
        let dist = Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap();
        let mem = MemoryModel::Static(dist);
        let res = optimize(&q, &model, &mem).unwrap();
        let lec = alg_c::optimize(&q, &model, &mem).unwrap();
        assert!(lec.cost <= res.best.cost + 1e-9);
        let mode_candidate = res
            .candidates
            .iter()
            .find(|c| c.assumed_memory == 2000.0)
            .unwrap();
        assert!(res.best.cost <= mode_candidate.expected_cost);
    }
}
