//! Expected *utility* optimization (the PODS 2002 extension).
//!
//! For the linear utility, expectation distributes over cost addition and
//! the scalar DP of Algorithm C is exact (Theorem 3.3). For any other
//! utility the scalar principle of optimality fails: the best plan for a
//! subquery *by utility score* need not extend to the best overall plan,
//! because `E[u(c₁ + c₂)] ≠ f(E[u(c₁)], E[u(c₂)])` when costs share the
//! random parameter. Two remedies are implemented here:
//!
//! * [`optimize`] — a **Pareto-frontier DP** over cost *profiles* (the
//!   vector of plan costs, one per memory value). A subplan is kept unless
//!   some other subplan is at least as cheap at *every* memory value;
//!   since plan cost is componentwise monotone in subplan profiles, the
//!   frontier retains an optimal subplan for every monotone utility. This
//!   is exact, at the price of a frontier that can grow with the bucket
//!   count (this is essentially parametric query optimization \[INSS92\]
//!   with the discrete parameter space).
//! * [`scalar_dp`] — the naive "Algorithm C with `E[u(·)]` in place of
//!   `E[·]`". Provably unsound for non-linear utilities; kept as the
//!   counterexample generator (experiment X11 exhibits a deadline-utility
//!   instance where it returns a strictly worse plan).
//!
//! Ground truth for both comes from [`exhaustive_utility`].

use crate::dp::Optimized;
use crate::error::CoreError;
use crate::evaluate::{
    access_choices, access_step, cost_distribution_static, join_step, sort_step,
};
use crate::exhaustive::enumerate_left_deep;
use crate::par;
use crate::stats::OptStats;
use lec_cost::{CostModel, JoinMethod};
use lec_plan::{JoinQuery, Plan, RelSet};
use lec_stats::{Distribution, Utility};

/// Result of a utility optimization.
#[derive(Debug, Clone)]
pub struct UtilityResult {
    /// The chosen plan; `cost` holds the utility *score* (lower is better;
    /// for `Linear` this is the expected cost, for `Exponential` a
    /// certainty equivalent, for `Deadline` a miss probability).
    pub best: Optimized,
    /// The chosen plan's full cost distribution.
    pub cost_distribution: Distribution,
    /// Largest Pareto frontier encountered at any dag node (1 for the
    /// scalar DP); a measure of the extra work exactness costs.
    pub max_frontier: usize,
    /// The root Pareto frontier's cost profiles (one cost per memory
    /// value, in `memory.values()` order). [`optimize`] reports the full
    /// surviving root frontier, [`scalar_dp`] its single root profile, and
    /// [`exhaustive_utility`] leaves this empty (it never builds one).
    pub frontier_profiles: Vec<Vec<f64>>,
}

/// A surviving frontier entry: a plan and its cost profile (one cost per
/// memory value, in `memory.values()` order). Crate-visible so the
/// rule-selection layer ([`crate::rules`]) can score the root frontier
/// without re-enumerating.
#[derive(Debug, Clone)]
pub(crate) struct ProfEntry {
    pub(crate) profile: Vec<f64>,
    pub(crate) plan: Plan,
}

/// `a` dominates `b` when it is at least as cheap at every parameter value.
///
/// The comparison is *exact*: an earlier implementation allowed `a` to
/// exceed `b` by an epsilon per component, which breaks antisymmetry
/// (near-tied profiles could each "dominate" the other), making the
/// surviving frontier — and hence the chosen plan — depend on insertion
/// order. With exact `<=`, two profiles dominate each other only when
/// they are equal, and [`insert_frontier`] keeps the first-inserted of an
/// exactly-equal pair, so the frontier is insertion-order independent as
/// a set of profiles.
fn dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| *x <= *y)
}

fn insert_frontier(frontier: &mut Vec<ProfEntry>, entry: ProfEntry) {
    if frontier
        .iter()
        .any(|e| dominates(&e.profile, &entry.profile))
    {
        return;
    }
    frontier.retain(|e| !dominates(&entry.profile, &e.profile));
    frontier.push(entry);
}

/// Exact expected-utility optimization over left-deep plans via the
/// Pareto-frontier DP. Static memory only (profiles are per-value costs).
///
/// # Examples
///
/// ```
/// use lec_core::pareto;
/// use lec_cost::PaperCostModel;
/// use lec_plan::{JoinPred, JoinQuery, KeyId, Relation};
/// use lec_stats::{Distribution, Utility};
///
/// let query = JoinQuery::new(
///     vec![
///         Relation::new("a", 5_000.0, 2.5e5),
///         Relation::new("b", 800.0, 4e4),
///     ],
///     vec![JoinPred { left: 0, right: 1, selectivity: 1e-4, key: KeyId(0) }],
///     None,
/// )?;
/// let memory = Distribution::new([(30.0, 0.4), (300.0, 0.6)])?;
/// let averse = pareto::optimize(
///     &query,
///     &PaperCostModel,
///     &memory,
///     Utility::Exponential { gamma: 1e-4 },
/// )?;
/// // The score is a certainty equivalent, at least the mean cost.
/// assert!(averse.best.cost >= averse.cost_distribution.mean() - 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
    utility: Utility,
) -> Result<UtilityResult, CoreError> {
    Ok(optimize_with_stats(query, model, memory, utility)?.0)
}

/// [`optimize`] plus the deterministic [`OptStats`] search counters:
/// `candidates_priced` counts frontier-insert attempts (subplan × join
/// method × extending relation), `entries_written` the singleton seeds
/// plus every surviving frontier entry, and `frontier_per_rank` the
/// largest frontier at any mask of each DP rank.
pub fn optimize_with_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
    utility: Utility,
) -> Result<(UtilityResult, OptStats), CoreError> {
    let (roots, max_frontier, stats) = root_frontier_with_stats(query, model, memory)?;
    let best = roots
        .iter()
        .map(|e| {
            let dist = Distribution::new(
                memory
                    .probs()
                    .iter()
                    .zip(e.profile.iter())
                    .map(|(&p, &c)| (c, p)),
            )
            .expect("profile costs are finite"); // lec-lint: allow(panic-reachability) — profiles are finite mixtures of finite costs, so the min exists
            (e, utility.score(&dist), dist)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .ok_or(CoreError::NoPlanFound)?;

    let result = UtilityResult {
        best: Optimized {
            plan: best.0.plan.clone(),
            cost: best.1,
        },
        cost_distribution: best.2,
        max_frontier,
        frontier_profiles: roots.iter().map(|e| e.profile.clone()).collect(),
    };
    crate::verify::debug_verify_plan(query, &result.best.plan, result.best.cost);
    crate::verify::debug_verify_frontier(&result.frontier_profiles);
    Ok((result, stats))
}

/// The frontier DP itself, stopping just short of the utility pick:
/// returns the surviving *root* frontier (plans plus profiles), the
/// largest frontier encountered anywhere, and the search counters. Both
/// [`optimize_with_stats`] and the rule-selection layer finalize from
/// this — the table build is utility- and rule-independent, so a
/// different selection rule costs one extra scoring pass, not a second
/// enumeration.
// lec-lint: allow(panic-reachability) — every relation set retains at least its full-scan frontier entry
pub(crate) fn root_frontier_with_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
) -> Result<(Vec<ProfEntry>, usize, OptStats), CoreError> {
    let n = query.n();
    let full = query.all();
    let values = memory.values();
    let b = values.len();
    let mut table: Vec<Vec<ProfEntry>> = vec![Vec::new(); (full.bits() + 1) as usize];
    let mut max_frontier = 1usize;
    let mut stats = OptStats::new("pareto", n);
    stats.counters.entries_written = n as u64;

    for i in 0..n {
        let rel = query.relation(i);
        // Access cost is memory-independent: a single cheapest entry.
        let (cost, method) = access_choices(rel)
            .into_iter()
            .map(|m| (access_step(rel, m).0, m))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("at least the full scan");
        table[RelSet::single(i).bits() as usize] = vec![ProfEntry {
            profile: vec![cost; b],
            plan: Plan::Access { rel: i, method },
        }];
    }

    // Rank-by-rank sweep: each mask depends only on strictly smaller
    // subsets, so grouping by popcount is bit-identical to the flat
    // numeric order while giving the stats layer per-rank wall times
    // and frontier sizes.
    for rank in &par::ranks(n)[1..] {
        let mut rank_frontier = 0usize;
        let ((), ns) = par::timed(|| {
            for &set in rank {
                let out = query.result_pages(set);
                let is_root = set == full;
                let mut frontier: Vec<ProfEntry> = Vec::new();
                for j in set.iter() {
                    let sub = set.remove(j);
                    let left_out = query.result_pages(sub);
                    let rel = query.relation(j);
                    let (acc_cost, acc_out, acc_method) = access_choices(rel)
                        .into_iter()
                        .map(|m| {
                            let (c, o) = access_step(rel, m);
                            (c, o, m)
                        })
                        .min_by(|a, b| a.0.total_cmp(&b.0))
                        .expect("at least the full scan");
                    let key = query.join_key_between(sub, RelSet::single(j));
                    // Borrow, don't clone: the sub-entry lives in a strictly
                    // lower rank, so it is never written while `set` is.
                    let left_list = &table[sub.bits() as usize];
                    for method in JoinMethod::ALL {
                        let step: Vec<f64> = values
                            .iter()
                            .map(|&m| join_step(model, method, left_out, acc_out, out, m))
                            .collect();
                        for left in left_list {
                            let mut profile: Vec<f64> = left
                                .profile
                                .iter()
                                .zip(&step)
                                .map(|(l, s)| l + acc_cost + s)
                                .collect();
                            let mut plan = Plan::join(
                                left.plan.clone(),
                                Plan::Access {
                                    rel: j,
                                    method: acc_method,
                                },
                                method,
                                key,
                            );
                            // At the root, complete plans that miss a required order
                            // *before* dominance pruning, so that ordered and sorted
                            // alternatives compete fairly.
                            if is_root {
                                if let Some(required) = query.required_order() {
                                    if plan.output_order() != Some(required) {
                                        for (p, &m) in profile.iter_mut().zip(values) {
                                            *p += sort_step(model, out, m);
                                        }
                                        plan = Plan::sort(plan, required);
                                    }
                                }
                            }
                            stats.counters.candidates_priced += 1;
                            insert_frontier(&mut frontier, ProfEntry { profile, plan });
                        }
                    }
                }
                stats.counters.masks_expanded += 1;
                stats.counters.entries_written += frontier.len() as u64;
                rank_frontier = rank_frontier.max(frontier.len());
                max_frontier = max_frontier.max(frontier.len());
                table[set.bits() as usize] = frontier;
            }
        });
        stats.counters.frontier_per_rank.push(rank_frontier);
        stats.rank_wall_ns.push(ns);
    }

    let roots = std::mem::take(&mut table[full.bits() as usize]);
    Ok((roots, max_frontier, stats))
}

/// The unsound scalar utility DP: keeps, at every dag node, the single
/// subplan with the best utility score of its own cost distribution.
/// Exact only for [`Utility::Linear`] (where it *is* Algorithm C).
// lec-lint: allow(panic-reachability) — DP induction: singletons are seeded, subsets priced in rank order, and every candidate min covers at least the full scan of finite scalar costs
pub fn scalar_dp<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
    utility: Utility,
) -> Result<UtilityResult, CoreError> {
    let n = query.n();
    let full = query.all();
    let values = memory.values();
    let b = values.len();
    let score_of = |profile: &[f64]| -> f64 {
        let dist = Distribution::new(profile.iter().zip(memory.probs()).map(|(&c, &p)| (c, p)))
            .expect("finite costs");
        utility.score(&dist)
    };
    let mut table: Vec<Option<ProfEntry>> = vec![None; (full.bits() + 1) as usize];

    for i in 0..n {
        let rel = query.relation(i);
        let (cost, method) = access_choices(rel)
            .into_iter()
            .map(|m| (access_step(rel, m).0, m))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("at least the full scan");
        table[RelSet::single(i).bits() as usize] = Some(ProfEntry {
            profile: vec![cost; b],
            plan: Plan::Access { rel: i, method },
        });
    }

    for set in RelSet::all_subsets(n) {
        if set.len() < 2 {
            continue;
        }
        let out = query.result_pages(set);
        let is_root = set == full;
        let mut best: Option<(f64, ProfEntry)> = None;
        for j in set.iter() {
            let sub = set.remove(j);
            // Borrow, don't clone: sub-entries live in strictly lower ranks.
            let left = table[sub.bits() as usize]
                .as_ref()
                .expect("subset computed");
            let left_out = query.result_pages(sub);
            let rel = query.relation(j);
            let (acc_cost, acc_out, acc_method) = access_choices(rel)
                .into_iter()
                .map(|m| {
                    let (c, o) = access_step(rel, m);
                    (c, o, m)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("at least the full scan");
            let key = query.join_key_between(sub, RelSet::single(j));
            for method in JoinMethod::ALL {
                let mut profile: Vec<f64> = values
                    .iter()
                    .zip(&left.profile)
                    .map(|(&m, l)| {
                        l + acc_cost + join_step(model, method, left_out, acc_out, out, m)
                    })
                    .collect();
                let mut plan = Plan::join(
                    left.plan.clone(),
                    Plan::Access {
                        rel: j,
                        method: acc_method,
                    },
                    method,
                    key,
                );
                if is_root {
                    if let Some(required) = query.required_order() {
                        if plan.output_order() != Some(required) {
                            for (p, &m) in profile.iter_mut().zip(values) {
                                *p += sort_step(model, out, m);
                            }
                            plan = Plan::sort(plan, required);
                        }
                    }
                }
                let score = score_of(&profile);
                if best.as_ref().is_none_or(|(s, _)| score < *s) {
                    best = Some((score, ProfEntry { profile, plan }));
                }
            }
        }
        table[set.bits() as usize] = best.map(|(_, e)| e);
    }

    let root = table[full.bits() as usize]
        .clone()
        .ok_or(CoreError::NoPlanFound)?;
    let dist = Distribution::new(
        root.profile
            .iter()
            .zip(memory.probs())
            .map(|(&c, &p)| (c, p)),
    )?;
    let score = utility.score(&dist);
    crate::verify::debug_verify_plan(query, &root.plan, score);
    Ok(UtilityResult {
        best: Optimized {
            plan: root.plan,
            cost: score,
        },
        cost_distribution: dist,
        max_frontier: 1,
        frontier_profiles: vec![root.profile],
    })
}

/// Brute-force expected-utility optimum over all left-deep plans.
pub fn exhaustive_utility<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
    utility: Utility,
) -> Result<UtilityResult, CoreError> {
    let best = enumerate_left_deep(query)
        .into_iter()
        .map(|plan| {
            let dist = cost_distribution_static(query, model, &plan, memory);
            let score = utility.score(&dist);
            UtilityResult {
                best: Optimized { plan, cost: score },
                cost_distribution: dist,
                max_frontier: 0,
                frontier_profiles: Vec::new(),
            }
        })
        .min_by(|a, b| a.best.cost.total_cmp(&b.best.cost))
        .ok_or(CoreError::NoPlanFound)?;
    crate::verify::debug_verify_plan(query, &best.best.plan, best.best.cost);
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c;
    use crate::env::MemoryModel;
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};

    fn query(n: usize, seed: u64) -> JoinQuery {
        // Deterministic pseudo-random sizes from a tiny LCG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 5000 + 50) as f64
        };
        let relations = (0..n)
            .map(|i| Relation::new(format!("r{i}"), next(), 1e4))
            .collect();
        let predicates = (0..n - 1)
            .map(|i| JoinPred {
                left: i,
                right: i + 1,
                selectivity: 0.001,
                key: KeyId(i),
            })
            .collect();
        JoinQuery::new(relations, predicates, Some(KeyId(n - 2))).unwrap()
    }

    fn memory() -> Distribution {
        Distribution::new([(15.0, 0.25), (70.0, 0.35), (450.0, 0.25), (2200.0, 0.15)]).unwrap()
    }

    #[test]
    fn linear_utility_matches_algorithm_c() {
        for seed in 0..5 {
            let q = query(4, seed);
            let mem = memory();
            let p = optimize(&q, &PaperCostModel, &mem, Utility::Linear).unwrap();
            let c = alg_c::optimize(&q, &PaperCostModel, &MemoryModel::Static(mem)).unwrap();
            assert!(
                (p.best.cost - c.cost).abs() < 1e-6 * c.cost.max(1.0),
                "seed {seed}: pareto {} vs C {}",
                p.best.cost,
                c.cost
            );
        }
    }

    #[test]
    fn pareto_matches_exhaustive_for_all_utilities() {
        let utilities = [
            Utility::Linear,
            Utility::Exponential { gamma: 1e-5 },
            Utility::Exponential { gamma: -1e-5 },
        ];
        for seed in 0..4 {
            let q = query(4, seed);
            let mem = memory();
            for u in utilities {
                let p = optimize(&q, &PaperCostModel, &mem, u).unwrap();
                let e = exhaustive_utility(&q, &PaperCostModel, &mem, u).unwrap();
                assert!(
                    (p.best.cost - e.best.cost).abs() <= 1e-6 * e.best.cost.abs().max(1e-9),
                    "seed {seed}, {u:?}: pareto {} vs exhaustive {}",
                    p.best.cost,
                    e.best.cost
                );
            }
        }
    }

    #[test]
    fn pareto_matches_exhaustive_for_deadline_utility() {
        for seed in 0..4 {
            let q = query(4, seed);
            let mem = memory();
            // Put the deadline between the best plan's min and max cost so
            // the miss probability is non-trivial.
            let probe = exhaustive_utility(&q, &PaperCostModel, &mem, Utility::Linear).unwrap();
            let t = probe.cost_distribution.mean();
            let u = Utility::Deadline { threshold: t };
            let p = optimize(&q, &PaperCostModel, &mem, u).unwrap();
            let e = exhaustive_utility(&q, &PaperCostModel, &mem, u).unwrap();
            assert!(
                (p.best.cost - e.best.cost).abs() <= 1e-9,
                "seed {seed}: pareto {} vs exhaustive {}",
                p.best.cost,
                e.best.cost
            );
        }
    }

    #[test]
    fn scalar_dp_is_exact_for_linear_but_not_in_general() {
        // Soundness half: for Linear, scalar DP equals the exhaustive
        // optimum on every instance.
        let mut strict_gap = false;
        for seed in 0..30 {
            let q = query(4, seed);
            let mem = memory();
            let lin_scalar = scalar_dp(&q, &PaperCostModel, &mem, Utility::Linear).unwrap();
            let lin_truth = exhaustive_utility(&q, &PaperCostModel, &mem, Utility::Linear).unwrap();
            assert!(
                (lin_scalar.best.cost - lin_truth.best.cost).abs()
                    <= 1e-6 * lin_truth.best.cost.max(1.0),
                "seed {seed}: linear scalar DP must be exact"
            );
            // Unsoundness half: for a deadline utility, scalar DP is
            // sometimes strictly worse than the true optimum.
            let probe = lin_truth.cost_distribution.quantile(0.6).unwrap();
            let u = Utility::Deadline { threshold: probe };
            let scal = scalar_dp(&q, &PaperCostModel, &mem, u).unwrap();
            let truth = exhaustive_utility(&q, &PaperCostModel, &mem, u).unwrap();
            assert!(scal.best.cost >= truth.best.cost - 1e-12);
            if scal.best.cost > truth.best.cost + 1e-9 {
                strict_gap = true;
            }
        }
        assert!(
            strict_gap,
            "expected at least one instance where the scalar deadline DP is strictly suboptimal"
        );
    }

    #[test]
    fn risk_averse_utility_prefers_lower_variance() {
        // Example 1.1 again: the LEC winner (hash+sort) is *constant* in
        // cost, so any risk-averse utility likes it even more.
        let q = JoinQuery::new(
            vec![
                Relation::new("A", 1_000_000.0, 5e7),
                Relation::new("B", 400_000.0, 2e7),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 3000.0 / 4e11,
                key: KeyId(0),
            }],
            Some(KeyId(0)),
        )
        .unwrap();
        let mem = Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap();
        let averse = optimize(
            &q,
            &PaperCostModel,
            &mem,
            Utility::Exponential { gamma: 1e-5 },
        )
        .unwrap();
        assert!(averse.cost_distribution.is_point());
        assert!(matches!(averse.best.plan, Plan::Sort { .. }));
        assert!(averse.max_frontier >= 1);
        assert!(!averse.frontier_profiles.is_empty());
    }

    fn leaf(rel: usize) -> Plan {
        Plan::Access {
            rel,
            method: lec_cost::AccessMethod::FullScan,
        }
    }

    fn sorted_profiles(frontier: &[ProfEntry]) -> Vec<Vec<f64>> {
        let mut v: Vec<Vec<f64>> = frontier.iter().map(|e| e.profile.clone()).collect();
        v.sort_by(|x, y| x.partial_cmp(y).unwrap());
        v
    }

    #[test]
    fn frontier_is_insertion_order_independent() {
        // Near-tied incomparable profiles. Under the old epsilon-tolerant
        // dominance each "dominated" the other, so whichever was inserted
        // first evicted the second and the frontier — hence the chosen
        // plan — depended on insertion order. Exact dominance keeps both.
        let a = vec![1.0, 2.0 + 1e-13];
        let c = vec![1.0 + 1e-13, 2.0];
        // A genuinely dominated profile must still be evicted either way.
        let d = vec![1.5, 2.5];

        let mut fwd = Vec::new();
        for (i, p) in [&a, &c, &d].into_iter().enumerate() {
            insert_frontier(
                &mut fwd,
                ProfEntry {
                    profile: p.clone(),
                    plan: leaf(i),
                },
            );
        }
        let mut rev = Vec::new();
        for (i, p) in [&d, &c, &a].into_iter().enumerate() {
            insert_frontier(
                &mut rev,
                ProfEntry {
                    profile: p.clone(),
                    plan: leaf(i),
                },
            );
        }

        assert_eq!(fwd.len(), 2, "near-ties are incomparable, both survive");
        assert_eq!(sorted_profiles(&fwd), sorted_profiles(&rev));

        // With identical frontier contents, the root pick (min utility
        // score with a total-order comparator) is order-independent too.
        let pick = |f: &[ProfEntry]| {
            f.iter()
                .map(|e| e.profile.iter().sum::<f64>())
                .min_by(f64::total_cmp)
                .unwrap()
        };
        assert_eq!(pick(&fwd).to_bits(), pick(&rev).to_bits());
    }

    #[test]
    fn frontier_keeps_first_inserted_of_exact_ties() {
        let p = vec![3.0, 4.0];
        let mut frontier = Vec::new();
        insert_frontier(
            &mut frontier,
            ProfEntry {
                profile: p.clone(),
                plan: leaf(0),
            },
        );
        insert_frontier(
            &mut frontier,
            ProfEntry {
                profile: p.clone(),
                plan: leaf(1),
            },
        );
        assert_eq!(frontier.len(), 1);
        assert!(
            matches!(frontier[0].plan, Plan::Access { rel: 0, .. }),
            "first-inserted entry wins an exact profile tie"
        );
    }

    #[test]
    fn stats_track_frontier_growth() {
        let q = query(5, 1);
        let mem = memory();
        let (res, stats) = optimize_with_stats(
            &q,
            &PaperCostModel,
            &mem,
            Utility::Exponential { gamma: 1e-5 },
        )
        .unwrap();
        assert_eq!(stats.algorithm, "pareto");
        assert_eq!(stats.relations, 5);
        assert_eq!(stats.counters.masks_expanded, (1 << 5) - 1 - 5);
        assert_eq!(stats.counters.frontier_per_rank.len(), 4);
        assert_eq!(stats.rank_wall_ns.len(), 4);
        assert_eq!(
            *stats.counters.frontier_per_rank.iter().max().unwrap(),
            res.max_frontier,
        );
        // Seeds plus at least one surviving entry per expanded mask, and
        // no more survivors than insert attempts.
        assert!(stats.counters.entries_written >= 5 + stats.counters.masks_expanded);
        assert!(stats.counters.candidates_priced >= stats.counters.entries_written - 5);
        assert_eq!(
            res.frontier_profiles.len(),
            stats.counters.frontier_per_rank[3]
        );
        // Stats plumbing must not perturb the chosen plan.
        let plain = optimize(
            &q,
            &PaperCostModel,
            &mem,
            Utility::Exponential { gamma: 1e-5 },
        )
        .unwrap();
        assert_eq!(plain.best.cost.to_bits(), res.best.cost.to_bits());
        assert_eq!(plain.best.plan, res.best.plan);
    }
}
