//! Per-query memoization tables shared by every enumerator.
//!
//! The DP inner loops used to recompute three quantities once per
//! `(subset, relation)` visit that in fact depend only on the query:
//! the best access path of each relation, the estimated result size of
//! each subset, and the join key crossing from a subset to a relation.
//! [`QueryTables`] materializes all three once, as flat vectors indexed
//! by relation index or `RelSet::bits()`, so the hot loops become table
//! lookups.
//!
//! Fidelity matters more than speed here: each table entry is produced by
//! *the same expression* the enumerators previously evaluated inline
//! (same iteration order, same comparator, same floating-point flooring),
//! so switching an enumerator to the tables cannot change any cost by
//! even one ULP. The serial/parallel equivalence tests lean on this.

use crate::evaluate::{access_choices, access_step};
use lec_cost::AccessMethod;
use lec_plan::{JoinQuery, KeyId, RelSet};

/// A relation's cheapest access path: `(cost, method, out_pages)`.
pub type BestAccess = (f64, AccessMethod, f64);

/// Read-only memoization tables for one query.
#[derive(Debug, Clone)]
pub struct QueryTables {
    /// Cheapest access path per relation, by relation index. Ties resolve
    /// exactly as the inline `min_by(total_cmp)` the enumerators used.
    best_access: Vec<BestAccess>,
    /// Estimated result pages per subset, indexed by `RelSet::bits()`
    /// (entry 0 is the empty set and unused). Each entry is a direct
    /// `JoinQuery::result_pages` call so the 1-page floor lands exactly
    /// where the un-memoized code put it.
    result_pages: Vec<f64>,
    /// Flattened (CSR) adjacency: for each relation `j`, the predicates
    /// touching `j` in declaration order as `(other_endpoint, key)` pairs,
    /// stored contiguously in `touch_entries[touch_offsets[j]..
    /// touch_offsets[j + 1]]`. One flat allocation instead of a `Vec` per
    /// relation keeps the per-candidate `join_key` probe on a single cache
    /// line for typical chain/star queries.
    touch_offsets: Vec<usize>,
    touch_entries: Vec<(usize, KeyId)>,
}

impl QueryTables {
    /// Builds all tables for `query`. Costs `O(2^n · n)` time and
    /// `O(2^n)` space — the same order as the DP table every enumerator
    /// already allocates.
    pub fn new(query: &JoinQuery) -> Self {
        let n = query.n();

        let best_access = (0..n)
            .map(|i| {
                let rel = query.relation(i);
                access_choices(rel)
                    .into_iter()
                    .map(|m| {
                        let (cost, out) = access_step(rel, m);
                        (cost, m, out)
                    })
                    .min_by(|a, b| a.0.total_cmp(&b.0))
                    .expect("at least the full scan") // lec-lint: allow(panic-reachability) — every relation has a full-scan access path, so the min is over a non-empty set
            })
            .collect();

        // `result_pages(set)` is an ascending left-fold over member pages
        // followed by declaration-order selectivity multiplies. The relation
        // fold for mask `m` is the fold for `m` minus its highest bit times
        // that bit's pages — the same prefix, so building the fold
        // incrementally over ascending masks reproduces the direct call bit
        // for bit (`pages_match_query_result_pages_bitwise` pins this).
        let eff: Vec<f64> = (0..n)
            .map(|i| query.relation(i).effective_pages())
            .collect();
        let sels: Vec<f64> = query.predicates().iter().map(|p| p.selectivity).collect();
        let mut rel_prod = vec![1.0f64; 1usize << n];
        let mut result_pages = Vec::with_capacity(1usize << n);
        result_pages.push(1.0);
        if sels.len() <= 64 {
            // Track the set of internal predicates per mask as a bitmask
            // (bit k = declaration index k, so ascending bit order IS
            // declaration order): a predicate becomes internal when the
            // mask gains its second endpoint.
            let mut incident: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
            for (k, p) in query.predicates().iter().enumerate() {
                incident[p.left].push((1u64 << k, 1u64 << p.right));
                incident[p.right].push((1u64 << k, 1u64 << p.left));
            }
            let mut internal = vec![0u64; 1usize << n];
            for m in 1u64..(1u64 << n) {
                let h = (u64::BITS - 1 - m.leading_zeros()) as usize;
                let rest = (m & !(1u64 << h)) as usize;
                let prod = rel_prod[rest] * eff[h];
                rel_prod[m as usize] = prod;
                let mut ip = internal[rest];
                for &(pbit, obit) in &incident[h] {
                    if rest as u64 & obit != 0 {
                        ip |= pbit;
                    }
                }
                internal[m as usize] = ip;
                let mut pages = prod;
                let mut bits = ip;
                while bits != 0 {
                    pages *= sels[bits.trailing_zeros() as usize];
                    bits &= bits - 1;
                }
                result_pages.push(pages.max(1.0));
            }
        } else {
            // > 64 predicates: scan them directly, still in declaration
            // order.
            let preds: Vec<(u64, u64, f64)> = query
                .predicates()
                .iter()
                .map(|p| (1u64 << p.left, 1u64 << p.right, p.selectivity))
                .collect();
            for m in 1u64..(1u64 << n) {
                let h = (u64::BITS - 1 - m.leading_zeros()) as usize;
                let prod = rel_prod[(m & !(1u64 << h)) as usize] * eff[h];
                rel_prod[m as usize] = prod;
                let mut pages = prod;
                for &(l, r, s) in &preds {
                    if m & l != 0 && m & r != 0 {
                        pages *= s;
                    }
                }
                result_pages.push(pages.max(1.0));
            }
        }

        // Build per-relation rows (declaration order within each row), then
        // flatten to CSR. The nested build is construction-time only.
        let mut touching: Vec<Vec<(usize, KeyId)>> = vec![Vec::new(); n];
        for p in query.predicates() {
            touching[p.left].push((p.right, p.key));
            touching[p.right].push((p.left, p.key));
        }
        let mut touch_offsets = Vec::with_capacity(n + 1);
        let mut touch_entries = Vec::with_capacity(2 * query.predicates().len());
        touch_offsets.push(0);
        for row in &touching {
            touch_entries.extend_from_slice(row);
            touch_offsets.push(touch_entries.len());
        }

        QueryTables {
            best_access,
            result_pages,
            touch_offsets,
            touch_entries,
        }
    }

    /// Cheapest access path for relation `i`: `(cost, method, out_pages)`.
    #[inline]
    pub fn access(&self, i: usize) -> BestAccess {
        self.best_access[i]
    }

    /// Estimated result pages of the join over `set`
    /// (≡ `query.result_pages(set)`).
    #[inline]
    pub fn pages(&self, set: RelSet) -> f64 {
        self.result_pages[set.bits() as usize]
    }

    /// Table sizes for the observability layer: access entries, result-page
    /// entries (including the unused empty-set slot), and adjacency entries
    /// (two per join predicate).
    pub fn sizes(&self) -> crate::stats::PrecomputeSizes {
        crate::stats::PrecomputeSizes {
            access_entries: self.best_access.len(),
            pages_entries: self.result_pages.len(),
            adjacency_entries: self.touch_entries.len(),
        }
    }

    /// Join key between `set` and relation `j`
    /// (≡ `query.join_key_between(set, RelSet::single(j))`): the key of
    /// the first crossing predicate when all crossing predicates agree,
    /// `None` for cross products or multi-key joins.
    pub fn join_key(&self, set: RelSet, j: usize) -> Option<KeyId> {
        let row = &self.touch_entries[self.touch_offsets[j]..self.touch_offsets[j + 1]]; // lec-lint: allow(panic-reachability) — touch_offsets is a CSR table with n + 1 entries and j < n
        let mut keys = row
            .iter()
            .filter(|(other, _)| set.contains(*other))
            .map(|(_, k)| *k);
        let first = keys.next()?;
        if keys.all(|k| k == first) {
            Some(first)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_plan::{JoinPred, Relation};

    fn query() -> JoinQuery {
        JoinQuery::new(
            vec![
                Relation::new("a", 1000.0, 5e4)
                    .with_local_selectivity(0.05)
                    .with_index(),
                Relation::new("b", 400.0, 2e4),
                Relation::new("c", 80.0, 4e3).with_local_selectivity(0.5),
            ],
            vec![
                JoinPred {
                    left: 0,
                    right: 1,
                    selectivity: 1e-4,
                    key: KeyId(0),
                },
                JoinPred {
                    left: 1,
                    right: 2,
                    selectivity: 1e-3,
                    key: KeyId(1),
                },
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn best_access_matches_inline_search() {
        let q = query();
        let tabs = QueryTables::new(&q);
        for i in 0..q.n() {
            let rel = q.relation(i);
            let inline = access_choices(rel)
                .into_iter()
                .map(|m| {
                    let (cost, out) = access_step(rel, m);
                    (cost, m, out)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .unwrap();
            assert_eq!(tabs.access(i), inline);
        }
        // Relation 0 has a selective index: the index scan must win.
        assert_eq!(tabs.access(0).1, AccessMethod::IndexScan);
    }

    #[test]
    fn pages_match_query_result_pages_bitwise() {
        let q = query();
        let tabs = QueryTables::new(&q);
        for set in RelSet::all_subsets(q.n()) {
            assert_eq!(tabs.pages(set).to_bits(), q.result_pages(set).to_bits());
        }
    }

    #[test]
    fn join_keys_match_query_for_all_set_rel_pairs() {
        let q = query();
        let tabs = QueryTables::new(&q);
        for set in RelSet::all_subsets(q.n()) {
            for j in 0..q.n() {
                if set.contains(j) {
                    continue;
                }
                assert_eq!(
                    tabs.join_key(set, j),
                    q.join_key_between(set, RelSet::single(j)),
                    "set {:?} rel {j}",
                    set
                );
            }
        }
    }

    #[test]
    fn sizes_reflect_table_shapes() {
        let q = query();
        let s = QueryTables::new(&q).sizes();
        assert_eq!(s.access_entries, 3);
        assert_eq!(s.pages_entries, 1 << 3);
        assert_eq!(s.adjacency_entries, 4); // two predicates, two endpoints each
    }

    #[test]
    fn multi_key_join_yields_none() {
        // Two predicates with different keys both crossing to relation 2.
        let q = JoinQuery::new(
            vec![
                Relation::new("a", 10.0, 1e3),
                Relation::new("b", 20.0, 1e3),
                Relation::new("c", 30.0, 1e3),
            ],
            vec![
                JoinPred {
                    left: 0,
                    right: 2,
                    selectivity: 0.01,
                    key: KeyId(0),
                },
                JoinPred {
                    left: 1,
                    right: 2,
                    selectivity: 0.01,
                    key: KeyId(1),
                },
            ],
            None,
        )
        .unwrap();
        let tabs = QueryTables::new(&q);
        let ab = RelSet::single(0).insert(1);
        assert_eq!(tabs.join_key(ab, 2), None);
        assert_eq!(tabs.join_key(RelSet::single(0), 2), Some(KeyId(0)));
    }
}
