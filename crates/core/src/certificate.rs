//! (ε, δ) suboptimality certificates for sampled statistics.
//!
//! When a query's selectivities come from row samples with per-statistic
//! confidence intervals (`lec_catalog::sampling`), the optimizer can say
//! *how wrong it is allowed to be*: with probability at least `1 − δ` the
//! chosen plan's true expected cost is within a factor `1 + ε` of the true
//! optimum (Trummer & Koch, "Probably Approximately Optimal Query
//! Optimization"; DESIGN.md §11).
//!
//! The construction uses the monotonicity of the paper's cost formulas in
//! intermediate result sizes. Replace every interval-backed statistic by
//! its upper confidence limit to get the *pessimistic* query, by its lower
//! limit to get the *optimistic* one; then, on the event that every
//! interval covers its true statistic (probability ≥ `1 − δ` by the union
//! bound over the per-statistic failure probabilities):
//!
//! * the chosen plan's true expected cost is at most its cost under the
//!   pessimistic query (`chosen_upper`), and
//! * *every* plan's true expected cost is at least its cost under the
//!   optimistic query, so the optimistic optimum (`optimal_lower`, found
//!   by the bushy LEC dynamic program — a superset of the left-deep
//!   space every optimizer here searches) lower-bounds the true optimum.
//!
//! Hence `true_cost(chosen) ≤ (1 + ε) · true_optimum` for
//! `ε = chosen_upper / optimal_lower − 1`.
//!
//! The `certify*` entry points are panic-reachability audit roots
//! (lec-lint `--audit`, budget 0), like the `optimize*` family they build
//! on.

use crate::bushy;
use crate::env::MemoryModel;
use crate::error::CoreError;
use crate::evaluate::expected_cost;
use lec_cost::CostModel;
use lec_plan::{JoinQuery, Plan, Relation};

/// Confidence intervals for every uncertain statistic of one query.
///
/// Indices align with the query's relation and predicate numbering; an
/// exactly-known statistic carries a zero-width interval. `delta` is the
/// *total* failure probability — for per-statistic intervals at level
/// `1 − δ_i`, the union bound gives `delta = Σ δ_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryIntervals {
    /// Per-relation `[lo, hi]` bounds on `local_selectivity`.
    pub relation_selectivity: Vec<(f64, f64)>,
    /// Per-predicate `[lo, hi]` bounds on the page-domain join selectivity.
    pub predicate_selectivity: Vec<(f64, f64)>,
    /// Probability that at least one interval misses its true statistic.
    pub delta: f64,
}

impl QueryIntervals {
    /// Degenerate intervals pinned at the query's own point estimates
    /// (an exactly-known query; `delta = 0`).
    pub fn exact(query: &JoinQuery) -> Self {
        QueryIntervals {
            relation_selectivity: query
                .relations()
                .iter()
                .map(|r| (r.local_selectivity, r.local_selectivity))
                .collect(),
            predicate_selectivity: query
                .predicates()
                .iter()
                .map(|p| (p.selectivity, p.selectivity))
                .collect(),
            delta: 0.0,
        }
    }

    /// Number of statistics carrying genuine uncertainty (positive-width
    /// intervals).
    pub fn statistics(&self) -> usize {
        self.relation_selectivity
            .iter()
            .chain(self.predicate_selectivity.iter())
            .filter(|(lo, hi)| hi > lo)
            .count()
    }
}

/// A per-plan suboptimality certificate: with probability at least
/// `1 − delta`, the plan's true expected cost is within `1 + epsilon` of
/// the true optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Suboptimality bound: `true_cost ≤ (1 + epsilon) · true_optimum` on
    /// the certificate's success event.
    pub epsilon: f64,
    /// Probability the certificate's success event fails (some interval
    /// missed its statistic).
    pub delta: f64,
    /// Upper confidence bound on the certified plan's expected cost (its
    /// cost under the pessimistic query).
    pub chosen_upper: f64,
    /// Lower confidence bound on the optimum over the bushy plan space
    /// (the optimistic query's LEC optimum).
    pub optimal_lower: f64,
    /// Number of interval-backed statistics combined into the bound.
    pub statistics: usize,
}

impl Certificate {
    /// One-line rendering for EXPLAIN output and reports.
    pub fn render(&self) -> String {
        format!(
            "certificate:       within (1+ε) of optimal, ε ≤ {:.4}, w.p. ≥ {:.3} ({} sampled stats, cost ∈ [{:.1}, {:.1}])",
            self.epsilon,
            1.0 - self.delta,
            self.statistics,
            self.optimal_lower,
            self.chosen_upper
        )
    }
}

/// Certifies `plan` for `query` under the given statistic intervals: the
/// (ε, δ) suboptimality certificate described in the module docs.
///
/// Fails with [`CoreError::BadParameter`] when the interval vectors do not
/// match the query's shape, when an interval does not bracket the query's
/// own point statistic, or when the cost model turns out not to be
/// monotone over the interval box (the certified sandwich
/// `cost_lo ≤ cost_point ≤ cost_hi` is checked, not assumed).
pub fn certify_plan<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    plan: &Plan,
    intervals: &QueryIntervals,
) -> Result<Certificate, CoreError> {
    if intervals.relation_selectivity.len() != query.n()
        || intervals.predicate_selectivity.len() != query.predicates().len()
    {
        return Err(CoreError::BadParameter(format!(
            "interval shape ({} relations, {} predicates) does not match query ({}, {})",
            intervals.relation_selectivity.len(),
            intervals.predicate_selectivity.len(),
            query.n(),
            query.predicates().len()
        )));
    }
    if !(intervals.delta.is_finite() && (0.0..1.0).contains(&intervals.delta)) {
        return Err(CoreError::BadParameter(format!(
            "certificate failure probability {} outside [0, 1)",
            intervals.delta
        )));
    }
    check_brackets(query, intervals)?;

    let optimistic = bound_query(query, intervals, Bound::Lower)?;
    let pessimistic = bound_query(query, intervals, Bound::Upper)?;

    let phases = memory.table(query.n().max(2))?;
    let chosen_upper = expected_cost(&pessimistic, model, plan, &phases);
    let chosen_point = expected_cost(query, model, plan, &phases);
    let chosen_lower = expected_cost(&optimistic, model, plan, &phases);

    // The certificate rests on cost monotonicity over the interval box;
    // verify the sandwich on the plan actually being certified instead of
    // assuming it.
    let tol = 1e-9 * chosen_point.abs().max(1.0);
    if chosen_lower > chosen_point + tol || chosen_point > chosen_upper + tol {
        return Err(CoreError::BadParameter(format!(
            "cost not monotone over the interval box: lower {chosen_lower} / point \
             {chosen_point} / upper {chosen_upper}"
        )));
    }

    // The optimistic optimum over the *bushy* space lower-bounds the true
    // optimum over every plan any optimizer in this family can emit.
    let optimal_lower = bushy::optimize(&optimistic, model, memory)?.cost;
    if !(optimal_lower.is_finite() && optimal_lower > 0.0) {
        return Err(CoreError::BadParameter(format!(
            "optimistic optimum {optimal_lower} unusable as a lower bound"
        )));
    }
    let epsilon = (chosen_upper / optimal_lower - 1.0).max(0.0);

    Ok(Certificate {
        epsilon,
        delta: intervals.delta,
        chosen_upper,
        optimal_lower,
        statistics: intervals.statistics(),
    })
}

/// Certifies an already-optimized choice and attaches the certificate to
/// its search stats — the convenience wrapper the serving layer and the
/// experiments use to surface certificates through `OptStats`/EXPLAIN.
pub fn certify_into_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    plan: &Plan,
    intervals: &QueryIntervals,
    stats: &mut crate::stats::OptStats,
) -> Result<Certificate, CoreError> {
    let cert = certify_plan(query, model, memory, plan, intervals)?;
    stats.certificate = Some(cert.clone());
    Ok(cert)
}

enum Bound {
    Lower,
    Upper,
}

fn check_brackets(query: &JoinQuery, intervals: &QueryIntervals) -> Result<(), CoreError> {
    for (r, (lo, hi)) in query
        .relations()
        .iter()
        .zip(&intervals.relation_selectivity)
    {
        if !(lo.is_finite()
            && hi.is_finite()
            && *lo <= r.local_selectivity + 1e-12
            && r.local_selectivity <= *hi + 1e-12)
        {
            return Err(CoreError::BadParameter(format!(
                "relation `{}` selectivity {} outside its interval [{lo}, {hi}]",
                r.name, r.local_selectivity
            )));
        }
        // An unfiltered relation (selectivity exactly 1) has no predicate to
        // sample; its statistic is known, and the cost model's free-scan
        // special case makes cost discontinuous there. Sampled intervals are
        // only meaningful on the filtered branch.
        if r.local_selectivity >= 1.0 && hi > lo {
            return Err(CoreError::BadParameter(format!(
                "relation `{}` is unfiltered (selectivity 1) but carries a sampled \
                 interval [{lo}, {hi}]; unfiltered statistics are exact",
                r.name
            )));
        }
    }
    for (i, (p, (lo, hi))) in query
        .predicates()
        .iter()
        .zip(&intervals.predicate_selectivity)
        .enumerate()
    {
        if !(lo.is_finite()
            && hi.is_finite()
            && *lo <= p.selectivity + 1e-12
            && p.selectivity <= *hi + 1e-12)
        {
            return Err(CoreError::BadParameter(format!(
                "predicate {i} selectivity {} outside its interval [{lo}, {hi}]",
                p.selectivity
            )));
        }
    }
    Ok(())
}

/// The query with every interval-backed statistic pinned at one end of its
/// interval (selectivities clamped into the `(0, 1]` domain `JoinQuery`
/// requires).
///
/// A *sampled* relation selectivity is clamped strictly below 1 so both
/// bound queries stay on the cost model's filtered-scan branch: a filter
/// that happens to pass every row still reads and materializes its input,
/// which is the continuous extension of the access formula, whereas
/// selectivity exactly 1 means "no filter" and prices the scan as free.
/// Degenerate (exact) intervals keep the query's own value, so genuinely
/// unfiltered relations stay free.
fn bound_query(
    query: &JoinQuery,
    intervals: &QueryIntervals,
    bound: Bound,
) -> Result<JoinQuery, CoreError> {
    let pick = |(lo, hi): &(f64, f64)| match bound {
        Bound::Lower => *lo,
        Bound::Upper => *hi,
    };
    const ALMOST_ONE: f64 = 1.0 - f64::EPSILON;
    let relations: Vec<Relation> = query
        .relations()
        .iter()
        .zip(&intervals.relation_selectivity)
        .map(|(r, iv)| {
            let mut r = r.clone();
            if iv.1 > iv.0 {
                r.local_selectivity = pick(iv).clamp(f64::MIN_POSITIVE, ALMOST_ONE);
            }
            r
        })
        .collect();
    let predicates = query
        .predicates()
        .iter()
        .zip(&intervals.predicate_selectivity)
        .map(|(p, iv)| {
            let mut p = *p;
            p.selectivity = pick(iv).clamp(f64::MIN_POSITIVE, 1.0);
            p
        })
        .collect();
    Ok(JoinQuery::new(
        relations,
        predicates,
        query.required_order(),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c;
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId};
    use lec_stats::Distribution;

    fn query() -> JoinQuery {
        JoinQuery::new(
            vec![
                Relation::new("a", 2000.0, 8e4).with_local_selectivity(0.2),
                Relation::new("b", 900.0, 4e4),
                Relation::new("c", 300.0, 1e4),
            ],
            vec![
                JoinPred {
                    left: 0,
                    right: 1,
                    selectivity: 2e-3,
                    key: KeyId(0),
                },
                JoinPred {
                    left: 1,
                    right: 2,
                    selectivity: 5e-3,
                    key: KeyId(1),
                },
            ],
            None,
        )
        .unwrap()
    }

    fn memory() -> MemoryModel {
        MemoryModel::Static(Distribution::new([(60.0, 0.5), (400.0, 0.5)]).unwrap())
    }

    fn widen(query: &JoinQuery, factor: f64, delta: f64) -> QueryIntervals {
        QueryIntervals {
            relation_selectivity: query
                .relations()
                .iter()
                .map(|r| {
                    if r.local_selectivity >= 1.0 {
                        // Unfiltered relations are exactly known.
                        (1.0, 1.0)
                    } else {
                        (
                            r.local_selectivity / factor,
                            (r.local_selectivity * factor).min(1.0),
                        )
                    }
                })
                .collect(),
            predicate_selectivity: query
                .predicates()
                .iter()
                .map(|p| (p.selectivity / factor, (p.selectivity * factor).min(1.0)))
                .collect(),
            delta,
        }
    }

    #[test]
    fn exact_intervals_certify_epsilon_zero_for_the_optimum() {
        let q = query();
        let mem = memory();
        let best = crate::bushy::optimize(&q, &PaperCostModel, &mem).unwrap();
        let cert = certify_plan(
            &q,
            &PaperCostModel,
            &mem,
            &best.plan,
            &QueryIntervals::exact(&q),
        )
        .unwrap();
        assert!(cert.epsilon.abs() < 1e-9, "ε = {}", cert.epsilon);
        assert_eq!(cert.delta, 0.0);
        assert_eq!(cert.statistics, 0);
        assert!((cert.chosen_upper - best.cost).abs() < 1e-9 * best.cost);
    }

    #[test]
    fn wider_intervals_give_weaker_certificates() {
        let q = query();
        let mem = memory();
        let plan = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap().plan;
        let tight = certify_plan(&q, &PaperCostModel, &mem, &plan, &widen(&q, 1.1, 0.05)).unwrap();
        let loose = certify_plan(&q, &PaperCostModel, &mem, &plan, &widen(&q, 2.0, 0.05)).unwrap();
        assert!(
            tight.epsilon < loose.epsilon,
            "{} vs {}",
            tight.epsilon,
            loose.epsilon
        );
        assert!(tight.chosen_upper <= loose.chosen_upper);
        assert!(tight.optimal_lower >= loose.optimal_lower);
        assert_eq!(tight.statistics, 3);
    }

    #[test]
    fn certificate_bounds_the_realized_suboptimality() {
        // The certified sandwich: any plan's true cost is inside
        // [optimal_lower, (1+ε)·optimal_lower] when truth is the point.
        let q = query();
        let mem = memory();
        let plan = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap().plan;
        let cert = certify_plan(&q, &PaperCostModel, &mem, &plan, &widen(&q, 1.5, 0.1)).unwrap();
        let phases = mem.table(q.n().max(2)).unwrap();
        let true_cost = expected_cost(&q, &PaperCostModel, &plan, &phases);
        let true_opt = crate::bushy::optimize(&q, &PaperCostModel, &mem)
            .unwrap()
            .cost;
        assert!(true_cost <= (1.0 + cert.epsilon) * true_opt + 1e-9);
        assert!(cert.optimal_lower <= true_opt + 1e-9);
        assert!(true_cost <= cert.chosen_upper + 1e-9);
    }

    #[test]
    fn malformed_intervals_are_rejected() {
        let q = query();
        let mem = memory();
        let plan = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap().plan;
        // Wrong shape.
        let mut iv = QueryIntervals::exact(&q);
        iv.predicate_selectivity.pop();
        assert!(certify_plan(&q, &PaperCostModel, &mem, &plan, &iv).is_err());
        // Interval that does not bracket the point.
        let mut iv = QueryIntervals::exact(&q);
        iv.relation_selectivity[0] = (0.5, 0.9);
        assert!(certify_plan(&q, &PaperCostModel, &mem, &plan, &iv).is_err());
        // Bad delta.
        let mut iv = QueryIntervals::exact(&q);
        iv.delta = 1.5;
        assert!(certify_plan(&q, &PaperCostModel, &mem, &plan, &iv).is_err());
        // Sampled interval on an unfiltered relation (statistic is exact).
        let mut iv = QueryIntervals::exact(&q);
        iv.relation_selectivity[1] = (0.5, 1.0);
        assert!(certify_plan(&q, &PaperCostModel, &mem, &plan, &iv).is_err());
    }

    #[test]
    fn certificate_surfaces_through_stats_and_explain() {
        let q = query();
        let mem = memory();
        let (best, mut stats) = alg_c::optimize_with_stats(&q, &PaperCostModel, &mem).unwrap();
        let cert = certify_into_stats(
            &q,
            &PaperCostModel,
            &mem,
            &best.plan,
            &widen(&q, 1.3, 0.05),
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.certificate.as_ref(), Some(&cert));
        let text = stats.render();
        assert!(text.contains("certificate:"), "{text}");
        assert!(text.contains("w.p. ≥ 0.950"), "{text}");
        let phases = mem.table(q.n().max(2)).unwrap();
        let explain = crate::evaluate::explain_with_costs_and_stats(
            &q,
            &PaperCostModel,
            &best.plan,
            &phases,
            &stats,
        );
        assert!(explain.contains("certificate:"), "{explain}");
    }
}
