//! Algorithm D (§3.6): multiple uncertain parameters.
//!
//! Beyond memory, the sizes of base relations and the selectivities of join
//! predicates are distributions. Assuming independence (the paper's §3.6
//! simplification), each dag node needs exactly four distributions —
//! memory `M`, the input sizes `|B_j|` and `|A_j|`, and the predicate
//! selectivity `σ` (the paper's Figure 1) — regardless of how many
//! parameters the query started with:
//!
//! * the expected join-step cost is `E[Φ(method, |B_j|, |A_j|, M)]`,
//!   computed either by the naive `b_M · b_B · b_A` triple loop or by the
//!   §3.6.1/3.6.2 linear-time kernels;
//! * the result-size distribution `|B_j ⋈ A_j|` is the independent product
//!   `|B_j| ⊗ |A_j| ⊗ σ`, rebucketed back to `b` support points (§3.6.3) so
//!   the distribution carried up the dag does not grow.
//!
//! The result size is independent of the choice of `j`, so it is computed
//! once per dag node (the paper's observation at the end of Algorithm D).

use crate::dp::Optimized;
use crate::env::{MemoryModel, PhaseDists};
use crate::error::CoreError;
use crate::evaluate::access_choices;
use crate::par::{self, Parallelism};
use crate::stats::OptStats;
use lec_cost::fast_expect::{expected_join_fast, expected_join_naive, expected_sort};
use lec_cost::{AccessMethod, CostModel, JoinMethod, PaperCostModel};
use lec_plan::{JoinQuery, KeyId, Plan, RelSet};
use lec_stats::{ConvolveScratch, Distribution};

/// Distributions for the non-memory parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeModel {
    /// Per-relation distribution of *effective* pages (after any local
    /// selection), aligned with the query's relation indices.
    pub rel_sizes: Vec<Distribution>,
    /// Per-predicate selectivity distribution, aligned with the query's
    /// predicate indices.
    pub selectivities: Vec<Distribution>,
}

impl SizeModel {
    /// Point distributions straight from the query's statistics: Algorithm D
    /// with this model must coincide with Algorithm C.
    pub fn certain(query: &JoinQuery) -> Result<Self, CoreError> {
        let rel_sizes = query
            .relations()
            .iter()
            .map(|r| Distribution::point(r.effective_pages()))
            .collect::<Result<_, _>>()?;
        let selectivities = query
            .predicates()
            .iter()
            .map(|p| Distribution::point(p.selectivity))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            rel_sizes,
            selectivities,
        })
    }

    /// Multiplicative lognormal uncertainty around the query's point
    /// estimates: relation sizes with coefficient of variation `size_cv`,
    /// selectivities with `sel_cv`, each discretized into `buckets` buckets.
    pub fn with_uncertainty(
        query: &JoinQuery,
        size_cv: f64,
        sel_cv: f64,
        buckets: usize,
    ) -> Result<Self, CoreError> {
        let rel_sizes = query
            .relations()
            .iter()
            .map(|r| {
                lec_stats::families::lognormal_bucketed(r.effective_pages(), size_cv, buckets)
                    .and_then(|d| d.map(|v| v.max(1.0)))
            })
            .collect::<Result<_, _>>()?;
        let selectivities = query
            .predicates()
            .iter()
            .map(|p| {
                lec_stats::families::lognormal_bucketed(p.selectivity, sel_cv, buckets)
                    .and_then(|d| d.map(|v| v.clamp(f64::MIN_POSITIVE, 1.0)))
            })
            .collect::<Result<_, _>>()?;
        Ok(Self {
            rel_sizes,
            selectivities,
        })
    }
}

/// Which expected-cost computation to use at each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// The §3.6.1/3.6.2 linear-time kernels. Exact for [`PaperCostModel`]
    /// only — [`optimize_fast`] fixes that model.
    #[default]
    Fast,
    /// The naive `O(b_M · b_B · b_A)` triple loop; works for any model.
    Naive,
}

/// Configuration for Algorithm D.
#[derive(Debug, Clone, Copy)]
pub struct AlgDConfig {
    /// Support-size cap `b` for propagated result-size distributions
    /// (§3.6.3 rebucketing).
    pub size_buckets: usize,
    /// Expected-cost kernel.
    pub kernel: Kernel,
}

impl Default for AlgDConfig {
    fn default() -> Self {
        Self {
            size_buckets: 8,
            kernel: Kernel::Fast,
        }
    }
}

/// Result of Algorithm D.
#[derive(Debug, Clone)]
pub struct AlgDResult {
    /// The chosen plan and its expected cost.
    pub best: Optimized,
    /// The propagated distribution of the final result size (pages).
    pub result_size: Distribution,
}

/// Algorithm D with the paper cost model and the fast kernels.
pub fn optimize_fast(
    query: &JoinQuery,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
) -> Result<AlgDResult, CoreError> {
    run(query, &PaperCostModel, memory, sizes, config)
}

/// [`optimize_fast`], also returning the search-space [`OptStats`].
/// `precompute.pages_entries` counts the result-size distributions
/// materialized (Algorithm D's analog of the pages table).
pub fn optimize_fast_with_stats(
    query: &JoinQuery,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
) -> Result<(AlgDResult, OptStats), CoreError> {
    run_stats(query, &PaperCostModel, memory, sizes, config)
}

/// [`optimize_generic`], also returning the search-space [`OptStats`].
pub fn optimize_generic_with_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
) -> Result<(AlgDResult, OptStats), CoreError> {
    run_stats(
        query,
        model,
        memory,
        sizes,
        AlgDConfig {
            kernel: Kernel::Naive,
            ..config
        },
    )
}

/// [`optimize_fast_par`], also returning the search-space [`OptStats`].
/// The counters are identical to [`optimize_fast_with_stats`]'s.
pub fn optimize_fast_with_stats_par(
    query: &JoinQuery,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
    par: &Parallelism,
) -> Result<(AlgDResult, OptStats), CoreError> {
    run_par_stats(query, &PaperCostModel, memory, sizes, config, par)
}

/// Algorithm D for an arbitrary cost model (the kernel is forced to
/// [`Kernel::Naive`], since the fast kernels encode the paper formulas).
pub fn optimize_generic<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
) -> Result<AlgDResult, CoreError> {
    run(
        query,
        model,
        memory,
        sizes,
        AlgDConfig {
            kernel: Kernel::Naive,
            ..config
        },
    )
}

/// Algorithm D with the paper cost model on the rank-parallel DP.
/// Bit-identical to [`optimize_fast`]; small queries run serially.
pub fn optimize_fast_par(
    query: &JoinQuery,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
    par: &Parallelism,
) -> Result<AlgDResult, CoreError> {
    run_par(query, &PaperCostModel, memory, sizes, config, par)
}

/// [`optimize_generic`] on the rank-parallel DP (kernel forced to naive).
pub fn optimize_generic_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
    par: &Parallelism,
) -> Result<AlgDResult, CoreError> {
    run_par(
        query,
        model,
        memory,
        sizes,
        AlgDConfig {
            kernel: Kernel::Naive,
            ..config
        },
        par,
    )
}

#[derive(Debug, Clone, Copy)]
enum Choice {
    Access(AccessMethod),
    Join { last: usize, method: JoinMethod },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    cost: f64,
    choice: Choice,
}

/// Per-query state Algorithm D previously recomputed per `(set, j)` visit:
/// the best expected access path of each relation, hoisted out of the
/// inner loop (computed once, like the other memoization tables).
struct AccessTable {
    best: Vec<(f64, AccessMethod)>,
}

impl AccessTable {
    fn new(query: &JoinQuery, sizes: &SizeModel) -> Self {
        let best = (0..query.n())
            .map(|i| {
                let rel = query.relation(i);
                access_choices(rel)
                    .into_iter()
                    .map(|m| (expected_access_cost(rel, m, &sizes.rel_sizes[i]), m))
                    .min_by(|a, b| a.0.total_cmp(&b.0))
                    .expect("at least the full scan") // lec-lint: allow(panic-reachability) — every relation set is seeded with the full-scan access, so the candidate list is non-empty
            })
            .collect();
        AccessTable { best }
    }
}

fn validate_inputs<M: CostModel + ?Sized>(
    query: &JoinQuery,
    _model: &M,
    sizes: &SizeModel,
    config: &AlgDConfig,
) -> Result<(), CoreError> {
    if config.size_buckets == 0 {
        return Err(CoreError::BadParameter("size_buckets must be >= 1".into()));
    }
    if sizes.rel_sizes.len() != query.n() || sizes.selectivities.len() != query.predicates().len() {
        return Err(CoreError::BadParameter(
            "size model does not match the query".into(),
        ));
    }
    Ok(())
}

/// Result-size distribution of a dag node: computed once per node, from
/// the lowest member as the designated `j` (any choice is equivalent).
///
/// Every product → §3.6.3 rebucket step runs through the caller's
/// [`ConvolveScratch`], so steady-state nodes allocate nothing: the wide
/// product support lives in the scratch buffers and the rebucketed result
/// (≤ `size_buckets` ≤ 8 points by default) is emitted inline. The scratch
/// kernels are bit-identical to `product_with` + `rebucket`, so this is
/// purely an allocation change.
// lec-lint: allow(panic-reachability) — callers pass non-empty sets whose subset entries the DP pass has already filled
fn node_size_dist(
    query: &JoinQuery,
    sizes: &SizeModel,
    config: AlgDConfig,
    size_of: &[Option<Distribution>],
    set: RelSet,
    scratch: &mut ConvolveScratch,
) -> Result<Distribution, CoreError> {
    let j = set.iter().next().expect("non-empty");
    let sub = set.remove(j);
    let sub_dist = size_of[sub.bits() as usize]
        .as_ref()
        .expect("subset computed earlier");
    let j_dist = &sizes.rel_sizes[j];
    let mut dist = scratch.product_rebucket(sub_dist, j_dist, |a, b| a * b, config.size_buckets)?;
    for (pidx, pred) in query.predicates().iter().enumerate() {
        let crosses = (sub.contains(pred.left) && j == pred.right)
            || (sub.contains(pred.right) && j == pred.left);
        if crosses {
            dist = scratch.product_rebucket(
                &dist,
                &sizes.selectivities[pidx],
                |s, sel| s * sel,
                config.size_buckets,
            )?;
        }
    }
    Ok(scratch.map(&dist, |v| v.max(1.0))?)
}

/// Prices every way of forming `set` by a last join, against the frozen
/// lower-depth tables. Shared verbatim by the serial sweep and the
/// rank-parallel wavefront, so both produce identical entries.
#[allow(clippy::too_many_arguments)]
// lec-lint: allow(panic-reachability) — DP induction: singletons are seeded and subsets priced in rank order before supersets, and every candidate set holds at least the full-scan plan
fn cost_mask_d<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    sizes: &SizeModel,
    config: AlgDConfig,
    access: &AccessTable,
    phases: &PhaseDists,
    table: &[Option<Entry>],
    size_of: &[Option<Distribution>],
    set: RelSet,
    full: RelSet,
    required: Option<KeyId>,
) -> (Entry, Option<Entry>, u64) {
    let phase = set.len() - 2;
    let mem_dist = phases.at(phase);
    let e_out = size_of[set.bits() as usize]
        .as_ref()
        .expect("node size computed earlier")
        .mean();

    let mut best: Option<Entry> = None;
    let mut best_ordered: Option<Entry> = None;
    let mut candidates = 0u64;
    for j in set.iter() {
        let sub = set.remove(j);
        let left = table[sub.bits() as usize].expect("subset computed earlier");
        let left_dist = size_of[sub.bits() as usize]
            .as_ref()
            .expect("subset computed earlier");
        let j_dist = &sizes.rel_sizes[j];
        let acc_cost = access.best[j].0;
        let key = query.join_key_between(sub, RelSet::single(j));
        for method in JoinMethod::ALL {
            let e_join = match config.kernel {
                Kernel::Fast => expected_join_fast(method, left_dist, j_dist, mem_dist),
                Kernel::Naive => expected_join_naive(model, method, left_dist, j_dist, mem_dist),
            };
            let cost = left.cost + acc_cost + e_join + e_out;
            candidates += 1;
            let entry = Entry {
                cost,
                choice: Choice::Join { last: j, method },
            };
            if best.is_none_or(|b| cost < b.cost) {
                best = Some(entry);
            }
            if set == full
                && method == JoinMethod::SortMerge
                && required.is_some()
                && key == required
                && best_ordered.is_none_or(|b| cost < b.cost)
            {
                best_ordered = Some(entry);
            }
        }
    }
    (
        best.expect("set has at least two members"),
        best_ordered,
        candidates,
    )
}

fn seed_depth_one(
    query: &JoinQuery,
    sizes: &SizeModel,
    access: &AccessTable,
    table: &mut [Option<Entry>],
    size_of: &mut [Option<Distribution>],
) {
    for i in 0..query.n() {
        let (cost, method) = access.best[i];
        let idx = RelSet::single(i).bits() as usize;
        table[idx] = Some(Entry {
            cost,
            choice: Choice::Access(method),
        });
        size_of[idx] = Some(sizes.rel_sizes[i].clone());
    }
}

fn finalize_d<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    access: &AccessTable,
    phases: &PhaseDists,
    table: &[Option<Entry>],
    size_of: &[Option<Distribution>],
    best_ordered: Option<Entry>,
) -> Result<AlgDResult, CoreError> {
    let n = query.n();
    let full = query.all();
    let root = table[full.bits() as usize].ok_or(CoreError::NoPlanFound)?;
    let result_size = size_of[full.bits() as usize]
        .clone()
        .ok_or(CoreError::NoPlanFound)?;

    let best = if let Some(key) = query.required_order() {
        let sort_phase = n.saturating_sub(1);
        let e_sort = expected_sort(model, &result_size, phases.at(sort_phase)) + result_size.mean();
        let sorted_cost = root.cost + e_sort;
        match best_ordered {
            Some(ord) if ord.cost <= sorted_cost => Optimized {
                plan: reconstruct(query, access, table, full, Some(ord)),
                cost: ord.cost,
            },
            _ => Optimized {
                plan: Plan::sort(reconstruct(query, access, table, full, None), key),
                cost: sorted_cost,
            },
        }
    } else {
        Optimized {
            plan: reconstruct(query, access, table, full, None),
            cost: root.cost,
        }
    };

    crate::verify::debug_verify_plan(query, &best.plan, best.cost);
    Ok(AlgDResult { best, result_size })
}

fn run<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
) -> Result<AlgDResult, CoreError> {
    Ok(run_stats(query, model, memory, sizes, config)?.0)
}

/// The serial driver with stats. The sweep walks the lattice rank by rank
/// (a valid DP order, bit-identical to the flat numeric sweep) so per-rank
/// wall time lines up with the parallel driver; within a rank each mask
/// computes its result-size distribution and then its join costing, in
/// increasing numeric mask order.
fn run_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
) -> Result<(AlgDResult, OptStats), CoreError> {
    validate_inputs(query, model, sizes, &config)?;
    let n = query.n();
    let full = query.all();
    let phases = memory.table(n.max(2))?;
    let slots = (full.bits() + 1) as usize;
    let mut table: Vec<Option<Entry>> = vec![None; slots];
    let mut size_of: Vec<Option<Distribution>> = vec![None; slots];

    let access = AccessTable::new(query, sizes);
    seed_depth_one(query, sizes, &access, &mut table, &mut size_of);

    let required = query.required_order();
    let mut best_ordered: Option<Entry> = None;

    let mut stats = OptStats::new("alg_d", n);
    stats.precompute.access_entries = access.best.len();
    stats.precompute.pages_entries = n; // singleton size distributions
    stats.counters.entries_written = n as u64;

    let ranks = par::ranks(n);
    let mut scratch = ConvolveScratch::new();
    for rank in &ranks[1..] {
        let (result, elapsed) = par::timed(|| -> Result<(), CoreError> {
            for &set in rank {
                let idx = set.bits() as usize;
                size_of[idx] = Some(node_size_dist(
                    query,
                    sizes,
                    config,
                    &size_of,
                    set,
                    &mut scratch,
                )?);
                let (best, ordered, candidates) = cost_mask_d(
                    query, model, sizes, config, &access, &phases, &table, &size_of, set, full,
                    required,
                );
                table[idx] = Some(best);
                if let Some(ord) = ordered {
                    best_ordered = Some(ord);
                }
                stats.counters.masks_expanded += 1;
                stats.counters.candidates_priced += candidates;
                stats.counters.entries_written += 1;
                stats.precompute.pages_entries += 1;
            }
            Ok(())
        });
        result?;
        stats.rank_wall_ns.push(elapsed);
    }

    let best = finalize_d(
        query,
        model,
        &access,
        &phases,
        &table,
        &size_of,
        best_ordered,
    )?;
    Ok((best, stats))
}

fn run_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
    par: &Parallelism,
) -> Result<AlgDResult, CoreError> {
    Ok(run_par_stats(query, model, memory, sizes, config, par)?.0)
}

/// Rank-parallel Algorithm D: each rank of the subset lattice runs two
/// wavefronts — result-size distributions first (they only read lower
/// ranks), then join costing (which additionally reads this rank's sizes).
/// Per-mask counts gather in input order, so the stats equal the serial
/// driver's exactly.
fn run_par_stats<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    sizes: &SizeModel,
    config: AlgDConfig,
    par: &Parallelism,
) -> Result<(AlgDResult, OptStats), CoreError> {
    let n = query.n();
    if !par.use_parallel(n) {
        return run_stats(query, model, memory, sizes, config);
    }
    validate_inputs(query, model, sizes, &config)?;
    let full = query.all();
    let phases = memory.table(n.max(2))?;
    let slots = (full.bits() + 1) as usize;
    let mut table: Vec<Option<Entry>> = vec![None; slots];
    let mut size_of: Vec<Option<Distribution>> = vec![None; slots];

    let access = AccessTable::new(query, sizes);
    seed_depth_one(query, sizes, &access, &mut table, &mut size_of);

    let required = query.required_order();
    let mut best_ordered: Option<Entry> = None;

    let mut stats = OptStats::new("alg_d", n);
    stats.precompute.access_entries = access.best.len();
    stats.precompute.pages_entries = n;
    stats.counters.entries_written = n as u64;

    let ranks = par::ranks(n);
    for rank in &ranks[1..] {
        let (wave, elapsed) = par::timed(|| -> Result<Vec<_>, CoreError> {
            // Pass 1: this rank's result-size distributions (read lower
            // ranks). Each worker reuses one convolution scratch across
            // all the nodes it claims.
            let dists = par::map_indexed_scratch(par, rank.len(), ConvolveScratch::new, |s, i| {
                node_size_dist(query, sizes, config, &size_of, rank[i], s)
            });
            for (set, dist) in rank.iter().zip(dists) {
                size_of[set.bits() as usize] = Some(dist?);
            }
            // Pass 2: join costing (reads this rank's sizes, lower-rank
            // entries).
            Ok(par::map_indexed(par, rank.len(), |i| {
                cost_mask_d(
                    query, model, sizes, config, &access, &phases, &table, &size_of, rank[i], full,
                    required,
                )
            }))
        });
        stats.rank_wall_ns.push(elapsed);
        for (set, (best, ordered, candidates)) in rank.iter().zip(wave?) {
            table[set.bits() as usize] = Some(best);
            if let Some(ord) = ordered {
                best_ordered = Some(ord);
            }
            stats.counters.masks_expanded += 1;
            stats.counters.candidates_priced += candidates;
            stats.counters.entries_written += 1;
            stats.precompute.pages_entries += 1;
        }
    }

    let best = finalize_d(
        query,
        model,
        &access,
        &phases,
        &table,
        &size_of,
        best_ordered,
    )?;
    Ok((best, stats))
}

/// Expected access cost when the effective size is a distribution.
fn expected_access_cost(
    rel: &lec_plan::Relation,
    method: AccessMethod,
    size: &Distribution,
) -> f64 {
    match method {
        AccessMethod::FullScan => {
            if rel.local_selectivity >= 1.0 {
                0.0
            } else {
                rel.pages + size.mean()
            }
        }
        AccessMethod::IndexScan => 2.0 + 3.0 * size.mean(),
    }
}

// lec-lint: allow(panic-reachability) — reconstruction only walks entries the forward DP pass has filled; a singleton decomposes to its only relation
fn reconstruct(
    query: &JoinQuery,
    access: &AccessTable,
    table: &[Option<Entry>],
    set: RelSet,
    override_root: Option<Entry>,
) -> Plan {
    let entry = override_root.unwrap_or_else(|| table[set.bits() as usize].expect("entry exists"));
    match entry.choice {
        Choice::Access(method) => Plan::Access {
            rel: set.iter().next().expect("singleton"),
            method,
        },
        Choice::Join { last, method } => {
            let sub = set.remove(last);
            let left = reconstruct(query, access, table, sub, None);
            let key = query.join_key_between(sub, RelSet::single(last));
            Plan::join(
                left,
                Plan::Access {
                    rel: last,
                    method: access.best[last].1,
                },
                method,
                key,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c;
    use lec_plan::{JoinPred, KeyId, Relation};
    use lec_stats::Distribution;

    fn chain_query(n: usize) -> JoinQuery {
        let relations = (0..n)
            .map(|i| Relation::new(format!("r{i}"), 300.0 * (i + 1) as f64, 1e4))
            .collect();
        let predicates = (0..n - 1)
            .map(|i| JoinPred {
                left: i,
                right: i + 1,
                selectivity: 0.001,
                key: KeyId(i),
            })
            .collect();
        JoinQuery::new(relations, predicates, Some(KeyId(n - 2))).unwrap()
    }

    fn memory() -> MemoryModel {
        MemoryModel::Static(Distribution::new([(20.0, 0.3), (200.0, 0.4), (1500.0, 0.3)]).unwrap())
    }

    #[test]
    fn certain_sizes_reduce_to_algorithm_c() {
        let q = chain_query(4);
        let sizes = SizeModel::certain(&q).unwrap();
        let mem = memory();
        let d = optimize_fast(&q, &mem, &sizes, AlgDConfig::default()).unwrap();
        let c = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap();
        assert_eq!(d.best.plan, c.plan);
        assert!(
            (d.best.cost - c.cost).abs() < 1e-6 * c.cost.max(1.0),
            "D: {} vs C: {}",
            d.best.cost,
            c.cost
        );
        // With point sizes, the result-size distribution is the point
        // estimate the query computes.
        assert!(d.result_size.is_point());
        assert!((d.result_size.mean() - q.result_pages(q.all())).abs() < 1e-6);
    }

    #[test]
    fn fast_and_naive_kernels_agree() {
        let q = chain_query(4);
        let sizes = SizeModel::with_uncertainty(&q, 0.4, 0.6, 4).unwrap();
        let mem = memory();
        let fast = optimize_fast(&q, &mem, &sizes, AlgDConfig::default()).unwrap();
        let naive = run(
            &q,
            &PaperCostModel,
            &mem,
            &sizes,
            AlgDConfig {
                kernel: Kernel::Naive,
                size_buckets: 8,
            },
        )
        .unwrap();
        assert_eq!(fast.best.plan, naive.best.plan);
        assert!((fast.best.cost - naive.best.cost).abs() < 1e-6 * naive.best.cost.max(1.0));
    }

    #[test]
    fn result_size_mean_tracks_point_estimate() {
        // Rebucketing preserves means exactly, and the product of
        // independent means is the mean of the product, so the propagated
        // mean must match the point-estimate chain (up to the max(1.0)
        // flooring, inactive for these sizes).
        let q = chain_query(4);
        let sizes = SizeModel::with_uncertainty(&q, 0.3, 0.3, 5).unwrap();
        let mem = memory();
        let d = optimize_fast(&q, &mem, &sizes, AlgDConfig::default()).unwrap();
        let point = q.result_pages(q.all());
        let rel = (d.result_size.mean() - point).abs() / point;
        assert!(
            rel < 0.05,
            "propagated {} vs point {point}",
            d.result_size.mean()
        );
    }

    #[test]
    fn size_buckets_cap_is_respected() {
        let q = chain_query(5);
        let sizes = SizeModel::with_uncertainty(&q, 0.5, 0.5, 6).unwrap();
        let mem = memory();
        for b in [2, 4, 8] {
            let d = optimize_fast(
                &q,
                &mem,
                &sizes,
                AlgDConfig {
                    size_buckets: b,
                    kernel: Kernel::Fast,
                },
            )
            .unwrap();
            assert!(d.result_size.len() <= b);
        }
    }

    #[test]
    fn uncertainty_can_change_the_chosen_plan() {
        // A query engineered so that size uncertainty flips a nested-loop
        // decision: with certain sizes the small relation fits in memory;
        // with uncertainty there is a real chance it does not, and the
        // quadratic blowup makes NL unattractive in expectation.
        let q = JoinQuery::new(
            vec![
                Relation::new("big", 40_000.0, 4e5),
                Relation::new("small", 95.0, 950.0),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 1e-5,
                key: KeyId(0),
            }],
            None,
        )
        .unwrap();
        let mem = MemoryModel::Static(Distribution::point(100.0).unwrap());
        let certain = SizeModel::certain(&q).unwrap();
        let d1 = optimize_fast(&q, &mem, &certain, AlgDConfig::default()).unwrap();
        let uncertain = SizeModel::with_uncertainty(&q, 0.8, 0.0, 8).unwrap();
        let d2 = optimize_fast(&q, &mem, &uncertain, AlgDConfig::default()).unwrap();
        let m1 = match &d1.best.plan {
            Plan::Join { method, .. } => *method,
            other => panic!("unexpected {other:?}"),
        };
        let m2 = match &d2.best.plan {
            Plan::Join { method, .. } => *method,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(m1, JoinMethod::NestedLoop);
        assert_ne!(m2, JoinMethod::NestedLoop, "uncertainty should kill NL");
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let q = chain_query(5);
        let sizes = SizeModel::with_uncertainty(&q, 0.4, 0.5, 4).unwrap();
        let mem = memory();
        let serial = optimize_fast(&q, &mem, &sizes, AlgDConfig::default()).unwrap();
        let par = Parallelism {
            threads: 3,
            sequential_cutoff: 2,
        };
        let parallel = optimize_fast_par(&q, &mem, &sizes, AlgDConfig::default(), &par).unwrap();
        assert_eq!(serial.best.cost.to_bits(), parallel.best.cost.to_bits());
        assert_eq!(serial.best.plan, parallel.best.plan);
        assert_eq!(serial.result_size, parallel.result_size);
    }

    #[test]
    fn stats_match_between_serial_and_parallel() {
        let q = chain_query(5);
        let sizes = SizeModel::with_uncertainty(&q, 0.4, 0.5, 4).unwrap();
        let mem = memory();
        let (serial, sstats) =
            optimize_fast_with_stats(&q, &mem, &sizes, AlgDConfig::default()).unwrap();
        let par = Parallelism {
            threads: 3,
            sequential_cutoff: 2,
        };
        let (parallel, pstats) =
            optimize_fast_with_stats_par(&q, &mem, &sizes, AlgDConfig::default(), &par).unwrap();
        assert_eq!(serial.best.cost.to_bits(), parallel.best.cost.to_bits());
        assert_eq!(serial.best.plan, parallel.best.plan);
        assert_eq!(sstats.counters, pstats.counters);
        assert_eq!(sstats.precompute, pstats.precompute);
        assert_eq!(sstats.counters.masks_expanded, 26);
        assert_eq!(sstats.counters.candidates_priced, 225);
        // One propagated size distribution per node: 5 seeds + 26 masks.
        assert_eq!(sstats.precompute.pages_entries, 5 + 26);
        // The plain entry point delegates to the stats driver.
        let plain = optimize_fast(&q, &mem, &sizes, AlgDConfig::default()).unwrap();
        assert_eq!(plain.best.plan, serial.best.plan);
        assert_eq!(plain.best.cost.to_bits(), serial.best.cost.to_bits());
    }

    #[test]
    fn rejects_mismatched_size_model() {
        let q = chain_query(3);
        let other = SizeModel::certain(&chain_query(4)).unwrap();
        let res = optimize_fast(&q, &memory(), &other, AlgDConfig::default());
        assert!(matches!(res, Err(CoreError::BadParameter(_))));
    }
}
