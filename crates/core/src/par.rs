//! Deterministic data-parallel helpers for the enumerators.
//!
//! Every dynamic program in this crate shares one dependency structure: a
//! subset's entry depends only on *strictly smaller* subsets. Subsets of
//! equal cardinality (one "rank" of the subset lattice) are therefore
//! independent and can be costed concurrently, rank by rank — a wavefront
//! schedule. This module provides the scheduling primitive: split an index
//! range into contiguous chunks, run the chunks on scoped `std::thread`
//! workers, and gather results back **in input order**.
//!
//! Determinism: the per-item function is pure (it reads the frozen
//! lower-rank table), chunk boundaries never change an item's inputs, and
//! gathering in chunk order reassembles exactly the serial output. Parallel
//! and serial runs are bit-identical by construction, which the equivalence
//! property tests enforce end to end.
//!
//! No external thread-pool crate is used — `std::thread::scope` is the
//! fallback-free baseline available everywhere the workspace builds.

use std::num::NonZeroUsize;

/// How much parallelism an enumerator may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker count; `0` means auto-detect via
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Queries with fewer relations than this run fully serially — below
    /// ~8 relations a rank has so few subsets that thread spawn/join
    /// overhead dominates the costing work.
    pub sequential_cutoff: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism {
            threads: 0,
            sequential_cutoff: 8,
        }
    }
}

impl Parallelism {
    /// Auto-detected worker count with the default sequential cutoff.
    pub fn auto() -> Self {
        Self::default()
    }

    /// Strictly serial execution (also the reference for equivalence tests).
    pub fn serial() -> Self {
        Parallelism {
            threads: 1,
            sequential_cutoff: usize::MAX,
        }
    }

    /// Exactly `threads` workers with the default cutoff.
    pub fn with_threads(threads: usize) -> Self {
        Parallelism {
            threads,
            ..Self::default()
        }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Should a query on `n` relations use the parallel path at all?
    pub fn use_parallel(&self, n: usize) -> bool {
        n >= self.sequential_cutoff && self.effective_threads() > 1
    }
}

/// Maps `f` over `0..len`, preserving index order in the output.
///
/// With one effective worker (or a tiny range) this is a plain serial map;
/// otherwise the range is split into one contiguous chunk per worker and
/// the chunks run on scoped threads. `f` must be pure with respect to the
/// index for the output to equal the serial map — which is exactly the
/// contract the wavefront DP passes give it.
pub fn map_indexed<R, F>(par: &Parallelism, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = par.effective_threads().min(len.max(1));
    if workers <= 1 || len < 2 {
        return (0..len).map(f).collect();
    }

    // Contiguous chunks, sized as evenly as possible.
    let base = len / workers;
    let extra = len % workers;
    let mut bounds = Vec::with_capacity(workers + 1);
    let mut at = 0usize;
    bounds.push(0);
    for w in 0..workers {
        at += base + usize::from(w < extra);
        bounds.push(at);
    }

    let f = &f;
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .skip(1)
            .map(|w| {
                let (lo, hi) = (w[0], w[1]);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        // The first chunk runs on the calling thread while workers proceed.
        chunks.push((bounds[0]..bounds[1]).map(f).collect());
        for handle in handles {
            chunks.push(handle.join().expect("worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Runs `f` and returns its result together with the coarse wall-clock
/// nanoseconds it took — the per-rank timing primitive behind
/// [`OptStats::rank_wall_ns`](crate::stats::OptStats::rank_wall_ns).
/// Timing is the *only* non-deterministic quantity the stats layer
/// records; everything else is accumulated in mask order.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    // lec-lint: allow(no-wallclock-or-ambient-rng) — observability-only wall time; feeds OptStats::rank_wall_ns, never a plan choice
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as u64)
}

/// The subset lattice of `{0..n}` grouped by cardinality: `ranks()[k]`
/// holds every mask of popcount `k + 1` in increasing numeric order.
///
/// Concatenated rank by rank this is a valid DP order (subsets before
/// supersets), and within a rank all masks are mutually independent.
pub fn ranks(n: usize) -> Vec<Vec<lec_plan::RelSet>> {
    let mut by_rank: Vec<Vec<lec_plan::RelSet>> = vec![Vec::new(); n];
    for set in lec_plan::RelSet::all_subsets(n) {
        by_rank[set.len() - 1].push(set);
    }
    by_rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 3, 7] {
            let par = Parallelism::with_threads(threads);
            let out = map_indexed(&par, 23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_handles_edge_lengths() {
        let par = Parallelism::with_threads(4);
        assert_eq!(map_indexed(&par, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(&par, 1, |i| i + 10), vec![10]);
        assert_eq!(map_indexed(&par, 2, |i| i), vec![0, 1]);
    }

    #[test]
    fn serial_never_parallelizes() {
        let par = Parallelism::serial();
        assert_eq!(par.effective_threads(), 1);
        assert!(!par.use_parallel(30));
    }

    #[test]
    fn cutoff_gates_small_queries() {
        let par = Parallelism {
            threads: 8,
            sequential_cutoff: 8,
        };
        assert!(!par.use_parallel(7));
        assert!(par.use_parallel(8));
    }

    #[test]
    fn ranks_partition_the_lattice() {
        let n = 6;
        let by_rank = ranks(n);
        assert_eq!(by_rank.len(), n);
        let total: usize = by_rank.iter().map(Vec::len).sum();
        assert_eq!(total, (1 << n) - 1);
        for (k, rank) in by_rank.iter().enumerate() {
            assert!(rank.iter().all(|s| s.len() == k + 1));
            assert!(rank.windows(2).all(|w| w[0].bits() < w[1].bits()));
        }
    }
}
