//! Deterministic data-parallel helpers for the enumerators.
//!
//! Every dynamic program in this crate shares one dependency structure: a
//! subset's entry depends only on *strictly smaller* subsets. Subsets of
//! equal cardinality (one "rank" of the subset lattice) are therefore
//! independent and can be costed concurrently, rank by rank — a wavefront
//! schedule. This module provides the scheduling primitive: split an index
//! range into fixed chunks that workers *claim* off a shared atomic
//! counter (work stealing), and gather results back **in input order**.
//!
//! The claim queue matters because rank work is skewed: subsets of the
//! same cardinality can differ wildly in how many join candidates they
//! admit, so a static one-chunk-per-worker split leaves threads idle
//! behind the unluckiest chunk. With `fetch_add` claiming, a fast worker
//! simply takes the next chunk — no chunk is ever owned before it is
//! started.
//!
//! Determinism: the per-item function is pure (it reads the frozen
//! lower-rank table), chunk boundaries are a function of `len` alone
//! (never of thread count or timing), and each chunk's results carry
//! their chunk index so the gather step reassembles exactly the serial
//! output no matter which worker computed what. Parallel and serial runs
//! are bit-identical by construction, which the equivalence property
//! tests enforce end to end.
//!
//! [`map_indexed_scratch`] additionally threads a per-worker scratch
//! value (e.g. a [`lec_stats::ConvolveScratch`]) through the chunk loop,
//! so allocation-reusing kernels work under the same deterministic
//! schedule: scratch state never crosses an item boundary's *output* —
//! it only recycles buffers — so results stay schedule-independent.
//!
//! No external thread-pool crate is used — `std::thread::scope` is the
//! fallback-free baseline available everywhere the workspace builds.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Target number of chunks a worker should get to claim, on average.
/// More chunks → better load balance under skew; fewer → less claim
/// traffic. Chunk boundaries depend only on `len`, never on this ratio
/// interacting with timing, so the constant is a pure tuning knob.
const CHUNKS_PER_WORKER: usize = 8;

/// Smallest chunk worth a `fetch_add` round-trip.
const MIN_CHUNK: usize = 16;

/// How much parallelism an enumerator may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker count; `0` means auto-detect via
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Queries with fewer relations than this run fully serially — below
    /// ~8 relations a rank has so few subsets that thread spawn/join
    /// overhead dominates the costing work.
    pub sequential_cutoff: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism {
            threads: 0,
            sequential_cutoff: 8,
        }
    }
}

impl Parallelism {
    /// Auto-detected worker count with the default sequential cutoff.
    pub fn auto() -> Self {
        Self::default()
    }

    /// Strictly serial execution (also the reference for equivalence tests).
    pub fn serial() -> Self {
        Parallelism {
            threads: 1,
            sequential_cutoff: usize::MAX,
        }
    }

    /// Exactly `threads` workers with the default cutoff.
    pub fn with_threads(threads: usize) -> Self {
        Parallelism {
            threads,
            ..Self::default()
        }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Should a query on `n` relations use the parallel path at all?
    pub fn use_parallel(&self, n: usize) -> bool {
        n >= self.sequential_cutoff && self.effective_threads() > 1
    }
}

/// Maps `f` over `0..len`, preserving index order in the output.
///
/// With one effective worker (or a tiny range) this is a plain serial map;
/// otherwise workers claim fixed chunks off an atomic counter (work
/// stealing) and the chunks are gathered by index. `f` must be pure with
/// respect to the index for the output to equal the serial map — which is
/// exactly the contract the wavefront DP passes give it.
pub fn map_indexed<R, F>(par: &Parallelism, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_indexed_scratch(par, len, || (), move |(), i| f(i))
}

/// [`map_indexed`] with a per-worker scratch value: each worker (the
/// calling thread included) builds one scratch with `make_scratch` and
/// reuses it for every item it claims. Use this to thread allocation
/// arenas through the wavefront — the scratch must only recycle buffers,
/// never carry state that changes an item's result, or determinism is
/// lost.
pub fn map_indexed_scratch<R, S, MS, F>(
    par: &Parallelism,
    len: usize,
    make_scratch: MS,
    f: F,
) -> Vec<R>
where
    R: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = par.effective_threads().min(len.max(1));
    if workers <= 1 || len < 2 {
        let mut scratch = make_scratch();
        return (0..len).map(|i| f(&mut scratch, i)).collect();
    }

    // Fixed chunk size from `len` and `workers` only — the schedule
    // (which worker runs which chunk) is timing-dependent, the chunk
    // *boundaries* are not.
    let chunk = (len / (workers * CHUNKS_PER_WORKER)).max(MIN_CHUNK);
    let next = AtomicUsize::new(0);
    let run_worker = || {
        let mut scratch = make_scratch();
        let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
        loop {
            let lo = next.fetch_add(chunk, Ordering::Relaxed);
            if lo >= len {
                break;
            }
            let hi = (lo + chunk).min(len);
            mine.push((lo, (lo..hi).map(|i| f(&mut scratch, i)).collect()));
        }
        mine
    };

    let mut parts: Vec<(usize, Vec<R>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..workers).map(|_| scope.spawn(run_worker)).collect();
        // The calling thread participates as worker 0.
        parts.extend(run_worker());
        for handle in handles {
            parts.extend(handle.join().expect("worker panicked"));
        }
    });
    // Deterministic gather: chunk start indices are unique, so sorting by
    // them reassembles the serial order regardless of claim order.
    parts.sort_by_key(|&(lo, _)| lo);
    let mut out = Vec::with_capacity(len);
    for (_, chunk) in parts {
        out.extend(chunk);
    }
    out
}

/// Runs `f` and returns its result together with the coarse wall-clock
/// nanoseconds it took — the per-rank timing primitive behind
/// [`OptStats::rank_wall_ns`](crate::stats::OptStats::rank_wall_ns).
/// Timing is the *only* non-deterministic quantity the stats layer
/// records; everything else is accumulated in mask order.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    // lec-lint: allow(no-wallclock-or-ambient-rng) — observability-only wall time; feeds OptStats::rank_wall_ns, never a plan choice
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as u64)
}

/// The subset lattice of `{0..n}` grouped by cardinality: `ranks()[k]`
/// holds every mask of popcount `k + 1` in increasing numeric order.
///
/// Concatenated rank by rank this is a valid DP order (subsets before
/// supersets), and within a rank all masks are mutually independent.
pub fn ranks(n: usize) -> Vec<Vec<lec_plan::RelSet>> {
    let mut by_rank: Vec<Vec<lec_plan::RelSet>> = vec![Vec::new(); n];
    for set in lec_plan::RelSet::all_subsets(n) {
        by_rank[set.len() - 1].push(set);
    }
    by_rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 3, 7] {
            let par = Parallelism::with_threads(threads);
            let out = map_indexed(&par, 23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_balances_skewed_work() {
        // Heavily skewed per-item cost: the last items are far slower. The
        // claim queue must still reassemble the serial order exactly.
        let par = Parallelism::with_threads(4);
        let len = 4 * MIN_CHUNK + 3;
        let out = map_indexed(&par, len, |i| {
            let mut acc = i as u64;
            for _ in 0..(i * i % 977) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        let serial = map_indexed(&Parallelism::serial(), len, |i| {
            let mut acc = i as u64;
            for _ in 0..(i * i % 977) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out, serial);
    }

    #[test]
    fn scratch_is_per_worker_and_results_are_ordered() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let builds = AtomicUsize::new(0);
        for threads in [1, 3] {
            builds.store(0, Ordering::SeqCst);
            let par = Parallelism::with_threads(threads);
            let len = 3 * MIN_CHUNK + 1;
            let out = map_indexed_scratch(
                &par,
                len,
                || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    // Reuse the buffer; its *content* never leaks into the
                    // result beyond the current item.
                    scratch.clear();
                    scratch.extend(0..=i);
                    scratch.iter().sum::<usize>()
                },
            );
            assert_eq!(
                out,
                (0..len).map(|i| i * (i + 1) / 2).collect::<Vec<_>>(),
                "threads = {threads}"
            );
            // One scratch per participating worker, no more.
            assert!(builds.load(Ordering::SeqCst) <= threads.max(1));
        }
    }

    #[test]
    fn map_indexed_handles_edge_lengths() {
        let par = Parallelism::with_threads(4);
        assert_eq!(map_indexed(&par, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(&par, 1, |i| i + 10), vec![10]);
        assert_eq!(map_indexed(&par, 2, |i| i), vec![0, 1]);
    }

    #[test]
    fn serial_never_parallelizes() {
        let par = Parallelism::serial();
        assert_eq!(par.effective_threads(), 1);
        assert!(!par.use_parallel(30));
    }

    #[test]
    fn cutoff_gates_small_queries() {
        let par = Parallelism {
            threads: 8,
            sequential_cutoff: 8,
        };
        assert!(!par.use_parallel(7));
        assert!(par.use_parallel(8));
    }

    #[test]
    fn ranks_partition_the_lattice() {
        let n = 6;
        let by_rank = ranks(n);
        assert_eq!(by_rank.len(), n);
        let total: usize = by_rank.iter().map(Vec::len).sum();
        assert_eq!(total, (1 << n) - 1);
        for (k, rank) in by_rank.iter().enumerate() {
            assert!(rank.iter().all(|s| s.len() == k + 1));
            assert!(rank.windows(2).all(|w| w[0].bits() < w[1].bits()));
        }
    }
}
