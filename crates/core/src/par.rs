//! Deterministic data-parallel helpers for the enumerators.
//!
//! Every dynamic program in this crate shares one dependency structure: a
//! subset's entry depends only on *strictly smaller* subsets. Subsets of
//! equal cardinality (one "rank" of the subset lattice) are therefore
//! independent and can be costed concurrently, rank by rank — a wavefront
//! schedule. This module provides the scheduling primitive: split an index
//! range into fixed chunks that workers *claim* off a shared atomic
//! counter (work stealing), and gather results back **in input order**.
//!
//! The claim queue matters because rank work is skewed: subsets of the
//! same cardinality can differ wildly in how many join candidates they
//! admit, so a static one-chunk-per-worker split leaves threads idle
//! behind the unluckiest chunk. With `fetch_add` claiming, a fast worker
//! simply takes the next chunk — no chunk is ever owned before it is
//! started.
//!
//! Determinism: the per-item function is pure (it reads the frozen
//! lower-rank table), chunk boundaries are a function of `len` alone
//! (never of thread count or timing), and each chunk's results carry
//! their chunk index so the gather step reassembles exactly the serial
//! output no matter which worker computed what. Parallel and serial runs
//! are bit-identical by construction, which the equivalence property
//! tests enforce end to end.
//!
//! [`map_indexed_scratch`] additionally threads a per-worker scratch
//! value (e.g. a [`lec_stats::ConvolveScratch`]) through the chunk loop,
//! so allocation-reusing kernels work under the same deterministic
//! schedule: scratch state never crosses an item boundary's *output* —
//! it only recycles buffers — so results stay schedule-independent.
//!
//! No external thread-pool crate is used — `std::thread::scope` is the
//! fallback-free baseline available everywhere the workspace builds.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Target number of chunks a worker should get to claim, on average.
/// More chunks → better load balance under skew; fewer → less claim
/// traffic. Chunk boundaries depend only on `len`, never on this ratio
/// interacting with timing, so the constant is a pure tuning knob.
const CHUNKS_PER_WORKER: usize = 8;

/// Smallest chunk worth a `fetch_add` round-trip.
const MIN_CHUNK: usize = 16;

/// How much parallelism an enumerator may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker count; `0` means auto-detect via
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Queries with fewer relations than this run fully serially — below
    /// ~10 relations the widest rank is only a few hundred masks
    /// (`C(9, 4) = 126`), so pool wake-ups and claim traffic swamp the
    /// costing work (measured on x18: n = 9 never beats serial at any
    /// worker count, n = 11 is the first size where it can).
    pub sequential_cutoff: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism {
            threads: 0,
            sequential_cutoff: 10,
        }
    }
}

impl Parallelism {
    /// Auto-detected worker count with the default sequential cutoff.
    pub fn auto() -> Self {
        Self::default()
    }

    /// Strictly serial execution (also the reference for equivalence tests).
    pub fn serial() -> Self {
        Parallelism {
            threads: 1,
            sequential_cutoff: usize::MAX,
        }
    }

    /// Exactly `threads` workers with the default cutoff.
    pub fn with_threads(threads: usize) -> Self {
        Parallelism {
            threads,
            ..Self::default()
        }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Should a query on `n` relations use the parallel path at all?
    pub fn use_parallel(&self, n: usize) -> bool {
        n >= self.sequential_cutoff && self.effective_threads() > 1
    }
}

/// Maps `f` over `0..len`, preserving index order in the output.
///
/// With one effective worker (or a tiny range) this is a plain serial map;
/// otherwise workers claim fixed chunks off an atomic counter (work
/// stealing) and the chunks are gathered by index. `f` must be pure with
/// respect to the index for the output to equal the serial map — which is
/// exactly the contract the wavefront DP passes give it.
pub fn map_indexed<R, F>(par: &Parallelism, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_indexed_scratch(par, len, || (), move |(), i| f(i))
}

/// [`map_indexed`] with a per-worker scratch value: each worker (the
/// calling thread included) builds one scratch with `make_scratch` and
/// reuses it for every item it claims. Use this to thread allocation
/// arenas through the wavefront — the scratch must only recycle buffers,
/// never carry state that changes an item's result, or determinism is
/// lost.
// lec-lint: allow(panic-reachability, concurrency-determinism) — the chunk cursor is an exact fetch_add RMW handing out disjoint ranges (result order is fixed by index, not schedule), and join re-raising a worker panic is the correct double fault
pub fn map_indexed_scratch<R, S, MS, F>(
    par: &Parallelism,
    len: usize,
    make_scratch: MS,
    f: F,
) -> Vec<R>
where
    R: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = par.effective_threads().min(len.max(1));
    if workers <= 1 || len < 2 {
        let mut scratch = make_scratch();
        return (0..len).map(|i| f(&mut scratch, i)).collect();
    }

    // Fixed chunk size from `len` and `workers` only — the schedule
    // (which worker runs which chunk) is timing-dependent, the chunk
    // *boundaries* are not.
    let chunk = (len / (workers * CHUNKS_PER_WORKER)).max(MIN_CHUNK);
    let next = AtomicUsize::new(0);
    let run_worker = || {
        let mut scratch = make_scratch();
        let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
        loop {
            let lo = next.fetch_add(chunk, Ordering::Relaxed);
            if lo >= len {
                break;
            }
            let hi = (lo + chunk).min(len);
            mine.push((lo, (lo..hi).map(|i| f(&mut scratch, i)).collect()));
        }
        mine
    };

    let mut parts: Vec<(usize, Vec<R>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..workers).map(|_| scope.spawn(run_worker)).collect();
        // The calling thread participates as worker 0.
        parts.extend(run_worker());
        for handle in handles {
            parts.extend(handle.join().expect("worker panicked"));
        }
    });
    // Deterministic gather: chunk start indices are unique, so sorting by
    // them reassembles the serial order regardless of claim order.
    parts.sort_by_key(|&(lo, _)| lo);
    let mut out = Vec::with_capacity(len);
    for (_, chunk) in parts {
        out.extend(chunk);
    }
    out
}

/// Drives a sequence of dependent waves through one persistent worker
/// pool: the worker set is spawned **once** and parks at a barrier
/// between waves, instead of paying a full spawn/join round per wave the
/// way repeated [`map_indexed`] calls would. Wave `w` has `waves[w]`
/// items; `body(w, i)` must be safe to run concurrently for all `i`
/// within one wave and is responsible for publishing its own result
/// (e.g. into a `OnceLock` slot) — by the time `body` runs for wave
/// `w + 1`, every `body` call of wave `w` has completed (the inter-wave
/// barrier is the happens-before edge).
///
/// Chunk boundaries are a pure function of each wave's length and the
/// worker count, and claiming uses the same `fetch_add` queue as
/// [`map_indexed`], so which worker runs which item is timing-dependent
/// but the set of `(wave, item)` executions is not.
///
/// Returns the wall-clock nanoseconds each wave took (the per-rank
/// timing the stats layer records).
// lec-lint: allow(panic-reachability, concurrency-determinism) — fetch_add hands out disjoint chunks, the cursor reset is ordered by the wave barrier (happens-before), and join re-raises worker panics
pub fn run_waves<F>(par: &Parallelism, waves: &[usize], body: F) -> Vec<u64>
where
    F: Fn(usize, usize) + Sync,
{
    let longest = waves.iter().copied().max().unwrap_or(0);
    let workers = par.effective_threads().min(longest.max(1));
    if workers <= 1 {
        return waves
            .iter()
            .enumerate()
            .map(|(w, &len)| {
                let ((), ns) = timed(|| {
                    for i in 0..len {
                        body(w, i);
                    }
                });
                ns
            })
            .collect();
    }

    // Waves with fewer items than one chunk per worker run inline on the
    // lead thread, with no barrier traffic at all — both sides compute
    // this predicate from the wave length alone, so lead and workers
    // always agree on which waves synchronize. (The head and tail ranks
    // of a subset lattice are tiny; waking the pool for them costs more
    // than the costing work itself.)
    let inline = |len: usize| len < workers * MIN_CHUNK;
    let next = AtomicUsize::new(0);
    let barrier = std::sync::Barrier::new(workers);
    let claim_wave = |w: usize, len: usize| {
        let chunk = (len / (workers * CHUNKS_PER_WORKER)).max(MIN_CHUNK);
        loop {
            let lo = next.fetch_add(chunk, Ordering::Relaxed);
            if lo >= len {
                break;
            }
            for i in lo..(lo + chunk).min(len) {
                body(w, i);
            }
        }
    };
    let mut wall = Vec::with_capacity(waves.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..workers)
            .map(|_| {
                scope.spawn(|| {
                    for (w, &len) in waves.iter().enumerate() {
                        if inline(len) {
                            continue;
                        }
                        // Entry barrier: the lead has finished every
                        // earlier wave (inline ones included) and rearmed
                        // the claim queue — that wait is the
                        // happens-before edge freezing the lower ranks.
                        barrier.wait();
                        claim_wave(w, len);
                        // Exit barrier: the wave is fully drained.
                        barrier.wait();
                    }
                })
            })
            .collect();
        // The calling thread is the lead worker: it runs tiny waves
        // alone, and for pool waves rearms the queue, releases the
        // workers, participates, and records wall time. The clock starts
        // *before* the entry barrier so work done by workers while the
        // lead is still being scheduled is attributed to the right wave.
        for (w, &len) in waves.iter().enumerate() {
            if inline(len) {
                let ((), ns) = timed(|| {
                    for i in 0..len {
                        body(w, i);
                    }
                });
                wall.push(ns);
                continue;
            }
            next.store(0, Ordering::Relaxed);
            // lec-lint: allow(no-wallclock-or-ambient-rng) — observability-only wall time; feeds OptStats::rank_wall_ns, never a plan choice
            let start = std::time::Instant::now();
            barrier.wait();
            claim_wave(w, len);
            barrier.wait();
            wall.push(start.elapsed().as_nanos() as u64);
        }
        for handle in handles {
            handle.join().expect("wave worker panicked");
        }
    });
    wall
}

/// Runs `f` and returns its result together with the coarse wall-clock
/// nanoseconds it took — the per-rank timing primitive behind
/// [`OptStats::rank_wall_ns`](crate::stats::OptStats::rank_wall_ns).
/// Timing is the *only* non-deterministic quantity the stats layer
/// records; everything else is accumulated in mask order.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    // lec-lint: allow(no-wallclock-or-ambient-rng) — observability-only wall time; feeds OptStats::rank_wall_ns, never a plan choice
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as u64)
}

/// The subset lattice of `{0..n}` grouped by cardinality: `ranks()[k]`
/// holds every mask of popcount `k + 1` in increasing numeric order.
///
/// Concatenated rank by rank this is a valid DP order (subsets before
/// supersets), and within a rank all masks are mutually independent.
pub fn ranks(n: usize) -> Vec<Vec<lec_plan::RelSet>> {
    let mut by_rank: Vec<Vec<lec_plan::RelSet>> = vec![Vec::new(); n];
    for set in lec_plan::RelSet::all_subsets(n) {
        by_rank[set.len() - 1].push(set); // lec-lint: allow(panic-reachability) — all_subsets yields only non-empty sets, so len - 1 is in bounds
    }
    by_rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 3, 7] {
            let par = Parallelism::with_threads(threads);
            let out = map_indexed(&par, 23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_balances_skewed_work() {
        // Heavily skewed per-item cost: the last items are far slower. The
        // claim queue must still reassemble the serial order exactly.
        let par = Parallelism::with_threads(4);
        let len = 4 * MIN_CHUNK + 3;
        let out = map_indexed(&par, len, |i| {
            let mut acc = i as u64;
            for _ in 0..(i * i % 977) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        let serial = map_indexed(&Parallelism::serial(), len, |i| {
            let mut acc = i as u64;
            for _ in 0..(i * i % 977) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out, serial);
    }

    #[test]
    fn scratch_is_per_worker_and_results_are_ordered() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let builds = AtomicUsize::new(0);
        for threads in [1, 3] {
            builds.store(0, Ordering::SeqCst);
            let par = Parallelism::with_threads(threads);
            let len = 3 * MIN_CHUNK + 1;
            let out = map_indexed_scratch(
                &par,
                len,
                || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    // Reuse the buffer; its *content* never leaks into the
                    // result beyond the current item.
                    scratch.clear();
                    scratch.extend(0..=i);
                    scratch.iter().sum::<usize>()
                },
            );
            assert_eq!(
                out,
                (0..len).map(|i| i * (i + 1) / 2).collect::<Vec<_>>(),
                "threads = {threads}"
            );
            // One scratch per participating worker, no more.
            assert!(builds.load(Ordering::SeqCst) <= threads.max(1));
        }
    }

    #[test]
    fn run_waves_matches_serial_and_respects_dependencies() {
        use std::sync::OnceLock;
        // Wave w writes slot (w, i) = f(previous wave's slot i) — the
        // inter-wave barrier must make every lower wave fully visible.
        // Wave lengths mix pool waves (≥ workers · MIN_CHUNK) with inline
        // ones so the barrier-skipping path is exercised in between.
        let waves = [200usize, 5, 200, 200, 1];
        for threads in [1, 2, 4] {
            let par = Parallelism::with_threads(threads);
            let slots: Vec<Vec<OnceLock<u64>>> = waves
                .iter()
                .map(|&len| std::iter::repeat_with(OnceLock::new).take(len).collect())
                .collect();
            let wall = run_waves(&par, &waves, |w, i| {
                let below = if w == 0 {
                    i as u64
                } else {
                    *slots[w - 1][i % waves[w - 1]]
                        .get()
                        .expect("lower wave frozen")
                };
                slots[w][i]
                    .set(below.wrapping_mul(31).wrapping_add(w as u64))
                    .unwrap();
            });
            assert_eq!(wall.len(), waves.len());
            let mut expect: Vec<Vec<u64>> = Vec::new();
            for (w, &len) in waves.iter().enumerate() {
                let row: Vec<u64> = (0..len)
                    .map(|i| {
                        let below = if w == 0 {
                            i as u64
                        } else {
                            expect[w - 1][i % waves[w - 1]]
                        };
                        below.wrapping_mul(31).wrapping_add(w as u64)
                    })
                    .collect();
                expect.push(row);
            }
            for (w, row) in expect.iter().enumerate() {
                for (i, want) in row.iter().enumerate() {
                    assert_eq!(
                        slots[w][i].get(),
                        Some(want),
                        "threads={threads} w={w} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_waves_handles_empty_and_tiny_waves() {
        let par = Parallelism::with_threads(4);
        assert!(run_waves(&par, &[], |_, _| {}).is_empty());
        let hits = AtomicUsize::new(0);
        let wall = run_waves(&par, &[0, 1, 0, 3], |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(wall.len(), 4);
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn map_indexed_handles_edge_lengths() {
        let par = Parallelism::with_threads(4);
        assert_eq!(map_indexed(&par, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(&par, 1, |i| i + 10), vec![10]);
        assert_eq!(map_indexed(&par, 2, |i| i), vec![0, 1]);
    }

    #[test]
    fn serial_never_parallelizes() {
        let par = Parallelism::serial();
        assert_eq!(par.effective_threads(), 1);
        assert!(!par.use_parallel(30));
    }

    #[test]
    fn cutoff_gates_small_queries() {
        let par = Parallelism {
            threads: 8,
            sequential_cutoff: 8,
        };
        assert!(!par.use_parallel(7));
        assert!(par.use_parallel(8));
    }

    #[test]
    fn ranks_partition_the_lattice() {
        let n = 6;
        let by_rank = ranks(n);
        assert_eq!(by_rank.len(), n);
        let total: usize = by_rank.iter().map(Vec::len).sum();
        assert_eq!(total, (1 << n) - 1);
        for (k, rank) in by_rank.iter().enumerate() {
            assert!(rank.iter().all(|s| s.len() == k + 1));
            assert!(rank.windows(2).all(|w| w[0].bits() < w[1].bits()));
        }
    }
}
