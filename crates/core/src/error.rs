//! Error type for the optimizer crate.

use std::fmt;

/// Errors raised by the optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A plan-substrate error (malformed query or plan).
    Plan(lec_plan::PlanError),
    /// A probability-substrate error (malformed distribution or chain).
    Stats(lec_stats::StatsError),
    /// An algorithm parameter was invalid (e.g. `c = 0` for top-c).
    BadParameter(String),
    /// The search produced no plan (internal invariant violation).
    NoPlanFound,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Plan(e) => write!(f, "plan error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            CoreError::NoPlanFound => write!(f, "optimizer produced no plan"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Plan(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lec_plan::PlanError> for CoreError {
    fn from(e: lec_plan::PlanError) -> Self {
        CoreError::Plan(e)
    }
}

impl From<lec_stats::StatsError> for CoreError {
    fn from(e: lec_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}
