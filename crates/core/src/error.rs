//! Error type for the optimizer crate.

use std::fmt;

/// Errors raised by the optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A plan-substrate error (malformed query or plan).
    Plan(lec_plan::PlanError),
    /// A probability-substrate error (malformed distribution or chain).
    Stats(lec_stats::StatsError),
    /// An algorithm parameter was invalid (e.g. `c = 0` for top-c).
    BadParameter(String),
    /// The search produced no plan (internal invariant violation).
    NoPlanFound,
    /// The utility-soundness gate rejected a utility: its score does not
    /// distribute over cost addition, so no dynamic-programming entry point
    /// is sound for it (see `soundness::certify` and the X11
    /// counterexample).
    UnsoundUtility {
        /// Debug rendering of the rejected utility.
        utility: String,
        /// `score(X ⊛ Y)` measured on the certification probe.
        combined: f64,
        /// `score(X) + score(Y)` on the same probe.
        split: f64,
    },
    /// The rule-soundness gate rejected a selection rule (see
    /// `lec_rules::certify` and the `rules` module): its score is not
    /// monotone in per-scenario costs, so even Pareto-frontier pruning
    /// may discard its optimum.
    UnsoundRule(lec_rules::RuleError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Plan(e) => write!(f, "plan error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            CoreError::NoPlanFound => write!(f, "optimizer produced no plan"),
            CoreError::UnsoundUtility {
                utility,
                combined,
                split,
            } => write!(
                f,
                "utility {utility} does not distribute over cost addition \
                 (score(X+Y) = {combined} but score(X)+score(Y) = {split}), so scalar \
                 dynamic programming is unsound for it — the paper's deadline \
                 counterexample (experiment X11) exhibits a strictly worse plan; use \
                 pareto::exhaustive_utility (exact brute force) or pareto::optimize \
                 (exact Pareto-frontier DP for monotone utilities) instead"
            ),
            CoreError::UnsoundRule(e) => write!(f, "selection-rule gate: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Plan(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::UnsoundRule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lec_plan::PlanError> for CoreError {
    fn from(e: lec_plan::PlanError) -> Self {
        CoreError::Plan(e)
    }
}

impl From<lec_stats::StatsError> for CoreError {
    fn from(e: lec_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<lec_rules::RuleError> for CoreError {
    fn from(e: lec_rules::RuleError) -> Self {
        match e {
            lec_rules::RuleError::BadConfig(msg) => CoreError::BadParameter(msg),
            unsound @ lec_rules::RuleError::UnsoundRule { .. } => CoreError::UnsoundRule(unsound),
        }
    }
}
