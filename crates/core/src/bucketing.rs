//! Level-set bucketing of the memory parameter (§3.7).
//!
//! "The cost formulas of the common join algorithms are very simple ... for
//! fixed relation sizes, the cost for a sort-merge join has one of three
//! possible values" — so instead of a fine uniform grid, place bucket
//! boundaries exactly at the discontinuities ("level sets") of the cost
//! formulas the optimizer will evaluate. Within each resulting bucket every
//! formula is constant, so the expected cost computed from the bucketed
//! distribution equals the one computed from the full distribution: the
//! bucketing is *lossless* for plan choice, with only a handful of buckets.

use crate::error::CoreError;
use lec_cost::{CostModel, JoinMethod};
use lec_plan::{JoinQuery, RelSet};
use lec_stats::{Bucketing, Distribution};

/// Collects every memory value at which some join or sort formula the
/// optimizer may evaluate for this query is discontinuous.
///
/// Covers all dag nodes: for every subset `S` (point size estimates) and
/// relation `j ∉ S`, the breakpoints of every join method on
/// (`|S|`, `|A_j|`), plus the sort breakpoints of the final result. Each
/// breakpoint `t` is emitted together with `t.next_down()` so that both
/// strict (`M > t`) and non-strict (`M ≥ t`) threshold conventions fall on
/// bucket boundaries. Exponential in `n` (like the DP itself).
pub fn level_set_breakpoints<M: CostModel + ?Sized>(query: &JoinQuery, model: &M) -> Vec<f64> {
    let n = query.n();
    let mut points = Vec::new();
    let mut push = |t: f64| {
        if t.is_finite() && t > 0.0 {
            points.push(t);
            points.push(t.next_down());
        }
    };
    for set in RelSet::all_subsets(n) {
        let left = query.result_pages(set);
        for j in 0..n {
            if set.contains(j) {
                continue;
            }
            let right = query.relation(j).effective_pages();
            for method in JoinMethod::ALL {
                for t in model.join_breakpoints(method, left, right) {
                    push(t);
                }
            }
        }
    }
    for t in model.sort_breakpoints(query.result_pages(query.all())) {
        push(t);
    }
    points.sort_by(f64::total_cmp);
    points.dedup();
    points
}

/// The §3.7 bucketing strategy for this query: boundaries at the level
/// sets.
pub fn level_set_bucketing<M: CostModel + ?Sized>(query: &JoinQuery, model: &M) -> Bucketing {
    Bucketing::Breakpoints(level_set_breakpoints(query, model))
}

/// Applies level-set bucketing to a fine memory distribution.
pub fn bucketize_memory<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    fine: &Distribution,
) -> Result<Distribution, CoreError> {
    Ok(level_set_bucketing(query, model).apply(fine)?)
}

/// Result of the coarse-to-fine strategy.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The chosen plan, with its expected cost under the *fine*
    /// distribution (so the reported number is exact for the plan).
    pub optimized: crate::dp::Optimized,
    /// Number of buckets in the coarse distribution the search stabilized
    /// on. This is the *actual* bucket count: equi-depth bucketing cannot
    /// split a support point, so skewed distributions can yield fewer
    /// buckets than requested (an earlier version reported the requested
    /// count instead).
    pub buckets_used: usize,
    /// Number of optimizer invocations performed.
    pub refinements: usize,
}

/// §3.7's coarse-to-fine heuristic: "We can partition it coarsely at
/// first, and then generate more candidates in the region ... We may be
/// able to use coarse bucketing to eliminate many plans and then use a
/// more refined bucketing to decide among the remaining few."
///
/// Starts with 2 equi-depth buckets and doubles until the chosen plan is
/// stable for `stability` consecutive refinements (or the bucket count
/// reaches the fine support). The returned cost is re-evaluated under the
/// fine distribution, so it is exact *for the returned plan*; the plan
/// itself is heuristic (stability is evidence, not proof, of convergence).
pub fn adaptive_optimize<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    fine: &Distribution,
    stability: usize,
) -> Result<AdaptiveResult, CoreError> {
    let stability = stability.max(1);
    let mut b = 2usize;
    let mut refinements = 0;
    let mut last_plan: Option<lec_plan::Plan> = None;
    let mut stable_for = 0;
    loop {
        let coarse = Bucketing::EquiDepth(b.min(fine.len())).apply(fine)?;
        let coarse_buckets = coarse.len();
        let opt = crate::alg_c::optimize(query, model, &crate::env::MemoryModel::Static(coarse))?;
        refinements += 1;
        if last_plan.as_ref() == Some(&opt.plan) {
            stable_for += 1;
        } else {
            stable_for = 0;
        }
        let exhausted = b >= fine.len();
        if stable_for >= stability || exhausted {
            let phases = crate::env::MemoryModel::Static(fine.clone()).table(query.n().max(2))?;
            let cost = crate::evaluate::expected_cost(query, model, &opt.plan, &phases);
            return Ok(AdaptiveResult {
                optimized: crate::dp::Optimized {
                    plan: opt.plan,
                    cost,
                },
                buckets_used: coarse_buckets,
                refinements,
            });
        }
        last_plan = Some(opt.plan);
        b *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c;
    use crate::env::MemoryModel;
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};

    fn example_1_1() -> JoinQuery {
        JoinQuery::new(
            vec![
                Relation::new("A", 1_000_000.0, 5e7),
                Relation::new("B", 400_000.0, 2e7),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 3000.0 / 4e11,
                key: KeyId(0),
            }],
            Some(KeyId(0)),
        )
        .unwrap()
    }

    #[test]
    fn example_1_1_breakpoints_include_the_papers_buckets() {
        // §3.2: "the appropriate buckets are [0, 633), [633, 1000), and
        // [1000, ∞)" — i.e. breakpoints at √400000 ≈ 632.46 and √1e6 = 1000.
        let bps = level_set_breakpoints(&example_1_1(), &PaperCostModel);
        assert!(bps.iter().any(|&b| (b - 632.455).abs() < 0.01));
        assert!(bps.iter().any(|&b| (b - 1000.0).abs() < 1e-9));
        assert!(bps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn level_set_bucketing_is_lossless_for_plan_choice() {
        // A fine 400-point distribution vs its level-set bucketing: the
        // LEC optimizer must return the same plan at the same expected cost,
        // because every formula it evaluates is constant within buckets.
        let q = example_1_1();
        let model = PaperCostModel;
        let fine = Distribution::uniform_over((1..=400).map(|i| 10.0 * i as f64)).unwrap();
        let coarse = bucketize_memory(&q, &model, &fine).unwrap();
        assert!(
            coarse.len() < fine.len() / 4,
            "coarse has {} buckets",
            coarse.len()
        );

        let lec_fine = alg_c::optimize(&q, &model, &MemoryModel::Static(fine)).unwrap();
        let lec_coarse = alg_c::optimize(&q, &model, &MemoryModel::Static(coarse)).unwrap();
        assert_eq!(lec_fine.plan, lec_coarse.plan);
        assert!(
            (lec_fine.cost - lec_coarse.cost).abs() < 1e-6 * lec_fine.cost,
            "fine {} vs coarse {}",
            lec_fine.cost,
            lec_coarse.cost
        );
    }

    #[test]
    fn losslessness_holds_on_a_three_relation_query() {
        let q = JoinQuery::new(
            vec![
                Relation::new("a", 5_000.0, 5e4),
                Relation::new("b", 900.0, 9e3),
                Relation::new("c", 20_000.0, 2e5),
            ],
            vec![
                JoinPred {
                    left: 0,
                    right: 1,
                    selectivity: 1e-3,
                    key: KeyId(0),
                },
                JoinPred {
                    left: 1,
                    right: 2,
                    selectivity: 1e-4,
                    key: KeyId(1),
                },
            ],
            Some(KeyId(1)),
        )
        .unwrap();
        let model = PaperCostModel;
        let fine = Distribution::uniform_over((1..=300).map(|i| 3.0 + 7.0 * i as f64)).unwrap();
        let coarse = bucketize_memory(&q, &model, &fine).unwrap();
        let lec_fine = alg_c::optimize(&q, &model, &MemoryModel::Static(fine)).unwrap();
        let lec_coarse = alg_c::optimize(&q, &model, &MemoryModel::Static(coarse)).unwrap();
        assert_eq!(lec_fine.plan, lec_coarse.plan);
        assert!((lec_fine.cost - lec_coarse.cost).abs() < 1e-6 * lec_fine.cost);
    }

    #[test]
    fn adaptive_matches_fine_optimization_cheaply() {
        // On Example 1.1 with a 512-point fine environment, the coarse-to-
        // fine heuristic should land on the fine-optimal plan after a
        // handful of refinements.
        let q = example_1_1();
        let model = PaperCostModel;
        let fine = {
            let vals = (1..=512).map(|i| 5.0 * i as f64);
            Distribution::uniform_over(vals).unwrap()
        };
        let adaptive = adaptive_optimize(&q, &model, &fine, 2).unwrap();
        let full = alg_c::optimize(&q, &model, &MemoryModel::Static(fine)).unwrap();
        assert_eq!(adaptive.optimized.plan, full.plan);
        assert!((adaptive.optimized.cost - full.cost).abs() < 1e-6 * full.cost);
        assert!(
            adaptive.buckets_used < 512,
            "used {}",
            adaptive.buckets_used
        );
        assert!(adaptive.refinements <= 9);
    }

    #[test]
    fn adaptive_regret_is_bounded_on_random_queries() {
        use lec_plan::{JoinPred, Relation};
        for seed in 0..8u64 {
            // Deterministic pseudo-random sizes from a tiny LCG.
            let mut state = seed.wrapping_mul(0x5851F42D4C957F2D).wrapping_add(1);
            let mut next = || {
                state = state
                    .wrapping_mul(0x5851F42D4C957F2D)
                    .wrapping_add(0x14057B7EF767814F);
                ((state >> 33) % 8000 + 60) as f64
            };
            let relations = (0..4)
                .map(|i| Relation::new(format!("r{i}"), next(), 1e5))
                .collect();
            let predicates = (0..3)
                .map(|i| JoinPred {
                    left: i,
                    right: i + 1,
                    selectivity: 1e-3,
                    key: KeyId(i),
                })
                .collect();
            let q = JoinQuery::new(relations, predicates, None).unwrap();
            let fine = Distribution::uniform_over((1..=128).map(|i| 12.0 * i as f64)).unwrap();
            let adaptive = adaptive_optimize(&q, &PaperCostModel, &fine, 2).unwrap();
            let full = alg_c::optimize(&q, &PaperCostModel, &MemoryModel::Static(fine)).unwrap();
            let regret = adaptive.optimized.cost / full.cost;
            assert!(
                (1.0 - 1e-9..1.05).contains(&regret),
                "seed {seed}: regret {regret}"
            );
        }
    }

    #[test]
    fn buckets_used_reports_actual_coarse_buckets() {
        // Equi-depth cannot split a support point, so a tail-heavy fine
        // distribution collapses: with 90% of the mass on the last point,
        // every requested bucket count groups all three points into one
        // bucket. The old code reported the *requested* count (3 here);
        // the actual coarse distribution has a single bucket.
        let q = example_1_1();
        let fine = Distribution::new([(10.0, 0.05), (20.0, 0.05), (30.0, 0.9)]).unwrap();
        let coarse = Bucketing::EquiDepth(2).apply(&fine).unwrap();
        assert_eq!(coarse.len(), 1, "precondition: equi-depth collapses");
        let adaptive = adaptive_optimize(&q, &PaperCostModel, &fine, 1).unwrap();
        assert_eq!(adaptive.buckets_used, 1);
    }

    #[test]
    fn breakpoints_scale_with_subsets() {
        let q = example_1_1();
        let bps2 = level_set_breakpoints(&q, &PaperCostModel).len();
        assert!(bps2 > 4);
    }
}
