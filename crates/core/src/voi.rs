//! Value of information: when is it worth *reducing* the uncertainty?
//!
//! §2.3 and §3.6 point at \[SBM93\]: some uncertainty (notably predicate
//! selectivities) can be reduced by sampling, which itself costs I/O —
//! "they use decision-theoretic methods to pre-compute scenarios where it
//! may be worthwhile to do sampling". The decision-theoretic quantity
//! behind that is the **expected value of perfect information (EVPI)**:
//!
//! ```text
//! EVPI = E[ cost of committing to one plan under uncertainty ]
//!      − E_v[ cost of the best plan for each realized v ]
//! ```
//!
//! i.e. how much cheaper execution gets, on average, if the optimizer could
//! learn the parameters' true values before choosing a plan. Sampling (or
//! any other uncertainty-reducing measurement) is worthwhile exactly when
//! its cost is below the (partial) EVPI of the parameter it measures.
//!
//! This module computes the exact EVPI for the multi-parameter model by
//! joint enumeration (exponential; experiment scale), both for learning
//! *everything* and for learning one parameter at a time — the per-
//! parameter numbers tell you *which* predicate deserves a sample.

use crate::alg_d::SizeModel;
use crate::env::MemoryModel;
use crate::error::CoreError;
use crate::evaluate::expected_cost_joint;
use crate::exhaustive::enumerate_left_deep;
use lec_cost::CostModel;
use lec_plan::{JoinQuery, Plan};
use lec_stats::Distribution;

/// The EVPI analysis of one query under a size/selectivity model.
#[derive(Debug, Clone)]
pub struct VoiReport {
    /// Expected cost of the best *single* plan committed to under full
    /// uncertainty (the exact joint LEC plan).
    pub committed_cost: f64,
    /// The committed plan itself.
    pub committed_plan: Plan,
    /// Expected cost when the true parameter values are revealed before
    /// planning (a fresh optimization per realization).
    pub informed_cost: f64,
    /// `committed_cost - informed_cost` (≥ 0): the most any oracle —
    /// sampling, statistics refresh, run-time feedback — can be worth.
    pub evpi: f64,
    /// Per-parameter EVPI: `partial[k]` is the value of learning only
    /// parameter `k` (relation sizes first, then predicate selectivities,
    /// in index order), the others staying uncertain.
    pub partial: Vec<f64>,
}

impl VoiReport {
    /// True when a measurement of the given cost pays for itself against
    /// the full-information bound.
    pub fn sampling_worthwhile(&self, sampling_cost: f64) -> bool {
        self.evpi > sampling_cost
    }
}

/// Number of uncertain parameters in a size model.
fn n_params(sizes: &SizeModel) -> usize {
    sizes.rel_sizes.len() + sizes.selectivities.len()
}

/// The `k`-th parameter's distribution.
fn param(sizes: &SizeModel, k: usize) -> &Distribution {
    let n = sizes.rel_sizes.len();
    if k < n {
        &sizes.rel_sizes[k]
    } else {
        &sizes.selectivities[k - n] // lec-lint: allow(panic-reachability) — k is in n..n_params in this branch, so k - n indexes the selectivities
    }
}

/// A copy of the size model with parameter `k` collapsed to `value`.
fn condition(sizes: &SizeModel, k: usize, value: f64) -> Result<SizeModel, CoreError> {
    let mut out = sizes.clone();
    let n = out.rel_sizes.len();
    let point = Distribution::point(value)?;
    if k < n {
        out.rel_sizes[k] = point;
    } else {
        out.selectivities[k - n] = point; // lec-lint: allow(panic-reachability) — k is in n..n_params in this branch, so k - n indexes the selectivities
    }
    Ok(out)
}

/// Best single plan under joint uncertainty: exact minimum of
/// [`expected_cost_joint`] over all left-deep plans. Exponential; the
/// ground-truth counterpart of Algorithm D.
pub fn joint_lec(
    query: &JoinQuery,
    model: &(impl CostModel + ?Sized),
    memory: &MemoryModel,
    sizes: &SizeModel,
) -> Result<(Plan, f64), CoreError> {
    let phases = memory.table(query.n().max(2))?;
    enumerate_left_deep(query)
        .into_iter()
        .map(|plan| {
            let cost = expected_cost_joint(query, model, &plan, sizes, &phases);
            (plan, cost)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .ok_or(CoreError::NoPlanFound)
}

/// Computes the full EVPI analysis. Cost grows as the product of all
/// parameter bucket counts; intended for small queries (`n ≤ 4`, few
/// buckets), where it is exact.
pub fn analyze(
    query: &JoinQuery,
    model: &(impl CostModel + ?Sized),
    memory: &MemoryModel,
    sizes: &SizeModel,
) -> Result<VoiReport, CoreError> {
    let (committed_plan, committed_cost) = joint_lec(query, model, memory, sizes)?;

    // Full information: for each joint assignment, re-optimize.
    let informed_cost = expected_over_assignments(sizes, &mut |conditioned| {
        joint_lec(query, model, memory, conditioned).map(|(_, c)| c)
    })?;

    // Partial information, one parameter at a time.
    let mut partial = Vec::with_capacity(n_params(sizes));
    for k in 0..n_params(sizes) {
        let dist = param(sizes, k).clone();
        let mut with_k = 0.0;
        for (v, p) in dist.iter() {
            let conditioned = condition(sizes, k, v)?;
            let (_, best) = joint_lec(query, model, memory, &conditioned)?;
            with_k += p * best;
        }
        partial.push((committed_cost - with_k).max(0.0));
    }

    Ok(VoiReport {
        evpi: (committed_cost - informed_cost).max(0.0),
        committed_cost,
        committed_plan,
        informed_cost,
        partial,
    })
}

/// Iterates all joint assignments of the size model's parameters, calling
/// `f` with a fully conditioned model and probability-weighting the result.
fn expected_over_assignments(
    sizes: &SizeModel,
    f: &mut impl FnMut(&SizeModel) -> Result<f64, CoreError>,
) -> Result<f64, CoreError> {
    let dims: Vec<Distribution> = sizes
        .rel_sizes
        .iter()
        .chain(sizes.selectivities.iter())
        .cloned()
        .collect();
    let mut idx = vec![0usize; dims.len()];
    let mut total = 0.0;
    loop {
        let mut prob = 1.0;
        let mut conditioned = sizes.clone();
        for (k, (d, &i)) in dims.iter().zip(&idx).enumerate() {
            prob *= d.probs()[i];
            conditioned = condition(&conditioned, k, d.values()[i])?;
        }
        total += prob * f(&conditioned)?;

        let mut k = 0;
        loop {
            if k == dims.len() {
                return Ok(total);
            }
            idx[k] += 1;
            if idx[k] < dims[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};

    fn query() -> JoinQuery {
        JoinQuery::new(
            vec![
                Relation::new("a", 2_000.0, 1e5),
                Relation::new("b", 150.0, 7.5e3),
                Relation::new("c", 5_000.0, 2.5e5),
            ],
            vec![
                JoinPred {
                    left: 0,
                    right: 1,
                    selectivity: 1e-3,
                    key: KeyId(0),
                },
                JoinPred {
                    left: 1,
                    right: 2,
                    selectivity: 5e-4,
                    key: KeyId(1),
                },
            ],
            None,
        )
        .unwrap()
    }

    fn memory() -> MemoryModel {
        MemoryModel::Static(Distribution::new([(30.0, 0.5), (400.0, 0.5)]).unwrap())
    }

    #[test]
    fn certain_parameters_have_zero_evpi() {
        let q = query();
        let sizes = SizeModel::certain(&q).unwrap();
        let r = analyze(&q, &PaperCostModel, &memory(), &sizes).unwrap();
        assert!(
            r.evpi.abs() < 1e-9 * r.committed_cost.max(1.0),
            "evpi {}",
            r.evpi
        );
        for p in &r.partial {
            assert!(p.abs() < 1e-9 * r.committed_cost.max(1.0));
        }
        assert!(!r.sampling_worthwhile(1.0));
    }

    #[test]
    fn evpi_nonnegative_and_bounds_partials() {
        let q = query();
        let sizes = SizeModel::with_uncertainty(&q, 0.6, 1.0, 2).unwrap();
        let r = analyze(&q, &PaperCostModel, &memory(), &sizes).unwrap();
        assert!(r.evpi >= 0.0);
        assert!(r.informed_cost <= r.committed_cost + 1e-9);
        // Learning one parameter can never beat learning everything.
        for (k, p) in r.partial.iter().enumerate() {
            assert!(
                *p <= r.evpi + 1e-6 * r.committed_cost,
                "param {k}: {p} > {}",
                r.evpi
            );
        }
    }

    #[test]
    fn committed_plan_is_the_joint_optimum() {
        let q = query();
        let sizes = SizeModel::with_uncertainty(&q, 0.0, 1.5, 3).unwrap();
        let mem = memory();
        let r = analyze(&q, &PaperCostModel, &mem, &sizes).unwrap();
        let phases = mem.table(q.n()).unwrap();
        for plan in enumerate_left_deep(&q) {
            let c = expected_cost_joint(&q, &PaperCostModel, &plan, &sizes, &phases);
            assert!(r.committed_cost <= c + 1e-6 * c.max(1.0));
        }
        r.committed_plan.validate(&q).unwrap();
    }

    #[test]
    fn sampling_decision_threshold() {
        let q = query();
        let sizes = SizeModel::with_uncertainty(&q, 0.8, 1.5, 2).unwrap();
        let r = analyze(&q, &PaperCostModel, &memory(), &sizes).unwrap();
        if r.evpi > 0.0 {
            assert!(r.sampling_worthwhile(r.evpi / 2.0));
            assert!(!r.sampling_worthwhile(r.evpi * 2.0));
        }
    }
}
