//! The generic left-deep dynamic program (§2.2's dag walk).
//!
//! System R's LSC optimizer (Theorem 2.1) and the LEC Algorithm C
//! (Theorems 3.3/3.4) are the *same* dynamic program instantiated with
//! different step costers: LSC costs each join step at one fixed memory
//! value, Algorithm C costs it in expectation over the phase's memory
//! distribution. Correctness of the DP only needs the step cost to be
//! additive across the plan — which expectations are, by linearity (that is
//! the entire content of the Theorem 3.3 proof).
//!
//! ### Interesting orders
//!
//! Only a final sort-merge join on the required key can satisfy an ORDER BY
//! without an explicit sort (no other operator produces or preserves
//! order in our model, and the paper's SM formula takes no discount for
//! pre-sorted inputs). The DP therefore keeps one best entry per subset and
//! additionally tracks, at the full set, the best plan whose *final* join
//! is a sort-merge on the required key; the root then compares that
//! against best-unordered-plus-sort. Disabling this via
//! [`DpOptions::ignore_orders`] is the X1 ablation.

use crate::env::PhaseDists;
use crate::error::CoreError;
use crate::evaluate::{join_step, sort_step};
use crate::par::{self, Parallelism};
use crate::precompute::QueryTables;
use crate::stats::OptStats;
use lec_cost::{AccessMethod, CostModel, JoinMethod};
use lec_plan::{JoinQuery, KeyId, Plan, RelSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// An optimized plan with its (expected) cost under the optimizing
/// objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimized {
    /// The chosen plan.
    pub plan: Plan,
    /// Its cost under the objective the algorithm minimized (specific cost
    /// for LSC, expected cost for the LEC algorithms).
    pub cost: f64,
}

/// Prices one plan *step* for the dynamic program. The phase index follows
/// §3.5: the join forming a `k`-relation result is phase `k - 2`; a final
/// sort is the last phase.
pub trait StepCoster {
    /// Cost of a join step, including output materialization.
    fn join(
        &self,
        phase: usize,
        method: JoinMethod,
        left_pages: f64,
        right_pages: f64,
        out_pages: f64,
    ) -> f64;

    /// Cost of a sort step, including output materialization.
    fn sort(&self, phase: usize, pages: f64) -> f64;

    /// Join-step costs for all three methods at once, in
    /// [`JoinMethod::ALL`] order. Overrides must stay bit-identical to
    /// three [`StepCoster::join`] calls; the default guarantees it.
    fn join_all(
        &self,
        phase: usize,
        left_pages: f64,
        right_pages: f64,
        out_pages: f64,
    ) -> [f64; 3] {
        JoinMethod::ALL.map(|method| self.join(phase, method, left_pages, right_pages, out_pages))
    }
}

/// Step coster for a single fixed memory value (the LSC world).
#[derive(Debug, Clone, Copy)]
pub struct FixedMemoryCoster<'a, M: ?Sized> {
    model: &'a M,
    memory: f64,
}

impl<'a, M: CostModel + ?Sized> FixedMemoryCoster<'a, M> {
    /// Prices steps at the given memory value.
    pub fn new(model: &'a M, memory: f64) -> Self {
        Self { model, memory }
    }
}

impl<M: CostModel + ?Sized> StepCoster for FixedMemoryCoster<'_, M> {
    fn join(&self, _phase: usize, method: JoinMethod, l: f64, r: f64, out: f64) -> f64 {
        join_step(self.model, method, l, r, out, self.memory)
    }

    fn sort(&self, _phase: usize, pages: f64) -> f64 {
        sort_step(self.model, pages, self.memory)
    }
}

/// Step coster taking expectations over per-phase memory distributions
/// (Algorithm C; with a static table every phase shares one distribution).
#[derive(Debug, Clone, Copy)]
pub struct ExpectedCoster<'a, M: ?Sized> {
    model: &'a M,
    phases: &'a PhaseDists,
}

impl<'a, M: CostModel + ?Sized> ExpectedCoster<'a, M> {
    /// Prices steps in expectation over `phases`.
    pub fn new(model: &'a M, phases: &'a PhaseDists) -> Self {
        Self { model, phases }
    }
}

impl<M: CostModel + ?Sized> StepCoster for ExpectedCoster<'_, M> {
    fn join(&self, phase: usize, method: JoinMethod, l: f64, r: f64, out: f64) -> f64 {
        // Routed through the model's expectation kernel (bit-identical to
        // `dist.expect(|m| join_step(...))`, with hoisted overrides for the
        // paper model) — this is the x18 hot path.
        let d = self.phases.at(phase);
        self.model
            .expected_join_step(method, l, r, out, d.values(), d.probs())
    }

    fn sort(&self, phase: usize, pages: f64) -> f64 {
        let d = self.phases.at(phase);
        self.model.expected_sort_step(pages, d.values(), d.probs())
    }

    fn join_all(&self, phase: usize, l: f64, r: f64, out: f64) -> [f64; 3] {
        let d = self.phases.at(phase);
        self.model
            .expected_join_steps(l, r, out, d.values(), d.probs())
    }
}

/// Options for the dynamic program.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpOptions {
    /// Ablation: drop order tracking and always sort at the root when the
    /// query requires an order.
    pub ignore_orders: bool,
}

/// One DP table entry: best cost plus the backpointer to reconstruct the
/// plan (`j` joined last with `method`).
#[derive(Debug, Clone, Copy)]
struct Entry {
    cost: f64,
    choice: Choice,
}

#[derive(Debug, Clone, Copy)]
enum Choice {
    Access(AccessMethod),
    Join { last: usize, method: JoinMethod },
}

/// The DP table: one write-once slot per subset mask. `OnceLock` slots
/// let the rank-parallel wavefront share the table immutably across
/// workers — lower ranks are frozen by the inter-wave barrier, and each
/// current-rank slot is written exactly once by whichever worker claims
/// its mask — while the serial sweep uses the same representation so both
/// drivers run the identical `cost_mask` code path.
type DpTable = Vec<OnceLock<Entry>>;

fn new_table(size: usize) -> DpTable {
    std::iter::repeat_with(OnceLock::new).take(size).collect()
}

/// Reads a frozen entry (a strictly smaller subset, or a finished rank).
fn entry_at(table: &[OnceLock<Entry>], set: RelSet) -> Option<Entry> {
    table[set.bits() as usize].get().copied()
}

/// Fills the depth-1 entries (best access path per relation) from the
/// precomputed tables.
fn seed_singletons(tabs: &QueryTables, n: usize, table: &[OnceLock<Entry>]) {
    for i in 0..n {
        let (cost, method, _) = tabs.access(i);
        let _ = table[RelSet::single(i).bits() as usize].set(Entry {
            cost,
            choice: Choice::Access(method),
        });
    }
}

/// Prices every way of forming `set` by a last join and returns the best
/// entry, plus (at the full set, when an order is required) the best entry
/// whose final join is a sort-merge on the required key, plus the number of
/// candidate (subplan × access × join-method) combinations priced.
///
/// This is the whole per-mask unit of work; both the serial subset sweep
/// and the rank-parallel wavefront call it, so the two paths agree
/// bit-for-bit by construction (including the candidate count, which is a
/// pure function of the mask). Iteration order is fixed — members of
/// `set` ascending, then [`JoinMethod::ALL`] — and the winner is kept
/// under strict `<`, making the result independent of scheduling.
// lec-lint: allow(panic-reachability) — DP induction: subsets are priced in rank order before supersets, and the candidate min covers at least the full scan
fn cost_mask<C: StepCoster>(
    tabs: &QueryTables,
    coster: &C,
    table: &[OnceLock<Entry>],
    set: RelSet,
    full: RelSet,
    required: Option<KeyId>,
) -> (Entry, Option<Entry>, u64) {
    let out = tabs.pages(set);
    let phase = set.len() - 2;
    let mut best: Option<Entry> = None;
    let mut best_ordered: Option<Entry> = None;
    let mut candidates = 0u64;
    for j in set.iter() {
        let sub = set.remove(j);
        let left = entry_at(table, sub).expect("subset computed earlier");
        let left_out = tabs.pages(sub);
        let (acc_cost, _, acc_out) = tabs.access(j);
        let key = tabs.join_key(sub, j);
        let steps = coster.join_all(phase, left_out, acc_out, out);
        for (method, step) in JoinMethod::ALL.into_iter().zip(steps) {
            let cost = left.cost + acc_cost + step;
            candidates += 1;
            let entry = Entry {
                cost,
                choice: Choice::Join { last: j, method },
            };
            if best.is_none_or(|b| cost < b.cost) {
                best = Some(entry);
            }
            if set == full
                && method == JoinMethod::SortMerge
                && required.is_some()
                && key == required
                && best_ordered.is_none_or(|b| cost < b.cost)
            {
                best_ordered = Some(entry);
            }
        }
    }
    (
        best.expect("set has at least two members"),
        best_ordered,
        candidates,
    )
}

/// Root handling shared by the serial and parallel drivers: satisfy a
/// required order either through the final join or through an explicit
/// sort, then reconstruct the winning plan.
fn finalize<C: StepCoster>(
    query: &JoinQuery,
    tabs: &QueryTables,
    coster: &C,
    table: &[OnceLock<Entry>],
    best_ordered: Option<Entry>,
) -> Result<Optimized, CoreError> {
    let n = query.n();
    let full = query.all();
    let root = entry_at(table, full).ok_or(CoreError::NoPlanFound)?;

    let best = if query.required_order().is_some() {
        let out = tabs.pages(full);
        let sorted_cost = root.cost + coster.sort(n.saturating_sub(1), out);
        match best_ordered {
            Some(ord) if ord.cost <= sorted_cost => Optimized {
                plan: reconstruct(tabs, table, full, Some(ord)),
                cost: ord.cost,
            },
            _ => {
                let inner = reconstruct(tabs, table, full, None);
                let key = query.required_order().expect("checked above"); // lec-lint: allow(panic-reachability) — this arm only runs when required_order().is_some() held above
                Optimized {
                    plan: Plan::sort(inner, key),
                    cost: sorted_cost,
                }
            }
        }
    } else {
        Optimized {
            plan: reconstruct(tabs, table, full, None),
            cost: root.cost,
        }
    };
    crate::verify::debug_verify_plan(query, &best.plan, best.cost);
    Ok(best)
}

/// Runs the left-deep dynamic program with the given step coster.
pub fn optimize_left_deep<C: StepCoster>(
    query: &JoinQuery,
    coster: &C,
    options: DpOptions,
) -> Result<Optimized, CoreError> {
    Ok(optimize_left_deep_with_stats(query, coster, options)?.0)
}

/// [`optimize_left_deep`], also returning the search-space [`OptStats`].
pub fn optimize_left_deep_with_stats<C: StepCoster>(
    query: &JoinQuery,
    coster: &C,
    options: DpOptions,
) -> Result<(Optimized, OptStats), CoreError> {
    let tabs = QueryTables::new(query);
    optimize_left_deep_with_tables_and_stats(query, &tabs, coster, options)
}

/// [`optimize_left_deep`] against caller-provided tables (lets batch
/// drivers build [`QueryTables`] once and share them across algorithms).
pub fn optimize_left_deep_with_tables<C: StepCoster>(
    query: &JoinQuery,
    tabs: &QueryTables,
    coster: &C,
    options: DpOptions,
) -> Result<Optimized, CoreError> {
    Ok(optimize_left_deep_with_tables_and_stats(query, tabs, coster, options)?.0)
}

/// The serial driver: caller-provided tables, stats returned. The subset
/// sweep walks the lattice rank by rank (every subset still precedes its
/// supersets, so DP order is preserved and results are bit-identical to a
/// flat numeric sweep) so per-rank wall time is measured symmetrically
/// with the parallel driver; counters accumulate in mask order.
pub fn optimize_left_deep_with_tables_and_stats<C: StepCoster>(
    query: &JoinQuery,
    tabs: &QueryTables,
    coster: &C,
    options: DpOptions,
) -> Result<(Optimized, OptStats), CoreError> {
    let n = query.n();
    let full = query.all();
    let table = new_table((full.bits() + 1) as usize);
    seed_singletons(tabs, n, &table);

    // The best full-set plan whose final join is a sort-merge on the
    // required key (satisfies the ORDER BY for free).
    let required = if options.ignore_orders {
        None
    } else {
        query.required_order()
    };
    let mut best_ordered: Option<Entry> = None;

    let mut stats = OptStats::new("dp", n);
    stats.precompute = tabs.sizes();
    stats.counters.entries_written = n as u64; // depth-1 seeds

    // Depths 2..n: each rank lists its masks in increasing numeric order.
    let ranks = par::ranks(n);
    for rank in &ranks[1..] {
        let ((), elapsed) = par::timed(|| {
            for &set in rank {
                let (best, ordered, candidates) =
                    cost_mask(tabs, coster, &table, set, full, required);
                let _ = table[set.bits() as usize].set(best);
                if let Some(ord) = ordered {
                    best_ordered = Some(ord);
                }
                stats.counters.masks_expanded += 1;
                stats.counters.candidates_priced += candidates;
                stats.counters.entries_written += 1;
            }
        });
        stats.rank_wall_ns.push(elapsed);
    }

    let best = finalize(query, tabs, coster, &table, best_ordered)?;
    Ok((best, stats))
}

/// Rank-parallel [`optimize_left_deep`]: subsets of cardinality `k` depend
/// only on cardinalities below `k`, so each rank of the subset lattice is
/// costed as one parallel wavefront. Produces bit-identical costs and
/// plans to the serial program (enforced by the equivalence property
/// tests); queries below the [`Parallelism::sequential_cutoff`] fall back
/// to the serial path outright.
pub fn optimize_left_deep_par<C: StepCoster + Sync>(
    query: &JoinQuery,
    coster: &C,
    options: DpOptions,
    par: &Parallelism,
) -> Result<Optimized, CoreError> {
    Ok(optimize_left_deep_par_with_stats(query, coster, options, par)?.0)
}

/// [`optimize_left_deep_par`], also returning the search-space
/// [`OptStats`]. Counters equal the serial driver's exactly: the wavefront
/// gathers per-mask results in input order and sums them in that order.
pub fn optimize_left_deep_par_with_stats<C: StepCoster + Sync>(
    query: &JoinQuery,
    coster: &C,
    options: DpOptions,
    par: &Parallelism,
) -> Result<(Optimized, OptStats), CoreError> {
    let tabs = QueryTables::new(query);
    optimize_left_deep_par_with_tables_and_stats(query, &tabs, coster, options, par)
}

/// [`optimize_left_deep_par`] against caller-provided tables.
pub fn optimize_left_deep_par_with_tables<C: StepCoster + Sync>(
    query: &JoinQuery,
    tabs: &QueryTables,
    coster: &C,
    options: DpOptions,
    par: &Parallelism,
) -> Result<Optimized, CoreError> {
    Ok(optimize_left_deep_par_with_tables_and_stats(query, tabs, coster, options, par)?.0)
}

/// The parallel driver: caller-provided tables, stats returned.
// lec-lint: allow(panic-reachability, concurrency-determinism) — rank tables index wave + 1 within bounds by construction, and the candidate counter is an exact fetch_add RMW read only after every wave worker has joined (happens-before)
pub fn optimize_left_deep_par_with_tables_and_stats<C: StepCoster + Sync>(
    query: &JoinQuery,
    tabs: &QueryTables,
    coster: &C,
    options: DpOptions,
    par: &Parallelism,
) -> Result<(Optimized, OptStats), CoreError> {
    let n = query.n();
    if !par.use_parallel(n) {
        return optimize_left_deep_with_tables_and_stats(query, tabs, coster, options);
    }
    let full = query.all();
    let table = new_table((full.bits() + 1) as usize);
    seed_singletons(tabs, n, &table);

    let required = if options.ignore_orders {
        None
    } else {
        query.required_order()
    };

    let mut stats = OptStats::new("dp", n);
    stats.precompute = tabs.sizes();
    stats.counters.entries_written = n as u64;

    // One persistent worker pool drives every rank: workers claim masks
    // off the shared queue and write their winning entries straight into
    // the write-once table slots; the inter-wave barrier freezes each
    // rank before the next reads it. Candidate counts accumulate in a
    // shared atomic — u64 addition commutes, so the total equals the
    // serial mask-order sum exactly. The ordered-root alternative can
    // only arise at the full mask (the single mask of the last rank), so
    // a single write-once cell captures it.
    let ranks = par::ranks(n);
    let wave_lens: Vec<usize> = ranks[1..].iter().map(Vec::len).collect();
    let candidates = AtomicU64::new(0);
    let ordered_cell: OnceLock<Option<Entry>> = OnceLock::new();
    stats.rank_wall_ns = par::run_waves(par, &wave_lens, |wave, i| {
        let set = ranks[wave + 1][i];
        let (best, ordered, cand) = cost_mask(tabs, coster, &table, set, full, required);
        candidates.fetch_add(cand, Ordering::Relaxed);
        let _ = table[set.bits() as usize].set(best);
        if set == full {
            let _ = ordered_cell.set(ordered);
        }
    });
    let masks: u64 = wave_lens.iter().map(|&len| len as u64).sum();
    stats.counters.masks_expanded = masks;
    stats.counters.candidates_priced = candidates.load(Ordering::Relaxed);
    stats.counters.entries_written += masks;
    let best_ordered = ordered_cell.get().copied().flatten();

    let best = finalize(query, tabs, coster, &table, best_ordered)?;
    Ok((best, stats))
}

/// Rebuilds the plan tree from backpointers; `override_root` substitutes a
/// different final-join choice (the ordered alternative).
// lec-lint: allow(panic-reachability) — reconstruction only walks entries the forward pass has filled; singletons decompose to their only relation
fn reconstruct(
    tabs: &QueryTables,
    table: &[OnceLock<Entry>],
    set: RelSet,
    override_root: Option<Entry>,
) -> Plan {
    let entry = override_root.unwrap_or_else(|| entry_at(table, set).expect("entry exists"));
    match entry.choice {
        Choice::Access(method) => {
            let rel = set.iter().next().expect("singleton");
            Plan::Access { rel, method }
        }
        Choice::Join { last, method } => {
            let sub = set.remove(last);
            let left = reconstruct(tabs, table, sub, None);
            let (_, access, _) = tabs.access(last);
            let key = tabs.join_key(sub, last);
            Plan::join(
                left,
                Plan::Access {
                    rel: last,
                    method: access,
                },
                method,
                key,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::plan_cost_at;
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};

    fn chain_query(n: usize) -> JoinQuery {
        let relations = (0..n)
            .map(|i| Relation::new(format!("r{i}"), 100.0 * (i + 1) as f64, 1000.0))
            .collect();
        let predicates = (0..n - 1)
            .map(|i| JoinPred {
                left: i,
                right: i + 1,
                selectivity: 0.001,
                key: KeyId(i),
            })
            .collect();
        JoinQuery::new(relations, predicates, None).unwrap()
    }

    #[test]
    fn dp_cost_matches_evaluator() {
        let q = chain_query(4);
        let model = PaperCostModel;
        for memory in [5.0, 50.0, 500.0] {
            let coster = FixedMemoryCoster::new(&model, memory);
            let opt = optimize_left_deep(&q, &coster, DpOptions::default()).unwrap();
            let evaluated = plan_cost_at(&q, &model, &opt.plan, memory);
            assert!(
                (opt.cost - evaluated).abs() < 1e-6 * evaluated.max(1.0),
                "DP says {}, evaluator says {evaluated}",
                opt.cost
            );
            assert!(opt.plan.is_left_deep());
            opt.plan.validate(&q).unwrap();
        }
    }

    #[test]
    fn single_relation_query() {
        let q = JoinQuery::new(vec![Relation::new("only", 50.0, 500.0)], vec![], None).unwrap();
        let model = PaperCostModel;
        let coster = FixedMemoryCoster::new(&model, 100.0);
        let opt = optimize_left_deep(&q, &coster, DpOptions::default()).unwrap();
        assert_eq!(opt.plan, Plan::scan(0));
        assert_eq!(opt.cost, 0.0);
    }

    #[test]
    fn order_requirement_adds_sort_or_picks_sort_merge() {
        let q = JoinQuery::new(
            vec![
                Relation::new("a", 1000.0, 1e4),
                Relation::new("b", 800.0, 8e3),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 1e-4,
                key: KeyId(0),
            }],
            Some(KeyId(0)),
        )
        .unwrap();
        let model = PaperCostModel;
        let coster = FixedMemoryCoster::new(&model, 50.0);
        let opt = optimize_left_deep(&q, &coster, DpOptions::default()).unwrap();
        // Whatever the winner, it must produce the required order.
        assert_eq!(opt.plan.output_order(), Some(KeyId(0)));
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let q = chain_query(9);
        let model = PaperCostModel;
        let coster = FixedMemoryCoster::new(&model, 50.0);
        let serial = optimize_left_deep(&q, &coster, DpOptions::default()).unwrap();
        let par = Parallelism {
            threads: 3,
            sequential_cutoff: 2,
        };
        let parallel = optimize_left_deep_par(&q, &coster, DpOptions::default(), &par).unwrap();
        assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits());
        assert_eq!(serial.plan, parallel.plan);
    }

    #[test]
    fn stats_count_the_lattice_and_match_across_paths() {
        let q = chain_query(5);
        let model = PaperCostModel;
        let coster = FixedMemoryCoster::new(&model, 50.0);
        let (opt, stats) =
            optimize_left_deep_with_stats(&q, &coster, DpOptions::default()).unwrap();
        // The plain entry point delegates to the stats driver and discards.
        let plain = optimize_left_deep(&q, &coster, DpOptions::default()).unwrap();
        assert_eq!(opt, plain);

        // 2^5 - 1 subsets, minus 5 singletons, all expanded.
        assert_eq!(stats.counters.masks_expanded, 26);
        // Each mask prices |set| × |JoinMethod::ALL| combinations:
        // 3 · Σ_{k=2..5} k·C(5,k) = 3 · 75.
        assert_eq!(stats.counters.candidates_priced, 225);
        assert_eq!(stats.counters.entries_written, 5 + 26);
        assert_eq!(stats.precompute.access_entries, 5);
        assert_eq!(stats.precompute.pages_entries, 1 << 5);
        assert_eq!(stats.precompute.adjacency_entries, 8);
        assert_eq!(stats.rank_wall_ns.len(), 4); // ranks 2..=5
        assert!(stats.counters.frontier_per_rank.is_empty());

        let par = Parallelism {
            threads: 3,
            sequential_cutoff: 2,
        };
        let (popt, pstats) =
            optimize_left_deep_par_with_stats(&q, &coster, DpOptions::default(), &par).unwrap();
        assert_eq!(opt.cost.to_bits(), popt.cost.to_bits());
        assert_eq!(opt.plan, popt.plan);
        assert_eq!(stats.counters, pstats.counters);
        assert_eq!(stats.precompute, pstats.precompute);
    }

    #[test]
    fn ignore_orders_ablation_always_sorts() {
        let q = JoinQuery::new(
            vec![
                Relation::new("a", 1000.0, 1e4),
                Relation::new("b", 800.0, 8e3),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 1e-4,
                key: KeyId(0),
            }],
            Some(KeyId(0)),
        )
        .unwrap();
        let model = PaperCostModel;
        let coster = FixedMemoryCoster::new(&model, 50.0);
        let opt = optimize_left_deep(
            &q,
            &coster,
            DpOptions {
                ignore_orders: true,
            },
        )
        .unwrap();
        assert!(matches!(opt.plan, Plan::Sort { .. }));
    }
}
