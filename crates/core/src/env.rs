//! Memory-parameter models: static (§3.2–3.4) and dynamic (§3.5).
//!
//! Plan execution is divided into *phases*, one per join or sort operator
//! in post-order. With static parameters the memory distribution is the
//! same at every phase; with dynamic parameters it evolves along a Markov
//! chain, and the distribution relevant to phase `k` is the initial
//! distribution evolved `k` steps (§3.5: "associate the initial
//! distribution with the root of the dag, and use the transition
//! probabilities to compute the distribution associated with each node").

use crate::error::CoreError;
use lec_stats::{Distribution, MarkovChain};

/// How available memory behaves across the execution of a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryModel {
    /// Memory is drawn once per execution and stays constant (§3.4).
    Static(Distribution),
    /// Memory evolves between phases along a Markov chain (§3.5);
    /// `initial` is a probability vector over the chain's states giving the
    /// distribution during phase 0.
    Dynamic {
        /// The transition structure.
        chain: MarkovChain,
        /// Initial state probabilities (phase-0 distribution).
        initial: Vec<f64>,
    },
}

impl MemoryModel {
    /// Convenience constructor: a dynamic model started from the chain's
    /// state values weighted by `initial`.
    pub fn dynamic(chain: MarkovChain, initial: Vec<f64>) -> Result<Self, CoreError> {
        if initial.len() != chain.n_states() {
            return Err(CoreError::BadParameter(format!(
                "initial vector has {} entries for a {}-state chain",
                initial.len(),
                chain.n_states()
            )));
        }
        let sum: f64 = initial.iter().sum();
        if (sum - 1.0).abs() > 1e-6 || initial.iter().any(|&p| p < 0.0) {
            return Err(CoreError::BadParameter(
                "initial vector is not a probability distribution".into(),
            ));
        }
        Ok(MemoryModel::Dynamic { chain, initial })
    }

    /// The number of memory buckets `b` at phase 0.
    pub fn buckets(&self) -> usize {
        match self {
            MemoryModel::Static(d) => d.len(),
            MemoryModel::Dynamic { chain, .. } => chain.n_states(),
        }
    }

    /// Precomputes per-phase marginal distributions for plans with up to
    /// `phases` phases.
    pub fn table(&self, phases: usize) -> Result<PhaseDists, CoreError> {
        let phases = phases.max(1);
        let dists = match self {
            MemoryModel::Static(d) => vec![d.clone(); phases],
            MemoryModel::Dynamic { chain, initial } => {
                let mut out = Vec::with_capacity(phases);
                let mut probs = initial.clone();
                for k in 0..phases {
                    if k > 0 {
                        probs = chain.step(&probs);
                    }
                    out.push(chain.distribution(&probs)?);
                }
                out
            }
        };
        Ok(PhaseDists { dists })
    }

    /// The phase-0 distribution (what an LSC optimizer would summarize).
    pub fn initial_distribution(&self) -> Result<Distribution, CoreError> {
        Ok(self.table(1)?.dists[0].clone())
    }
}

/// Per-phase memory distributions, indexed by phase (clamped to the last
/// computed phase, so asking beyond the table is safe).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDists {
    dists: Vec<Distribution>,
}

impl PhaseDists {
    /// The memory distribution in effect during `phase`.
    pub fn at(&self, phase: usize) -> &Distribution {
        let idx = phase.min(self.dists.len() - 1);
        &self.dists[idx]
    }

    /// Number of precomputed phases.
    pub fn len(&self) -> usize {
        self.dists.len()
    }

    /// Never true: at least one phase is always present.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_model_repeats_distribution() {
        let d = Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap();
        let table = MemoryModel::Static(d.clone()).table(4).unwrap();
        assert_eq!(table.len(), 4);
        for k in 0..6 {
            assert_eq!(table.at(k), &d);
        }
    }

    #[test]
    fn dynamic_model_evolves_marginals() {
        let chain = MarkovChain::random_walk(vec![500.0, 1000.0, 2000.0], 0.5).unwrap();
        let model = MemoryModel::dynamic(chain.clone(), vec![1.0, 0.0, 0.0]).unwrap();
        let table = model.table(3).unwrap();
        // Phase 0: all mass on 500.
        assert!(table.at(0).is_point());
        // Phase 1: mass spreads to 1000.
        assert!(table.at(1).len() == 2);
        // Marginals must match the chain's own computation.
        let marg2 = chain.marginal_after(&[1.0, 0.0, 0.0], 2);
        let expect = chain.distribution(&marg2).unwrap();
        assert!(table.at(2).approx_eq(&expect, 1e-12));
    }

    #[test]
    fn dynamic_validation() {
        let chain = MarkovChain::random_walk(vec![1.0, 2.0], 0.3).unwrap();
        assert!(MemoryModel::dynamic(chain.clone(), vec![1.0]).is_err());
        assert!(MemoryModel::dynamic(chain.clone(), vec![0.7, 0.7]).is_err());
        assert!(MemoryModel::dynamic(chain, vec![0.5, 0.5]).is_ok());
    }

    #[test]
    fn initial_distribution_matches_phase_zero() {
        let chain = MarkovChain::random_walk(vec![100.0, 200.0], 0.9).unwrap();
        let model = MemoryModel::dynamic(chain, vec![0.25, 0.75]).unwrap();
        let init = model.initial_distribution().unwrap();
        assert!((init.mean() - 175.0).abs() < 1e-9);
    }
}
