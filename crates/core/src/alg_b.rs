//! Algorithm B (§3.3): generate the top-`c` plans per memory bucket, then
//! pick the candidate of least expected cost.
//!
//! A strict superset of Algorithm A's candidates (`c = 1` *is* Algorithm A),
//! so its chosen plan is never worse — and it can find plans that are
//! optimal for no specific memory value but best on average, the case
//! Algorithm A provably misses.

use crate::dp::Optimized;
use crate::env::MemoryModel;
use crate::error::CoreError;
use crate::evaluate::expected_cost;
use crate::topc::{top_c_plans, MergeStrategy};
use lec_cost::CostModel;
use lec_plan::JoinQuery;

/// Result of Algorithm B.
#[derive(Debug, Clone)]
pub struct AlgBResult {
    /// The least-expected-cost candidate.
    pub best: Optimized,
    /// Distinct candidate plans evaluated (≤ b·c).
    pub candidates_evaluated: usize,
    /// Frontier-merge combinations examined across all invocations (X4).
    pub combos_examined: u64,
    /// What naive merging would have examined.
    pub combos_naive: u64,
}

/// Runs Algorithm B with `c` plans per bucket.
pub fn optimize<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    c: usize,
) -> Result<AlgBResult, CoreError> {
    optimize_with_stats(query, model, memory, c)
}

/// Runs Algorithm B, reporting candidate and merge statistics.
pub fn optimize_with_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    c: usize,
) -> Result<AlgBResult, CoreError> {
    let initial = memory.initial_distribution()?;
    let phases = memory.table(query.n().max(2))?;
    let mut candidates: Vec<Optimized> = Vec::new();
    let mut combos_examined = 0;
    let mut combos_naive = 0;
    for &m_i in initial.values() {
        let res = top_c_plans(query, model, m_i, c, MergeStrategy::Frontier)?;
        combos_examined += res.combos_examined;
        combos_naive += res.combos_naive;
        for p in res.plans {
            if !candidates.iter().any(|q| q.plan == p.plan) {
                candidates.push(p);
            }
        }
    }
    let n_candidates = candidates.len();
    let best = candidates
        .into_iter()
        .map(|cand| {
            let e = expected_cost(query, model, &cand.plan, &phases);
            Optimized {
                plan: cand.plan,
                cost: e,
            }
        })
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
        .ok_or(CoreError::NoPlanFound)?;
    crate::verify::debug_verify_plan(query, &best.plan, best.cost);
    Ok(AlgBResult {
        best,
        candidates_evaluated: n_candidates,
        combos_examined,
        combos_naive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alg_a, alg_c};
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};
    use lec_stats::Distribution;

    fn query(n: usize) -> JoinQuery {
        let relations = (0..n)
            .map(|i| Relation::new(format!("r{i}"), 150.0 * (i + 1) as f64, 1e4))
            .collect();
        let predicates = (0..n - 1)
            .map(|i| JoinPred {
                left: i,
                right: i + 1,
                selectivity: 0.002,
                key: KeyId(i),
            })
            .collect();
        JoinQuery::new(relations, predicates, None).unwrap()
    }

    fn spread_memory() -> MemoryModel {
        MemoryModel::Static(Distribution::new([(12.0, 0.3), (60.0, 0.4), (900.0, 0.3)]).unwrap())
    }

    #[test]
    fn c_equal_1_matches_algorithm_a() {
        let q = query(4);
        let model = PaperCostModel;
        let mem = spread_memory();
        let b = optimize(&q, &model, &mem, 1).unwrap();
        let a = alg_a::optimize(&q, &model, &mem).unwrap();
        assert!((b.best.cost - a.best.cost).abs() < 1e-9 * a.best.cost.max(1.0));
    }

    #[test]
    fn sandwiched_between_a_and_c() {
        let q = query(5);
        let model = PaperCostModel;
        let mem = spread_memory();
        let a = alg_a::optimize(&q, &model, &mem).unwrap();
        let b = optimize_with_stats(&q, &model, &mem, 4).unwrap();
        let c = alg_c::optimize(&q, &model, &mem).unwrap();
        assert!(c.cost <= b.best.cost + 1e-9 * c.cost);
        assert!(b.best.cost <= a.best.cost + 1e-9 * a.best.cost);
        assert!(b.candidates_evaluated >= 3, "expected several candidates");
    }

    #[test]
    fn larger_c_never_hurts() {
        let q = query(4);
        let model = PaperCostModel;
        let mem = spread_memory();
        let mut last = f64::INFINITY;
        for c in [1, 2, 4, 8] {
            let b = optimize(&q, &model, &mem, c).unwrap();
            assert!(b.best.cost <= last + 1e-9 * last.clamp(1.0, 1e12));
            last = b.best.cost;
        }
    }

    #[test]
    fn frontier_never_examines_more_than_naive() {
        // With access lists of length ≤ 2 the frontier's savings are small
        // (it prunes pairs (i, k) with (i+1)(k+1) > c, which needs both
        // lists long); savings on full c×c lists are exercised by
        // `topc::frontier_merge` directly.
        let q = query(5);
        let model = PaperCostModel;
        let mem = spread_memory();
        let b = optimize_with_stats(&q, &model, &mem, 8).unwrap();
        assert!(b.combos_examined <= b.combos_naive);
    }

    #[test]
    fn frontier_saves_with_two_access_paths() {
        // Indexed, selective relations give two access paths per relation,
        // so the merge combines lists of length up to 2·c... enough for the
        // frontier to prune.
        let relations: Vec<Relation> = (0..5)
            .map(|i| {
                Relation::new(format!("r{i}"), 400.0 * (i + 1) as f64, 1e4)
                    .with_local_selectivity(0.2)
                    .with_index()
            })
            .collect();
        let predicates = (0..4)
            .map(|i| JoinPred {
                left: i,
                right: i + 1,
                selectivity: 0.002,
                key: KeyId(i),
            })
            .collect();
        let q = JoinQuery::new(relations, predicates, None).unwrap();
        let b = optimize_with_stats(&q, &PaperCostModel, &spread_memory(), 8).unwrap();
        assert!(b.combos_examined < b.combos_naive);
    }
}
