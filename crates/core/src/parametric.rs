//! Parametric LEC optimization: precompute at compile time, pick at
//! start-up time (§3.2/§3.4 meets \[INSS92\]/\[GC94\]).
//!
//! "We can precompute the best expected plan under a number of possible
//! distributions (ones that give good coverage of what we expect to
//! encounter at run-time), and store these expected plans, for use at
//! query execution time." At start-up the observed memory distribution is
//! usually sharper than the compile-time one; instead of re-running the
//! optimizer, re-*cost* the stored plans under the observed distribution —
//! plan costing is linear in plan size, optimization is exponential in the
//! join count — and run the cheapest.

use crate::alg_c;
use crate::dp::Optimized;
use crate::env::MemoryModel;
use crate::error::CoreError;
use crate::evaluate::expected_cost;
use crate::par::Parallelism;
use crate::stats::OptStats;
use lec_cost::CostModel;
use lec_plan::{JoinQuery, Plan};
use lec_stats::Distribution;

/// A compile-time-precomputed set of LEC plans, one per anticipated
/// environment scenario.
///
/// # Examples
///
/// ```
/// use lec_core::parametric::ParametricPlans;
/// use lec_cost::PaperCostModel;
/// use lec_plan::{JoinPred, JoinQuery, KeyId, Relation};
/// use lec_stats::Distribution;
///
/// let query = JoinQuery::new(
///     vec![Relation::new("a", 5_000.0, 2.5e5), Relation::new("b", 800.0, 4e4)],
///     vec![JoinPred { left: 0, right: 1, selectivity: 1e-4, key: KeyId(0) }],
///     None,
/// )?;
/// // Compile time: one LEC plan per anticipated scenario.
/// let scenarios = vec![
///     Distribution::new([(20.0, 0.7), (200.0, 0.3)])?,
///     Distribution::new([(20.0, 0.1), (200.0, 0.9)])?,
/// ];
/// let set = ParametricPlans::precompute(&query, &PaperCostModel, &scenarios)?;
///
/// // Start-up: re-cost stored plans under what was actually observed.
/// let observed = Distribution::new([(20.0, 0.5), (200.0, 0.5)])?;
/// let choice = set.pick(&query, &PaperCostModel, &observed)?;
/// assert!(choice.expected_cost > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParametricPlans {
    scenarios: Vec<(Distribution, Optimized)>,
}

/// What the start-up-time lookup chose.
#[derive(Debug, Clone)]
pub struct StartupChoice {
    /// Index of the winning scenario's plan.
    pub scenario: usize,
    /// The plan to run.
    pub plan: Plan,
    /// Its expected cost under the *observed* distribution.
    pub expected_cost: f64,
}

impl ParametricPlans {
    /// Compile-time phase: run the (expensive) LEC optimizer once per
    /// scenario distribution.
    pub fn precompute<M: CostModel + ?Sized>(
        query: &JoinQuery,
        model: &M,
        scenarios: &[Distribution],
    ) -> Result<Self, CoreError> {
        if scenarios.is_empty() {
            return Err(CoreError::BadParameter("need at least one scenario".into()));
        }
        let mut out = Vec::with_capacity(scenarios.len());
        for s in scenarios {
            let opt = alg_c::optimize(query, model, &MemoryModel::Static(s.clone()))?;
            out.push((s.clone(), opt));
        }
        Ok(Self { scenarios: out })
    }

    /// [`precompute`](Self::precompute), also returning the aggregate
    /// [`OptStats`] of the per-scenario optimizer runs (absorbed in
    /// scenario order, so the aggregate is deterministic).
    pub fn precompute_with_stats<M: CostModel + ?Sized>(
        query: &JoinQuery,
        model: &M,
        scenarios: &[Distribution],
    ) -> Result<(Self, OptStats), CoreError> {
        if scenarios.is_empty() {
            return Err(CoreError::BadParameter("need at least one scenario".into()));
        }
        let mut out = Vec::with_capacity(scenarios.len());
        let mut aggregate = OptStats::new("parametric", query.n());
        for s in scenarios {
            let (opt, stats) =
                alg_c::optimize_with_stats(query, model, &MemoryModel::Static(s.clone()))?;
            aggregate.absorb(&stats);
            out.push((s.clone(), opt));
        }
        Ok((Self { scenarios: out }, aggregate))
    }

    /// [`precompute_with_stats`](Self::precompute_with_stats) on the
    /// rank-parallel DP: per-scenario plans, costs, and counters are
    /// bit-identical to the serial run — only scheduling changes.
    pub fn precompute_with_stats_par<M: CostModel + Sync + ?Sized>(
        query: &JoinQuery,
        model: &M,
        scenarios: &[Distribution],
        par: &Parallelism,
    ) -> Result<(Self, OptStats), CoreError> {
        if scenarios.is_empty() {
            return Err(CoreError::BadParameter("need at least one scenario".into()));
        }
        let mut out = Vec::with_capacity(scenarios.len());
        let mut aggregate = OptStats::new("parametric", query.n());
        for s in scenarios {
            let (opt, stats) =
                alg_c::optimize_with_stats_par(query, model, &MemoryModel::Static(s.clone()), par)?;
            aggregate.absorb(&stats);
            out.push((s.clone(), opt));
        }
        Ok((Self { scenarios: out }, aggregate))
    }

    /// Rebuilds a set from already-optimized per-scenario plans (the
    /// `lec-serve` cache-entry *migration* path: after a recalibration
    /// judged not worth a re-optimization, stored plans are carried over
    /// and re-cost at the next [`pick`](Self::pick) — their stored costs
    /// are allowed to be stale, `pick` never reads them).
    pub fn from_parts(scenarios: Vec<(Distribution, Optimized)>) -> Result<Self, CoreError> {
        if scenarios.is_empty() {
            return Err(CoreError::BadParameter("need at least one scenario".into()));
        }
        // Always-on (not debug-gated): this is the one constructor fed with
        // externally stored plans, so even stale-by-design costs must still
        // be finite and nonnegative before they re-enter the service.
        for (i, (_, opt)) in scenarios.iter().enumerate() {
            lec_plan::verify_costs(&format!("parametric scenario {i}"), &[opt.cost])?;
        }
        Ok(Self { scenarios })
    }

    /// Number of stored scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Never true: precompute rejects empty scenario sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The stored scenarios and their plans.
    pub fn scenarios(&self) -> &[(Distribution, Optimized)] {
        &self.scenarios
    }

    /// Start-up phase: re-cost every stored plan under the observed
    /// distribution (cheap — no plan search) and return the best.
    pub fn pick<M: CostModel + ?Sized>(
        &self,
        query: &JoinQuery,
        model: &M,
        observed: &Distribution,
    ) -> Result<StartupChoice, CoreError> {
        let phases = MemoryModel::Static(observed.clone()).table(query.n().max(2))?;
        let mut best: Option<StartupChoice> = None;
        // Deduplicate identical plans across scenarios before costing.
        let mut seen: Vec<&Plan> = Vec::new();
        for (idx, (_, opt)) in self.scenarios.iter().enumerate() {
            if seen.iter().any(|p| **p == opt.plan) {
                continue;
            }
            seen.push(&opt.plan);
            let e = expected_cost(query, model, &opt.plan, &phases);
            if best.as_ref().is_none_or(|b| e < b.expected_cost) {
                best = Some(StartupChoice {
                    scenario: idx,
                    plan: opt.plan.clone(),
                    expected_cost: e,
                });
            }
        }
        best.ok_or(CoreError::NoPlanFound)
    }

    /// [`pick`](Self::pick) under a configurable selection rule.
    ///
    /// [`Rule::LeastExpectedCost`] dispatches to [`pick`](Self::pick)
    /// itself — same code path, bit-identical choice. Any other rule
    /// scores the stored plans' cost *profiles* under the observed
    /// distribution jointly (regret-style rules are context-sensitive)
    /// and keeps the argmin, first-wins on ties in scenario order — the
    /// same dedup and tie conventions as the expected-cost path. The
    /// reported `expected_cost` is always the plan's expected cost under
    /// `observed`, whatever the rule optimized, so callers can account
    /// the robustness premium.
    pub fn pick_with_rule<M: CostModel + ?Sized>(
        &self,
        query: &JoinQuery,
        model: &M,
        observed: &Distribution,
        rule: &lec_rules::Rule,
    ) -> Result<StartupChoice, CoreError> {
        if matches!(rule, lec_rules::Rule::LeastExpectedCost) {
            return self.pick(query, model, observed);
        }
        rule.certify()?;
        // Deduplicate identical plans across scenarios before costing
        // (same convention as `pick`).
        let mut kept: Vec<(usize, &Plan)> = Vec::new();
        for (idx, (_, opt)) in self.scenarios.iter().enumerate() {
            if kept.iter().any(|(_, p)| **p == opt.plan) {
                continue;
            }
            kept.push((idx, &opt.plan));
        }
        let profiles: Vec<Vec<f64>> = kept
            .iter()
            .map(|(_, plan)| crate::evaluate::cost_profile(query, model, plan, observed.values()))
            .collect();
        let scores = lec_rules::SelectionRule::scores(rule, &profiles, observed.probs());
        let win = lec_rules::argmin(&scores).ok_or(CoreError::NoPlanFound)?;
        let (scenario, plan) = kept[win];
        let phases = MemoryModel::Static(observed.clone()).table(query.n().max(2))?;
        Ok(StartupChoice {
            scenario,
            plan: plan.clone(),
            expected_cost: expected_cost(query, model, plan, &phases),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_cost::{CountingModel, PaperCostModel};
    use lec_plan::{JoinPred, KeyId, Relation};

    fn query() -> JoinQuery {
        JoinQuery::new(
            vec![
                Relation::new("A", 1_000_000.0, 5e7),
                Relation::new("B", 400_000.0, 2e7),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 3000.0 / 4e11,
                key: KeyId(0),
            }],
            Some(KeyId(0)),
        )
        .unwrap()
    }

    fn scenarios() -> Vec<Distribution> {
        vec![
            // Roomy environment.
            Distribution::new([(1800.0, 0.7), (2500.0, 0.3)]).unwrap(),
            // The paper's 80/20 mix.
            Distribution::new([(700.0, 0.2), (2000.0, 0.8)]).unwrap(),
            // Starved environment.
            Distribution::new([(400.0, 0.6), (900.0, 0.4)]).unwrap(),
        ]
    }

    #[test]
    fn picking_a_stored_scenario_matches_fresh_optimization() {
        let q = query();
        let model = PaperCostModel;
        let set = ParametricPlans::precompute(&q, &model, &scenarios()).unwrap();
        assert_eq!(set.len(), 3);
        for s in scenarios() {
            let choice = set.pick(&q, &model, &s).unwrap();
            let fresh = alg_c::optimize(&q, &model, &MemoryModel::Static(s)).unwrap();
            assert!(
                (choice.expected_cost - fresh.cost).abs() <= 1e-9 * fresh.cost,
                "stored {} vs fresh {}",
                choice.expected_cost,
                fresh.cost
            );
        }
    }

    #[test]
    fn interpolated_observations_have_bounded_regret() {
        let q = query();
        let model = PaperCostModel;
        let set = ParametricPlans::precompute(&q, &model, &scenarios()).unwrap();
        // An observed distribution between the stored scenarios.
        let observed = Distribution::new([(600.0, 0.3), (2100.0, 0.7)]).unwrap();
        let choice = set.pick(&q, &model, &observed).unwrap();
        let fresh = alg_c::optimize(&q, &model, &MemoryModel::Static(observed)).unwrap();
        // Never better than fresh, and on this family the stored plans
        // cover the space, so it should tie.
        assert!(choice.expected_cost >= fresh.cost - 1e-9);
        assert!(choice.expected_cost <= fresh.cost * 1.2);
    }

    #[test]
    fn startup_costing_is_much_cheaper_than_reoptimizing() {
        let q = query();
        let model = CountingModel::new(PaperCostModel);
        let set = ParametricPlans::precompute(&q, &model, &scenarios()).unwrap();
        let observed = Distribution::new([(500.0, 0.5), (1500.0, 0.5)]).unwrap();
        model.reset();
        set.pick(&q, &model, &observed).unwrap();
        let pick_evals = model.evaluations();
        model.reset();
        alg_c::optimize(&q, &model, &MemoryModel::Static(observed)).unwrap();
        let fresh_evals = model.evaluations();
        assert!(
            pick_evals < fresh_evals,
            "pick {pick_evals} vs fresh {fresh_evals}"
        );
    }

    #[test]
    fn rejects_empty_scenarios() {
        let q = query();
        assert!(matches!(
            ParametricPlans::precompute(&q, &PaperCostModel, &[]),
            Err(CoreError::BadParameter(_))
        ));
        assert!(matches!(
            ParametricPlans::precompute_with_stats(&q, &PaperCostModel, &[]),
            Err(CoreError::BadParameter(_))
        ));
        assert!(matches!(
            ParametricPlans::precompute_with_stats_par(
                &q,
                &PaperCostModel,
                &[],
                &Parallelism::serial()
            ),
            Err(CoreError::BadParameter(_))
        ));
    }

    #[test]
    fn stats_variants_match_plain_precompute() {
        let q = query();
        let model = PaperCostModel;
        let plain = ParametricPlans::precompute(&q, &model, &scenarios()).unwrap();
        let (with_stats, stats) =
            ParametricPlans::precompute_with_stats(&q, &model, &scenarios()).unwrap();
        let (par_set, par_stats) = ParametricPlans::precompute_with_stats_par(
            &q,
            &model,
            &scenarios(),
            &Parallelism::with_threads(3),
        )
        .unwrap();
        assert_eq!(stats.algorithm, "parametric");
        // One alg_c run per scenario, absorbed deterministically.
        assert_eq!(stats.counters, par_stats.counters);
        assert_eq!(stats.precompute, par_stats.precompute);
        assert!(stats.counters.candidates_priced > 0);
        for ((ds, os), ((dw, ow), (dp, op))) in plain
            .scenarios()
            .iter()
            .zip(with_stats.scenarios().iter().zip(par_set.scenarios()))
        {
            assert!(ds.approx_eq(dw, 0.0) && ds.approx_eq(dp, 0.0));
            assert_eq!(os.cost.to_bits(), ow.cost.to_bits());
            assert_eq!(os.cost.to_bits(), op.cost.to_bits());
            assert_eq!(os.plan, ow.plan);
            assert_eq!(os.plan, op.plan);
        }
    }
}
