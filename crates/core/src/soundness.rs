//! The utility-soundness gate: certify that a utility distributes over
//! cost addition *before* admitting it to a dynamic-programming entry
//! point.
//!
//! Dynamic programming over plan cost rests on one algebraic fact: the
//! score of a concatenation of stages must be computable from the scores of
//! the stages. The paper's 2002 generalization makes the boundary precise:
//!
//! * **Linear** `u(c) = c` — expectation distributes over addition *and*
//!   is linear in the probabilities, so the scalar DP (Algorithm C) is
//!   exact even when stages share the random parameter (Theorem 3.3).
//! * **Exponential** `u(c) = sign(γ)·e^{γc}` — `u(c₁+c₂) = u(c₁)·u(c₂)`,
//!   so certainty equivalents add for *independent* stages; with a shared
//!   parameter only the Pareto-frontier DP ([`crate::pareto::optimize`])
//!   is exact.
//! * **Step / deadline** `u(c) = 1{c > T}` — no structure at all:
//!   `Pr[X + Y > T]` is not a function of `Pr[X > T]` and `Pr[Y > T]`.
//!   Scalar DP is provably unsound (experiment X11 constructs an instance
//!   where it returns a strictly worse plan), so the gate refuses it with
//!   [`CoreError::UnsoundUtility`] and points at the exact fallbacks.
//!
//! Rather than trusting an enum match, [`certify`] *measures* the algebra
//! on probe distributions scaled to the utility's own regime (so a
//! `gamma = 1e-9` exponential is probed at costs around `1e9`, where its
//! curvature is visible):
//!
//! 1. **Distributivity probe** — `score(X ⊛ Y) = score(X) + score(Y)` for
//!    independent `X`, `Y` (convolution via [`Distribution::convolve`]).
//!    Failing this is disqualifying: no DP over accumulated cost can be
//!    sound, and the numeric witness is returned in the error.
//! 2. **Mixture probe** — `score(wX + (1−w)Y) = w·score(X) + (1−w)·score(Y)`.
//!    Passing both admits the scalar DP ([`DpAdmission::ScalarExpectedCost`]);
//!    passing only the first admits the frontier DP
//!    ([`DpAdmission::FrontierOnly`]), which stays exact when stages share
//!    the parameter.
//!
//! The probes use point supports, not point *costs*, because
//! `Utility::apply` on a deterministic cost is the identity for the
//! exponential utility (a point mass's certainty equivalent is its value) —
//! only genuine two-point distributions expose the curvature.

use crate::error::CoreError;
use crate::pareto::{self, UtilityResult};
use lec_cost::CostModel;
use lec_plan::JoinQuery;
use lec_stats::{Distribution, Utility};

/// Which dynamic-programming entry point the gate admits a utility to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpAdmission {
    /// The score distributes over addition *and* mixtures: the scalar
    /// expected-score DP is exact even under a shared parameter
    /// (Theorem 3.3; the linear utility).
    ScalarExpectedCost,
    /// The score distributes over addition for independent stages but is
    /// not mixture-linear: only the Pareto-frontier DP is exact under a
    /// shared parameter (the exponential utility).
    FrontierOnly,
}

/// Relative tolerance for the certification probes. The probes are scaled
/// to the utility's regime, so defects of a genuinely unsound utility are
/// `O(scale)` — ten orders of magnitude above this.
const PROBE_TOLERANCE: f64 = 1e-9;

/// A two-point probe distribution shape: `(value multiplier, probability)`.
type ProbeShape = [(f64, f64); 2];

/// The probe pairs, as `(value multiplier, probability)` two-point shapes.
/// Multipliers straddle 1.0 so a deadline at `threshold = scale` is crossed
/// by some but not all convolution outcomes.
const PROBES: [(ProbeShape, ProbeShape); 2] = [
    ([(0.2, 0.5), (1.4, 0.5)], [(0.3, 0.5), (1.1, 0.5)]),
    ([(0.6, 0.25), (0.9, 0.75)], [(0.1, 0.5), (1.3, 0.5)]),
];

/// The cost scale the probes run at: chosen so the utility's nonlinearity
/// (if any) is numerically visible.
fn probe_scale(utility: &Utility) -> Result<f64, CoreError> {
    match *utility {
        Utility::Linear => Ok(100.0),
        Utility::Exponential { gamma } => {
            if !gamma.is_finite() || gamma == 0.0 {
                return Err(CoreError::BadParameter(format!(
                    "exponential utility gamma must be finite and non-zero, got {gamma}"
                )));
            }
            Ok(1.0 / gamma.abs().clamp(1e-300, 1e300))
        }
        Utility::Deadline { threshold } => {
            if !threshold.is_finite() {
                return Err(CoreError::BadParameter(format!(
                    "deadline threshold must be finite, got {threshold}"
                )));
            }
            Ok(if threshold > 0.0 { threshold } else { 1.0 })
        }
    }
}

fn scaled(shape: &[(f64, f64)], scale: f64) -> Result<Distribution, CoreError> {
    Ok(Distribution::new(
        shape.iter().map(|&(v, p)| (v * scale, p)),
    )?)
}

fn close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= PROBE_TOLERANCE * (1.0 + scale.abs() + a.abs() + b.abs())
}

/// Certify a utility for dynamic programming. Returns which entry point is
/// admitted, or [`CoreError::UnsoundUtility`] with a numeric witness when
/// the utility's score does not distribute over cost addition.
pub fn certify(utility: &Utility) -> Result<DpAdmission, CoreError> {
    let scale = probe_scale(utility)?;
    let mut mixture_linear = true;
    for (xs, ys) in &PROBES {
        let x = scaled(xs, scale)?;
        let y = scaled(ys, scale)?;

        // Probe 1: distributivity over cost addition (independent stages).
        let combined = utility.score(&x.convolve(&y)?);
        let split = utility.score(&x) + utility.score(&y);
        if !close(combined, split, scale) {
            return Err(CoreError::UnsoundUtility {
                utility: format!("{utility:?}"),
                combined,
                split,
            });
        }

        // Probe 2: linearity in the probabilities (shared-parameter case).
        let mixed = utility.score(&x.mix(&y, 0.5)?);
        let averaged = 0.5 * utility.score(&x) + 0.5 * utility.score(&y);
        if !close(mixed, averaged, scale) {
            mixture_linear = false;
        }
    }
    Ok(if mixture_linear {
        DpAdmission::ScalarExpectedCost
    } else {
        DpAdmission::FrontierOnly
    })
}

/// The gated utility optimizer: certify first, then dispatch to the
/// soundest admitted entry point.
///
/// * [`DpAdmission::ScalarExpectedCost`] → [`pareto::scalar_dp`] (for the
///   linear utility this *is* Algorithm C).
/// * [`DpAdmission::FrontierOnly`] → [`pareto::optimize`] (exact for any
///   monotone utility; needed because a shared static parameter makes the
///   stage costs dependent).
/// * Rejected utilities (step/deadline) return
///   [`CoreError::UnsoundUtility`]; callers who still want an exact answer
///   should use [`pareto::exhaustive_utility`] (brute force) or accept the
///   frontier DP explicitly via [`pareto::optimize`] — the gate refuses to
///   pick silently because the frontier can be exponentially larger than
///   the scalar table.
///
/// # Examples
///
/// ```
/// use lec_core::soundness::{self, DpAdmission};
/// use lec_core::CoreError;
/// use lec_stats::Utility;
///
/// assert_eq!(
///     soundness::certify(&Utility::Linear)?,
///     DpAdmission::ScalarExpectedCost
/// );
/// assert_eq!(
///     soundness::certify(&Utility::Exponential { gamma: 1e-4 })?,
///     DpAdmission::FrontierOnly
/// );
/// assert!(matches!(
///     soundness::certify(&Utility::Deadline { threshold: 1e6 }),
///     Err(CoreError::UnsoundUtility { .. })
/// ));
/// # Ok::<(), CoreError>(())
/// ```
pub fn optimize_gated<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
    utility: Utility,
) -> Result<(UtilityResult, DpAdmission), CoreError> {
    let admission = certify(&utility)?;
    let result = match admission {
        DpAdmission::ScalarExpectedCost => pareto::scalar_dp(query, model, memory, utility)?,
        DpAdmission::FrontierOnly => pareto::optimize(query, model, memory, utility)?,
    };
    Ok((result, admission))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};

    fn query() -> JoinQuery {
        JoinQuery::new(
            vec![
                Relation::new("a", 5_000.0, 2.5e5),
                Relation::new("b", 800.0, 4e4),
                Relation::new("c", 1_200.0, 6e4),
            ],
            vec![
                JoinPred {
                    left: 0,
                    right: 1,
                    selectivity: 1e-4,
                    key: KeyId(0),
                },
                JoinPred {
                    left: 1,
                    right: 2,
                    selectivity: 2e-4,
                    key: KeyId(1),
                },
            ],
            None,
        )
        .expect("statically valid test query")
    }

    fn memory() -> Distribution {
        Distribution::new([(30.0, 0.4), (300.0, 0.6)]).expect("valid memory distribution")
    }

    #[test]
    fn linear_certifies_for_scalar_dp() {
        assert_eq!(
            certify(&Utility::Linear).expect("linear certifies"),
            DpAdmission::ScalarExpectedCost
        );
    }

    #[test]
    fn exponential_certifies_for_frontier_dp_only() {
        for gamma in [1e-9, 1e-4, 0.5, 100.0, -1e-4, -0.5] {
            assert_eq!(
                certify(&Utility::Exponential { gamma }).expect("exponential certifies"),
                DpAdmission::FrontierOnly,
                "gamma = {gamma}"
            );
        }
    }

    #[test]
    fn deadline_is_rejected_with_a_numeric_witness() {
        for threshold in [0.0, 1.0, 1e6, -5.0] {
            let err =
                certify(&Utility::Deadline { threshold }).expect_err("deadline must not certify");
            match err {
                CoreError::UnsoundUtility {
                    combined, split, ..
                } => {
                    assert!(
                        (combined - split).abs() > 0.1,
                        "witness too weak: {combined} vs {split}"
                    );
                }
                other => panic!("wrong error: {other:?}"),
            }
        }
    }

    #[test]
    fn rejection_message_names_the_fallbacks() {
        let err = certify(&Utility::Deadline { threshold: 100.0 })
            .expect_err("deadline must not certify");
        let msg = err.to_string();
        assert!(msg.contains("exhaustive_utility"), "message: {msg}");
        assert!(msg.contains("pareto::optimize"), "message: {msg}");
        assert!(msg.contains("counterexample"), "message: {msg}");
    }

    #[test]
    fn bad_gamma_is_a_parameter_error() {
        assert!(matches!(
            certify(&Utility::Exponential { gamma: 0.0 }),
            Err(CoreError::BadParameter(_))
        ));
        assert!(matches!(
            certify(&Utility::Exponential { gamma: f64::NAN }),
            Err(CoreError::BadParameter(_))
        ));
    }

    #[test]
    fn gated_linear_matches_the_scalar_dp() {
        let (gated, admission) =
            optimize_gated(&query(), &PaperCostModel, &memory(), Utility::Linear)
                .expect("linear optimizes");
        assert_eq!(admission, DpAdmission::ScalarExpectedCost);
        let direct = pareto::scalar_dp(&query(), &PaperCostModel, &memory(), Utility::Linear)
            .expect("scalar dp runs");
        assert_eq!(gated.best.plan, direct.best.plan);
        assert_eq!(gated.best.cost, direct.best.cost);
    }

    #[test]
    fn gated_exponential_matches_the_frontier_dp() {
        let u = Utility::Exponential { gamma: 1e-4 };
        let (gated, admission) =
            optimize_gated(&query(), &PaperCostModel, &memory(), u).expect("exponential optimizes");
        assert_eq!(admission, DpAdmission::FrontierOnly);
        let direct =
            pareto::optimize(&query(), &PaperCostModel, &memory(), u).expect("frontier dp runs");
        assert_eq!(gated.best.plan, direct.best.plan);
        assert_eq!(gated.best.cost, direct.best.cost);
    }

    #[test]
    fn gated_deadline_is_statically_refused() {
        let u = Utility::Deadline { threshold: 1e6 };
        assert!(matches!(
            optimize_gated(&query(), &PaperCostModel, &memory(), u),
            Err(CoreError::UnsoundUtility { .. })
        ));
        // The documented fallback still answers the question exactly.
        let exact = pareto::exhaustive_utility(&query(), &PaperCostModel, &memory(), u)
            .expect("exhaustive fallback runs");
        assert!(exact.best.cost.is_finite());
    }
}
