//! Brute-force plan enumeration: the ground truth every theorem test and
//! regret experiment compares against.
//!
//! Exponential (`n! · 3^{n-1}` left-deep plans), intended for `n ≤ 6`.

use crate::dp::Optimized;
use crate::env::PhaseDists;
use crate::error::CoreError;
use crate::evaluate::{access_choices, expected_cost};
use crate::par::{self, Parallelism};
use crate::stats::OptStats;
use lec_cost::{CostModel, JoinMethod};
use lec_plan::{JoinQuery, Plan, RelSet};

/// All left-deep plans for the query: every join permutation, every join-
/// method assignment, every access-path choice; when the query requires an
/// order, plans that do not already produce it are wrapped in a root sort.
pub fn enumerate_left_deep(query: &JoinQuery) -> Vec<Plan> {
    let n = query.n();
    let mut plans = Vec::new();
    if n == 1 {
        for method in access_choices(query.relation(0)) {
            plans.push(Plan::Access { rel: 0, method });
        }
        return plans;
    }
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |order| {
        enumerate_methods_for_order(query, order, &mut plans);
    });
    plans
}

/// Heap-style recursive permutation generator.
fn permute(items: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

fn enumerate_methods_for_order(query: &JoinQuery, order: &[usize], plans: &mut Vec<Plan>) {
    let n = order.len();
    let joins = n - 1;
    let method_combos = 3usize.pow(joins as u32);
    for combo in 0..method_combos {
        let mut methods = Vec::with_capacity(joins);
        let mut c = combo;
        for _ in 0..joins {
            methods.push(JoinMethod::ALL[c % 3]);
            c /= 3;
        }
        enumerate_access_variants(query, order, &methods, plans);
    }
}

fn enumerate_access_variants(
    query: &JoinQuery,
    order: &[usize],
    methods: &[JoinMethod],
    plans: &mut Vec<Plan>,
) {
    // Relations with two access choices get a bit in the variant mask.
    let choice_rels: Vec<usize> = (0..query.n())
        .filter(|&i| access_choices(query.relation(i)).len() > 1)
        .collect();
    let variants = 1usize << choice_rels.len();
    for mask in 0..variants {
        let access_of = |rel: usize| {
            let choices = access_choices(query.relation(rel));
            match choice_rels.iter().position(|&r| r == rel) {
                Some(bit) if (mask >> bit) & 1 == 1 => choices[1],
                _ => choices[0],
            }
        };
        let mut set = RelSet::single(order[0]);
        let mut plan = Plan::Access {
            rel: order[0],
            method: access_of(order[0]),
        };
        for (k, &rel) in order[1..].iter().enumerate() {
            let key = query.join_key_between(set, RelSet::single(rel));
            plan = Plan::join(
                plan,
                Plan::Access {
                    rel,
                    method: access_of(rel),
                },
                methods[k],
                key,
            );
            set = set.insert(rel);
        }
        if let Some(required) = query.required_order() {
            if plan.output_order() != Some(required) {
                plan = Plan::sort(plan, required);
            }
        }
        plans.push(plan);
    }
}

/// All *bushy* plans for the query (every binary tree shape, both child
/// orders, every method assignment). Much larger than the left-deep space;
/// intended for `n ≤ 5`. Access paths are fixed to each relation's cheapest
/// choice (access cost is additive and independent, so this preserves the
/// optimum).
pub fn enumerate_bushy(query: &JoinQuery) -> Vec<Plan> {
    // lec-lint: allow(panic-reachability) — enumeration recurses only on non-empty sets whose subplans were just generated
    fn plans_for(query: &JoinQuery, set: RelSet) -> Vec<Plan> {
        if set.len() == 1 {
            let rel = set.iter().next().expect("singleton");
            let method = access_choices(query.relation(rel))
                .into_iter()
                .min_by(|a, b| {
                    let ca = crate::evaluate::access_step(query.relation(rel), *a).0;
                    let cb = crate::evaluate::access_step(query.relation(rel), *b).0;
                    ca.total_cmp(&cb)
                })
                .expect("at least the full scan");
            return vec![Plan::Access { rel, method }];
        }
        let members: Vec<usize> = set.iter().collect();
        let mut out = Vec::new();
        // Enumerate proper non-empty subsets containing the first member to
        // halve the split enumeration, then emit both child orders.
        let rest: Vec<usize> = members[1..].to_vec();
        for mask in 0..(1u32 << rest.len()) {
            let mut left = RelSet::single(members[0]);
            for (bit, &r) in rest.iter().enumerate() {
                if (mask >> bit) & 1 == 1 {
                    left = left.insert(r);
                }
            }
            let right = set.intersect(RelSet::from_bits(set.bits() & !left.bits()));
            if right.is_empty() {
                continue;
            }
            let left_plans = plans_for(query, left);
            let right_plans = plans_for(query, right);
            let key = query.join_key_between(left, right);
            for lp in &left_plans {
                for rp in &right_plans {
                    for method in JoinMethod::ALL {
                        out.push(Plan::join(lp.clone(), rp.clone(), method, key));
                        out.push(Plan::join(rp.clone(), lp.clone(), method, key));
                    }
                }
            }
        }
        out
    }
    let mut plans = plans_for(query, query.all());
    if let Some(required) = query.required_order() {
        plans = plans
            .into_iter()
            .map(|p| {
                if p.output_order() == Some(required) {
                    p
                } else {
                    Plan::sort(p, required)
                }
            })
            .collect();
    }
    plans
}

/// The exact LEC plan by brute force: minimum expected cost over all
/// left-deep plans.
pub fn exhaustive_lec<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    phases: &PhaseDists,
) -> Result<Optimized, CoreError> {
    best_by_expected_cost(query, model, phases, enumerate_left_deep(query))
}

/// [`exhaustive_lec`], also returning the search-space [`OptStats`]. The
/// exhaustive enumerators do not walk the subset lattice, so
/// `masks_expanded` and `entries_written` are zero; `candidates_priced` is
/// the number of complete plans scored, and `rank_wall_ns` holds a single
/// total.
pub fn exhaustive_lec_with_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    phases: &PhaseDists,
) -> Result<(Optimized, OptStats), CoreError> {
    let mut stats = OptStats::new("exhaustive", query.n());
    let (best, elapsed) = par::timed(|| {
        let plans = enumerate_left_deep(query);
        stats.counters.candidates_priced = plans.len() as u64;
        best_by_expected_cost(query, model, phases, plans)
    });
    stats.rank_wall_ns.push(elapsed);
    Ok((best?, stats))
}

/// [`exhaustive_lec_par`], also returning the search-space [`OptStats`].
/// The counters are identical to [`exhaustive_lec_with_stats`]'s.
pub fn exhaustive_lec_par_with_stats<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    phases: &PhaseDists,
    par: &Parallelism,
) -> Result<(Optimized, OptStats), CoreError> {
    let mut stats = OptStats::new("exhaustive", query.n());
    let (best, elapsed) = par::timed(|| {
        let plans = enumerate_left_deep(query);
        stats.counters.candidates_priced = plans.len() as u64;
        best_scored_par(query, model, phases, plans, par)
    });
    stats.rank_wall_ns.push(elapsed);
    Ok((best?, stats))
}

/// The exact LEC plan over the bushy space.
pub fn exhaustive_lec_bushy<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    phases: &PhaseDists,
) -> Result<Optimized, CoreError> {
    best_by_expected_cost(query, model, phases, enumerate_bushy(query))
}

/// [`exhaustive_lec`] with the plan scoring fanned out across threads.
/// Enumeration stays serial (it is a fraction of the work); each plan's
/// expected cost is independent, so scoring is embarrassingly parallel,
/// and the winner is picked by a serial scan over the ordered costs —
/// identical tie-breaking to the serial `min_by`.
pub fn exhaustive_lec_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    phases: &PhaseDists,
    par: &Parallelism,
) -> Result<Optimized, CoreError> {
    let plans = enumerate_left_deep(query);
    best_scored_par(query, model, phases, plans, par)
}

fn best_scored_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    phases: &PhaseDists,
    plans: Vec<Plan>,
    par: &Parallelism,
) -> Result<Optimized, CoreError> {
    let costs = par::map_indexed(par, plans.len(), |i| {
        expected_cost(query, model, &plans[i], phases)
    });
    // `Iterator::min_by` keeps the *first* of equally-minimal elements;
    // strict `<` over the ascending scan reproduces that exactly.
    let mut best: Option<usize> = None;
    for (i, &cost) in costs.iter().enumerate() {
        if best.is_none_or(|b| cost.total_cmp(&costs[b]) == std::cmp::Ordering::Less) {
            best = Some(i);
        }
    }
    let i = best.ok_or(CoreError::NoPlanFound)?;
    let cost = costs[i];
    // O(1) extraction: we only need plan `i`, not a prefix walk over (and
    // drop of) every earlier plan.
    let mut plans = plans;
    let plan = plans.swap_remove(i);
    crate::verify::debug_verify_plan(query, &plan, cost);
    Ok(Optimized { plan, cost })
}

fn best_by_expected_cost<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    phases: &PhaseDists,
    plans: Vec<Plan>,
) -> Result<Optimized, CoreError> {
    let best = plans
        .into_iter()
        .map(|plan| {
            let cost = expected_cost(query, model, &plan, phases);
            Optimized { plan, cost }
        })
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
        .ok_or(CoreError::NoPlanFound)?;
    crate::verify::debug_verify_plan(query, &best.plan, best.cost);
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_plan::{JoinPred, KeyId, Relation};

    fn query(n: usize) -> JoinQuery {
        let relations = (0..n)
            .map(|i| Relation::new(format!("r{i}"), 50.0 + 25.0 * i as f64, 1e4))
            .collect();
        let predicates = (0..n - 1)
            .map(|i| JoinPred {
                left: i,
                right: i + 1,
                selectivity: 0.01,
                key: KeyId(i),
            })
            .collect();
        JoinQuery::new(relations, predicates, None).unwrap()
    }

    #[test]
    fn left_deep_count_matches_formula() {
        // n! · 3^(n-1) plans with single access choices and no ORDER BY.
        for n in 2..=4 {
            let q = query(n);
            let plans = enumerate_left_deep(&q);
            let expected = (1..=n).product::<usize>() * 3usize.pow(n as u32 - 1);
            assert_eq!(plans.len(), expected, "n = {n}");
            for p in &plans {
                assert!(p.is_left_deep());
                p.validate(&q).unwrap();
            }
        }
    }

    #[test]
    fn ordered_query_plans_all_satisfy_order() {
        let q = JoinQuery::new(
            vec![
                Relation::new("a", 100.0, 1e3),
                Relation::new("b", 200.0, 2e3),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 0.001,
                key: KeyId(0),
            }],
            Some(KeyId(0)),
        )
        .unwrap();
        for p in enumerate_left_deep(&q) {
            assert_eq!(p.output_order(), Some(KeyId(0)), "{}", p.explain(&q));
        }
    }

    #[test]
    fn bushy_space_is_superset_sized() {
        let q = query(4);
        let bushy = enumerate_bushy(&q);
        let left_deep = enumerate_left_deep(&q);
        // Bushy trees over 4 leaves: 4-leaf shapes with ordered children =
        // 5 shapes · 4! leaf orders... simply check it dwarfs the left-deep
        // count and all plans validate.
        assert!(bushy.len() > left_deep.len());
        for p in bushy.iter().take(500) {
            p.validate(&q).unwrap();
        }
    }

    #[test]
    fn access_variants_enumerated() {
        let q = JoinQuery::new(
            vec![
                Relation::new("a", 100.0, 1e3)
                    .with_local_selectivity(0.1)
                    .with_index(),
                Relation::new("b", 200.0, 2e3),
            ],
            vec![JoinPred {
                left: 0,
                right: 1,
                selectivity: 0.001,
                key: KeyId(0),
            }],
            None,
        )
        .unwrap();
        let plans = enumerate_left_deep(&q);
        // 2 perms · 3 methods · 2 access choices for `a`.
        assert_eq!(plans.len(), 12);
    }

    #[test]
    fn parallel_exhaustive_matches_serial_bitwise() {
        use crate::env::MemoryModel;
        use lec_cost::PaperCostModel;
        use lec_stats::Distribution;

        let q = query(4);
        let mem = MemoryModel::Static(Distribution::new([(25.0, 0.4), (400.0, 0.6)]).unwrap());
        let phases = mem.table(q.n()).unwrap();
        let serial = exhaustive_lec(&q, &PaperCostModel, &phases).unwrap();
        let par = Parallelism {
            threads: 4,
            sequential_cutoff: 2,
        };
        let parallel = exhaustive_lec_par(&q, &PaperCostModel, &phases, &par).unwrap();
        assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits());
        assert_eq!(serial.plan, parallel.plan);
    }

    #[test]
    fn stats_count_scored_plans_identically_across_paths() {
        use crate::env::MemoryModel;
        use lec_cost::PaperCostModel;
        use lec_stats::Distribution;

        let q = query(4);
        let mem = MemoryModel::Static(Distribution::new([(25.0, 0.4), (400.0, 0.6)]).unwrap());
        let phases = mem.table(q.n()).unwrap();
        let (serial, sstats) = exhaustive_lec_with_stats(&q, &PaperCostModel, &phases).unwrap();
        // 4! · 3^3 plans, no lattice walk.
        assert_eq!(sstats.counters.candidates_priced, 24 * 27);
        assert_eq!(sstats.counters.masks_expanded, 0);
        assert_eq!(sstats.counters.entries_written, 0);
        let par = Parallelism {
            threads: 4,
            sequential_cutoff: 2,
        };
        let (parallel, pstats) =
            exhaustive_lec_par_with_stats(&q, &PaperCostModel, &phases, &par).unwrap();
        assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits());
        assert_eq!(serial.plan, parallel.plan);
        assert_eq!(sstats.counters, pstats.counters);
    }

    #[test]
    fn single_relation() {
        let q = JoinQuery::new(vec![Relation::new("a", 10.0, 100.0)], vec![], None).unwrap();
        assert_eq!(enumerate_left_deep(&q).len(), 1);
    }
}
