//! Rule-parameterized plan selection: the `lec-rules` subsystem threaded
//! through the optimizer family (DESIGN.md §9).
//!
//! The frontier DP in [`pareto`](crate::pareto) already computes, per
//! surviving plan, the full cost *profile* — one cost per memory value.
//! The LEC criterion collapses that profile to its expectation; this
//! module lets any certified [`SelectionRule`] do the collapsing instead,
//! reusing the frontier outputs rather than re-enumerating:
//!
//! * [`optimize_with_rule`] — gated entry point for the shipped
//!   [`Rule`]s. [`Rule::LeastExpectedCost`] dispatches to the *existing*
//!   scalar path ([`alg_c`](crate::alg_c)) exactly like
//!   [`soundness::optimize_gated`](crate::soundness::optimize_gated)
//!   does for the linear utility, so the LEC rule is bit-identical to
//!   the expected-cost optimizer by construction (the differential
//!   battery in `tests/rule_equivalence.rs` holds it to `to_bits`
//!   equality). Every other shipped rule is certified frontier-only and
//!   finalizes over the root Pareto frontier.
//! * [`optimize_with_dyn_rule`] — the extension point for custom
//!   [`SelectionRule`] impls: always frontier-finalized, but still gated
//!   through [`lec_rules::certify`] so a non-monotone rule (whose
//!   optimum the frontier may already have pruned) is rejected with a
//!   numeric witness instead of silently returning a wrong plan.
//!
//! Frontier finalization is *exact* for every certified rule: dominance
//! pruning only discards profiles that are componentwise no better, and
//! certification requires the rule's score to be monotone in profiles,
//! so some frontier survivor attains the optimal score. For
//! context-sensitive rules (minmax regret) there is a second subtlety:
//! the per-scenario optima the scores reference must not move when the
//! candidate set shrinks to the frontier — and they do not, because each
//! per-scenario minimum over all plans is itself attained by a frontier
//! survivor.

use crate::alg_c;
use crate::dp::Optimized;
use crate::env::MemoryModel;
use crate::error::CoreError;
use crate::evaluate::cost_distribution_static;
use crate::pareto;
use lec_cost::CostModel;
use lec_plan::JoinQuery;
use lec_rules::{argmin, Rule, RuleAdmission, SelectionRule};
use lec_stats::Distribution;

/// What a rule-parameterized optimization chose.
#[derive(Debug, Clone)]
pub struct RuleResult {
    /// The chosen plan; `cost` holds the rule's *score* (for
    /// [`Rule::LeastExpectedCost`] this is the expected cost, bit-equal
    /// to the scalar path's).
    pub best: Optimized,
    /// Expected cost of the chosen plan under the belief distribution
    /// (equals `best.cost` for the LEC rule; for other rules it shows
    /// what the robust choice pays in expectation).
    pub expected_cost: f64,
    /// The chosen plan's full cost distribution under the beliefs.
    pub cost_distribution: Distribution,
    /// How the certification gate admitted the rule.
    pub admission: RuleAdmission,
    /// Number of root-frontier candidates the rule scored (1 for the
    /// scalar-dispatched LEC rule).
    pub candidates: usize,
}

/// Optimize under a shipped [`Rule`], dispatching each rule to the
/// cheapest entry point its certification admits.
///
/// # Examples
///
/// ```
/// use lec_core::rules::optimize_with_rule;
/// use lec_cost::PaperCostModel;
/// use lec_plan::{JoinPred, JoinQuery, KeyId, Relation};
/// use lec_rules::Rule;
/// use lec_stats::Distribution;
///
/// let query = JoinQuery::new(
///     vec![
///         Relation::new("a", 5_000.0, 2.5e5),
///         Relation::new("b", 800.0, 4e4),
///     ],
///     vec![JoinPred { left: 0, right: 1, selectivity: 1e-4, key: KeyId(0) }],
///     None,
/// )?;
/// let memory = Distribution::new([(30.0, 0.4), (300.0, 0.6)])?;
/// let lec = optimize_with_rule(&query, &PaperCostModel, &memory, &Rule::LeastExpectedCost)?;
/// let robust = optimize_with_rule(&query, &PaperCostModel, &memory, &Rule::MinmaxRegret)?;
/// // The robust pick can never beat LEC at LEC's own game.
/// assert!(robust.expected_cost >= lec.expected_cost - 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize_with_rule<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
    rule: &Rule,
) -> Result<RuleResult, CoreError> {
    let admission = rule.certify()?;
    match rule {
        Rule::LeastExpectedCost => {
            debug_assert!(admission.scalar_ok());
            let best = alg_c::optimize(query, model, &MemoryModel::Static(memory.clone()))?;
            let dist = cost_distribution_static(query, model, &best.plan, memory);
            Ok(RuleResult {
                expected_cost: best.cost,
                cost_distribution: dist,
                admission,
                candidates: 1,
                best,
            })
        }
        _ => finalize_over_frontier(query, model, memory, rule, admission),
    }
}

/// Optimize under any custom [`SelectionRule`], always finalizing over
/// the root Pareto frontier. The rule is certified first; a rule whose
/// score is not monotone in per-scenario costs is rejected with
/// [`CoreError::UnsoundRule`] (frontier pruning could have discarded its
/// optimum — the witness in the error shows a dominated profile it
/// prefers).
pub fn optimize_with_dyn_rule<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
    rule: &dyn SelectionRule,
) -> Result<RuleResult, CoreError> {
    let admission = lec_rules::certify(rule)?;
    finalize_over_frontier(query, model, memory, rule, admission)
}

fn finalize_over_frontier<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &Distribution,
    rule: &dyn SelectionRule,
    admission: RuleAdmission,
) -> Result<RuleResult, CoreError> {
    let (roots, _max_frontier, _stats) = pareto::root_frontier_with_stats(query, model, memory)?;
    let profiles: Vec<Vec<f64>> = roots.iter().map(|e| e.profile.clone()).collect();
    crate::verify::debug_verify_frontier(&profiles);
    let scores = rule.scores(&profiles, memory.probs());
    let idx = argmin(&scores).ok_or(CoreError::NoPlanFound)?;
    let winner = &roots[idx];
    let dist = Distribution::new(
        memory
            .probs()
            .iter()
            .zip(winner.profile.iter())
            .map(|(&p, &c)| (c, p)),
    )?;
    let result = RuleResult {
        best: Optimized {
            plan: winner.plan.clone(),
            cost: scores[idx],
        },
        expected_cost: dist.mean(),
        cost_distribution: dist,
        admission,
        candidates: roots.len(),
    };
    crate::verify::debug_verify_plan(query, &result.best.plan, result.expected_cost);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::cost_profile;
    use crate::exhaustive::enumerate_left_deep;
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};

    fn query(n: usize, seed: u64) -> JoinQuery {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 5000 + 50) as f64
        };
        let relations = (0..n)
            .map(|i| Relation::new(format!("r{i}"), next(), 1e4))
            .collect();
        let predicates = (0..n - 1)
            .map(|i| JoinPred {
                left: i,
                right: i + 1,
                selectivity: 0.001,
                key: KeyId(i),
            })
            .collect();
        JoinQuery::new(relations, predicates, Some(KeyId(n - 2))).unwrap()
    }

    fn memory() -> Distribution {
        Distribution::new([(15.0, 0.25), (70.0, 0.35), (450.0, 0.25), (2200.0, 0.15)]).unwrap()
    }

    #[test]
    fn lec_rule_dispatches_to_algorithm_c_bit_identically() {
        for seed in 0..8 {
            let q = query(4, seed);
            let mem = memory();
            let via_rule =
                optimize_with_rule(&q, &PaperCostModel, &mem, &Rule::LeastExpectedCost).unwrap();
            let direct =
                alg_c::optimize(&q, &PaperCostModel, &MemoryModel::Static(mem.clone())).unwrap();
            assert_eq!(via_rule.best.cost.to_bits(), direct.cost.to_bits());
            assert_eq!(via_rule.best.plan, direct.plan);
            assert!(via_rule.admission.scalar_ok());
        }
    }

    #[test]
    fn frontier_rules_match_exhaustive_scoring() {
        // Ground truth: score *every* left-deep plan's profile jointly
        // and take the argmin. The frontier finalize must agree on the
        // achieved score for every shipped frontier-only rule.
        for seed in 0..6 {
            let q = query(4, seed);
            let mem = memory();
            let all_plans = enumerate_left_deep(&q);
            let all_profiles: Vec<Vec<f64>> = all_plans
                .iter()
                .map(|p| cost_profile(&q, &PaperCostModel, p, mem.values()))
                .collect();
            for rule in Rule::all() {
                if matches!(rule, Rule::LeastExpectedCost) {
                    continue;
                }
                let via_frontier = optimize_with_rule(&q, &PaperCostModel, &mem, &rule).unwrap();
                let truth_scores = rule.scores(&all_profiles, mem.probs());
                let truth = truth_scores.iter().cloned().fold(f64::INFINITY, f64::min);
                assert!(
                    (via_frontier.best.cost - truth).abs() <= 1e-9 * truth.abs().max(1.0),
                    "seed {seed}, {rule}: frontier {} vs exhaustive {}",
                    via_frontier.best.cost,
                    truth
                );
                assert!(!via_frontier.admission.scalar_ok());
                assert!(via_frontier.candidates >= 1);
            }
        }
    }

    #[test]
    fn robust_rules_never_beat_lec_on_expected_cost() {
        for seed in 0..6 {
            let q = query(4, seed);
            let mem = memory();
            let lec =
                optimize_with_rule(&q, &PaperCostModel, &mem, &Rule::LeastExpectedCost).unwrap();
            for rule in Rule::all() {
                let r = optimize_with_rule(&q, &PaperCostModel, &mem, &rule).unwrap();
                assert!(
                    r.expected_cost >= lec.expected_cost - 1e-9 * lec.expected_cost.max(1.0),
                    "seed {seed}, {rule}"
                );
            }
        }
    }

    struct AntiMonotone;

    impl SelectionRule for AntiMonotone {
        fn name(&self) -> &'static str {
            "anti-monotone"
        }

        fn scores(&self, profiles: &[Vec<f64>], _probs: &[f64]) -> Vec<f64> {
            profiles.iter().map(|p| -p.iter().sum::<f64>()).collect()
        }
    }

    #[test]
    fn unsound_rules_are_rejected_at_the_gate() {
        let q = query(3, 0);
        let err =
            optimize_with_dyn_rule(&q, &PaperCostModel, &memory(), &AntiMonotone).unwrap_err();
        assert!(matches!(err, CoreError::UnsoundRule(_)), "{err}");
        let bad_alpha = Rule::TailRisk(lec_rules::TailRisk { alpha: 1.5 });
        assert!(matches!(
            optimize_with_rule(&q, &PaperCostModel, &memory(), &bad_alpha),
            Err(CoreError::BadParameter(_))
        ));
    }

    #[test]
    fn dyn_rule_entry_accepts_certified_rules() {
        let q = query(4, 2);
        let mem = memory();
        let via_enum = optimize_with_rule(&q, &PaperCostModel, &mem, &Rule::MinmaxRegret).unwrap();
        let via_dyn =
            optimize_with_dyn_rule(&q, &PaperCostModel, &mem, &lec_rules::MinmaxRegret).unwrap();
        assert_eq!(via_enum.best.plan, via_dyn.best.plan);
        assert_eq!(via_enum.best.cost.to_bits(), via_dyn.best.cost.to_bits());
    }
}
