//! Top-`c` plan enumeration per parameter setting (§3.3).
//!
//! The System R DP is modified to retain the `c` best left-deep plans at
//! every dag node instead of one. When combining the top-`c` subplans for
//! `S_j` with the (cost-sorted) access paths for `A_j` under one join
//! method, the join-step cost is the same for every combination — "all the
//! c variants of each input have the very same properties" — so only the
//! *sum of input costs* differentiates combinations, and Proposition 3.1
//! shows the top `c` sums lie on the frontier `i·k ≤ c` of the sorted×sorted
//! grid: at most `c + c·ln c` combinations need examining instead of `c²`.
//!
//! This module records how many combinations each merge examined so that
//! experiment X4 can compare the measured count against the bound.

use crate::dp::Optimized;
use crate::error::CoreError;
use crate::evaluate::{access_choices, access_step, join_step, sort_step};
use crate::par::{self, Parallelism};
use crate::precompute::QueryTables;
use crate::stats::OptStats;
use lec_cost::{CostModel, JoinMethod};
use lec_plan::{JoinQuery, Plan, RelSet};

/// How to merge the sorted input lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Proposition 3.1's frontier: only pairs with `i · k ≤ c` (1-indexed).
    Frontier,
    /// All `c · k` pairs (the naive reference).
    Naive,
}

/// Result of the top-`c` search at one fixed memory value.
#[derive(Debug, Clone)]
pub struct TopCResult {
    /// Up to `c` best full-query plans, sorted by cost (plans that violate a
    /// required order are completed with a root sort).
    pub plans: Vec<Optimized>,
    /// Total `(subplan, access)` combinations examined across all merges.
    pub combos_examined: u64,
    /// What the naive strategy would have examined.
    pub combos_naive: u64,
}

#[derive(Debug, Clone)]
struct TcEntry {
    cost: f64,
    plan: Plan,
}

/// The per-mask unit of work: every way of forming `set` by a last join,
/// merged and truncated to the top `c`. Returned rather than accumulated
/// so the serial sweep and the rank-parallel wavefront share it exactly —
/// including the combination counters, which are summed in mask order by
/// both drivers.
struct MaskMerge {
    merged: Vec<TcEntry>,
    /// Full-set candidates whose final join already produces the required
    /// order (empty below the full set).
    ordered: Vec<TcEntry>,
    examined: u64,
    naive: u64,
}

#[allow(clippy::too_many_arguments)]
fn merge_mask<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    tabs: &QueryTables,
    memory: f64,
    c: usize,
    strategy: MergeStrategy,
    table: &[Vec<TcEntry>],
    set: RelSet,
    full: RelSet,
) -> MaskMerge {
    let out = tabs.pages(set);
    let mut merged: Vec<TcEntry> = Vec::new();
    let mut ordered: Vec<TcEntry> = Vec::new();
    let mut examined = 0u64;
    let mut naive = 0u64;
    for j in set.iter() {
        let sub = set.remove(j);
        let left_out = tabs.pages(sub);
        let key = tabs.join_key(sub, j);
        let access = &table[RelSet::single(j).bits() as usize];
        let left_list = &table[sub.bits() as usize];
        if left_list.is_empty() {
            continue;
        }
        // The access output size depends only on `j` — hoist it out of the
        // method loop instead of recomputing it per join method.
        let acc_out = access_step(
            query.relation(j),
            match access[0].plan {
                Plan::Access { method, .. } => method,
                _ => unreachable!("depth-1 entries are accesses"), // lec-lint: allow(panic-reachability) — depth-1 plan-table entries are always access nodes by construction
            },
        )
        .1;
        for method in JoinMethod::ALL {
            // One cost-formula evaluation per (j, method): identical for
            // every input combination.
            let step = join_step(model, method, left_out, acc_out, out, memory);
            naive += (left_list.len() * access.len()) as u64;
            for (k, acc) in access.iter().enumerate() {
                for (i, left) in left_list.iter().enumerate() {
                    if strategy == MergeStrategy::Frontier && (i + 1) * (k + 1) > c {
                        break;
                    }
                    examined += 1;
                    let entry = TcEntry {
                        cost: left.cost + acc.cost + step,
                        plan: Plan::join(left.plan.clone(), acc.plan.clone(), method, key),
                    };
                    if set == full
                        && method == JoinMethod::SortMerge
                        && query.required_order().is_some()
                        && key == query.required_order()
                    {
                        ordered.push(entry.clone());
                    }
                    merged.push(entry);
                }
            }
        }
    }
    merged.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    merged.truncate(c);
    MaskMerge {
        merged,
        ordered,
        examined,
        naive,
    }
}

fn validate_topc(memory: f64, c: usize) -> Result<(), CoreError> {
    if c == 0 {
        return Err(CoreError::BadParameter("top-c needs c >= 1".into()));
    }
    if !(memory.is_finite() && memory > 0.0) {
        return Err(CoreError::BadParameter(format!("bad memory {memory}")));
    }
    Ok(())
}

/// Depth 1: all access paths, sorted by cost (there are at most 2, so
/// the top-c list is just all of them).
fn seed_access_lists(query: &JoinQuery, c: usize, table: &mut [Vec<TcEntry>]) {
    for i in 0..query.n() {
        let rel = query.relation(i);
        let mut entries: Vec<TcEntry> = access_choices(rel)
            .into_iter()
            .map(|method| TcEntry {
                cost: access_step(rel, method).0,
                plan: Plan::Access { rel: i, method },
            })
            .collect();
        entries.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        entries.truncate(c);
        table[RelSet::single(i).bits() as usize] = entries;
    }
}

/// Root handling shared by the serial and parallel drivers.
#[allow(clippy::too_many_arguments)]
fn finalize_topc<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    tabs: &QueryTables,
    memory: f64,
    c: usize,
    table: &[Vec<TcEntry>],
    mut ordered_roots: Vec<TcEntry>,
    combos_examined: u64,
    combos_naive: u64,
) -> Result<TopCResult, CoreError> {
    let full = query.all();
    let mut roots = table[full.bits() as usize].clone();
    if roots.is_empty() {
        return Err(CoreError::NoPlanFound);
    }
    // Complete plans that miss a required order with a root sort, then let
    // the naturally ordered candidates (final SM on the required key)
    // compete; without this second pool an ordered plan that ranks below
    // the unordered top-c could still beat every completed candidate.
    if let Some(required) = query.required_order() {
        for entry in &mut roots {
            if entry.plan.output_order() != Some(required) {
                entry.cost += sort_step(model, tabs.pages(full), memory);
                entry.plan =
                    Plan::sort(std::mem::replace(&mut entry.plan, Plan::scan(0)), required);
            }
        }
        ordered_roots.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        ordered_roots.truncate(c);
        for candidate in ordered_roots {
            if !roots.iter().any(|r| r.plan == candidate.plan) {
                roots.push(candidate);
            }
        }
        roots.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        roots.truncate(c);
    }
    let plans: Vec<Optimized> = roots
        .into_iter()
        .map(|e| Optimized {
            plan: e.plan,
            cost: e.cost,
        })
        .collect();
    for p in &plans {
        crate::verify::debug_verify_plan(query, &p.plan, p.cost);
    }
    Ok(TopCResult {
        plans,
        combos_examined,
        combos_naive,
    })
}

/// Computes the top-`c` left-deep plans for one fixed memory value
/// (Theorem 3.2: roughly a constant factor over the single-plan DP).
pub fn top_c_plans<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: f64,
    c: usize,
    strategy: MergeStrategy,
) -> Result<TopCResult, CoreError> {
    Ok(top_c_plans_with_stats(query, model, memory, c, strategy)?.0)
}

/// [`top_c_plans`], also returning the search-space [`OptStats`].
/// `candidates_priced` equals the merge's `combos_examined`;
/// `entries_written` counts the list entries actually kept per node.
pub fn top_c_plans_with_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: f64,
    c: usize,
    strategy: MergeStrategy,
) -> Result<(TopCResult, OptStats), CoreError> {
    validate_topc(memory, c)?;
    let n = query.n();
    let full = query.all();
    let tabs = QueryTables::new(query);
    let mut table: Vec<Vec<TcEntry>> = vec![Vec::new(); (full.bits() + 1) as usize];
    let mut combos_examined = 0u64;
    let mut combos_naive = 0u64;
    // Full-set candidates whose final join already produces the required
    // order: kept separately so sort completion competes fairly (same
    // two-way comparison the single-plan DP makes at the root).
    let mut ordered_roots: Vec<TcEntry> = Vec::new();

    seed_access_lists(query, c, &mut table);

    let mut stats = OptStats::new("topc", n);
    stats.precompute = tabs.sizes();
    stats.counters.entries_written = (0..n)
        .map(|i| table[RelSet::single(i).bits() as usize].len() as u64)
        .sum();

    let ranks = par::ranks(n);
    for rank in &ranks[1..] {
        let ((), elapsed) = par::timed(|| {
            for &set in rank {
                let mut result =
                    merge_mask(query, model, &tabs, memory, c, strategy, &table, set, full);
                combos_examined += result.examined;
                combos_naive += result.naive;
                ordered_roots.append(&mut result.ordered);
                stats.counters.masks_expanded += 1;
                stats.counters.candidates_priced += result.examined;
                stats.counters.entries_written += result.merged.len() as u64;
                table[set.bits() as usize] = result.merged;
            }
        });
        stats.rank_wall_ns.push(elapsed);
    }

    let result = finalize_topc(
        query,
        model,
        &tabs,
        memory,
        c,
        &table,
        ordered_roots,
        combos_examined,
        combos_naive,
    )?;
    Ok((result, stats))
}

/// Rank-parallel [`top_c_plans`]: each rank of the subset lattice merges
/// as one wavefront. Plans, costs, and both combination counters are
/// identical to the serial run — per-mask counts are accumulated in mask
/// order by the ordered gather. Queries below the parallel cutoff run
/// serially.
pub fn top_c_plans_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: f64,
    c: usize,
    strategy: MergeStrategy,
    par: &Parallelism,
) -> Result<TopCResult, CoreError> {
    Ok(top_c_plans_with_stats_par(query, model, memory, c, strategy, par)?.0)
}

/// [`top_c_plans_par`], also returning the search-space [`OptStats`]. The
/// counters are identical to [`top_c_plans_with_stats`]'s.
pub fn top_c_plans_with_stats_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: f64,
    c: usize,
    strategy: MergeStrategy,
    par: &Parallelism,
) -> Result<(TopCResult, OptStats), CoreError> {
    let n = query.n();
    if !par.use_parallel(n) {
        return top_c_plans_with_stats(query, model, memory, c, strategy);
    }
    validate_topc(memory, c)?;
    let full = query.all();
    let tabs = QueryTables::new(query);
    let mut table: Vec<Vec<TcEntry>> = vec![Vec::new(); (full.bits() + 1) as usize];
    let mut combos_examined = 0u64;
    let mut combos_naive = 0u64;
    let mut ordered_roots: Vec<TcEntry> = Vec::new();

    seed_access_lists(query, c, &mut table);

    let mut stats = OptStats::new("topc", n);
    stats.precompute = tabs.sizes();
    stats.counters.entries_written = (0..n)
        .map(|i| table[RelSet::single(i).bits() as usize].len() as u64)
        .sum();

    let ranks = par::ranks(n);
    for rank in &ranks[1..] {
        let (results, elapsed) = par::timed(|| {
            par::map_indexed(par, rank.len(), |i| {
                merge_mask(
                    query, model, &tabs, memory, c, strategy, &table, rank[i], full,
                )
            })
        });
        stats.rank_wall_ns.push(elapsed);
        for (set, mut result) in rank.iter().zip(results) {
            combos_examined += result.examined;
            combos_naive += result.naive;
            ordered_roots.append(&mut result.ordered);
            stats.counters.masks_expanded += 1;
            stats.counters.candidates_priced += result.examined;
            stats.counters.entries_written += result.merged.len() as u64;
            table[set.bits() as usize] = result.merged;
        }
    }

    let result = finalize_topc(
        query,
        model,
        &tabs,
        memory,
        c,
        &table,
        ordered_roots,
        combos_examined,
        combos_naive,
    )?;
    Ok((result, stats))
}

/// Proposition 3.1's bound on combinations per merge: `c + c·ln c`.
pub fn frontier_bound(c: usize) -> f64 {
    let cf = c as f64;
    cf + cf * cf.ln().max(0.0)
}

/// The Proposition 3.1 frontier merge on bare cost lists: given two
/// cost-sorted lists, returns the `c` smallest pairwise sums and the number
/// of combinations examined. Only pairs on the frontier `i·k ≤ c`
/// (1-indexed) are touched — at most `c + c·ln c` of them — versus the
/// naive `|left|·|right|`.
///
/// This is the primitive experiment X4 measures; the DP above applies it
/// with the access list as the second input.
pub fn frontier_merge(left: &[f64], right: &[f64], c: usize) -> (Vec<f64>, u64) {
    debug_assert!(left.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(right.windows(2).all(|w| w[0] <= w[1]));
    let mut sums = Vec::new();
    let mut examined = 0u64;
    for (k, &r) in right.iter().enumerate() {
        if (k + 1) > c {
            break;
        }
        for (i, &l) in left.iter().enumerate() {
            if (i + 1) * (k + 1) > c {
                break;
            }
            examined += 1;
            sums.push(l + r);
        }
    }
    sums.sort_by(f64::total_cmp);
    sums.truncate(c);
    (sums, examined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::plan_cost_at;
    use crate::exhaustive;
    use crate::lsc;
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};

    fn query(n: usize) -> JoinQuery {
        let relations = (0..n)
            .map(|i| Relation::new(format!("r{i}"), 120.0 * (i + 1) as f64, 1e4))
            .collect();
        let predicates = (0..n - 1)
            .map(|i| JoinPred {
                left: i,
                right: i + 1,
                selectivity: 0.003,
                key: KeyId(i),
            })
            .collect();
        JoinQuery::new(relations, predicates, None).unwrap()
    }

    #[test]
    fn top_1_matches_lsc() {
        let q = query(4);
        let model = PaperCostModel;
        for memory in [15.0, 80.0, 600.0] {
            let top = top_c_plans(&q, &model, memory, 1, MergeStrategy::Frontier).unwrap();
            let single = lsc::optimize_at(&q, &model, memory).unwrap();
            assert_eq!(top.plans.len(), 1);
            assert!((top.plans[0].cost - single.cost).abs() < 1e-9 * single.cost.max(1.0));
        }
    }

    #[test]
    fn costs_are_sorted_and_match_evaluator() {
        let q = query(4);
        let model = PaperCostModel;
        let memory = 90.0;
        let top = top_c_plans(&q, &model, memory, 5, MergeStrategy::Frontier).unwrap();
        assert!(top.plans.windows(2).all(|w| w[0].cost <= w[1].cost));
        for p in &top.plans {
            p.plan.validate(&q).unwrap();
            let evaluated = plan_cost_at(&q, &model, &p.plan, memory);
            assert!(
                (p.cost - evaluated).abs() < 1e-6 * evaluated.max(1.0),
                "top-c cost {} vs evaluator {evaluated}",
                p.cost
            );
        }
    }

    #[test]
    fn frontier_equals_naive_merge() {
        // Proposition 3.1: the frontier loses nothing.
        let q = query(5);
        let model = PaperCostModel;
        for c in [2, 3, 8] {
            let frontier = top_c_plans(&q, &model, 70.0, c, MergeStrategy::Frontier).unwrap();
            let naive = top_c_plans(&q, &model, 70.0, c, MergeStrategy::Naive).unwrap();
            let fc: Vec<f64> = frontier.plans.iter().map(|p| p.cost).collect();
            let nc: Vec<f64> = naive.plans.iter().map(|p| p.cost).collect();
            assert_eq!(fc.len(), nc.len());
            for (a, b) in fc.iter().zip(&nc) {
                assert!((a - b).abs() < 1e-9 * a.max(1.0), "c={c}: {fc:?} vs {nc:?}");
            }
            assert!(frontier.combos_examined <= naive.combos_examined);
        }
    }

    #[test]
    fn top_c_contains_true_kth_best() {
        // Against exhaustive enumeration: the top-c list must equal the c
        // cheapest left-deep plans (by cost value).
        let q = query(3);
        let model = PaperCostModel;
        let memory = 45.0;
        let c = 4;
        let top = top_c_plans(&q, &model, memory, c, MergeStrategy::Frontier).unwrap();
        let mut all: Vec<f64> = exhaustive::enumerate_left_deep(&q)
            .iter()
            .map(|p| plan_cost_at(&q, &model, p, memory))
            .collect();
        all.sort_by(f64::total_cmp);
        for (i, p) in top.plans.iter().enumerate() {
            assert!(
                (p.cost - all[i]).abs() < 1e-9 * all[i].max(1.0),
                "rank {i}: {} vs {}",
                p.cost,
                all[i]
            );
        }
    }

    #[test]
    fn top_1_matches_lsc_with_required_order() {
        // Regression: the ordered candidate pool must let a final SM-on-key
        // plan win even when it is outside the unordered top-c.
        let q = JoinQuery::new(
            vec![
                Relation::new("a", 5_000.0, 5e4),
                Relation::new("b", 900.0, 9e3),
                Relation::new("c", 20_000.0, 2e5),
            ],
            vec![
                JoinPred {
                    left: 0,
                    right: 1,
                    selectivity: 1e-3,
                    key: KeyId(0),
                },
                JoinPred {
                    left: 1,
                    right: 2,
                    selectivity: 1e-4,
                    key: KeyId(1),
                },
            ],
            Some(KeyId(1)),
        )
        .unwrap();
        let model = PaperCostModel;
        for memory in [12.0, 95.0, 800.0, 6000.0] {
            let top = top_c_plans(&q, &model, memory, 1, MergeStrategy::Frontier).unwrap();
            let single = lsc::optimize_at(&q, &model, memory).unwrap();
            assert!(
                (top.plans[0].cost - single.cost).abs() < 1e-9 * single.cost.max(1.0),
                "M={memory}: top-1 {} vs LSC {}",
                top.plans[0].cost,
                single.cost
            );
        }
    }

    #[test]
    fn ordered_query_tops_satisfy_order() {
        let mut preds = vec![JoinPred {
            left: 0,
            right: 1,
            selectivity: 0.003,
            key: KeyId(0),
        }];
        preds.push(JoinPred {
            left: 1,
            right: 2,
            selectivity: 0.003,
            key: KeyId(1),
        });
        let q = JoinQuery::new(
            vec![
                Relation::new("a", 100.0, 1e3),
                Relation::new("b", 300.0, 3e3),
                Relation::new("c", 200.0, 2e3),
            ],
            preds,
            Some(KeyId(1)),
        )
        .unwrap();
        let top = top_c_plans(&q, &PaperCostModel, 40.0, 6, MergeStrategy::Frontier).unwrap();
        for p in &top.plans {
            assert_eq!(p.plan.output_order(), Some(KeyId(1)));
        }
    }

    #[test]
    fn parallel_matches_serial_including_counters() {
        let q = query(7);
        let model = PaperCostModel;
        let par = Parallelism {
            threads: 4,
            sequential_cutoff: 2,
        };
        for strategy in [MergeStrategy::Frontier, MergeStrategy::Naive] {
            let serial = top_c_plans(&q, &model, 70.0, 5, strategy).unwrap();
            let parallel = top_c_plans_par(&q, &model, 70.0, 5, strategy, &par).unwrap();
            assert_eq!(serial.plans.len(), parallel.plans.len());
            for (s, p) in serial.plans.iter().zip(&parallel.plans) {
                assert_eq!(s.cost.to_bits(), p.cost.to_bits());
                assert_eq!(s.plan, p.plan);
            }
            assert_eq!(serial.combos_examined, parallel.combos_examined);
            assert_eq!(serial.combos_naive, parallel.combos_naive);
        }
    }

    #[test]
    fn stats_track_combo_counters_identically_across_paths() {
        let q = query(6);
        let model = PaperCostModel;
        let (serial, sstats) =
            top_c_plans_with_stats(&q, &model, 70.0, 4, MergeStrategy::Frontier).unwrap();
        assert_eq!(sstats.counters.candidates_priced, serial.combos_examined);
        assert_eq!(sstats.counters.masks_expanded, (1 << 6) - 1 - 6);
        assert!(sstats.counters.entries_written > 0);
        let par = Parallelism {
            threads: 4,
            sequential_cutoff: 2,
        };
        let (parallel, pstats) =
            top_c_plans_with_stats_par(&q, &model, 70.0, 4, MergeStrategy::Frontier, &par).unwrap();
        assert_eq!(sstats.counters, pstats.counters);
        assert_eq!(sstats.precompute, pstats.precompute);
        for (s, p) in serial.plans.iter().zip(&parallel.plans) {
            assert_eq!(s.cost.to_bits(), p.cost.to_bits());
            assert_eq!(s.plan, p.plan);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let q = query(3);
        assert!(top_c_plans(&q, &PaperCostModel, 50.0, 0, MergeStrategy::Frontier).is_err());
        assert!(top_c_plans(&q, &PaperCostModel, -5.0, 2, MergeStrategy::Frontier).is_err());
    }

    #[test]
    fn frontier_bound_formula() {
        assert_eq!(frontier_bound(1), 1.0);
        assert!((frontier_bound(8) - (8.0 + 8.0 * 8f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn frontier_merge_matches_naive_top_c() {
        // Proposition 3.1 on bare lists: the frontier's top-c sums equal
        // the naive all-pairs top-c, while examining far fewer pairs.
        let left: Vec<f64> = (0..32).map(|i| (i * i) as f64).collect();
        let right: Vec<f64> = (0..32).map(|i| 3.0 * i as f64 + 0.5).collect();
        for c in [1, 4, 8, 16, 32] {
            let (fast, examined) = frontier_merge(&left, &right, c);
            let mut naive: Vec<f64> = left
                .iter()
                .flat_map(|l| right.iter().map(move |r| l + r))
                .collect();
            naive.sort_by(f64::total_cmp);
            naive.truncate(c);
            assert_eq!(fast, naive, "c = {c}");
            assert!(
                examined as f64 <= frontier_bound(c) + 1e-9,
                "c = {c}: {examined}"
            );
            if c >= 4 {
                assert!(examined < (left.len() * right.len()) as u64);
            }
        }
    }
}
