//! Top-`c` plan enumeration per parameter setting (§3.3).
//!
//! The System R DP is modified to retain the `c` best left-deep plans at
//! every dag node instead of one. When combining the top-`c` subplans for
//! `S_j` with the (cost-sorted) access paths for `A_j` under one join
//! method, the join-step cost is the same for every combination — "all the
//! c variants of each input have the very same properties" — so only the
//! *sum of input costs* differentiates combinations, and Proposition 3.1
//! shows the top `c` sums lie on the frontier `i·k ≤ c` of the sorted×sorted
//! grid: at most `c + c·ln c` combinations need examining instead of `c²`.
//!
//! This module records how many combinations each merge examined so that
//! experiment X4 can compare the measured count against the bound.

use crate::dp::Optimized;
use crate::error::CoreError;
use crate::evaluate::{access_choices, access_step, join_step, sort_step};
use lec_cost::{CostModel, JoinMethod};
use lec_plan::{JoinQuery, Plan, RelSet};

/// How to merge the sorted input lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Proposition 3.1's frontier: only pairs with `i · k ≤ c` (1-indexed).
    Frontier,
    /// All `c · k` pairs (the naive reference).
    Naive,
}

/// Result of the top-`c` search at one fixed memory value.
#[derive(Debug, Clone)]
pub struct TopCResult {
    /// Up to `c` best full-query plans, sorted by cost (plans that violate a
    /// required order are completed with a root sort).
    pub plans: Vec<Optimized>,
    /// Total `(subplan, access)` combinations examined across all merges.
    pub combos_examined: u64,
    /// What the naive strategy would have examined.
    pub combos_naive: u64,
}

#[derive(Debug, Clone)]
struct TcEntry {
    cost: f64,
    plan: Plan,
}

/// Computes the top-`c` left-deep plans for one fixed memory value
/// (Theorem 3.2: roughly a constant factor over the single-plan DP).
pub fn top_c_plans<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: f64,
    c: usize,
    strategy: MergeStrategy,
) -> Result<TopCResult, CoreError> {
    if c == 0 {
        return Err(CoreError::BadParameter("top-c needs c >= 1".into()));
    }
    if !(memory.is_finite() && memory > 0.0) {
        return Err(CoreError::BadParameter(format!("bad memory {memory}")));
    }
    let n = query.n();
    let full = query.all();
    let mut table: Vec<Vec<TcEntry>> = vec![Vec::new(); (full.bits() + 1) as usize];
    let mut combos_examined = 0u64;
    let mut combos_naive = 0u64;
    // Full-set candidates whose final join already produces the required
    // order: kept separately so sort completion competes fairly (same
    // two-way comparison the single-plan DP makes at the root).
    let mut ordered_roots: Vec<TcEntry> = Vec::new();

    // Depth 1: all access paths, sorted by cost (there are at most 2, so
    // the top-c list is just all of them).
    for i in 0..n {
        let rel = query.relation(i);
        let mut entries: Vec<TcEntry> = access_choices(rel)
            .into_iter()
            .map(|method| TcEntry {
                cost: access_step(rel, method).0,
                plan: Plan::Access { rel: i, method },
            })
            .collect();
        entries.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        entries.truncate(c);
        table[RelSet::single(i).bits() as usize] = entries;
    }

    for set in RelSet::all_subsets(n) {
        if set.len() < 2 {
            continue;
        }
        let out = query.result_pages(set);
        let mut merged: Vec<TcEntry> = Vec::new();
        for j in set.iter() {
            let sub = set.remove(j);
            let left_out = query.result_pages(sub);
            let key = query.join_key_between(sub, RelSet::single(j));
            let access: Vec<TcEntry> = table[RelSet::single(j).bits() as usize].clone();
            // Split borrows: read the sub list immutably via index math.
            let left_list = &table[sub.bits() as usize];
            if left_list.is_empty() {
                continue;
            }
            for method in JoinMethod::ALL {
                // One cost-formula evaluation per (j, method): identical for
                // every input combination.
                let step = join_step(model, method, left_out, access_step(
                    query.relation(j),
                    match access[0].plan {
                        Plan::Access { method, .. } => method,
                        _ => unreachable!("depth-1 entries are accesses"),
                    },
                ).1, out, memory);
                combos_naive += (left_list.len() * access.len()) as u64;
                for (k, acc) in access.iter().enumerate() {
                    for (i, left) in left_list.iter().enumerate() {
                        if strategy == MergeStrategy::Frontier && (i + 1) * (k + 1) > c {
                            break;
                        }
                        combos_examined += 1;
                        let entry = TcEntry {
                            cost: left.cost + acc.cost + step,
                            plan: Plan::join(
                                left.plan.clone(),
                                acc.plan.clone(),
                                method,
                                key,
                            ),
                        };
                        if set == full
                            && method == JoinMethod::SortMerge
                            && query.required_order().is_some()
                            && key == query.required_order()
                        {
                            ordered_roots.push(entry.clone());
                        }
                        merged.push(entry);
                    }
                }
            }
        }
        merged.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        merged.truncate(c);
        table[set.bits() as usize] = merged;
    }

    let mut roots = table[full.bits() as usize].clone();
    if roots.is_empty() {
        return Err(CoreError::NoPlanFound);
    }
    // Complete plans that miss a required order with a root sort, then let
    // the naturally ordered candidates (final SM on the required key)
    // compete; without this second pool an ordered plan that ranks below
    // the unordered top-c could still beat every completed candidate.
    if let Some(required) = query.required_order() {
        for entry in &mut roots {
            if entry.plan.output_order() != Some(required) {
                entry.cost += sort_step(model, out_pages(query), memory);
                entry.plan = Plan::sort(std::mem::replace(&mut entry.plan, Plan::scan(0)), required);
            }
        }
        ordered_roots.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        ordered_roots.truncate(c);
        for candidate in ordered_roots {
            if !roots.iter().any(|r| r.plan == candidate.plan) {
                roots.push(candidate);
            }
        }
        roots.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        roots.truncate(c);
    }
    Ok(TopCResult {
        plans: roots
            .into_iter()
            .map(|e| Optimized {
                plan: e.plan,
                cost: e.cost,
            })
            .collect(),
        combos_examined,
        combos_naive,
    })
}

fn out_pages(query: &JoinQuery) -> f64 {
    query.result_pages(query.all())
}

/// Proposition 3.1's bound on combinations per merge: `c + c·ln c`.
pub fn frontier_bound(c: usize) -> f64 {
    let cf = c as f64;
    cf + cf * cf.ln().max(0.0)
}

/// The Proposition 3.1 frontier merge on bare cost lists: given two
/// cost-sorted lists, returns the `c` smallest pairwise sums and the number
/// of combinations examined. Only pairs on the frontier `i·k ≤ c`
/// (1-indexed) are touched — at most `c + c·ln c` of them — versus the
/// naive `|left|·|right|`.
///
/// This is the primitive experiment X4 measures; the DP above applies it
/// with the access list as the second input.
pub fn frontier_merge(left: &[f64], right: &[f64], c: usize) -> (Vec<f64>, u64) {
    debug_assert!(left.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(right.windows(2).all(|w| w[0] <= w[1]));
    let mut sums = Vec::new();
    let mut examined = 0u64;
    for (k, &r) in right.iter().enumerate() {
        if (k + 1) > c {
            break;
        }
        for (i, &l) in left.iter().enumerate() {
            if (i + 1) * (k + 1) > c {
                break;
            }
            examined += 1;
            sums.push(l + r);
        }
    }
    sums.sort_by(f64::total_cmp);
    sums.truncate(c);
    (sums, examined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::plan_cost_at;
    use crate::exhaustive;
    use crate::lsc;
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};

    fn query(n: usize) -> JoinQuery {
        let relations = (0..n)
            .map(|i| Relation::new(format!("r{i}"), 120.0 * (i + 1) as f64, 1e4))
            .collect();
        let predicates = (0..n - 1)
            .map(|i| JoinPred {
                left: i,
                right: i + 1,
                selectivity: 0.003,
                key: KeyId(i),
            })
            .collect();
        JoinQuery::new(relations, predicates, None).unwrap()
    }

    #[test]
    fn top_1_matches_lsc() {
        let q = query(4);
        let model = PaperCostModel;
        for memory in [15.0, 80.0, 600.0] {
            let top = top_c_plans(&q, &model, memory, 1, MergeStrategy::Frontier).unwrap();
            let single = lsc::optimize_at(&q, &model, memory).unwrap();
            assert_eq!(top.plans.len(), 1);
            assert!((top.plans[0].cost - single.cost).abs() < 1e-9 * single.cost.max(1.0));
        }
    }

    #[test]
    fn costs_are_sorted_and_match_evaluator() {
        let q = query(4);
        let model = PaperCostModel;
        let memory = 90.0;
        let top = top_c_plans(&q, &model, memory, 5, MergeStrategy::Frontier).unwrap();
        assert!(top.plans.windows(2).all(|w| w[0].cost <= w[1].cost));
        for p in &top.plans {
            p.plan.validate(&q).unwrap();
            let evaluated = plan_cost_at(&q, &model, &p.plan, memory);
            assert!(
                (p.cost - evaluated).abs() < 1e-6 * evaluated.max(1.0),
                "top-c cost {} vs evaluator {evaluated}",
                p.cost
            );
        }
    }

    #[test]
    fn frontier_equals_naive_merge() {
        // Proposition 3.1: the frontier loses nothing.
        let q = query(5);
        let model = PaperCostModel;
        for c in [2, 3, 8] {
            let frontier = top_c_plans(&q, &model, 70.0, c, MergeStrategy::Frontier).unwrap();
            let naive = top_c_plans(&q, &model, 70.0, c, MergeStrategy::Naive).unwrap();
            let fc: Vec<f64> = frontier.plans.iter().map(|p| p.cost).collect();
            let nc: Vec<f64> = naive.plans.iter().map(|p| p.cost).collect();
            assert_eq!(fc.len(), nc.len());
            for (a, b) in fc.iter().zip(&nc) {
                assert!((a - b).abs() < 1e-9 * a.max(1.0), "c={c}: {fc:?} vs {nc:?}");
            }
            assert!(frontier.combos_examined <= naive.combos_examined);
        }
    }

    #[test]
    fn top_c_contains_true_kth_best() {
        // Against exhaustive enumeration: the top-c list must equal the c
        // cheapest left-deep plans (by cost value).
        let q = query(3);
        let model = PaperCostModel;
        let memory = 45.0;
        let c = 4;
        let top = top_c_plans(&q, &model, memory, c, MergeStrategy::Frontier).unwrap();
        let mut all: Vec<f64> = exhaustive::enumerate_left_deep(&q)
            .iter()
            .map(|p| plan_cost_at(&q, &model, p, memory))
            .collect();
        all.sort_by(f64::total_cmp);
        for (i, p) in top.plans.iter().enumerate() {
            assert!(
                (p.cost - all[i]).abs() < 1e-9 * all[i].max(1.0),
                "rank {i}: {} vs {}",
                p.cost,
                all[i]
            );
        }
    }

    #[test]
    fn top_1_matches_lsc_with_required_order() {
        // Regression: the ordered candidate pool must let a final SM-on-key
        // plan win even when it is outside the unordered top-c.
        let q = JoinQuery::new(
            vec![
                Relation::new("a", 5_000.0, 5e4),
                Relation::new("b", 900.0, 9e3),
                Relation::new("c", 20_000.0, 2e5),
            ],
            vec![
                JoinPred { left: 0, right: 1, selectivity: 1e-3, key: KeyId(0) },
                JoinPred { left: 1, right: 2, selectivity: 1e-4, key: KeyId(1) },
            ],
            Some(KeyId(1)),
        )
        .unwrap();
        let model = PaperCostModel;
        for memory in [12.0, 95.0, 800.0, 6000.0] {
            let top = top_c_plans(&q, &model, memory, 1, MergeStrategy::Frontier).unwrap();
            let single = lsc::optimize_at(&q, &model, memory).unwrap();
            assert!(
                (top.plans[0].cost - single.cost).abs() < 1e-9 * single.cost.max(1.0),
                "M={memory}: top-1 {} vs LSC {}",
                top.plans[0].cost,
                single.cost
            );
        }
    }

    #[test]
    fn ordered_query_tops_satisfy_order() {
        let mut preds = vec![JoinPred {
            left: 0,
            right: 1,
            selectivity: 0.003,
            key: KeyId(0),
        }];
        preds.push(JoinPred {
            left: 1,
            right: 2,
            selectivity: 0.003,
            key: KeyId(1),
        });
        let q = JoinQuery::new(
            vec![
                Relation::new("a", 100.0, 1e3),
                Relation::new("b", 300.0, 3e3),
                Relation::new("c", 200.0, 2e3),
            ],
            preds,
            Some(KeyId(1)),
        )
        .unwrap();
        let top = top_c_plans(&q, &PaperCostModel, 40.0, 6, MergeStrategy::Frontier).unwrap();
        for p in &top.plans {
            assert_eq!(p.plan.output_order(), Some(KeyId(1)));
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let q = query(3);
        assert!(top_c_plans(&q, &PaperCostModel, 50.0, 0, MergeStrategy::Frontier).is_err());
        assert!(top_c_plans(&q, &PaperCostModel, -5.0, 2, MergeStrategy::Frontier).is_err());
    }

    #[test]
    fn frontier_bound_formula() {
        assert_eq!(frontier_bound(1), 1.0);
        assert!((frontier_bound(8) - (8.0 + 8.0 * 8f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn frontier_merge_matches_naive_top_c() {
        // Proposition 3.1 on bare lists: the frontier's top-c sums equal
        // the naive all-pairs top-c, while examining far fewer pairs.
        let left: Vec<f64> = (0..32).map(|i| (i * i) as f64).collect();
        let right: Vec<f64> = (0..32).map(|i| 3.0 * i as f64 + 0.5).collect();
        for c in [1, 4, 8, 16, 32] {
            let (fast, examined) = frontier_merge(&left, &right, c);
            let mut naive: Vec<f64> = left
                .iter()
                .flat_map(|l| right.iter().map(move |r| l + r))
                .collect();
            naive.sort_by(f64::total_cmp);
            naive.truncate(c);
            assert_eq!(fast, naive, "c = {c}");
            assert!(examined as f64 <= frontier_bound(c) + 1e-9, "c = {c}: {examined}");
            if c >= 4 {
                assert!(examined < (left.len() * right.len()) as u64);
            }
        }
    }
}
