#![warn(missing_docs)]

//! The LEC optimizer family — the paper's primary contribution.
//!
//! Given a [`lec_plan::JoinQuery`], a [`lec_cost::CostModel`] and a model of
//! the uncertain parameters, this crate finds evaluation plans:
//!
//! | Module | Paper anchor | What it does |
//! |--------|--------------|--------------|
//! | [`lsc`] | §2.2, Thm 2.1 | System R dynamic programming for one fixed parameter value — the **least specific cost** baseline |
//! | [`alg_a`] | §3.2 | Black-box: run LSC per memory bucket, pick the candidate of least expected cost |
//! | [`alg_b`] | §3.3, Prop 3.1 | Top-`c` plans per bucket via the frontier merge, then pick by expected cost |
//! | [`alg_c`] | §3.4–3.5, Thms 3.3/3.4 | DP directly on expected cost — the exact **LEC** plan, for static and dynamic (Markov) memory |
//! | [`alg_d`] | §3.6 | Multi-parameter: relation sizes and selectivities are distributions too; result-size distributions propagate with §3.6.3 rebucketing |
//! | [`exhaustive`] | — | Brute-force left-deep / bushy enumeration: ground truth for every theorem test |
//! | [`pareto`] | PODS 2002 | Pareto-frontier DP over cost *profiles*: exact for any monotone utility; plus the scalar utility DP and the counterexample showing it is unsound for non-linear utilities |
//! | [`rules`] | \[AHW15\]/PARQO | Rule-parameterized finalize over the frontier outputs: minmax regret, penalty-aware, CVaR — the `lec-rules` subsystem threaded through the optimizer |
//! | [`bucketing`] | §3.7 | Level-set bucketing: memory buckets placed at the cost formulas' discontinuities |
//! | [`bushy`] | §4 future work | Bushy-tree LEC dynamic programming (DPsub-style), exact under static memory |
//! | [`certificate`] | DESIGN.md §11 | (ε, δ) suboptimality certificates: bound a chosen plan against the sampled-interval optimum |
//! | [`voi`] | §2.3 / \[SBM93\] | Expected value of perfect information: when sampling to reduce uncertainty pays for itself |
//! | [`parametric`] | §3.2 / \[INSS92\] | Precompute LEC plans per scenario at compile time, re-cost and pick at start-up time |
//!
//! The shared machinery lives in [`env`] (static / Markov-dynamic memory
//! models), [`evaluate`] (costing *given* plans: per-value, expected,
//! profiles, distributions) and [`dp`] (the generic left-deep dynamic
//! program all scalar algorithms instantiate). The [`stats`] module is the
//! observability layer: every enumerator exposes `*_with_stats` variants
//! returning deterministic [`OptStats`] search counters alongside the plan.
//!
//! Two static-verification layers guard the family (DESIGN.md §7): every
//! optimizer funnels its winners through the [`verify`] debug hooks (the
//! `lec-plan` plan-IR verifier, compiled out in release builds), and the
//! [`soundness`] gate certifies that a utility distributes over cost
//! addition before admitting it to a DP entry point.
//!
//! ### Cost accounting
//!
//! Uniformly across optimizer and evaluator: every join and sort
//! materializes its output (the paper's §3.4 assumes no pipelining), join
//! and sort formulas own reading their inputs, and plain full scans are
//! therefore free at the leaves (selections materialize a filtered
//! intermediate; index scans pay a random-access premium).

pub mod alg_a;
pub mod alg_b;
pub mod alg_c;
pub mod alg_d;
pub mod bucketing;
pub mod bushy;
pub mod certificate;
pub mod dp;
pub mod env;
pub mod error;
pub mod evaluate;
pub mod exhaustive;
pub mod lsc;
pub mod par;
pub mod parametric;
pub mod pareto;
pub mod precompute;
pub mod rules;
pub mod soundness;
pub mod stats;
pub mod topc;
pub mod verify;
pub mod voi;

pub use certificate::{certify_plan, Certificate, QueryIntervals};
pub use dp::Optimized;
pub use env::{MemoryModel, PhaseDists};
pub use error::CoreError;
pub use evaluate::{cost_distribution_static, expected_cost, plan_cost_at};
pub use par::Parallelism;
pub use precompute::QueryTables;
pub use rules::{optimize_with_rule, RuleResult};
pub use stats::{CacheCounters, OptStats, PrecomputeSizes, ResilienceCounters, SearchCounters};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
