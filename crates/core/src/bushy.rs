//! Bushy-tree LEC optimization (§4's future-work direction).
//!
//! The paper's algorithms inherit System R's left-deep restriction; §4
//! lists bushy join trees as the main un-handled generalization. The
//! expected-cost objective doesn't care about tree shape — Theorem 3.3's
//! proof only uses additivity — so the same idea extends to the full
//! DPsub-style dynamic program: for every relation subset, try every
//! 2-partition into smaller subsets, pricing the join step in expectation.
//!
//! Phases: a bushy plan's joins still execute in post-order; under *static*
//! memory every phase shares one distribution and the DP below is exact
//! (verified against bushy exhaustive enumeration). Under *dynamic* memory
//! a subtree's phase indices depend on where it lands in the final plan, so
//! subset-DP state is insufficient; [`optimize`] therefore rejects dynamic
//! models rather than silently approximating.
//!
//! The `O(3^n)` submask enumeration parallelizes the same way as the
//! left-deep DP: subsets of equal cardinality are independent, so
//! [`optimize_par`] costs each rank of the lattice as one wavefront.

use crate::dp::Optimized;
use crate::env::MemoryModel;
use crate::error::CoreError;
use crate::par::{self, Parallelism};
use crate::precompute::QueryTables;
use crate::stats::OptStats;
use lec_cost::{AccessMethod, CostModel, JoinMethod};
use lec_plan::{JoinQuery, Plan, RelSet};
use lec_stats::Distribution;

#[derive(Debug, Clone, Copy)]
enum Choice {
    Access(AccessMethod),
    Join {
        left: RelSet,
        method: JoinMethod,
        /// Join orientation: when false the split's complement is the
        /// left input (matters for the asymmetric nested loop).
        left_first: bool,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    cost: f64,
    choice: Choice,
}

/// Prices every 2-partition of `set` against the frozen lower ranks and
/// returns the best entry, plus (at the full set, when an order is
/// required) the best split whose join is a sort-merge on the required
/// key. Shared by the serial sweep and the rank-parallel wavefront;
/// submask order and the strict-`<` winner rule fix the result
/// independently of scheduling.
// lec-lint: allow(panic-reachability) — DP induction: both halves of every split are priced in rank order before this set, and the candidate min covers at least one split
fn cost_mask_bushy<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    tabs: &QueryTables,
    mem: &Distribution,
    table: &[Option<Entry>],
    set: RelSet,
    full: RelSet,
) -> (Entry, Option<Entry>, u64) {
    let out = tabs.pages(set);
    let mut best: Option<Entry> = None;
    let mut best_ordered: Option<Entry> = None;
    let mut candidates = 0u64;
    // Enumerate 2-partitions: submasks containing the lowest member
    // (each unordered split once); both orientations are priced.
    let lowest = set.iter().next().expect("non-empty");
    let bits = set.bits();
    let rest = set.remove(lowest).bits();
    let mut sub = rest;
    loop {
        let left = RelSet::from_bits(sub | (1 << lowest));
        let right = RelSet::from_bits(bits & !left.bits());
        if !right.is_empty() {
            let le = table[left.bits() as usize].expect("computed");
            let re = table[right.bits() as usize].expect("computed");
            let (lp, rp) = (tabs.pages(left), tabs.pages(right));
            let key = query.join_key_between(left, right);
            for method in JoinMethod::ALL {
                for left_first in [true, false] {
                    let (a, b) = if left_first { (lp, rp) } else { (rp, lp) };
                    let step =
                        model.expected_join_step(method, a, b, out, mem.values(), mem.probs());
                    let cost = le.cost + re.cost + step;
                    candidates += 1;
                    let entry = Entry {
                        cost,
                        choice: Choice::Join {
                            left,
                            method,
                            left_first,
                        },
                    };
                    if best.is_none_or(|e| cost < e.cost) {
                        best = Some(entry);
                    }
                    if set == full
                        && method == JoinMethod::SortMerge
                        && query.required_order().is_some()
                        && key == query.required_order()
                        && best_ordered.is_none_or(|e| cost < e.cost)
                    {
                        best_ordered = Some(entry);
                    }
                }
            }
        }
        if sub == 0 {
            break;
        }
        sub = (sub - 1) & rest;
    }
    (
        best.expect("set has at least two members"),
        best_ordered,
        candidates,
    )
}

/// Plan reconstruction from backpointers.
// lec-lint: allow(panic-reachability) — plan_for only walks entries the forward pass has filled; singletons decompose to their only relation
fn plan_for(
    query: &JoinQuery,
    table: &[Option<Entry>],
    set: RelSet,
    override_root: Option<&Entry>,
) -> Plan {
    let entry = override_root
        .or(table[set.bits() as usize].as_ref())
        .expect("entry exists");
    match entry.choice {
        Choice::Access(method) => Plan::Access {
            rel: set.iter().next().expect("singleton"),
            method,
        },
        Choice::Join {
            left,
            method,
            left_first,
        } => {
            let right = RelSet::from_bits(set.bits() & !left.bits());
            let lp = plan_for(query, table, left, None);
            let rp = plan_for(query, table, right, None);
            let key = query.join_key_between(left, right);
            if left_first {
                Plan::join(lp, rp, method, key)
            } else {
                Plan::join(rp, lp, method, key)
            }
        }
    }
}

fn static_memory(memory: &MemoryModel) -> Result<&Distribution, CoreError> {
    match memory {
        MemoryModel::Static(mem) => Ok(mem),
        _ => Err(CoreError::BadParameter(
            "bushy LEC optimization supports static memory only \
             (phase indices are shape-dependent in bushy trees)"
                .into(),
        )),
    }
}

fn seed_singletons(tabs: &QueryTables, n: usize, table: &mut [Option<Entry>]) {
    for i in 0..n {
        let (cost, method, _) = tabs.access(i);
        table[RelSet::single(i).bits() as usize] = Some(Entry {
            cost,
            choice: Choice::Access(method),
        });
    }
}

fn finalize<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    tabs: &QueryTables,
    mem: &Distribution,
    table: &[Option<Entry>],
    best_ordered: Option<Entry>,
) -> Result<Optimized, CoreError> {
    let full = query.all();
    let root = table[full.bits() as usize]
        .as_ref()
        .ok_or(CoreError::NoPlanFound)?;
    let best = if query.required_order().is_some() {
        let out = tabs.pages(full);
        let sorted_cost = root.cost + model.expected_sort_step(out, mem.values(), mem.probs());
        match &best_ordered {
            Some(ord) if ord.cost <= sorted_cost => Optimized {
                plan: plan_for(query, table, full, Some(ord)),
                cost: ord.cost,
            },
            _ => {
                let key = query.required_order().expect("checked"); // lec-lint: allow(panic-reachability) — this arm only runs when required_order().is_some() held above
                Optimized {
                    plan: Plan::sort(plan_for(query, table, full, None), key),
                    cost: sorted_cost,
                }
            }
        }
    } else {
        Optimized {
            plan: plan_for(query, table, full, None),
            cost: root.cost,
        }
    };
    crate::verify::debug_verify_plan(query, &best.plan, best.cost);
    Ok(best)
}

/// Computes the least-expected-cost *bushy* plan under static memory.
pub fn optimize<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
) -> Result<Optimized, CoreError> {
    Ok(optimize_with_stats(query, model, memory)?.0)
}

/// [`optimize`], also returning the search-space [`OptStats`].
/// `candidates_priced` counts (split × orientation × join-method)
/// combinations — the `O(3^n)` term made observable.
pub fn optimize_with_stats<M: CostModel + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
) -> Result<(Optimized, OptStats), CoreError> {
    let mem = static_memory(memory)?;
    let n = query.n();
    let full = query.all();
    let tabs = QueryTables::new(query);
    let mut table: Vec<Option<Entry>> = vec![None; (full.bits() + 1) as usize];
    seed_singletons(&tabs, n, &mut table);

    let mut stats = OptStats::new("bushy", n);
    stats.precompute = tabs.sizes();
    stats.counters.entries_written = n as u64;

    let mut best_ordered: Option<Entry> = None;
    let ranks = par::ranks(n);
    for rank in &ranks[1..] {
        let ((), elapsed) = par::timed(|| {
            for &set in rank {
                let (best, ordered, candidates) =
                    cost_mask_bushy(query, model, &tabs, mem, &table, set, full);
                table[set.bits() as usize] = Some(best);
                if let Some(ord) = ordered {
                    best_ordered = Some(ord);
                }
                stats.counters.masks_expanded += 1;
                stats.counters.candidates_priced += candidates;
                stats.counters.entries_written += 1;
            }
        });
        stats.rank_wall_ns.push(elapsed);
    }

    let best = finalize(query, model, &tabs, mem, &table, best_ordered)?;
    Ok((best, stats))
}

/// Rank-parallel [`optimize`]: the `O(3^n)` split enumeration is grouped
/// by subset cardinality and each rank runs as one wavefront. Bit-identical
/// to the serial result; queries below the parallel cutoff run serially.
pub fn optimize_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    par: &Parallelism,
) -> Result<Optimized, CoreError> {
    Ok(optimize_with_stats_par(query, model, memory, par)?.0)
}

/// [`optimize_par`], also returning the search-space [`OptStats`]. The
/// counters are identical to [`optimize_with_stats`]'s.
pub fn optimize_with_stats_par<M: CostModel + Sync + ?Sized>(
    query: &JoinQuery,
    model: &M,
    memory: &MemoryModel,
    par: &Parallelism,
) -> Result<(Optimized, OptStats), CoreError> {
    let n = query.n();
    if !par.use_parallel(n) {
        return optimize_with_stats(query, model, memory);
    }
    let mem = static_memory(memory)?;
    let full = query.all();
    let tabs = QueryTables::new(query);
    let mut table: Vec<Option<Entry>> = vec![None; (full.bits() + 1) as usize];
    seed_singletons(&tabs, n, &mut table);

    let mut stats = OptStats::new("bushy", n);
    stats.precompute = tabs.sizes();
    stats.counters.entries_written = n as u64;

    let mut best_ordered: Option<Entry> = None;
    let ranks = par::ranks(n);
    for rank in &ranks[1..] {
        let (results, elapsed) = par::timed(|| {
            par::map_indexed(par, rank.len(), |i| {
                cost_mask_bushy(query, model, &tabs, mem, &table, rank[i], full)
            })
        });
        stats.rank_wall_ns.push(elapsed);
        for (set, (best, ordered, candidates)) in rank.iter().zip(results) {
            table[set.bits() as usize] = Some(best);
            if let Some(ord) = ordered {
                best_ordered = Some(ord);
            }
            stats.counters.masks_expanded += 1;
            stats.counters.candidates_priced += candidates;
            stats.counters.entries_written += 1;
        }
    }

    let best = finalize(query, model, &tabs, mem, &table, best_ordered)?;
    Ok((best, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::expected_cost;
    use crate::{alg_c, exhaustive};
    use lec_cost::PaperCostModel;
    use lec_plan::{JoinPred, KeyId, Relation};
    use lec_stats::{Distribution, MarkovChain};

    fn query(n: usize, seed: u64, star: bool) -> JoinQuery {
        let mut state = seed.wrapping_mul(0x5851F42D4C957F2D).wrapping_add(7);
        let mut next = || {
            state = state
                .wrapping_mul(0x5851F42D4C957F2D)
                .wrapping_add(0x14057B7EF767814F);
            ((state >> 33) % 9000 + 40) as f64
        };
        let relations = (0..n)
            .map(|i| Relation::new(format!("r{i}"), next(), 1e5))
            .collect();
        let predicates = (0..n - 1)
            .map(|i| JoinPred {
                left: if star { 0 } else { i },
                right: i + 1,
                selectivity: 1e-3,
                key: KeyId(i),
            })
            .collect();
        JoinQuery::new(relations, predicates, Some(KeyId(n - 2))).unwrap()
    }

    fn memory() -> MemoryModel {
        MemoryModel::Static(Distribution::new([(15.0, 0.3), (90.0, 0.4), (1200.0, 0.3)]).unwrap())
    }

    #[test]
    fn bushy_dp_matches_bushy_exhaustive() {
        for seed in 0..5 {
            for star in [false, true] {
                let q = query(4, seed, star);
                let mem = memory();
                let dp = optimize(&q, &PaperCostModel, &mem).unwrap();
                let phases = mem.table(q.n()).unwrap();
                let truth = exhaustive::exhaustive_lec_bushy(&q, &PaperCostModel, &phases).unwrap();
                assert!(
                    (dp.cost - truth.cost).abs() <= 1e-6 * truth.cost,
                    "seed {seed} star {star}: dp {} vs exhaustive {}",
                    dp.cost,
                    truth.cost
                );
                dp.plan.validate(&q).unwrap();
                // DP cost is self-consistent with the evaluator.
                let scored = expected_cost(&q, &PaperCostModel, &dp.plan, &phases);
                assert!((dp.cost - scored).abs() <= 1e-6 * scored.max(1.0));
            }
        }
    }

    #[test]
    fn bushy_never_worse_than_left_deep() {
        for seed in 0..6 {
            let q = query(5, 100 + seed, seed % 2 == 0);
            let mem = memory();
            let bushy = optimize(&q, &PaperCostModel, &mem).unwrap();
            let left_deep = alg_c::optimize(&q, &PaperCostModel, &mem).unwrap();
            assert!(
                bushy.cost <= left_deep.cost + 1e-9 * left_deep.cost,
                "seed {seed}: bushy {} vs left-deep {}",
                bushy.cost,
                left_deep.cost
            );
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let par = Parallelism {
            threads: 3,
            sequential_cutoff: 2,
        };
        for seed in 0..4 {
            let q = query(6, 40 + seed, seed % 2 == 0);
            let mem = memory();
            let serial = optimize(&q, &PaperCostModel, &mem).unwrap();
            let parallel = optimize_par(&q, &PaperCostModel, &mem, &par).unwrap();
            assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits());
            assert_eq!(serial.plan, parallel.plan);
        }
    }

    #[test]
    fn stats_count_splits_identically_across_paths() {
        let q = query(6, 11, false);
        let mem = memory();
        let (serial, sstats) = optimize_with_stats(&q, &PaperCostModel, &mem).unwrap();
        // Σ over masks of (2-partitions × 2 orientations × 3 methods):
        // the number of ordered splits of the lattice is 3^n - 2^(n+1) + 1,
        // and each ordered split is one (orientation) candidate per method.
        let n = 6u32;
        let ordered_splits = 3u64.pow(n) - 2u64.pow(n + 1) + 1;
        assert_eq!(sstats.counters.candidates_priced, ordered_splits * 3);
        assert_eq!(sstats.counters.masks_expanded, (1 << n) - 1 - n as u64);
        let par = Parallelism {
            threads: 3,
            sequential_cutoff: 2,
        };
        let (parallel, pstats) = optimize_with_stats_par(&q, &PaperCostModel, &mem, &par).unwrap();
        assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits());
        assert_eq!(serial.plan, parallel.plan);
        assert_eq!(sstats.counters, pstats.counters);
        assert_eq!(sstats.precompute, pstats.precompute);
    }

    #[test]
    fn rejects_dynamic_memory() {
        let q = query(3, 0, false);
        let chain = MarkovChain::random_walk(vec![10.0, 100.0], 0.5).unwrap();
        let mem = MemoryModel::dynamic(chain, vec![0.5, 0.5]).unwrap();
        assert!(matches!(
            optimize(&q, &PaperCostModel, &mem),
            Err(CoreError::BadParameter(_))
        ));
        let par = Parallelism::auto();
        assert!(matches!(
            optimize_par(&q, &PaperCostModel, &mem, &par),
            Err(CoreError::BadParameter(_))
        ));
    }

    #[test]
    fn single_relation_and_pair() {
        let q = JoinQuery::new(vec![Relation::new("only", 50.0, 1e3)], vec![], None).unwrap();
        let opt = optimize(&q, &PaperCostModel, &memory()).unwrap();
        assert_eq!(opt.plan, Plan::scan(0));
        // For two relations, bushy == left-deep by construction.
        let q2 = query(2, 3, false);
        let mem = memory();
        let b = optimize(&q2, &PaperCostModel, &mem).unwrap();
        let l = alg_c::optimize(&q2, &PaperCostModel, &mem).unwrap();
        assert!((b.cost - l.cost).abs() <= 1e-9 * l.cost);
    }
}
