//! Debug-build verification hooks over the plan-IR verifier.
//!
//! Every optimizer in the family funnels its winning plan(s) through these
//! functions just before returning. Under `debug_assertions` they run
//! [`lec_plan::verify_plan`] / [`lec_plan::verify_costs`] /
//! [`lec_plan::verify_frontier`] and panic with the verifier's diagnosis on
//! failure; in release builds they compile to nothing, so the hot path pays
//! zero cost (EXPERIMENTS.md measures with the hooks compiled out).
//!
//! `lec-serve` does *not* rely on these: it verifies every served plan
//! unconditionally (see `ServeConfig::verify_plans`).

use lec_plan::{JoinQuery, Plan};

/// Verify an emitted `(plan, cost)` pair against its query in debug builds.
///
/// # Panics
///
/// In debug builds, when the plan violates a plan-IR invariant or the cost
/// is non-finite/negative — both mean an optimizer bug, never bad input.
#[inline]
// lec-lint: allow(panic-reachability) — a verification failure here is a found optimizer bug; debug builds must abort loudly at the emission point
pub fn debug_verify_plan(query: &JoinQuery, plan: &Plan, cost: f64) {
    #[cfg(debug_assertions)]
    {
        if let Err(e) = lec_plan::verify_plan(plan, query) {
            panic!("optimizer emitted an invalid plan: {e}\nplan: {plan:?}");
        }
        if let Err(e) = lec_plan::verify_costs("emitted", &[cost]) {
            panic!("optimizer emitted a bad cost: {e}\nplan: {plan:?}");
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (query, plan, cost);
    }
}

/// Verify a root Pareto frontier (mutual nondominance, finite nonnegative
/// costs) in debug builds.
///
/// # Panics
///
/// In debug builds, when some entry is dominated by another or carries a
/// non-finite/negative cost.
#[inline]
// lec-lint: allow(panic-reachability) — a verification failure here is a found optimizer bug; debug builds must abort loudly at the emission point
pub fn debug_verify_frontier(points: &[impl AsRef<[f64]>]) {
    #[cfg(debug_assertions)]
    {
        if let Err(e) = lec_plan::verify_frontier(points) {
            panic!("optimizer emitted an invalid Pareto frontier: {e}");
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = points;
    }
}
