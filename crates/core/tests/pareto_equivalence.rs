//! Properties of the Pareto-frontier utility DP.
//!
//! Two promises are checked over randomized small queries:
//!
//! * **Exactness** — `pareto::optimize` matches the brute-force
//!   [`lec_core::pareto::exhaustive_utility`] optimum for every monotone
//!   utility implemented (`Linear`, risk-averse and risk-seeking
//!   `Exponential`, and `Deadline`), as Theorem-level correctness of the
//!   profile DP requires.
//! * **Renumbering invariance** — the surviving root frontier is a
//!   property of the *query*, not of the relation numbering: permuting
//!   relation indices (and remapping predicates accordingly) must yield
//!   the same set of cost profiles. This is the observable face of the
//!   order-independent dominance fix: with the old epsilon-tolerant
//!   `dominates`, near-tied profiles survived or died depending on the
//!   order the enumeration happened to reach them in, and renumbering
//!   changed exactly that order.
//!
//! Profiles are compared after sorting with a small *relative* tolerance:
//! renumbering reorders the floating-point products inside
//! `result_pages`, so logically identical costs can differ in the last
//! few ULPs.

use lec_core::pareto;
use lec_cost::PaperCostModel;
use lec_plan::{JoinPred, JoinQuery, KeyId, Relation};
use lec_stats::{Distribution, Utility};
use proptest::prelude::*;

/// Deterministic pseudo-random query parts: per-relation page counts and
/// chain or star predicates. Generated *before* any renumbering so the
/// same seed describes the same logical query under every permutation.
fn query_parts(star: bool, n: usize, seed: u64) -> (Vec<f64>, Vec<(usize, usize, f64)>) {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(0x5851F42D4C957F2D)
            .wrapping_add(0x14057B7EF767814F);
        state >> 33
    };
    let pages: Vec<f64> = (0..n).map(|_| (next() % 6000 + 60) as f64).collect();
    let preds: Vec<(usize, usize, f64)> = (0..n - 1)
        .map(|i| {
            let sel = (next() % 900 + 10) as f64 * 1e-5;
            if star {
                (0, i + 1, sel)
            } else {
                (i, i + 1, sel)
            }
        })
        .collect();
    (pages, preds)
}

/// Builds the query with relation `i` renumbered to `perm[i]`. Key ids
/// and predicate order are left alone, so the logical query — join graph,
/// sizes, required order — is unchanged.
fn build_permuted(
    parts: &(Vec<f64>, Vec<(usize, usize, f64)>),
    perm: &[usize],
    ordered: bool,
) -> JoinQuery {
    let (pages, preds) = parts;
    let n = pages.len();
    let mut rel_pages = vec![0.0; n];
    for (i, &p) in pages.iter().enumerate() {
        rel_pages[perm[i]] = p;
    }
    let relations = rel_pages
        .iter()
        .enumerate()
        .map(|(i, &p)| Relation::new(format!("r{i}"), p, p * 40.0))
        .collect();
    let predicates = preds
        .iter()
        .enumerate()
        .map(|(k, &(l, r, sel))| JoinPred {
            left: perm[l],
            right: perm[r],
            selectivity: sel,
            key: KeyId(k),
        })
        .collect();
    let required = ordered.then(|| KeyId(preds.len() - 1));
    JoinQuery::new(relations, predicates, required).expect("valid query")
}

fn identity(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Rotation composed with a front swap: hits every index for rot > 0.
fn permutation(n: usize, rot: usize, swap: bool) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
    if swap && n > 1 {
        perm.swap(0, n - 1);
    }
    perm
}

fn memory() -> Distribution {
    Distribution::new([(15.0, 0.25), (70.0, 0.35), (450.0, 0.25), (2200.0, 0.15)]).unwrap()
}

fn close(a: f64, b: f64, rel_tol: f64) -> bool {
    (a - b).abs() <= rel_tol * a.abs().max(b.abs()).max(1e-9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The profile DP is exact: it matches brute force for every
    /// implemented utility family on random 3–4 relation queries.
    #[test]
    fn pareto_matches_exhaustive_for_every_utility(
        star in proptest::bool::ANY,
        n in 3usize..=4,
        seed in 0u64..1_000_000,
        ordered in proptest::bool::ANY,
        gamma in 1e-6f64..1e-4,
    ) {
        let parts = query_parts(star, n, seed);
        let q = build_permuted(&parts, &identity(n), ordered);
        let mem = memory();
        // Deadline placed at the linear optimum's mean cost, so the miss
        // probability is non-trivial.
        let probe =
            pareto::exhaustive_utility(&q, &PaperCostModel, &mem, Utility::Linear).unwrap();
        let utilities = [
            Utility::Linear,
            Utility::Exponential { gamma },
            Utility::Exponential { gamma: -gamma },
            Utility::Deadline { threshold: probe.cost_distribution.mean() },
        ];
        for u in utilities {
            let p = pareto::optimize(&q, &PaperCostModel, &mem, u).unwrap();
            let e = pareto::exhaustive_utility(&q, &PaperCostModel, &mem, u).unwrap();
            prop_assert!(
                (p.best.cost - e.best.cost).abs() <= 1e-6 * e.best.cost.abs().max(1e-9),
                "{u:?}: pareto {} vs exhaustive {}", p.best.cost, e.best.cost
            );
        }
    }

    /// Renumbering the relations leaves the surviving root frontier — as
    /// a sorted set of cost profiles — unchanged (up to float
    /// re-association inside the size estimates).
    #[test]
    fn frontier_is_invariant_under_relation_renumbering(
        star in proptest::bool::ANY,
        n in 3usize..=4,
        seed in 0u64..1_000_000,
        ordered in proptest::bool::ANY,
        rot in 1usize..=3,
        swap in proptest::bool::ANY,
        gamma in 1e-6f64..1e-4,
    ) {
        let parts = query_parts(star, n, seed);
        let mem = memory();
        let u = Utility::Exponential { gamma };
        let base = build_permuted(&parts, &identity(n), ordered);
        let renum = build_permuted(&parts, &permutation(n, rot % n, swap), ordered);

        let a = pareto::optimize(&base, &PaperCostModel, &mem, u).unwrap();
        let b = pareto::optimize(&renum, &PaperCostModel, &mem, u).unwrap();

        prop_assert!(close(a.best.cost, b.best.cost, 1e-9),
            "best score {} vs {}", a.best.cost, b.best.cost);
        prop_assert_eq!(a.max_frontier, b.max_frontier);
        prop_assert_eq!(a.frontier_profiles.len(), b.frontier_profiles.len());

        let sorted = |mut profs: Vec<Vec<f64>>| {
            profs.sort_by(|x, y| x.partial_cmp(y).unwrap());
            profs
        };
        let pa = sorted(a.frontier_profiles);
        let pb = sorted(b.frontier_profiles);
        for (x, y) in pa.iter().zip(&pb) {
            for (&cx, &cy) in x.iter().zip(y) {
                prop_assert!(close(cx, cy, 1e-9), "profile cost {cx} vs {cy}");
            }
        }
    }
}
