//! Serial ≡ parallel equivalence properties for every enumerator with a
//! rank-parallel path.
//!
//! The parallel DPs promise *bit-identical* results to their serial
//! counterparts — not "a valid plan of the same quality" but the very same
//! cost down to the last ULP and the very same plan tree. These properties
//! check that promise over randomized chain, star, and clique queries
//! (n ∈ 2..=10), with and without a required output order, for:
//!
//! * Algorithm C (the left-deep expected-cost DP),
//! * Algorithm D (multi-parameter, with size/selectivity uncertainty),
//! * top-`c` enumeration (including both combination counters),
//! * the bushy DPsub program,
//! * the exhaustive left-deep enumerator (parallel plan scoring).
//!
//! Since the observability layer, the promise extends to the
//! [`lec_core::OptStats`] search counters: serial and parallel runs must
//! report *identical* `SearchCounters` and precompute sizes (wall times
//! are scheduling noise and deliberately carry no equality). Each property
//! therefore drives the `*_with_stats` entry points and asserts both the
//! plan bits and the counters.
//!
//! The thread configuration forces the parallel path (cutoff 2) with more
//! workers than the container has cores, so chunk boundaries are exercised
//! even on single-core CI.

use lec_core::alg_d::{self, AlgDConfig, SizeModel};
use lec_core::parametric::ParametricPlans;
use lec_core::topc::{self, MergeStrategy};
use lec_core::{alg_c, bushy, exhaustive, MemoryModel, Parallelism};
use lec_cost::PaperCostModel;
use lec_plan::{JoinPred, JoinQuery, KeyId, Relation};
use lec_stats::Distribution;
use proptest::prelude::*;

/// Chain (0), star (1), or clique (2) topology over `n` relations, with
/// deterministically varied page counts, selectivities, and index flags.
fn build_query(topo: usize, n: usize, seed: u64, ordered: bool) -> JoinQuery {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(0x5851F42D4C957F2D)
            .wrapping_add(0x14057B7EF767814F);
        state >> 33
    };
    let relations = (0..n)
        .map(|i| {
            let pages = (next() % 9000 + 40) as f64;
            let mut rel = Relation::new(format!("r{i}"), pages, pages * 40.0);
            if next() % 3 == 0 {
                rel = rel
                    .with_local_selectivity((next() % 90 + 5) as f64 / 100.0)
                    .with_index();
            }
            rel
        })
        .collect();
    let mut predicates = Vec::new();
    let mut key = 0;
    match topo {
        0 => {
            for i in 0..n - 1 {
                predicates.push(JoinPred {
                    left: i,
                    right: i + 1,
                    selectivity: (next() % 900 + 10) as f64 * 1e-5,
                    key: KeyId(key),
                });
                key += 1;
            }
        }
        1 => {
            for i in 1..n {
                predicates.push(JoinPred {
                    left: 0,
                    right: i,
                    selectivity: (next() % 900 + 10) as f64 * 1e-5,
                    key: KeyId(key),
                });
                key += 1;
            }
        }
        _ => {
            for i in 0..n {
                for j in i + 1..n {
                    predicates.push(JoinPred {
                        left: i,
                        right: j,
                        selectivity: (next() % 900 + 100) as f64 * 1e-4,
                        key: KeyId(key),
                    });
                    key += 1;
                }
            }
        }
    }
    let required = if ordered && !predicates.is_empty() {
        Some(predicates[predicates.len() - 1].key)
    } else {
        None
    };
    JoinQuery::new(relations, predicates, required).expect("valid query")
}

fn memory_model(a: f64, b: f64) -> MemoryModel {
    MemoryModel::Static(Distribution::new([(a, 0.35), (b, 0.65)]).expect("valid distribution"))
}

/// More workers than cores, no sequential fallback: the parallel code path
/// runs even for n = 2 and on a single-core container.
fn forced() -> Parallelism {
    Parallelism {
        threads: 3,
        sequential_cutoff: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm C: serial and rank-parallel runs produce the same cost
    /// bit pattern and the same plan tree.
    #[test]
    fn alg_c_parallel_equivalent(
        topo in 0usize..3,
        n in 2usize..=10,
        seed in 0u64..1_000_000,
        ordered in proptest::bool::ANY,
        lo in 8.0f64..120.0,
        hi in 150.0f64..4000.0,
    ) {
        let q = build_query(topo, n, seed, ordered);
        let mem = memory_model(lo, hi);
        let (serial, sstats) = alg_c::optimize_with_stats(&q, &PaperCostModel, &mem).unwrap();
        let (parallel, pstats) =
            alg_c::optimize_with_stats_par(&q, &PaperCostModel, &mem, &forced()).unwrap();
        prop_assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits());
        prop_assert_eq!(&serial.plan, &parallel.plan);
        prop_assert_eq!(&sstats.counters, &pstats.counters);
        prop_assert_eq!(sstats.precompute, pstats.precompute);
        parallel.plan.validate(&q).unwrap();
    }

    /// Algorithm D: identical best plan, cost, and result-size
    /// distribution under size and selectivity uncertainty.
    #[test]
    fn alg_d_parallel_equivalent(
        topo in 0usize..3,
        n in 2usize..=7,
        seed in 0u64..1_000_000,
        ordered in proptest::bool::ANY,
        size_cv in 0.0f64..0.8,
        sel_cv in 0.0f64..1.0,
    ) {
        let q = build_query(topo, n, seed, ordered);
        let mem = memory_model(20.0, 900.0);
        let sizes = SizeModel::with_uncertainty(&q, size_cv, sel_cv, 3).unwrap();
        let cfg = AlgDConfig::default();
        let (serial, sstats) = alg_d::optimize_fast_with_stats(&q, &mem, &sizes, cfg).unwrap();
        let (parallel, pstats) =
            alg_d::optimize_fast_with_stats_par(&q, &mem, &sizes, cfg, &forced()).unwrap();
        prop_assert_eq!(serial.best.cost.to_bits(), parallel.best.cost.to_bits());
        prop_assert_eq!(&serial.best.plan, &parallel.best.plan);
        prop_assert_eq!(&serial.result_size, &parallel.result_size);
        prop_assert_eq!(&sstats.counters, &pstats.counters);
        prop_assert_eq!(sstats.precompute, pstats.precompute);
        parallel.best.plan.validate(&q).unwrap();
    }

    /// Top-c: the whole ranked plan list matches, as do both combination
    /// counters (per-worker counts are gathered in mask order).
    #[test]
    fn topc_parallel_equivalent(
        topo in 0usize..3,
        n in 2usize..=8,
        seed in 0u64..1_000_000,
        ordered in proptest::bool::ANY,
        c in 1usize..=5,
        mem in 10.0f64..2000.0,
    ) {
        let q = build_query(topo, n, seed, ordered);
        let (serial, sstats) =
            topc::top_c_plans_with_stats(&q, &PaperCostModel, mem, c, MergeStrategy::Frontier)
                .unwrap();
        let (parallel, pstats) = topc::top_c_plans_with_stats_par(
            &q,
            &PaperCostModel,
            mem,
            c,
            MergeStrategy::Frontier,
            &forced(),
        )
        .unwrap();
        prop_assert_eq!(serial.plans.len(), parallel.plans.len());
        for (s, p) in serial.plans.iter().zip(&parallel.plans) {
            prop_assert_eq!(s.cost.to_bits(), p.cost.to_bits());
            prop_assert_eq!(&s.plan, &p.plan);
        }
        prop_assert_eq!(serial.combos_examined, parallel.combos_examined);
        prop_assert_eq!(serial.combos_naive, parallel.combos_naive);
        prop_assert_eq!(&sstats.counters, &pstats.counters);
        prop_assert_eq!(sstats.precompute, pstats.precompute);
        prop_assert_eq!(sstats.counters.candidates_priced, serial.combos_examined);
    }

    /// Bushy DPsub: identical plan and cost across the O(3^n) split
    /// enumeration.
    #[test]
    fn bushy_parallel_equivalent(
        topo in 0usize..3,
        n in 2usize..=9,
        seed in 0u64..1_000_000,
        ordered in proptest::bool::ANY,
        lo in 8.0f64..120.0,
        hi in 150.0f64..4000.0,
    ) {
        let q = build_query(topo, n, seed, ordered);
        let mem = memory_model(lo, hi);
        let (serial, sstats) = bushy::optimize_with_stats(&q, &PaperCostModel, &mem).unwrap();
        let (parallel, pstats) =
            bushy::optimize_with_stats_par(&q, &PaperCostModel, &mem, &forced()).unwrap();
        prop_assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits());
        prop_assert_eq!(&serial.plan, &parallel.plan);
        prop_assert_eq!(&sstats.counters, &pstats.counters);
        prop_assert_eq!(sstats.precompute, pstats.precompute);
        parallel.plan.validate(&q).unwrap();
    }

    /// Parametric precompute (the serving layer's cache-miss path): the
    /// per-scenario plans, their cost bits, the aggregate counters, and
    /// the start-up pick all match between serial and rank-parallel runs.
    #[test]
    fn parametric_precompute_parallel_equivalent(
        topo in 0usize..3,
        n in 2usize..=7,
        seed in 0u64..1_000_000,
        ordered in proptest::bool::ANY,
        lo in 8.0f64..120.0,
        hi in 150.0f64..4000.0,
        p_lo in 0.05f64..0.95,
    ) {
        let q = build_query(topo, n, seed, ordered);
        let scenarios = vec![
            Distribution::new([(lo, 0.8), (hi, 0.2)]).unwrap(),
            Distribution::new([(lo, 0.2), (hi, 0.8)]).unwrap(),
        ];
        let (serial, sstats) =
            ParametricPlans::precompute_with_stats(&q, &PaperCostModel, &scenarios).unwrap();
        let (parallel, pstats) = ParametricPlans::precompute_with_stats_par(
            &q,
            &PaperCostModel,
            &scenarios,
            &forced(),
        )
        .unwrap();
        prop_assert_eq!(&sstats.counters, &pstats.counters);
        prop_assert_eq!(sstats.precompute, pstats.precompute);
        for ((_, s), (_, p)) in serial.scenarios().iter().zip(parallel.scenarios()) {
            prop_assert_eq!(s.cost.to_bits(), p.cost.to_bits());
            prop_assert_eq!(&s.plan, &p.plan);
        }
        let observed = Distribution::new([(lo, p_lo), (hi, 1.0 - p_lo)]).unwrap();
        let s_choice = serial.pick(&q, &PaperCostModel, &observed).unwrap();
        let p_choice = parallel.pick(&q, &PaperCostModel, &observed).unwrap();
        prop_assert_eq!(s_choice.scenario, p_choice.scenario);
        prop_assert_eq!(s_choice.expected_cost.to_bits(), p_choice.expected_cost.to_bits());
        prop_assert_eq!(&s_choice.plan, &p_choice.plan);
    }

    /// Exhaustive left-deep enumeration with parallel scoring: same
    /// winning plan, cost bits, and scored-plan counter.
    #[test]
    fn exhaustive_parallel_equivalent(
        topo in 0usize..3,
        n in 2usize..=6,
        seed in 0u64..1_000_000,
        ordered in proptest::bool::ANY,
        lo in 8.0f64..120.0,
        hi in 150.0f64..4000.0,
    ) {
        let q = build_query(topo, n, seed, ordered);
        let phases = memory_model(lo, hi).table(n.max(2)).unwrap();
        let (serial, sstats) =
            exhaustive::exhaustive_lec_with_stats(&q, &PaperCostModel, &phases).unwrap();
        let (parallel, pstats) =
            exhaustive::exhaustive_lec_par_with_stats(&q, &PaperCostModel, &phases, &forced())
                .unwrap();
        prop_assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits());
        prop_assert_eq!(&serial.plan, &parallel.plan);
        prop_assert_eq!(&sstats.counters, &pstats.counters);
        prop_assert!(sstats.counters.candidates_priced > 0);
        prop_assert_eq!(sstats.counters.masks_expanded, 0);
        parallel.plan.validate(&q).unwrap();
    }
}
