//! Differential battery: every optimizer in the family against the
//! exhaustively enumerated oracle, on small seeded environments (n ≤ 6).
//!
//! The comparison rules are **exact**, not epsilon. Every plan any
//! optimizer returns is repriced through the one shared evaluator
//! ([`lec_core::expected_cost`]) under the same phase table, and the
//! oracle ([`exhaustive::exhaustive_lec`]) is itself the `total_cmp`
//! minimum of that evaluator over every left-deep plan. On that common
//! scale:
//!
//! * **Exact algorithms** (Algorithm C, the bushy DPsub against the bushy
//!   oracle) must land on the oracle's cost *bit for bit* — no plan in the
//!   enumerated space prices below the oracle, so `==` is the correct
//!   assertion and any ULP of disagreement is a real argmin bug.
//! * **Heuristics** (LSC at mode/mean, Algorithms A and B, top-c) obey an
//!   exact sandwich: their repriced cost is `>=` the oracle (they return
//!   plans from the space the oracle minimized over) and `<=` a named
//!   dominating candidate (A is at most its mode candidate; B at most A,
//!   because B's per-bucket top-c pool contains A's per-bucket winner).
//! * **Serial ≡ rank-parallel**: where a `_par` entry point exists, it
//!   must return the same plan and the same repriced bits as the serial
//!   run, with the parallel path forced (more workers than cores, cutoff
//!   below every n).
//!
//! `lec-core` deliberately has no RNG dependency, so environments come
//! from an in-file splitmix64 generator: deterministic, seeded, and
//! identical on every run and platform.

use lec_core::alg_d::{self, AlgDConfig, SizeModel};
use lec_core::evaluate::expected_cost;
use lec_core::topc::{self, MergeStrategy};
use lec_core::{alg_a, alg_b, alg_c, bushy, exhaustive, lsc, MemoryModel, Parallelism};
use lec_cost::PaperCostModel;
use lec_plan::{JoinPred, JoinQuery, KeyId, Plan, Relation};
use lec_stats::Distribution;

/// splitmix64: the whole battery's only randomness, seeded per environment.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A value in `[lo, hi)` with 1/1000 granularity (exactly
    /// representable arithmetic keeps runs reproducible in decimal too).
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() % 1000) as f64 / 1000.0
    }
}

/// Chain (0), star (1), or clique (2) over `n` relations with seeded page
/// counts, selectivities, and index/filter flags.
fn build_query(topo: usize, n: usize, seed: u64, ordered: bool) -> JoinQuery {
    let mut rng = SplitMix64(seed ^ (topo as u64) << 32 ^ (n as u64) << 48);
    let relations = (0..n)
        .map(|i| {
            let pages = (rng.next() % 7000 + 50) as f64;
            let mut rel = Relation::new(format!("r{i}"), pages, pages * 40.0);
            if rng.next().is_multiple_of(3) {
                rel = rel
                    .with_local_selectivity(rng.range(0.05, 0.95))
                    .with_index();
            }
            rel
        })
        .collect();
    let mut predicates = Vec::new();
    let push = |preds: &mut Vec<JoinPred>, l: usize, r: usize, rng: &mut SplitMix64| {
        let key = preds.len();
        preds.push(JoinPred {
            left: l,
            right: r,
            selectivity: rng.range(1e-5, 1e-2),
            key: KeyId(key),
        });
    };
    match topo {
        0 => (0..n - 1).for_each(|i| push(&mut predicates, i, i + 1, &mut rng)),
        1 => (1..n).for_each(|i| push(&mut predicates, 0, i, &mut rng)),
        _ => (0..n).for_each(|i| {
            (i + 1..n).for_each(|j| push(&mut predicates, i, j, &mut rng));
        }),
    }
    let required = ordered.then(|| predicates[predicates.len() - 1].key);
    JoinQuery::new(relations, predicates, required).expect("valid differential query")
}

/// Two- or three-point memory distributions with seeded support.
fn build_memory(seed: u64) -> Distribution {
    let mut rng = SplitMix64(seed.wrapping_mul(0xA24BAED4963EE407));
    let lo = rng.range(5.0, 80.0);
    let hi = rng.range(150.0, 3000.0);
    if rng.next().is_multiple_of(2) {
        let p = rng.range(0.1, 0.9);
        Distribution::new([(lo, p), (hi, 1.0 - p)]).expect("two-point memory")
    } else {
        let mid = rng.range(90.0, 140.0);
        Distribution::new([(lo, 0.25), (mid, 0.4), (hi, 0.35)]).expect("three-point memory")
    }
}

/// More workers than cores, no sequential fallback: the rank-parallel code
/// path runs even for n = 2 on a single-core container.
fn forced() -> Parallelism {
    Parallelism {
        threads: 3,
        sequential_cutoff: 2,
    }
}

/// Every seeded environment the battery runs: (query, memory, label).
fn environments() -> Vec<(JoinQuery, Distribution, String)> {
    let mut envs = Vec::new();
    for topo in 0..3 {
        for n in 2..=5 {
            for seed in 0..4 {
                let ordered = seed % 2 == 1;
                envs.push((
                    build_query(topo, n, seed, ordered),
                    build_memory(seed * 31 + topo as u64 * 7 + n as u64),
                    format!("topo {topo} n {n} seed {seed} ordered {ordered}"),
                ));
            }
        }
    }
    // One n = 6 chain per seed: the battery's stated ceiling.
    for seed in 0..3 {
        envs.push((
            build_query(0, 6, 100 + seed, false),
            build_memory(500 + seed),
            format!("topo 0 n 6 seed {} ordered false", 100 + seed),
        ));
    }
    envs
}

#[test]
fn exact_algorithms_match_the_exhaustive_oracle_bit_for_bit() {
    let model = PaperCostModel;
    for (q, mem, label) in environments() {
        let static_mem = MemoryModel::Static(mem.clone());
        let phases = static_mem.table(q.n().max(2)).expect("phase table");
        let reprice = |p: &Plan| expected_cost(&q, &model, p, &phases);

        let oracle = exhaustive::exhaustive_lec(&q, &model, &phases).expect("oracle");
        assert_eq!(
            reprice(&oracle.plan).to_bits(),
            oracle.cost.to_bits(),
            "{label}: the oracle's cost must be the shared evaluator's output"
        );

        // Algorithm C is the exact left-deep LEC plan: repriced, it must
        // hit the oracle's minimum exactly — serial and rank-parallel.
        let c_serial = alg_c::optimize(&q, &model, &static_mem).expect("alg_c");
        assert_eq!(
            reprice(&c_serial.plan).to_bits(),
            oracle.cost.to_bits(),
            "{label}: alg_c (serial) repriced {} vs oracle {}",
            reprice(&c_serial.plan),
            oracle.cost
        );
        let c_par = alg_c::optimize_par(&q, &model, &static_mem, &forced()).expect("alg_c par");
        assert_eq!(&c_par.plan, &c_serial.plan, "{label}: alg_c serial ≡ par");
        assert_eq!(reprice(&c_par.plan).to_bits(), oracle.cost.to_bits());

        // The bushy DPsub against the bushy-space oracle, same rule; and
        // the wider space can only improve on the left-deep minimum.
        if q.n() <= 5 {
            let bushy_oracle =
                exhaustive::exhaustive_lec_bushy(&q, &model, &phases).expect("bushy oracle");
            let b_serial = bushy::optimize(&q, &model, &static_mem).expect("bushy");
            assert_eq!(
                reprice(&b_serial.plan).to_bits(),
                bushy_oracle.cost.to_bits(),
                "{label}: bushy repriced {} vs bushy oracle {}",
                reprice(&b_serial.plan),
                bushy_oracle.cost
            );
            assert!(
                bushy_oracle.cost.total_cmp(&oracle.cost).is_le(),
                "{label}: bushy oracle above the left-deep oracle"
            );
            let b_par = bushy::optimize_par(&q, &model, &static_mem, &forced()).expect("bushy par");
            assert_eq!(&b_par.plan, &b_serial.plan, "{label}: bushy serial ≡ par");
        }

        // The parallel exhaustive scorer is the oracle's own parallel path.
        let oracle_par =
            exhaustive::exhaustive_lec_par(&q, &model, &phases, &forced()).expect("oracle par");
        assert_eq!(oracle_par.cost.to_bits(), oracle.cost.to_bits());
        assert_eq!(
            &oracle_par.plan, &oracle.plan,
            "{label}: oracle serial ≡ par"
        );
    }
}

#[test]
fn heuristics_obey_the_exact_oracle_sandwich() {
    let model = PaperCostModel;
    for (q, mem, label) in environments() {
        let static_mem = MemoryModel::Static(mem.clone());
        let phases = static_mem.table(q.n().max(2)).expect("phase table");
        let reprice = |p: &Plan| expected_cost(&q, &model, p, &phases);
        let oracle = exhaustive::exhaustive_lec(&q, &model, &phases).expect("oracle");
        let at_least_oracle = |cost: f64, who: &str| {
            assert!(
                oracle.cost.total_cmp(&cost).is_le(),
                "{label}: {who} repriced {cost} below the oracle {} — impossible \
                 unless it left the enumerated space",
                oracle.cost
            );
        };

        // LSC at mode and mean: legal plans, so never below the oracle.
        let lsc_mode = lsc::optimize_at_mode(&q, &model, &mem).expect("lsc mode");
        at_least_oracle(reprice(&lsc_mode.plan), "lsc(mode)");
        let lsc_mean = lsc::optimize_at_mean(&q, &model, &mem).expect("lsc mean");
        at_least_oracle(reprice(&lsc_mean.plan), "lsc(mean)");

        // Algorithm A: sandwiched between the oracle and its own mode
        // candidate (the mode is always a support point, hence always a
        // candidate, and A picks the expected-cost minimum of candidates).
        let a = alg_a::optimize(&q, &model, &static_mem).expect("alg_a");
        at_least_oracle(a.best.cost, "alg_a");
        assert_eq!(
            a.best.cost.to_bits(),
            reprice(&a.best.plan).to_bits(),
            "{label}: alg_a's reported cost must already be the shared evaluator's"
        );
        assert!(
            a.best.cost.total_cmp(&reprice(&lsc_mode.plan)).is_le(),
            "{label}: alg_a must be at most its own mode candidate"
        );

        // Algorithm B: its per-bucket top-c pool contains each bucket's
        // LSC winner, so B can never do worse than A — and never better
        // than the oracle.
        let b = alg_b::optimize(&q, &model, &static_mem, 3).expect("alg_b");
        at_least_oracle(b.best.cost, "alg_b");
        assert!(
            b.best.cost.total_cmp(&a.best.cost).is_le(),
            "{label}: alg_b (c=3) worse than alg_a: {} vs {}",
            b.best.cost,
            a.best.cost
        );

        // Top-c at the mode: every ranked plan is a legal left-deep plan.
        let ranked =
            topc::top_c_plans(&q, &model, mem.mode(), 3, MergeStrategy::Frontier).expect("topc");
        for (i, p) in ranked.plans.iter().enumerate() {
            at_least_oracle(reprice(&p.plan), &format!("topc[{i}]"));
        }
        let ranked_par = topc::top_c_plans_par(
            &q,
            &model,
            mem.mode(),
            3,
            MergeStrategy::Frontier,
            &forced(),
        )
        .expect("topc par");
        assert_eq!(ranked.plans.len(), ranked_par.plans.len());
        for (s, p) in ranked.plans.iter().zip(&ranked_par.plans) {
            assert_eq!(&s.plan, &p.plan, "{label}: topc serial ≡ par");
        }

        // Algorithm D under certainty degenerates to a legal left-deep
        // plan; serial and rank-parallel agree on it.
        let sizes = SizeModel::certain(&q).expect("certain sizes");
        let d =
            alg_d::optimize_fast(&q, &static_mem, &sizes, AlgDConfig::default()).expect("alg_d");
        at_least_oracle(reprice(&d.best.plan), "alg_d");
        let d_par =
            alg_d::optimize_fast_par(&q, &static_mem, &sizes, AlgDConfig::default(), &forced())
                .expect("alg_d par");
        assert_eq!(
            &d_par.best.plan, &d.best.plan,
            "{label}: alg_d serial ≡ par"
        );
    }
}
