//! Rule-selection differential battery (the refactor safety net for the
//! `lec-rules` subsystem), on the same seeded environments as
//! `optimizer_differential.rs`.
//!
//! * **Bit-identity**: the `LeastExpectedCost` rule must return the same
//!   plan and the same cost *bits* as the existing expected-cost
//!   optimizers — both the fresh-optimization path (`alg_c` via
//!   [`rules::optimize_with_rule`]) and the parametric start-up path
//!   ([`ParametricPlans::pick_with_rule`] vs [`ParametricPlans::pick`]).
//!   The rule dispatches to the existing code, and this battery is what
//!   keeps that dispatch honest.
//! * **Frontier agreement**: finalizing the LEC criterion over the
//!   Pareto frontier (the path every *other* rule takes) lands on the
//!   same expected cost as the scalar DP, up to float-summation-order
//!   tolerance — the two paths genuinely sum in different orders, which
//!   is exactly why bit-identity requires dispatch rather than rescoring.
//! * **Divergence**: on at least one seeded environment apiece,
//!   `MinmaxRegret` and `TailRisk` provably pick a *different* plan than
//!   LEC, and every such minmax divergence strictly reduces the
//!   worst-case regret over the belief support (that is the rule's
//!   defining guarantee — checked against the rule-independent frontier).

use lec_core::evaluate::{cost_profile, expected_cost};
use lec_core::parametric::ParametricPlans;
use lec_core::rules::{optimize_with_dyn_rule, optimize_with_rule};
use lec_core::{alg_c, MemoryModel};
use lec_cost::PaperCostModel;
use lec_plan::{JoinPred, JoinQuery, KeyId, Relation};
use lec_rules::{LeastExpectedCost, Rule, TailRisk};
use lec_stats::Distribution;

/// splitmix64: the battery's only randomness (identical to the generator
/// in `optimizer_differential.rs`, so both batteries stress the same
/// environment family).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() % 1000) as f64 / 1000.0
    }
}

fn build_query(topo: usize, n: usize, seed: u64, ordered: bool) -> JoinQuery {
    let mut rng = SplitMix64(seed ^ (topo as u64) << 32 ^ (n as u64) << 48);
    let relations = (0..n)
        .map(|i| {
            let pages = (rng.next() % 7000 + 50) as f64;
            let mut rel = Relation::new(format!("r{i}"), pages, pages * 40.0);
            if rng.next().is_multiple_of(3) {
                rel = rel
                    .with_local_selectivity(rng.range(0.05, 0.95))
                    .with_index();
            }
            rel
        })
        .collect();
    let mut predicates = Vec::new();
    let push = |preds: &mut Vec<JoinPred>, l: usize, r: usize, rng: &mut SplitMix64| {
        let key = preds.len();
        preds.push(JoinPred {
            left: l,
            right: r,
            selectivity: rng.range(1e-5, 1e-2),
            key: KeyId(key),
        });
    };
    match topo {
        0 => (0..n - 1).for_each(|i| push(&mut predicates, i, i + 1, &mut rng)),
        1 => (1..n).for_each(|i| push(&mut predicates, 0, i, &mut rng)),
        _ => (0..n).for_each(|i| {
            (i + 1..n).for_each(|j| push(&mut predicates, i, j, &mut rng));
        }),
    }
    let required = ordered.then(|| predicates[predicates.len() - 1].key);
    JoinQuery::new(relations, predicates, required).expect("valid differential query")
}

fn build_memory(seed: u64) -> Distribution {
    let mut rng = SplitMix64(seed.wrapping_mul(0xA24BAED4963EE407));
    let lo = rng.range(5.0, 80.0);
    let hi = rng.range(150.0, 3000.0);
    if rng.next().is_multiple_of(2) {
        let p = rng.range(0.1, 0.9);
        Distribution::new([(lo, p), (hi, 1.0 - p)]).expect("two-point memory")
    } else {
        let mid = rng.range(90.0, 140.0);
        Distribution::new([(lo, 0.25), (mid, 0.4), (hi, 0.35)]).expect("three-point memory")
    }
}

/// The ~51 seeded environments of the optimizer battery.
fn environments() -> Vec<(JoinQuery, Distribution, String)> {
    let mut envs = Vec::new();
    for topo in 0..3 {
        for n in 2..=5 {
            for seed in 0..4 {
                let ordered = seed % 2 == 1;
                envs.push((
                    build_query(topo, n, seed, ordered),
                    build_memory(seed * 31 + topo as u64 * 7 + n as u64),
                    format!("topo {topo} n {n} seed {seed} ordered {ordered}"),
                ));
            }
        }
    }
    for seed in 0..3 {
        envs.push((
            build_query(0, 6, 100 + seed, false),
            build_memory(500 + seed),
            format!("topo 0 n 6 seed {} ordered false", 100 + seed),
        ));
    }
    envs
}

/// Three anticipated-scenario distributions per environment, for the
/// parametric start-up path.
fn scenario_set(seed: u64, observed: &Distribution) -> Vec<Distribution> {
    vec![
        build_memory(seed.wrapping_add(1000)),
        build_memory(seed.wrapping_add(2000)),
        observed.clone(),
    ]
}

#[test]
fn lec_rule_is_bit_identical_to_the_expected_cost_optimizers() {
    let model = PaperCostModel;
    for (i, (q, mem, label)) in environments().into_iter().enumerate() {
        // Fresh optimization: the rule entry point vs alg_c directly.
        let via_rule =
            optimize_with_rule(&q, &model, &mem, &Rule::LeastExpectedCost).expect("rule path");
        let direct = alg_c::optimize(&q, &model, &MemoryModel::Static(mem.clone())).expect("alg_c");
        assert_eq!(
            via_rule.best.cost.to_bits(),
            direct.cost.to_bits(),
            "{label}: LEC rule cost must be bit-identical to alg_c"
        );
        assert_eq!(via_rule.best.plan, direct.plan, "{label}: LEC rule plan");
        assert_eq!(
            via_rule.expected_cost.to_bits(),
            direct.cost.to_bits(),
            "{label}: LEC rule reports its score as the expected cost"
        );

        // Parametric start-up: pick_with_rule(LEC) vs pick, bit for bit.
        let scenarios = scenario_set(i as u64, &mem);
        let set = ParametricPlans::precompute(&q, &model, &scenarios).expect("precompute");
        let plain = set.pick(&q, &model, &mem).expect("pick");
        let ruled = set
            .pick_with_rule(&q, &model, &mem, &Rule::LeastExpectedCost)
            .expect("pick_with_rule");
        assert_eq!(ruled.scenario, plain.scenario, "{label}: startup scenario");
        assert_eq!(ruled.plan, plain.plan, "{label}: startup plan");
        assert_eq!(
            ruled.expected_cost.to_bits(),
            plain.expected_cost.to_bits(),
            "{label}: startup cost bits"
        );
    }
}

#[test]
fn frontier_finalized_lec_agrees_with_the_scalar_path() {
    let model = PaperCostModel;
    for (q, mem, label) in environments() {
        let scalar = alg_c::optimize(&q, &model, &MemoryModel::Static(mem.clone())).expect("alg_c");
        // Force the LEC criterion down the frontier path every other rule
        // takes (dyn rules always frontier-finalize).
        let frontier =
            optimize_with_dyn_rule(&q, &model, &mem, &LeastExpectedCost).expect("frontier LEC");
        assert!(
            (frontier.best.cost - scalar.cost).abs() <= 1e-9 * scalar.cost.max(1.0),
            "{label}: frontier-finalized LEC {} vs scalar {}",
            frontier.best.cost,
            scalar.cost
        );
    }
}

#[test]
fn minmax_and_tail_risk_provably_diverge_from_lec() {
    let model = PaperCostModel;
    let mut minmax_divergences = 0usize;
    let mut tail_divergences = 0usize;
    for (q, mem, label) in environments() {
        let lec = optimize_with_rule(&q, &model, &mem, &Rule::LeastExpectedCost).expect("lec");
        let minmax = optimize_with_rule(&q, &model, &mem, &Rule::MinmaxRegret).expect("minmax");
        let tail = optimize_with_rule(&q, &model, &mem, &Rule::TailRisk(TailRisk { alpha: 0.9 }))
            .expect("tail");

        // Rule-independent yardstick: regret against the *per-scenario
        // optima of the whole plan space* — which the Pareto frontier
        // attains, so the frontier's root profiles define them. The
        // minmax winner minimized exactly this objective, so its
        // worst-case regret can never exceed the LEC plan's.
        let lec_profile = cost_profile(&q, &model, &lec.best.plan, mem.values());
        let mm_profile = cost_profile(&q, &model, &minmax.best.plan, mem.values());
        let frontier = lec_core::pareto::optimize(&q, &model, &mem, lec_stats::Utility::Linear)
            .expect("frontier")
            .frontier_profiles;
        let opt: Vec<f64> = (0..mem.values().len())
            .map(|s| {
                frontier
                    .iter()
                    .map(|p| p[s])
                    .chain([lec_profile[s], mm_profile[s]])
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let max_regret = |profile: &[f64]| {
            profile
                .iter()
                .zip(&opt)
                .map(|(c, o)| c - o)
                .fold(0.0f64, f64::max)
        };
        assert!(
            max_regret(&mm_profile) <= max_regret(&lec_profile) + 1e-9,
            "{label}: minmax winner has worse worst-case regret than LEC"
        );
        if minmax.best.plan != lec.best.plan {
            minmax_divergences += 1;
        }
        if tail.best.plan != lec.best.plan {
            tail_divergences += 1;
        }
        // The robustness premium is never negative expected cost savings:
        // LEC is by definition minimal in expectation.
        let phases = MemoryModel::Static(mem.clone())
            .table(q.n().max(2))
            .expect("phases");
        for robust in [&minmax, &tail] {
            let repriced = expected_cost(&q, &model, &robust.best.plan, &phases);
            assert!(
                repriced >= lec.best.cost - 1e-9 * lec.best.cost.max(1.0),
                "{label}: a robust rule repriced below the LEC optimum"
            );
        }
    }
    assert!(
        minmax_divergences >= 1,
        "minmax regret never diverged from LEC across the battery"
    );
    assert!(
        tail_divergences >= 1,
        "tail risk never diverged from LEC across the battery"
    );
}
